//! # private-incremental-regression
//!
//! A complete Rust implementation of
//! **“Private Incremental Regression”** (Kasiviswanathan, Nissim & Jin,
//! PODS 2017): differentially private empirical risk minimization over
//! data *streams*, where a fresh estimator must be released after every
//! arrival and the entire release sequence is `(ε, δ)`-DP.
//!
//! ## The three mechanisms
//!
//! | mechanism | paper | excess risk (shape) | when to use |
//! |---|---|---|---|
//! | [`PrivIncErm`](pir_core::PrivIncErm) | §3 | `(Td)^{1/3}/ε^{2/3}` (convex), `√d/(√ν ε)` (strongly convex) | any convex loss |
//! | [`PrivIncReg1`](pir_core::PrivIncReg1) | §4 | `√d·‖C‖²/ε` | regression, moderate `d` |
//! | [`PrivIncReg2`](pir_core::PrivIncReg2) | §5 | `T^{1/3}W^{2/3}/ε + √OPT terms` | regression, high `d`, low-width domain/constraints |
//!
//! ## Quick start
//!
//! ```
//! use private_incremental_regression::prelude::*;
//!
//! // A privacy budget, a constraint set, and a seeded noise source.
//! let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
//! let set = L2Ball::unit(5);
//! let mut rng = NoiseRng::seed_from_u64(7);
//!
//! // The √d mechanism for a stream of length ≤ 64.
//! let mut mech = PrivIncReg1::new(
//!     Box::new(set),
//!     64,
//!     &params,
//!     &mut rng,
//!     PrivIncReg1Config::default(),
//! )
//! .unwrap();
//!
//! // Stream covariate–response pairs (‖x‖ ≤ 1, |y| ≤ 1) and receive a
//! // private estimator after every arrival.
//! let z = DataPoint::new(vec![0.4, 0.0, 0.3, 0.0, 0.0], 0.25);
//! let theta_t = mech.observe(&z).unwrap();
//! assert_eq!(theta_t.len(), 5);
//! ```
//!
//! ## Crate map
//!
//! - [`linalg`] — dense vectors/matrices, Cholesky, spectral norms.
//! - [`dp`] — privacy parameters, Gaussian/Laplace mechanisms,
//!   composition, accountant, seeded noise.
//! - [`continual`] — Tree / Hybrid mechanisms for continual sums.
//! - [`geometry`] — constraint sets: projections, support functions,
//!   Gaussian widths, Minkowski gauges.
//! - [`sketch`] — Gaussian random projections, Gordon dimension rule.
//! - [`optim`] — projected gradient, `NOISYPROJGRAD`, FISTA, Frank–Wolfe.
//! - [`erm`] — losses, exact and private batch ERM solvers.
//! - [`core`] — the incremental mechanisms, baselines, and the
//!   Definition-1 evaluation harness.
//! - [`engine`] — the sharded multi-stream serving layer: spawn thousands
//!   of concurrent sessions from a [`MechanismSpec`](pir_engine::MechanismSpec),
//!   drive them through the pipelined
//!   [`EngineHandle`](pir_engine::EngineHandle) (bounded per-shard queues,
//!   atomic backpressure) from any number of threads holding cloned
//!   [`SubmitHandle`](pir_engine::SubmitHandle)s, or speak the
//!   length-prefixed [`wire`](pir_engine::wire) protocol to a
//!   [`serve_connection`](pir_engine::serve_connection) loop — over
//!   sockets, via the thread-per-connection
//!   [`serve_tcp`](pir_engine::serve_tcp) front.
//! - [`datagen`] — synthetic stream generators for every experiment.
//!
//! ## Serving many streams
//!
//! The pipelined frontend is the production entry point: commands are
//! enqueued without blocking on mechanism compute, and replies arrive
//! through tickets.
//!
//! ```
//! use private_incremental_regression::prelude::*;
//!
//! let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
//! let handle = EngineHandle::new(IngressConfig {
//!     num_shards: 2,
//!     seed: 7,
//!     queue_depth: 256,
//! })
//! .unwrap();
//! for sid in 0..16u64 {
//!     handle.open(sid, &MechanismSpec::reg1_l2(3), 32, &params).unwrap();
//! }
//! let batch: Vec<(u64, DataPoint)> = (0..32u64)
//!     .map(|i| (i % 16, DataPoint::new(vec![0.4, 0.1, 0.0], 0.2)))
//!     .collect();
//! let releases = handle.ingest(batch);
//! assert!(releases.iter().all(|r| r.is_ok()));
//! handle.close();
//! ```
//!
//! The synchronous [`ShardedEngine`](pir_engine::ShardedEngine) behind it
//! remains available for embedded, single-caller use — the two paths are
//! release-for-release identical.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use pir_continual as continual;
pub use pir_core as core;
pub use pir_datagen as datagen;
pub use pir_dp as dp;
pub use pir_engine as engine;
pub use pir_erm as erm;
pub use pir_geometry as geometry;
pub use pir_linalg as linalg;
pub use pir_optim as optim;
pub use pir_sketch as sketch;

/// Everything most applications need, in one import.
pub mod prelude {
    pub use pir_continual::{HybridMechanism, PrivateCounter, TreeMechanism};
    pub use pir_core::baselines::{naive_recompute, ExactIncremental, TrivialMechanism};
    pub use pir_core::evaluate::{evaluate_generic, evaluate_squared_loss, ExcessRiskReport};
    pub use pir_core::{
        IncrementalMechanism, PrivIncErm, PrivIncReg1, PrivIncReg1Config, PrivIncReg2,
        PrivIncReg2Config, RobustPrivIncReg2, TauRule,
    };
    pub use pir_datagen::{
        classification_stream, drift_stream, linear_stream, mixture_stream, sparse_theta,
        CovariateKind, LinearModel,
    };
    pub use pir_dp::{NoiseRng, PrivacyAccountant, PrivacyParams};
    pub use pir_engine::{
        checkpoint, checkpoint_with_storage, recover, recover_with_storage, serve_connection,
        serve_tcp, serve_tcp_with, CheckpointPolicy, CheckpointReport, Command, CrashProfile,
        EngineConfig, EngineError, EngineHandle, FsyncPolicy, IngressConfig, IngressStats,
        LossSpec, MechanismSpec, OsStorage, RecoveryReport, Reply, ServeStats, SetSpec,
        ShardedEngine, SimDisk, SnapshotError, SolverSpec, SpillOptions, SpillStats, Storage,
        StorageFile, StorageHandle, StreamSession, SubmitHandle, TcpFront, TcpOptions, TcpStats,
        Ticket, WalError, WalFailurePolicy, WalOptions, WalStats, WalWriter,
    };
    pub use pir_erm::{
        solve_exact, DataPoint, LogisticLoss, Loss, NoisyGdSolver, OutputPerturbationSolver,
        PrivateBatchSolver, PrivateFrankWolfeSolver, Regularized, SquaredLoss,
    };
    pub use pir_geometry::{
        ConvexSet, GroupL1Ball, KSparseDomain, L1Ball, L2Ball, LinfBall, LpBall, PolytopeHull,
        Simplex, WidthSet,
    };
    pub use pir_sketch::{gordon, GaussianSketch};
}
