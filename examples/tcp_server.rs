//! The TCP serving stack end-to-end on one machine: a `serve_tcp` front
//! (thread per connection, each with its own cloned `SubmitHandle`)
//! fed by concurrent wire-protocol clients over 127.0.0.1 — then the
//! determinism receipt: the releases each remote client streamed back
//! are recomputed bit-for-bit on a direct, single-threaded
//! `ShardedEngine` from the engine seed alone.
//!
//! Each client follows the pipelining contract from `docs/PROTOCOL.md`:
//! a writer half streams commands without waiting, while a reader half
//! (its own thread) drains replies concurrently — the pattern that keeps
//! deep pipelines deadlock-free against the server's strictly-in-order
//! reply loop.
//!
//! The engine runs with its write-ahead log on, so the run ends with a
//! second receipt: a simulated restart replays the log into a fresh
//! engine and the releases' digests before and after must match —
//! crash recovery is bit-identical, not merely approximate (the
//! property `tests/recovery.rs` proves under fault injection).
//!
//! Run with `cargo run --release --example tcp_server`. Set
//! `PIR_TCP_ADDR` (e.g. `127.0.0.1:7477`) to pick a fixed port; the
//! default binds an OS-assigned one. 127.0.0.1 only — no external
//! network.

use private_incremental_regression::prelude::*;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

fn main() {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let seed = 20177;
    let d = 8;
    let horizon = 64;
    let clients = 6u64;
    let points_per_client = 48usize;

    // ---- Bring up the engine (WAL on) and its TCP front ------------------
    let wal_dir = std::env::temp_dir().join(format!("pir-tcp-example-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let (handle, recovery) = EngineHandle::with_wal(
        IngressConfig {
            num_shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2),
            seed,
            queue_depth: 1024,
        },
        &WalOptions::new(&wal_dir),
    )
    .unwrap();
    println!(
        "write-ahead log at {} (fresh: {} commands replayed on boot)",
        wal_dir.display(),
        recovery.commands
    );
    let addr = std::env::var("PIR_TCP_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let listener = TcpListener::bind(&addr).unwrap();
    let front = serve_tcp_with(
        handle.submit_handle(),
        listener,
        TcpOptions { max_connections: 64, ..TcpOptions::default() },
    )
    .unwrap();
    println!(
        "serving on {} ({} shards, queue depth {})",
        front.local_addr(),
        handle.num_shards(),
        handle.queue_capacity()
    );

    // ---- Concurrent remote clients, one session each ---------------------
    let t0 = Instant::now();
    let spec = MechanismSpec::reg1_l2(d);
    let releases: Vec<(u64, Vec<Vec<f64>>)> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..clients)
            .map(|sid| {
                let spec = spec.clone();
                let addr = front.local_addr();
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    // Reader half on its own thread: replies drain
                    // concurrently with writes (the pipelining contract).
                    let reader_stream = stream.try_clone().unwrap();
                    let reader = std::thread::spawn(move || {
                        let mut r = &reader_stream;
                        let mut thetas = Vec::new();
                        loop {
                            match pir_engine::wire::read_reply(&mut r).unwrap() {
                                Some(Reply::Opened { .. }) => {}
                                Some(Reply::Releases { thetas: mut th, .. }) => {
                                    thetas.append(&mut th);
                                }
                                Some(Reply::Closed) | None => break,
                                Some(other) => panic!("unexpected reply: {other:?}"),
                            }
                        }
                        thetas
                    });

                    let mut w = &stream;
                    let mut send = |cmd: &Command| {
                        let frame = pir_engine::wire::encode_command(cmd).unwrap();
                        w.write_all(&frame).unwrap();
                    };
                    send(&Command::Open { session_id: sid, spec, t_max: horizon, params });
                    for t in 0..points_per_client {
                        send(&Command::Observe { session_id: sid, point: synth_point(d, t, sid) });
                    }
                    send(&Command::Close);
                    (sid, reader.join().unwrap())
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let dt = t0.elapsed();
    let total_points = clients as usize * points_per_client;
    println!(
        "{clients} connections streamed {total_points} points in {dt:.1?} \
         ({:.0} points/sec through the socket path)",
        total_points as f64 / dt.as_secs_f64()
    );

    // ---- Teardown: front first, then the engine --------------------------
    let tcp_stats = front.shutdown();
    println!(
        "front served {} connections ({} commands, {} replies, {} refused, {} protocol errors)",
        tcp_stats.connections,
        tcp_stats.commands,
        tcp_stats.replies,
        tcp_stats.refused,
        tcp_stats.protocol_errors
    );
    let stats = handle.close();
    println!("engine closed: {} live sessions holding {} points", stats.sessions, stats.points);

    // ---- The determinism receipt -----------------------------------------
    // Every release that traveled the sockets is a pure function of
    // (seed, session id, that session's points): a 1-shard direct engine
    // reproduces the fleet's output exactly.
    let mut direct =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
    direct.spawn_sessions(0..clients, &spec, horizon, &params).unwrap();
    for (sid, thetas) in &releases {
        assert_eq!(thetas.len(), points_per_client);
        for (t, theta) in thetas.iter().enumerate() {
            let expected = direct.observe(*sid, &synth_point(d, t, *sid)).unwrap();
            assert_eq!(theta, &expected, "session {sid} step {t} diverged");
        }
    }
    println!(
        "determinism check: {} releases from {} concurrent connections are bit-identical \
         to the direct single-threaded engine",
        total_points, clients
    );

    // ---- The restart receipt ---------------------------------------------
    // Simulate a crash-and-restart: replay the write-ahead log into a
    // fresh engine and compare release digests. Every command the fleet
    // ran was logged before it executed, so the replayed stream must
    // reproduce the same releases bit for bit — the digests match or the
    // durability story is broken.
    let before = release_digest(&releases);
    let mut replayed: std::collections::BTreeMap<u64, Vec<Vec<f64>>> =
        std::collections::BTreeMap::new();
    let mut restarted =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
    let report = pir_engine::wal::recover_with(&wal_dir, &mut restarted, |_, reply| {
        if let Reply::Releases { session_id, thetas } = reply {
            replayed.entry(*session_id).or_default().extend(thetas.iter().cloned());
        }
    })
    .unwrap();
    let after_releases: Vec<(u64, Vec<Vec<f64>>)> = replayed.into_iter().collect();
    let after = release_digest(&after_releases);
    println!(
        "restart receipt: replayed {} logged commands ({} torn tails dropped)",
        report.commands, report.torn_tails
    );
    println!("  digest before restart: {before:016x}");
    println!("  digest after  replay : {after:016x}");
    assert_eq!(before, after, "restart-with-replay must reproduce the same bits");
    let _ = std::fs::remove_dir_all(&wal_dir);
}

/// FNV-1a 64 over every release, keyed and ordered by `(session, step)`:
/// the canonical fingerprint two runs must share to count as identical.
fn release_digest(releases: &[(u64, Vec<Vec<f64>>)]) -> u64 {
    let mut sorted: Vec<&(u64, Vec<Vec<f64>>)> = releases.iter().collect();
    sorted.sort_by_key(|(sid, _)| *sid);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for (sid, thetas) in sorted {
        eat(&sid.to_le_bytes());
        for (t, theta) in thetas.iter().enumerate() {
            eat(&(t as u64).to_le_bytes());
            for v in theta {
                eat(&v.to_bits().to_le_bytes());
            }
        }
    }
    h
}

/// Deterministic covariate stream: ‖x‖ ≤ 0.9 with a planted signal.
fn synth_point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.7;
    x[(t + session as usize) % d] += 0.2;
    let y = (0.8 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}
