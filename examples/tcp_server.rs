//! The TCP serving stack end-to-end on one machine: a `serve_tcp` front
//! (thread per connection, each with its own cloned `SubmitHandle`)
//! fed by concurrent wire-protocol clients over 127.0.0.1 — then the
//! determinism receipt: the releases each remote client streamed back
//! are recomputed bit-for-bit on a direct, single-threaded
//! `ShardedEngine` from the engine seed alone.
//!
//! Each client follows the pipelining contract from `docs/PROTOCOL.md`:
//! a writer half streams commands without waiting, while a reader half
//! (its own thread) drains replies concurrently — the pattern that keeps
//! deep pipelines deadlock-free against the server's strictly-in-order
//! reply loop.
//!
//! Run with `cargo run --release --example tcp_server`. Set
//! `PIR_TCP_ADDR` (e.g. `127.0.0.1:7477`) to pick a fixed port; the
//! default binds an OS-assigned one. 127.0.0.1 only — no external
//! network.

use private_incremental_regression::prelude::*;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

fn main() {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let seed = 20177;
    let d = 8;
    let horizon = 64;
    let clients = 6u64;
    let points_per_client = 48usize;

    // ---- Bring up the engine and its TCP front ---------------------------
    let handle = EngineHandle::new(IngressConfig {
        num_shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2),
        seed,
        queue_depth: 1024,
    })
    .unwrap();
    let addr = std::env::var("PIR_TCP_ADDR").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let listener = TcpListener::bind(&addr).unwrap();
    let front =
        serve_tcp_with(handle.submit_handle(), listener, TcpOptions { max_connections: 64 })
            .unwrap();
    println!(
        "serving on {} ({} shards, queue depth {})",
        front.local_addr(),
        handle.num_shards(),
        handle.queue_capacity()
    );

    // ---- Concurrent remote clients, one session each ---------------------
    let t0 = Instant::now();
    let spec = MechanismSpec::reg1_l2(d);
    let releases: Vec<(u64, Vec<Vec<f64>>)> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..clients)
            .map(|sid| {
                let spec = spec.clone();
                let addr = front.local_addr();
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    // Reader half on its own thread: replies drain
                    // concurrently with writes (the pipelining contract).
                    let reader_stream = stream.try_clone().unwrap();
                    let reader = std::thread::spawn(move || {
                        let mut r = &reader_stream;
                        let mut thetas = Vec::new();
                        loop {
                            match pir_engine::wire::read_reply(&mut r).unwrap() {
                                Some(Reply::Opened { .. }) => {}
                                Some(Reply::Releases { thetas: mut th, .. }) => {
                                    thetas.append(&mut th);
                                }
                                Some(Reply::Closed) | None => break,
                                Some(other) => panic!("unexpected reply: {other:?}"),
                            }
                        }
                        thetas
                    });

                    let mut w = &stream;
                    let mut send = |cmd: &Command| {
                        let frame = pir_engine::wire::encode_command(cmd).unwrap();
                        w.write_all(&frame).unwrap();
                    };
                    send(&Command::Open { session_id: sid, spec, t_max: horizon, params });
                    for t in 0..points_per_client {
                        send(&Command::Observe { session_id: sid, point: synth_point(d, t, sid) });
                    }
                    send(&Command::Close);
                    (sid, reader.join().unwrap())
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let dt = t0.elapsed();
    let total_points = clients as usize * points_per_client;
    println!(
        "{clients} connections streamed {total_points} points in {dt:.1?} \
         ({:.0} points/sec through the socket path)",
        total_points as f64 / dt.as_secs_f64()
    );

    // ---- Teardown: front first, then the engine --------------------------
    let tcp_stats = front.shutdown();
    println!(
        "front served {} connections ({} commands, {} replies, {} refused, {} protocol errors)",
        tcp_stats.connections,
        tcp_stats.commands,
        tcp_stats.replies,
        tcp_stats.refused,
        tcp_stats.protocol_errors
    );
    let stats = handle.close();
    println!("engine closed: {} live sessions holding {} points", stats.sessions, stats.points);

    // ---- The determinism receipt -----------------------------------------
    // Every release that traveled the sockets is a pure function of
    // (seed, session id, that session's points): a 1-shard direct engine
    // reproduces the fleet's output exactly.
    let mut direct =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
    direct.spawn_sessions(0..clients, &spec, horizon, &params).unwrap();
    for (sid, thetas) in &releases {
        assert_eq!(thetas.len(), points_per_client);
        for (t, theta) in thetas.iter().enumerate() {
            let expected = direct.observe(*sid, &synth_point(d, t, *sid)).unwrap();
            assert_eq!(theta, &expected, "session {sid} step {t} diverged");
        }
    }
    println!(
        "determinism check: {} releases from {} concurrent connections are bit-identical \
         to the direct single-threaded engine",
        total_points, clients
    );
}

/// Deterministic covariate stream: ‖x‖ ≤ 0.9 with a planted signal.
fn synth_point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.7;
    x[(t + session as usize) % d] += 0.2;
    let y = (0.8 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}
