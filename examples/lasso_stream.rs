//! High-dimensional private incremental **Lasso**: sparse covariates,
//! L1-ball constraint, and the sketched mechanism (Algorithm 3) whose
//! noise scales with the Gaussian width `W = w(X) + w(C)` — polylog in
//! `d` — instead of `√d`.
//!
//! This is the paper's flagship §5.2 scenario: `d` is large, the
//! covariates are k-sparse, and `C = B₁` (Lasso), so
//! `W ≈ √(k log d) + √(log d) ≪ √d`.
//!
//! ```text
//! cargo run --release --example lasso_stream
//! ```

use private_incremental_regression::prelude::*;

fn main() {
    let d = 600; // high-dimensional
    let k = 3; // covariate sparsity
    let t_max = 512;
    let params = PrivacyParams::approx(2.0, 1e-6).expect("valid privacy parameters");
    let mut rng = NoiseRng::seed_from_u64(7);

    // Sparse ground truth inside the unit L1 ball.
    let theta_star = sparse_theta(d, 2, 0.45, &mut rng);
    let model = LinearModel { theta_star: theta_star.clone(), noise_std: 0.02 };
    let stream = linear_stream(t_max, d, CovariateKind::Sparse { k }, &model, &mut rng);

    // Widths: the quantities Theorem 5.7's bound is built from.
    let domain = KSparseDomain::new(d, k, 1.0);
    let constraint = L1Ball::unit(d);
    let w_x = domain.width_bound();
    let w_c = constraint.width_bound();
    println!("w(X) ≈ {w_x:.2}   w(C) ≈ {w_c:.2}   vs √d = {:.2}", (d as f64).sqrt());

    // Algorithm 3 with the Gordon-rule sketch dimension. The Gordon
    // constant is the one knob the theory leaves free; 0.05 is the value
    // calibrated by experiment E9 in EXPERIMENTS.md.
    let mut mech2 = PrivIncReg2::new(
        Box::new(L1Ball::unit(d)),
        w_x,
        t_max,
        &params,
        &mut rng,
        PrivIncReg2Config { gordon_constant: 0.05, ..Default::default() },
    )
    .expect("valid configuration");
    println!(
        "sketch: m = {} (γ = {:.3}), memory = {} f64s",
        mech2.m(),
        mech2.gamma(),
        mech2.memory_slots()
    );
    let report2 = evaluate_squared_loss(&mut mech2, &stream, Box::new(L1Ball::unit(d)), 64)
        .expect("valid stream");

    // Baseline for context: the trivial mechanism (Algorithm 2 at this d
    // would keep a d²-tree — 600² × 2 levels ≈ 8M doubles — exactly the
    // regime the paper's §5 is designed to avoid).
    let set = L1Ball::unit(d);
    let mut trivial = TrivialMechanism::new(&set);
    let report_triv = evaluate_squared_loss(&mut trivial, &stream, Box::new(L1Ball::unit(d)), 64)
        .expect("valid stream");

    println!();
    println!("{:>6} {:>16} {:>16}", "t", "excess (mech 2)", "excess (trivial)");
    for (r2, rt) in report2.records.iter().zip(&report_triv.records) {
        println!("{:>6} {:>16.4} {:>16.4}", r2.t, r2.excess, rt.excess);
    }
    println!();
    println!("final excess — sketched mechanism : {:.4}", report2.final_excess());
    println!("final excess — trivial baseline   : {:.4}", report_triv.final_excess());

    // Recovered support: top coordinates of the final release.
    let final_theta = {
        // Re-run the last step's estimate from the report by projecting the
        // oracle — for display purposes just print θ* support recovery.
        theta_star
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() > 0.0)
            .map(|(i, v)| format!("θ*[{i}] = {v:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!("true support: {final_theta}");
}
