//! Quickstart: private incremental ridge-style regression on a synthetic
//! stream, with the Definition-1 excess-risk report printed at the end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use private_incremental_regression::prelude::*;

fn main() {
    // Problem setup: d = 8 covariates, stream length T = 512, L2-ball
    // constraint (ridge-style), and an (ε = 2, δ = 1e-6) budget for the
    // entire release sequence.
    let d = 8;
    let t_max = 512;
    let params = PrivacyParams::approx(2.0, 1e-6).expect("valid privacy parameters");
    let mut rng = NoiseRng::seed_from_u64(2024);

    // Ground truth: a dense signal of norm 0.8 plus small label noise.
    let theta_star = sparse_theta(d, d, 0.8, &mut rng);
    let model = LinearModel { theta_star: theta_star.clone(), noise_std: 0.05 };
    let stream =
        linear_stream(t_max, d, CovariateKind::DenseSphere { radius: 0.95 }, &model, &mut rng);

    // The √d mechanism (Algorithm 2 of the paper).
    let mut mech = PrivIncReg1::new(
        Box::new(L2Ball::unit(d)),
        t_max,
        &params,
        &mut rng,
        PrivIncReg1Config::default(),
    )
    .expect("valid mechanism configuration");

    println!("mechanism      : {}", mech.name());
    println!("privacy budget : {params}");
    println!("stream length  : {t_max}, dimension: {d}");
    println!("memory (f64s)  : {}", mech.memory_slots());
    println!();

    // Stream the data; every arrival yields a private estimator. The
    // evaluation harness simultaneously tracks the exact (non-private)
    // minimizer to measure excess empirical risk (Definition 1).
    let report = evaluate_squared_loss(&mut mech, &stream, Box::new(L2Ball::unit(d)), 32)
        .expect("stream satisfies the domain contract");

    println!("{:>6} {:>14} {:>14} {:>12}", "t", "risk(θ_t)", "OPT_t", "excess");
    for r in &report.records {
        println!("{:>6} {:>14.4} {:>14.4} {:>12.4}", r.t, r.risk, r.opt, r.excess);
    }
    println!();
    println!("max excess over stream : {:.4}", report.max_excess());
    println!("final excess           : {:.4}", report.final_excess());
    println!("final OPT              : {:.4}", report.final_opt());

    // For context: the trivial (data-independent) mechanism.
    let set = L2Ball::unit(d);
    let mut trivial = TrivialMechanism::new(&set);
    let trivial_report =
        evaluate_squared_loss(&mut trivial, &stream, Box::new(L2Ball::unit(d)), 512)
            .expect("same stream");
    println!("trivial final excess   : {:.4}", trivial_report.final_excess());
}
