//! Why Algorithm 3 needs Gordon's theorem instead of plain
//! Johnson–Lindenstrauss: an *adaptive* stream can steer covariates using
//! information correlated with the fixed sketch `Φ`, and unconstrained
//! adaptive points can be annihilated (`Φx = 0`, footnote 10 of the
//! paper). Restricting covariates to a low-Gaussian-width domain and
//! sizing `m ≳ w(S)²/γ²` caps the distortion of *every* point of the
//! domain — adaptivity becomes harmless.
//!
//! ```text
//! cargo run --release --example adaptive_adversary
//! ```

use private_incremental_regression::datagen::adaptive;
use private_incremental_regression::prelude::*;

fn main() {
    let d = 200;
    let k = 3; // adversary restricted to 3-sparse covariates
    let mut rng = NoiseRng::seed_from_u64(5);

    let domain = KSparseDomain::new(d, k, 1.0);
    println!("domain: {k}-sparse vectors in R^{d},  w(S) ≲ {:.2}", domain.width_bound());
    println!();
    println!("{:>6} {:>22} {:>26}", "m", "unconstrained attack", "domain-restricted attack");
    println!("{:>6} {:>22} {:>26}", "", "|‖Φx‖²−1| (null space)", "|‖Φx‖²−1| (worst k-sparse)");

    for m in [4usize, 8, 16, 32, 64, 128] {
        let sketch = GaussianSketch::sample(m, d, &mut rng);
        let unconstrained = match adaptive::null_space_direction(&sketch, &mut rng) {
            Some(x) => {
                let px = sketch.apply(&x).expect("dims");
                (private_incremental_regression::linalg::vector::norm2_sq(&px) - 1.0).abs()
            }
            None => 0.0,
        };
        let (_, sparse_dist) = adaptive::worst_sparse_direction(&sketch, k, 80, &mut rng);
        println!("{m:>6} {unconstrained:>22.4} {sparse_dist:>26.4}");
    }

    println!();
    println!(
        "reading: the unconstrained adversary achieves total distortion (≈ 1) at every \
         m < d — JL guarantees evaporate under adaptivity. The domain-restricted \
         adversary's distortion falls with m and is already moderate near \
         m ≈ w(S)² ≈ {:.0}, exactly the Gordon regime Algorithm 3 provisions for.",
        domain.width_bound().powi(2)
    );
}
