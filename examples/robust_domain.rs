//! The §5.2 robustness extension: only a fraction of the stream's
//! covariates come from the low-width (sparse) domain `G`; the rest are
//! dense outliers. The robust mechanism zeroes off-domain points *inside*
//! the private pipeline and retains the Theorem 5.7 guarantee on the
//! `G`-restricted objective with `W = w(G) + w(C)`.
//!
//! ```text
//! cargo run --release --example robust_domain
//! ```

use private_incremental_regression::core::evaluate::{ExcessRiskReport, TimestepRecord};
use private_incremental_regression::core::ExactIncrementalRestricted;
use private_incremental_regression::prelude::*;

fn main() {
    let d = 300;
    let k = 3;
    let t_max = 384;
    let p_off = 0.3; // 30% of covariates are dense outliers
    let params = PrivacyParams::approx(2.0, 1e-6).expect("valid privacy parameters");
    let mut rng = NoiseRng::seed_from_u64(13);

    let theta_star = sparse_theta(d, 2, 0.4, &mut rng);
    let model = LinearModel { theta_star, noise_std: 0.02 };
    let stream = mixture_stream(t_max, d, k, p_off, &model, &mut rng);

    let domain = KSparseDomain::new(d, k, 1.0);
    let oracle_domain = KSparseDomain::new(d, k, 1.0);
    let mut mech = RobustPrivIncReg2::new(
        Box::new(L1Ball::unit(d)),
        domain.width_bound(),
        Box::new(move |x: &[f64]| oracle_domain.contains(x, 1e-9)),
        t_max,
        &params,
        &mut rng,
        PrivIncReg2Config { gordon_constant: 0.05, ..Default::default() },
    )
    .expect("valid configuration");
    println!(
        "robust mechanism: m = {}, w(G) ≈ {:.2} (not w(X) ≈ √d = {:.1})",
        mech.inner().m(),
        domain.width_bound(),
        (d as f64).sqrt()
    );

    // Evaluate on the G-restricted objective (the guarantee's scope):
    // Σ_{x_i ∈ G} (y_i − ⟨x_i, θ⟩)², via a restricted exact oracle.
    let eval_domain = KSparseDomain::new(d, k, 1.0);
    let mut oracle = ExactIncrementalRestricted::new(
        Box::new(L1Ball::unit(d)),
        Box::new(move |x: &[f64]| eval_domain.contains(x, 1e-9)),
    );
    let mut records: Vec<TimestepRecord> = Vec::new();
    for (i, z) in stream.iter().enumerate() {
        let theta = mech.observe(z).expect("valid stream");
        oracle.observe(z).expect("valid stream");
        let t = i + 1;
        if t % 32 == 0 || t == stream.len() {
            let risk = oracle.risk_of(&theta).expect("dims");
            let opt = oracle.opt().expect("dims");
            records.push(TimestepRecord { t, risk, opt, excess: (risk - opt).max(0.0) });
        }
    }
    let report = ExcessRiskReport { mechanism: mech.name(), records };

    println!();
    println!("{:>6} {:>14} {:>14} {:>12}", "t", "risk|G", "OPT|G", "excess|G");
    for r in &report.records {
        println!("{:>6} {:>14.4} {:>14.4} {:>12.4}", r.t, r.risk, r.opt, r.excess);
    }
    println!();
    println!("off-domain points substituted : {}", mech.substituted());
    println!("max G-restricted excess       : {:.4}", report.max_excess());
}
