//! The paper's §1 motivating scenario: a data scientist continuously
//! updates the regression parameter of a linear model built on an ongoing
//! survey, without the updates revealing whether any one person
//! participated. Midway through, the population's behaviour drifts — the
//! incremental estimator must follow.
//!
//! Compares the generic transformation (Mechanism 1, recompute every τ
//! steps) against the tree-mechanism regression (Algorithm 2) on the same
//! drifting stream.
//!
//! ```text
//! cargo run --release --example survey_monitoring
//! ```

use private_incremental_regression::prelude::*;

fn main() {
    let d = 6;
    let t_max = 512;
    let params = PrivacyParams::approx(2.0, 1e-6).expect("valid privacy parameters");
    let mut rng = NoiseRng::seed_from_u64(11);

    // Survey panel: the association between covariates (demographics,
    // usage features, …) and the response flips mid-stream.
    let theta_early = {
        let mut v = vec![0.0; d];
        v[0] = 0.7;
        v
    };
    let theta_late = {
        let mut v = vec![0.0; d];
        v[2] = -0.6;
        v
    };
    let stream = drift_stream(
        t_max,
        d,
        CovariateKind::DenseSphere { radius: 0.95 },
        &theta_early,
        &theta_late,
        t_max / 2,
        0.05,
        &mut rng,
    );

    // Mechanism 1: generic batch→incremental transformation with the
    // Theorem 3.1(1) τ rule and the noisy-GD batch solver.
    let mut generic = PrivIncErm::new(
        Box::new(SquaredLoss),
        Box::new(NoisyGdSolver::default()),
        Box::new(L2Ball::unit(d)),
        t_max,
        &params,
        TauRule::Convex,
        rng.fork(),
    )
    .expect("valid configuration");
    println!(
        "generic transform: τ = {}, {} batch invocations at {}",
        generic.tau(),
        generic.invocations(),
        generic.per_invocation()
    );

    let report_generic =
        evaluate_squared_loss(&mut generic, &stream, Box::new(L2Ball::unit(d)), 32)
            .expect("valid stream");

    // Algorithm 2: per-step releases from the private gradient function.
    let mut mech1 = PrivIncReg1::new(
        Box::new(L2Ball::unit(d)),
        t_max,
        &params,
        &mut rng,
        PrivIncReg1Config::default(),
    )
    .expect("valid configuration");
    let report_mech1 = evaluate_squared_loss(&mut mech1, &stream, Box::new(L2Ball::unit(d)), 32)
        .expect("valid stream");

    println!();
    println!("{:>6} {:>18} {:>18}", "t", "excess (generic)", "excess (tree mech)");
    for (rg, r1) in report_generic.records.iter().zip(&report_mech1.records) {
        println!("{:>6} {:>18.4} {:>18.4}", rg.t, rg.excess, r1.excess);
    }
    println!();
    println!("worst-case excess — generic τ-transform : {:.4}", report_generic.max_excess());
    println!(
        "worst-case excess — tree mechanism      : {:.4}  (Remark 4.3: better at every d,T)",
        report_mech1.max_excess()
    );
    println!();
    println!(
        "note: the drift at t = {} raises OPT_t for both mechanisms — the incremental \
         estimator keeps tracking the risk minimizer of the *history*, which is exactly \
         the summarizer semantics the paper describes.",
        t_max / 2
    );
}
