//! Multi-tenant serving through the pipelined ingestion frontend: one
//! `EngineHandle` drives many concurrent user streams, each with its own
//! mechanism, noise stream, and privacy budget — without the caller ever
//! blocking on mechanism compute.
//!
//! Three tenant tiers share the fleet:
//! - "fast" tenants run `PrivIncReg1` (§4) in a moderate dimension;
//! - "sparse" tenants run the sketched `PrivIncReg2` (§5) over an
//!   `ℓ₁` ball in a higher dimension;
//! - a handful of "audit" tenants run the non-private exact oracle so
//!   operators can eyeball utility side-by-side.
//!
//! The flow is the production shape: `open` commands are pipelined
//! (nobody waits on spawn tickets individually), mixed arrival batches
//! go through `EngineHandle::ingest`, and sessions are `release`d at end
//! of life, reporting their consumed stream and spent budget.
//!
//! Run with `cargo run --release --example multi_tenant`.

use private_incremental_regression::prelude::*;
use std::time::Instant;

fn main() {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let horizon = 64;

    let handle = EngineHandle::new(IngressConfig {
        num_shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4),
        seed: 2024,
        queue_depth: 4096,
    })
    .unwrap();

    // ---- Spawn the fleet -------------------------------------------------
    let d_fast = 8;
    let d_sparse = 64;
    let fast_ids: Vec<u64> = (0..200).collect();
    let sparse_ids: Vec<u64> = (1000..1100).collect();
    let audit_ids: Vec<u64> = (9000..9004).collect();

    let t0 = Instant::now();
    let mut spawns = Vec::new();
    for &id in &fast_ids {
        spawns.push(handle.open(id, &MechanismSpec::reg1_l2(d_fast), horizon, &params).unwrap());
    }
    let sparse_spec = MechanismSpec::Reg2 {
        set: SetSpec::unit_l1(d_sparse),
        domain_width: 3.0,
        config: PrivIncReg2Config { m_override: Some(12), ..Default::default() },
    };
    for &id in &sparse_ids {
        spawns.push(handle.open(id, &sparse_spec, horizon, &params).unwrap());
    }
    let audit_spec = MechanismSpec::ExactOracle { set: SetSpec::unit_l2(d_fast) };
    for &id in &audit_ids {
        spawns.push(handle.open(id, &audit_spec, horizon, &params).unwrap());
    }
    let spawned = spawns.len();
    for t in spawns {
        if let Reply::Err(e) = t.wait() {
            eprintln!("spawn failure: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "spawned {spawned} sessions across {} shards in {:.1?} (queue depths now: {:?})",
        handle.num_shards(),
        t0.elapsed(),
        handle.queue_depths()
    );

    // ---- Serve traffic ---------------------------------------------------
    // Each round interleaves arrivals from every tenant — the mixed batch
    // an ingestion frontier hands the engine. `ingest` groups per session
    // and ships one queue message per shard.
    let mut data_rng = NoiseRng::seed_from_u64(7);
    let rounds = 16;
    let t1 = Instant::now();
    let mut served = 0usize;
    for _round in 0..rounds {
        let mut batch: Vec<(u64, DataPoint)> = Vec::new();
        for &id in &fast_ids {
            batch.push((id, synth_point(d_fast, &mut data_rng)));
        }
        for &id in &sparse_ids {
            batch.push((id, synth_sparse_point(d_sparse, 3, &mut data_rng)));
        }
        for &id in &audit_ids {
            batch.push((id, synth_point(d_fast, &mut data_rng)));
        }
        let out = handle.ingest(batch);
        served += out.len();
        if let Some(err) = out.iter().find_map(|r| r.as_ref().err()) {
            eprintln!("ingest failure: {err}");
            std::process::exit(1);
        }
    }
    let dt = t1.elapsed();
    println!(
        "served {served} points in {dt:.1?} ({:.0} points/sec)",
        served as f64 / dt.as_secs_f64()
    );

    // ---- End-of-life: release a few sessions and read their ledgers ------
    for id in [fast_ids[0], sparse_ids[0], audit_ids[0]] {
        match handle.release_session(id).unwrap().wait() {
            Reply::SessionReleased { session_id, points, epsilon_spent, delta_spent } => {
                println!(
                    "released session {session_id}: t={points} | budget spent \
                     (ε={epsilon_spent:.2}, δ={delta_spent:.1e})"
                );
            }
            other => {
                eprintln!("release failure: {other:?}");
                std::process::exit(1);
            }
        }
    }

    let stats = handle.close();
    println!("closed: {} live sessions holding {} points", stats.sessions, stats.points);
}

/// Dense covariate with ‖x‖ ≤ 0.9 and a planted signal on coordinate 0.
fn synth_point(d: usize, rng: &mut NoiseRng) -> DataPoint {
    let x = rng.unit_sphere(d);
    let x: Vec<f64> = x.iter().map(|v| 0.9 * v).collect();
    let y = (0.8 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}

/// k-sparse covariate with ‖x‖ ≤ 0.9 (the §5 low-width domain).
fn synth_sparse_point(d: usize, k: usize, rng: &mut NoiseRng) -> DataPoint {
    let mut x = vec![0.0; d];
    for _ in 0..k {
        x[rng.uniform_index(d)] = rng.uniform_in(-0.5, 0.5);
    }
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.9 {
        for v in &mut x {
            *v *= 0.9 / norm;
        }
    }
    let y = (0.7 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}
