//! Minimal, offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering exactly the API surface this workspace's property tests
//! use. The build environment has no network access, so the real crate
//! cannot be vendored; this shim keeps the property tests runnable.
//!
//! Differences from real proptest (deliberate simplifications):
//!
//! - Cases are generated from a **deterministic** per-test seed, so runs are
//!   reproducible without a failure-persistence file.
//! - No shrinking: a failing case reports its inputs and panics directly.
//! - Only the strategies used in-tree are provided: numeric ranges,
//!   `any::<u64>()`, `prop::collection::vec`, and `Strategy::prop_map`.

#![forbid(unsafe_code)]
use std::fmt::Debug;
use std::ops::Range;

/// Default number of cases per property (real proptest defaults to 256; we
/// keep the suite fast while still sweeping a meaningful region).
pub const DEFAULT_CASES: u32 = 64;

/// Deterministic split-mix generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator; each `#[test]` derives its seed from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform deviate in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_index: empty range");
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator: the core abstraction of property testing.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the generated value through `f` (mirrors proptest's
    /// `Strategy::prop_map`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range strategy");
        self.start + rng.next_index(self.end - self.start)
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty u64 range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty i64 range strategy");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as i64
    }
}

/// `any::<T>()` marker strategy (full-domain generation).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain strategy for `T` (only the types used in-tree).
pub fn any<T>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Collection strategies under the `prop::` path, mirroring proptest.
pub mod collection_support {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Either a fixed length or a length range for [`vec()`].
    pub trait IntoLenRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.next_index(self.end - self.start)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length spec `L`.
    #[derive(Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, len_or_range)`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L>
    where
        S::Value: Debug,
    {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `proptest::prelude` re-exports tests import with `use ...::*`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// The `prop::` namespace (`prop::collection::vec` et al.).
    pub mod prop {
        /// Collection strategies.
        pub mod collection {
            pub use crate::collection_support::vec;
        }
    }
}

/// Assert inside a property; on failure the runner reports the generated
/// inputs. (No shrinking — this maps to a plain panic.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Cheap compile-time string hash so each test gets a distinct,
/// deterministic seed stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The `proptest!` macro: wraps each property in a `#[test]` that sweeps
/// deterministic generated cases and reports inputs on failure.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! { @impl ($cfg) $( $(#[doc = $doc])* fn $name($($arg in $strat),*) $body )* }
    };
    // Without config.
    (
        $(
            $(#[doc = $doc:expr])*
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()) $( $(#[doc = $doc])* fn $name($($arg in $strat),*) $body )* }
    };
    (@impl ($cfg:expr) $(
        $(#[doc = $doc:expr])*
        fn $name:ident($($arg:ident in $strat:expr),*) $body:block
    )*) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::new($crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))));
                for case in 0..config.cases {
                    $(let $arg = ($strat).generate(&mut rng);)*
                    let desc = format!(
                        concat!("case {}/{}: ", $(stringify!($arg), " = {:?} ",)* ),
                        case + 1, config.cases, $(&$arg),*
                    );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!("proptest shim: property `{}` failed on {}", stringify!($name), desc);
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}
