//! Minimal, offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! bench harness, covering the API surface this workspace's benches use
//! (`benchmark_group`, `bench_with_input`, `bench_function`, `Throughput`,
//! `BenchmarkId`, `iter`). The build environment has no network access, so
//! the real crate cannot be vendored.
//!
//! It is a plain wall-clock timer: per benchmark it warms up, runs
//! `sample_size` timed samples, and prints median/mean per-iteration times
//! (plus derived throughput when declared). No statistical regression
//! analysis, plots, or baselines — swap in real criterion when building
//! with network access for publication-grade numbers.
//!
//! Environment knobs (shim extensions; real criterion has its own CLI):
//!
//! - `CRITERION_JSON=<path>` — append one JSON line per benchmark
//!   (`{"label", "median_ns", "mean_ns", "samples", "iters_per_sample"}`)
//!   to `<path>`, so `BENCH_*.json` perf-trajectory files can be produced
//!   mechanically from a bench run.
//! - `CRITERION_SAMPLE_SIZE=<n>` — override every group's sample count
//!   (CI smoke mode).
//! - `CRITERION_TARGET_MS=<ms>` — per-sample calibration target (default
//!   20 ms; lower it together with the sample size for a quick compile-
//!   and-run rot check).

#![forbid(unsafe_code)]
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup { _parent: self, name, sample_size: 10, throughput: None }
    }

    /// Run a free-standing benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let report = run_bench(id, 10, None, &mut f);
        eprintln!("{report}");
        self
    }
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("d", 64)` → the label `d/64`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Units-of-work declaration used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing sample-count and throughput
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion defaults to 100;
    /// the shim defaults to 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration units of work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure against one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let report = run_bench(&label, self.sample_size, self.throughput, &mut |b| f(b, input));
        eprintln!("{report}");
        self
    }

    /// Benchmark a closure with no input parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let report = run_bench(&label, self.sample_size, self.throughput, &mut f);
        eprintln!("{report}");
        self
    }

    /// Close the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Measurement driver handed to the bench closure.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    target_sample_time: Duration,
    calibrating: bool,
}

impl Bencher {
    /// Time `f`, calling it enough times per sample for a stable reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            // Find an iteration count that makes one sample ≥ target time.
            let mut n: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..n {
                    black_box(f());
                }
                let elapsed = start.elapsed();
                if elapsed >= self.target_sample_time || n >= 1 << 20 {
                    self.iters_per_sample = n;
                    break;
                }
                n = (n * 2).max(1);
            }
            self.calibrating = false;
        }
        let want = self.samples.capacity();
        while self.samples.len() < want {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// `CRITERION_SAMPLE_SIZE` override, if set and parseable.
fn env_sample_size() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE").ok()?.parse().ok()
}

/// Per-sample calibration target: `CRITERION_TARGET_MS` or 20 ms.
fn target_sample_time() -> Duration {
    let ms = std::env::var("CRITERION_TARGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(20);
    Duration::from_millis(ms)
}

/// Append one machine-readable result line to `$CRITERION_JSON`, if set.
fn emit_json(label: &str, median: f64, mean: f64, samples: usize, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let line = format!(
        "{{\"label\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}\n",
        label.replace('\\', "\\\\").replace('"', "\\\""),
        median * 1e9,
        mean * 1e9,
        samples,
        iters
    );
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = appended {
        eprintln!("criterion shim: could not append to CRITERION_JSON={path}: {e}");
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) -> String {
    let sample_size = env_sample_size().unwrap_or(sample_size).max(2);
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        target_sample_time: target_sample_time(),
        calibrating: true,
    };
    f(&mut b);
    let mut per_iter: Vec<f64> =
        b.samples.iter().map(|d| d.as_secs_f64() / b.iters_per_sample as f64).collect();
    per_iter.sort_by(|a, c| a.total_cmp(c));
    let median = if per_iter.is_empty() { f64::NAN } else { per_iter[per_iter.len() / 2] };
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    emit_json(label, median, mean, per_iter.len(), b.iters_per_sample);
    let mut line = format!(
        "{label:<48} median {:>12}  mean {:>12}  ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        per_iter.len(),
        b.iters_per_sample
    );
    if let Some(t) = throughput {
        let (units, suffix) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        if median > 0.0 {
            let _ = write!(line, "  {:.3e} {}", units / median, suffix);
        }
    }
    line
}

fn fmt_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        "n/a".to_string()
    } else if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Collect bench functions into a runnable group (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point expanding to `fn main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
