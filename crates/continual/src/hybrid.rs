//! Hybrid mechanism: continual release without knowing `T` in advance.
//!
//! The paper (footnote 13) notes that Chan et al.'s Hybrid Mechanism lifts
//! the Tree Mechanism's known-horizon requirement with unchanged asymptotic
//! error. We implement the *dyadic-epoch* variant: the stream is cut into
//! epochs `[2^k, 2^{k+1})`; each epoch runs a fresh [`TreeMechanism`] with
//! the full `(ε, δ)` budget over its (known) length `2^k`. Every stream
//! item is consumed by exactly **one** tree, so by parallel composition the
//! whole output sequence remains `(ε, δ)`-DP. The release at time `t` is
//! the sum of the *final* releases of all completed epochs (post-processing
//! of already-private values) plus the current epoch's running release;
//! with `O(log t)` completed epochs the error grows only by a `√log t`
//! factor over the fixed-horizon tree.

use crate::tree::TreeMechanism;
use crate::Result;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_linalg::vector;

/// Unknown-horizon continual sum release built from per-epoch trees.
#[derive(Debug)]
pub struct HybridMechanism {
    dim: usize,
    max_norm: f64,
    params: PrivacyParams,
    rng: NoiseRng,
    /// Sum of final releases of completed epochs.
    completed: Vec<f64>,
    /// Number of completed epochs (epoch `k` has length `2^k`, except
    /// epoch 0 which has length 1).
    epoch: u32,
    current: TreeMechanism,
    t: usize,
}

impl HybridMechanism {
    /// New hybrid mechanism for items with `‖υ‖₂ ≤ max_norm`.
    ///
    /// # Errors
    /// Propagates [`TreeMechanism::new`] validation failures.
    pub fn new(
        dim: usize,
        max_norm: f64,
        params: &PrivacyParams,
        mut rng: NoiseRng,
    ) -> Result<Self> {
        let child = rng.fork();
        let current = TreeMechanism::new(dim, 1, max_norm, params, child)?;
        Ok(HybridMechanism {
            dim,
            max_norm,
            params: *params,
            rng,
            completed: vec![0.0; dim],
            epoch: 0,
            current,
            t: 0,
        })
    }

    /// Stream dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Items consumed so far.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether no items have been consumed.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Consume the next item; returns the private prefix sum `s_t`.
    ///
    /// # Errors
    /// Same item validations as [`TreeMechanism::update`].
    pub fn update(&mut self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.dim];
        self.update_into(v, &mut out)?;
        Ok(out)
    }

    /// [`update`](HybridMechanism::update) writing the release into a
    /// caller-provided buffer — release-for-release identical to it, with
    /// the whole accumulation (epoch banking and the
    /// `completed + current` sum) routed through the tree mechanism's
    /// allocation-free `_into` path. The only steady-state heap traffic
    /// left is the `O(log t)` epoch rollovers, which allocate the next
    /// epoch's tree.
    ///
    /// On error, `out` contents are unspecified (it doubles as the epoch
    /// accumulation scratch).
    ///
    /// # Errors
    /// As [`update`](HybridMechanism::update), plus
    /// [`ContinualError::DimensionMismatch`](crate::ContinualError) if
    /// `out.len() != dim`.
    pub fn update_into(&mut self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if self.current.len() == self.current.t_max() {
            // Epoch complete: bank its final private release and open the
            // next (twice as long) epoch. `out` serves as the banking
            // scratch so the rollover adds no extra allocation.
            self.current.query_into(out)?;
            vector::axpy(1.0, out, &mut self.completed);
            self.epoch += 1;
            let len = 1usize << self.epoch.saturating_sub(1).min(62);
            let child = self.rng.fork();
            self.current = TreeMechanism::new(self.dim, len, self.max_norm, &self.params, child)?;
        }
        self.current.update_into(v, out)?;
        self.t += 1;
        vector::axpy(1.0, &self.completed, out);
        Ok(())
    }

    /// Current private prefix sum (post-processing; no privacy cost).
    pub fn query(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        self.query_into(&mut out).expect("buffer sized to dim");
        out
    }

    /// [`query`](HybridMechanism::query) writing into a caller-provided
    /// buffer; value-for-value identical to it.
    ///
    /// # Errors
    /// [`ContinualError::DimensionMismatch`](crate::ContinualError) if
    /// `out.len() != dim`.
    pub fn query_into(&self, out: &mut [f64]) -> Result<()> {
        self.current.query_into(out)?;
        vector::axpy(1.0, &self.completed, out);
        Ok(())
    }

    /// Error bound at the current time with confidence `1 − β`: the sum of
    /// the completed epochs' final-release bounds plus the current epoch's
    /// bound, each at confidence `β / (#epochs + 1)`.
    pub fn error_bound(&self, beta: f64) -> f64 {
        let parts = self.epoch as f64 + 1.0;
        let beta_each = beta / parts;
        // Completed-epoch trees had lengths 1, 1, 2, 4, …, 2^{epoch-1};
        // bound each by the current tree's noise profile (lengths only
        // shrink σ). A conservative but honest estimate: `parts` times the
        // current epoch's bound.
        parts * self.current.error_bound(beta_each)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PrivacyParams {
        PrivacyParams::approx(1.0, 1e-5).unwrap()
    }

    #[test]
    fn tracks_exact_sums_at_huge_epsilon() {
        // ε → ∞ makes every epoch's tree effectively noiseless.
        let p = PrivacyParams::approx(1e12, 1e-5).unwrap();
        let mut mech = HybridMechanism::new(2, 1.0, &p, NoiseRng::seed_from_u64(3)).unwrap();
        let mut acc = vec![0.0; 2];
        for t in 1..=100usize {
            let v = vec![0.3, -0.2 * ((t % 3) as f64 - 1.0)];
            vector::axpy(1.0, &v, &mut acc);
            let s = mech.update(&v).unwrap();
            assert!(vector::distance(&s, &acc) < 1e-6, "t={t}");
        }
        assert_eq!(mech.len(), 100);
    }

    #[test]
    fn runs_past_any_fixed_horizon() {
        let mut mech = HybridMechanism::new(1, 1.0, &params(), NoiseRng::seed_from_u64(4)).unwrap();
        for _ in 0..1000 {
            mech.update(&[1.0]).unwrap();
        }
        assert_eq!(mech.len(), 1000);
        // Query is a plausible estimate of 1000.
        let q = mech.query()[0];
        let bound = mech.error_bound(0.001);
        assert!((q - 1000.0).abs() <= bound, "q={q}, bound={bound}");
    }

    #[test]
    fn item_validation_propagates() {
        let mut mech = HybridMechanism::new(2, 1.0, &params(), NoiseRng::seed_from_u64(5)).unwrap();
        assert!(mech.update(&[5.0, 0.0]).is_err());
        assert!(mech.update(&[1.0]).is_err());
    }

    #[test]
    fn error_is_within_bound_empirically() {
        let mut mech = HybridMechanism::new(3, 1.0, &params(), NoiseRng::seed_from_u64(6)).unwrap();
        let mut item_rng = NoiseRng::seed_from_u64(7);
        let mut acc = vec![0.0; 3];
        let mut max_ratio: f64 = 0.0;
        for _ in 0..256 {
            let v = item_rng.unit_sphere(3);
            vector::axpy(1.0, &v, &mut acc);
            let s = mech.update(&v).unwrap();
            let err = vector::distance(&s, &acc);
            max_ratio = max_ratio.max(err / mech.error_bound(0.001));
        }
        assert!(max_ratio <= 1.0, "observed error exceeded bound: ratio {max_ratio}");
    }
}
