//! Private streaming bit counter — the original problem of Dwork et al.
//! `[16]` / Chan et al. `[7]` that the Tree Mechanism was designed for,
//! under pure `ε`-differential privacy (Laplace node noise).
//!
//! A stream of bits `b_1, …, b_T ∈ {0, 1}` is counted; at every `t` the
//! mechanism releases `c_t ≈ Σ_{i≤t} b_i` with error
//! `O(log^{3/2}(T) · √log(1/β) / ε)` — the `log^{5/2} T`-style guarantee
//! quoted in the paper's §1.2 (constants differ by the confidence term).
//!
//! Each bit participates in at most `⌈log₂ T⌉ + 1` tree nodes, so adding
//! `Lap(levels/ε)` noise to every node value makes the full output sequence
//! `ε`-DP (L1-sensitivity 1 per node, basic composition across the levels
//! an item touches).

use crate::error::ContinualError;
use crate::Result;
use pir_dp::{NoiseRng, PrivacyParams};

/// Pure-`ε` private counter over a bit stream of known horizon `T`.
#[derive(Debug)]
pub struct PrivateCounter {
    t_max: usize,
    levels: usize,
    /// Per-node Laplace scale `levels / ε`.
    scale: f64,
    t: usize,
    a: Vec<f64>,
    b: Vec<f64>,
    rng: NoiseRng,
}

impl PrivateCounter {
    /// New counter for up to `t_max` bits under `ε`-DP (`δ` is ignored —
    /// the Laplace calibration gives pure DP).
    pub fn new(t_max: usize, params: &PrivacyParams, rng: NoiseRng) -> Self {
        let levels =
            if t_max <= 1 { 1 } else { (usize::BITS - (t_max - 1).leading_zeros()) as usize + 1 };
        PrivateCounter {
            t_max,
            levels,
            scale: levels as f64 / params.epsilon(),
            t: 0,
            a: vec![0.0; levels],
            b: vec![0.0; levels],
            rng,
        }
    }

    /// Bits consumed so far.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether no bits have been consumed.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Consume the next bit; returns the private running count.
    ///
    /// # Errors
    /// [`ContinualError::StreamOverflow`] past the horizon.
    pub fn update(&mut self, bit: bool) -> Result<f64> {
        if self.t >= self.t_max {
            return Err(ContinualError::StreamOverflow { t_max: self.t_max });
        }
        self.t += 1;
        let t = self.t;
        let i = t.trailing_zeros() as usize;
        let mut sum = if bit { 1.0 } else { 0.0 };
        for j in 0..i {
            sum += self.a[j];
            self.a[j] = 0.0;
            self.b[j] = 0.0;
        }
        self.a[i] = sum;
        self.b[i] = sum + self.rng.laplace(self.scale);
        Ok(self.query())
    }

    /// Current private count (post-processing; no privacy cost).
    pub fn query(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.levels {
            if self.t & (1 << j) != 0 {
                s += self.b[j];
            }
        }
        s
    }

    /// High-probability error bound: a sum of at most `levels` independent
    /// `Lap(scale)` variables is within `scale · levels · ln(levels/β)` of
    /// its mean with probability `≥ 1 − β` (union bound over nodes).
    pub fn error_bound(&self, beta: f64) -> f64 {
        debug_assert!(beta > 0.0 && beta < 1.0);
        let l = self.levels as f64;
        self.scale * l * (l / beta).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exactly_at_huge_epsilon() {
        let p = PrivacyParams::new(1e12, 0.0).unwrap();
        let mut c = PrivateCounter::new(64, &p, NoiseRng::seed_from_u64(1));
        let mut truth = 0u32;
        for t in 0..64u32 {
            let bit = t % 3 == 0;
            truth += bit as u32;
            let est = c.update(bit).unwrap();
            assert!((est - truth as f64).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn stays_within_error_bound() {
        let p = PrivacyParams::new(1.0, 0.0).unwrap();
        let mut c = PrivateCounter::new(256, &p, NoiseRng::seed_from_u64(2));
        let bound = c.error_bound(0.001);
        let mut truth = 0.0;
        let mut worst: f64 = 0.0;
        for t in 0..256usize {
            let bit = t % 2 == 0;
            truth += bit as u32 as f64;
            let est = c.update(bit).unwrap();
            worst = worst.max((est - truth).abs());
        }
        assert!(worst <= bound, "worst {worst} > bound {bound}");
        assert!(worst > 0.0, "noise must be present");
    }

    #[test]
    fn overflow_rejected() {
        let p = PrivacyParams::new(1.0, 0.0).unwrap();
        let mut c = PrivateCounter::new(1, &p, NoiseRng::seed_from_u64(3));
        c.update(true).unwrap();
        assert!(matches!(c.update(true), Err(ContinualError::StreamOverflow { .. })));
    }

    #[test]
    fn error_grows_polylog_not_sqrt() {
        let p = PrivacyParams::new(1.0, 0.0).unwrap();
        let small = PrivateCounter::new(1 << 8, &p, NoiseRng::seed_from_u64(4));
        let large = PrivateCounter::new(1 << 16, &p, NoiseRng::seed_from_u64(4));
        let ratio = large.error_bound(0.01) / small.error_bound(0.01);
        // √T scaling would give a 16× ratio; polylog stays far below.
        assert!(ratio < 6.0, "ratio {ratio}");
    }
}
