use pir_dp::DpError;
use std::fmt;

/// Errors produced by the continual-release mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub enum ContinualError {
    /// A stream item had the wrong dimension.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension supplied.
        found: usize,
    },
    /// More than the declared `T` items were pushed into a fixed-horizon
    /// mechanism.
    StreamOverflow {
        /// The declared horizon.
        t_max: usize,
    },
    /// A stream item contained NaN/∞.
    NonFinite,
    /// A stream item violated the declared norm bound (its participation
    /// would invalidate the sensitivity the noise was calibrated for).
    NormBoundViolated {
        /// Declared per-item L2-norm bound.
        bound: f64,
        /// Norm of the offending item.
        found: f64,
    },
    /// A captured mechanism state was rejected on restore (wrong shape,
    /// out-of-range counter, or non-finite sums) — the snapshot bytes do
    /// not describe a state this mechanism could ever have reached.
    InvalidState {
        /// What was wrong.
        reason: String,
    },
    /// An underlying DP-parameter error.
    Dp(DpError),
}

impl fmt::Display for ContinualError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContinualError::DimensionMismatch { expected, found } => {
                write!(f, "stream item dimension mismatch (expected {expected}, found {found})")
            }
            ContinualError::StreamOverflow { t_max } => {
                write!(f, "stream overflow: mechanism was constructed for T = {t_max} items")
            }
            ContinualError::NonFinite => write!(f, "stream item contains NaN/infinite entries"),
            ContinualError::NormBoundViolated { bound, found } => {
                write!(f, "stream item norm {found} exceeds declared bound {bound}")
            }
            ContinualError::InvalidState { reason } => {
                write!(f, "invalid mechanism state: {reason}")
            }
            ContinualError::Dp(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ContinualError {}

impl From<DpError> for ContinualError {
    fn from(e: DpError) -> Self {
        ContinualError::Dp(e)
    }
}
