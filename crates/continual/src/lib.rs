//! # pir-continual
//!
//! Mechanisms for *private continual release* of streaming sums — the
//! substrate the paper's Algorithms 2 and 3 build on.
//!
//! - [`TreeMechanism`] (Algorithm 4 / Appendix C of the paper; Dwork et al.
//!   `[16]`, Chan et al. `[7]`): releases, at every timestep `t ≤ T`, a
//!   noisy prefix sum `s_t ≈ Σ_{i≤t} υ_i` of a stream of `d`-dimensional
//!   vectors, using `O(d log T)` space and per-release error
//!   `O(Δ₂ (√d + √log(1/β)) log^{3/2} T · √log(1/δ) / ε)` (Prop. C.1).
//! - [`HybridMechanism`] (footnote 13; Chan et al.): removes the
//!   known-`T` requirement by running one fresh tree per dyadic epoch;
//!   each item is consumed by exactly one tree, so the privacy guarantee
//!   is unchanged and the error grows by only a `√log t` factor.
//! - [`PrivateCounter`]: the classical binary-counting special case for
//!   bit streams under pure `ε`-DP (Laplace node noise).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod counter;
mod error;
pub mod hybrid;
pub mod tree;

pub use counter::PrivateCounter;
pub use error::ContinualError;
pub use hybrid::HybridMechanism;
pub use tree::{TreeMechanism, TreeState};

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, ContinualError>;
