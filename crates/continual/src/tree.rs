//! The Tree Mechanism for continual private release of vector sums
//! (Algorithm 4 / Appendix C of the paper).
//!
//! The stream `υ_1, …, υ_T ∈ R^d` is laid out at the leaves of a (virtual)
//! binary tree; every internal node stores the partial sum of the leaves
//! below it. Each prefix `[1, t]` decomposes into at most
//! `⌈log₂ T⌉ + 1` dyadic ranges, so the release `s_t` is the sum of that
//! many noisy node values — each perturbed once, when the node completes —
//! and each stream item contributes to at most `⌈log₂ T⌉ + 1` nodes.
//! Calibrating the per-node Gaussian noise to
//! `σ = √2 · log₂(T) · Δ₂ · √(ln(2/δ)) / ε` (the paper's Algorithm 4,
//! Step 8) makes the whole output sequence `(ε, δ)`-DP with respect to a
//! single-item change of the stream.
//!
//! Only the `O(log T)` *active* partial sums are retained, so memory is
//! `O(d log T)` — the property Remark §1.1 highlights.
//!
//! The release `s_t` is additionally maintained *incrementally*: when the
//! node at level `i` completes at time `t`, the prefix decomposition of
//! `t` differs from that of `t − 1` exactly by retiring the trailing-one
//! levels `b_0, …, b_{i−1}` of `t − 1` and adding the new `b_i` — the same
//! `O(log T)` bookkeeping trick the tree-aggregation literature applies to
//! Chan–Shi–Song/Dwork-style continual counters. The update loop already
//! walks those retiring levels, so keeping `s_t` current is amortized
//! `O(d)` per step and [`TreeMechanism::query`] is a plain copy instead of
//! an `O(d · popcount(t))` re-summation. The re-summation survives as
//! [`TreeMechanism::release_resummed`], the debug/test reference.

use crate::error::ContinualError;
use crate::Result;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_linalg::vector;

/// Continual-release Tree Mechanism over `d`-dimensional vector streams.
///
/// ```
/// use pir_continual::TreeMechanism;
/// use pir_dp::{NoiseRng, PrivacyParams};
///
/// let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
/// let mut mech =
///     TreeMechanism::new(2, 8, 1.0, &params, NoiseRng::seed_from_u64(7)).unwrap();
/// // Stream vectors of norm ≤ 1; every update returns a private prefix sum.
/// let s1 = mech.update(&[0.6, 0.0]).unwrap();
/// let s2 = mech.update(&[0.0, 0.6]).unwrap();
/// assert_eq!(s2.len(), 2);
/// // Re-querying is free post-processing and returns the same release.
/// assert_eq!(mech.query(), s2);
/// # let _ = s1;
/// ```
#[derive(Debug)]
pub struct TreeMechanism {
    dim: usize,
    t_max: usize,
    levels: usize,
    /// Per-node Gaussian standard deviation.
    sigma: f64,
    /// Optional per-item L2-norm contract; violations are rejected.
    max_norm: Option<f64>,
    /// Declared L2-sensitivity `Δ₂` of the streaming sum.
    sensitivity: f64,
    /// Items consumed so far (`t`).
    t: usize,
    /// Clean partial sums `a_j` (paper's notation), one per level.
    a: Vec<Vec<f64>>,
    /// Noisy partial sums `b_j`, one per level.
    b: Vec<Vec<f64>>,
    /// Incrementally maintained release `s_t = Σ_{j: bit j of t set} b_j`,
    /// kept current by retiring/adding levels as nodes complete.
    s: Vec<f64>,
    rng: NoiseRng,
}

/// The dynamic state of a [`TreeMechanism`], captured for serialization.
///
/// Everything *not* here — dimension, horizon, `σ`, norm bound,
/// sensitivity — is static configuration reproduced by re-running the
/// constructor, so a snapshot only needs the `O(d log T)` partial sums,
/// the step counter, and the 256-bit noise-generator state. A mechanism
/// that absorbs a captured state continues its noise stream and release
/// sequence bit-identically (the law `tests` pin below and the engine's
/// snapshot suites pin end-to-end).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeState {
    /// Items consumed so far (`t`).
    pub t: usize,
    /// Clean partial sums `a_j`, one row per level (each of length `d`).
    pub a: Vec<Vec<f64>>,
    /// Noisy partial sums `b_j`, same shape as `a`.
    pub b: Vec<Vec<f64>>,
    /// Incrementally maintained release `s_t` (length `d`).
    pub s: Vec<f64>,
    /// xoshiro256++ state of the node-noise generator.
    pub rng: [u64; 4],
}

/// `⌈log₂ T⌉ + 1`, the number of tree levels (and the maximum number of
/// dyadic ranges in a prefix decomposition).
fn levels_for(t_max: usize) -> usize {
    if t_max <= 1 {
        1
    } else {
        (usize::BITS - (t_max - 1).leading_zeros()) as usize + 1
    }
}

impl TreeMechanism {
    /// Tree Mechanism with the paper's noise calibration for a stream whose
    /// items satisfy `‖υ_t‖₂ ≤ max_norm` (enforced on every update). Under
    /// replacement neighbors the streaming sum then has L2-sensitivity
    /// `Δ₂ = 2·max_norm`.
    ///
    /// # Errors
    /// [`ContinualError::Dp`] for invalid privacy parameters (the Gaussian
    /// calibration needs `δ > 0`) or a non-positive `max_norm`.
    pub fn new(
        dim: usize,
        t_max: usize,
        max_norm: f64,
        params: &PrivacyParams,
        rng: NoiseRng,
    ) -> Result<Self> {
        if !(max_norm.is_finite() && max_norm > 0.0) {
            return Err(ContinualError::Dp(pir_dp::DpError::InvalidSensitivity {
                value: max_norm,
            }));
        }
        let mut mech = Self::with_sensitivity(dim, t_max, 2.0 * max_norm, params, rng)?;
        mech.max_norm = Some(max_norm);
        Ok(mech)
    }

    /// Tree Mechanism from an explicit L2-sensitivity `Δ₂` of the streaming
    /// sum (the paper's `TREEMECH(ε, δ, Δ₂)` signature). No per-item norm
    /// enforcement is performed — the sensitivity contract is the caller's.
    ///
    /// Per-node noise is `σ = √2 · max(1, log₂ T) · Δ₂ · √(ln(2/δ)) / ε`,
    /// i.e. the standard deviation of the paper's
    /// `N(0, 2 log₂²(T) Δ₂² ln(2/δ)/ε² · I_d)` node perturbation.
    ///
    /// # Errors
    /// [`ContinualError::Dp`] on invalid `Δ₂` or privacy parameters.
    pub fn with_sensitivity(
        dim: usize,
        t_max: usize,
        sensitivity: f64,
        params: &PrivacyParams,
        rng: NoiseRng,
    ) -> Result<Self> {
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(ContinualError::Dp(pir_dp::DpError::InvalidSensitivity {
                value: sensitivity,
            }));
        }
        if params.delta() == 0.0 {
            return Err(ContinualError::Dp(pir_dp::DpError::InvalidParams {
                reason: "the Gaussian tree mechanism requires delta > 0".to_string(),
            }));
        }
        let log_t = (t_max.max(2) as f64).log2().max(1.0);
        let sigma = (2.0f64).sqrt() * log_t * sensitivity * (2.0 / params.delta()).ln().sqrt()
            / params.epsilon();
        Ok(Self::with_sigma_and_sensitivity(dim, t_max, sigma, sensitivity, rng))
    }

    /// Tree Mechanism with explicit per-node noise `σ` — the raw knob used
    /// by tests and ablations. `σ = 0` gives exact (non-private) prefix
    /// sums, the noiseless limit property tests rely on.
    pub fn with_sigma(dim: usize, t_max: usize, sigma: f64, rng: NoiseRng) -> Self {
        Self::with_sigma_and_sensitivity(dim, t_max, sigma, 0.0, rng)
    }

    fn with_sigma_and_sensitivity(
        dim: usize,
        t_max: usize,
        sigma: f64,
        sensitivity: f64,
        rng: NoiseRng,
    ) -> Self {
        let levels = levels_for(t_max);
        TreeMechanism {
            dim,
            t_max,
            levels,
            sigma,
            max_norm: None,
            sensitivity,
            t: 0,
            a: vec![vec![0.0; dim]; levels],
            b: vec![vec![0.0; dim]; levels],
            s: vec![0.0; dim],
            rng,
        }
    }

    /// Stream dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Declared horizon `T`.
    pub fn t_max(&self) -> usize {
        self.t_max
    }

    /// Items consumed so far.
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether no items have been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }

    /// Per-node noise standard deviation in use.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Number of tree levels `⌈log₂ T⌉ + 1`.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Consume the next stream item and return the private prefix sum
    /// `s_t ≈ Σ_{i ≤ t} υ_i`.
    ///
    /// # Errors
    /// Rejects wrong-dimension, non-finite, over-horizon, and (when
    /// constructed via [`TreeMechanism::new`]) norm-violating items.
    pub fn update(&mut self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.dim];
        self.update_into(v, &mut out)?;
        Ok(out)
    }

    /// [`update`](TreeMechanism::update) writing the release into a
    /// caller-provided buffer — the allocation-free primitive every
    /// allocating entry point wraps, and release-for-release identical to
    /// it. This is what lets `pir-core`'s mechanisms (and through them the
    /// engine's steady-state observe path) consume a stream item without
    /// touching the heap.
    ///
    /// On error, `out` is untouched.
    ///
    /// ```
    /// use pir_continual::TreeMechanism;
    /// use pir_dp::NoiseRng;
    ///
    /// let mut mech = TreeMechanism::with_sigma(2, 8, 0.0, NoiseRng::seed_from_u64(7));
    /// let mut release = vec![0.0; 2];
    /// mech.update_into(&[0.5, 0.25], &mut release).unwrap();
    /// assert_eq!(release, vec![0.5, 0.25]);
    /// mech.update_into(&[0.5, 0.0], &mut release).unwrap();
    /// assert_eq!(release, vec![1.0, 0.25]);
    /// ```
    ///
    /// # Errors
    /// As [`update`](TreeMechanism::update), plus
    /// [`ContinualError::DimensionMismatch`] if `out.len() != dim`.
    pub fn update_into(&mut self, v: &[f64], out: &mut [f64]) -> Result<()> {
        self.validate_item(v)?;
        if out.len() != self.dim {
            return Err(ContinualError::DimensionMismatch { expected: self.dim, found: out.len() });
        }
        if self.t >= self.t_max {
            return Err(ContinualError::StreamOverflow { t_max: self.t_max });
        }
        self.update_unchecked_into(v, out);
        Ok(())
    }

    /// Consume a run of consecutive stream items, returning one private
    /// prefix-sum release per item — release-for-release identical to
    /// calling [`update`](TreeMechanism::update) in a loop (node noise is
    /// drawn in the same order), but with the contract checks hoisted out
    /// of the hot loop: the whole batch is validated (dimensions, finiteness,
    /// norm bound, horizon) before any node is touched, so a bad batch is
    /// rejected atomically without consuming stream capacity.
    ///
    /// This is the amortized entry point the `observe_batch` overrides in
    /// `pir-core` drive.
    ///
    /// # Errors
    /// Same conditions as [`update`](TreeMechanism::update); additionally
    /// [`ContinualError::StreamOverflow`] when the batch as a whole would
    /// exceed the horizon.
    pub fn update_batch(&mut self, items: &[&[f64]]) -> Result<Vec<Vec<f64>>> {
        let mut flat = vec![0.0; items.len() * self.dim];
        self.update_batch_into(items, &mut flat)?;
        Ok((0..items.len()).map(|i| flat[i * self.dim..(i + 1) * self.dim].to_vec()).collect())
    }

    /// [`update_batch`](TreeMechanism::update_batch) writing the releases
    /// into one flat row-major buffer (`items.len() × dim`) — the
    /// allocation-free primitive the allocating method wraps, with the
    /// same atomic-rejection contract. Release `i` lands in
    /// `out[i*dim..(i+1)*dim]`.
    ///
    /// On error, `out` is untouched.
    ///
    /// # Errors
    /// As [`update_batch`](TreeMechanism::update_batch), plus
    /// [`ContinualError::DimensionMismatch`] if
    /// `out.len() != items.len() * dim`.
    pub fn update_batch_into(&mut self, items: &[&[f64]], out: &mut [f64]) -> Result<()> {
        for v in items {
            self.validate_item(v)?;
        }
        if out.len() != items.len() * self.dim {
            return Err(ContinualError::DimensionMismatch {
                expected: items.len() * self.dim,
                found: out.len(),
            });
        }
        if self.t + items.len() > self.t_max {
            return Err(ContinualError::StreamOverflow { t_max: self.t_max });
        }
        for (i, v) in items.iter().enumerate() {
            self.update_unchecked_into(v, &mut out[i * self.dim..(i + 1) * self.dim]);
        }
        Ok(())
    }

    fn validate_item(&self, v: &[f64]) -> Result<()> {
        if v.len() != self.dim {
            return Err(ContinualError::DimensionMismatch { expected: self.dim, found: v.len() });
        }
        if !vector::is_finite(v) {
            return Err(ContinualError::NonFinite);
        }
        if let Some(bound) = self.max_norm {
            let n = vector::norm2(v);
            if n > bound * (1.0 + 1e-9) {
                return Err(ContinualError::NormBoundViolated { bound, found: n });
            }
        }
        Ok(())
    }

    /// One node-update step with all contract checks already done; the
    /// release is written into `out` (length pre-validated).
    fn update_unchecked_into(&mut self, v: &[f64], out: &mut [f64]) {
        self.advance_unchecked(v);
        out.copy_from_slice(&self.s);
    }

    /// One node-update step with all contract checks already done,
    /// maintaining the release in place without the `s → out` copy — the
    /// primitive both [`update_unchecked_into`](Self::update_unchecked_into)
    /// and the copy-free [`update_ref`](TreeMechanism::update_ref) wrap.
    fn advance_unchecked(&mut self, v: &[f64]) {
        self.t += 1;
        let t = self.t;
        // i ← index of the lowest set bit of t (paper Step 3).
        let i = t.trailing_zeros() as usize;
        debug_assert!(i < self.levels, "bit index exceeds tree height");
        // a_i ← Σ_{j<i} a_j + υ_t (paper Step 4) in one fused sweep over
        // a_i (bit-identical to the sequential per-level axpys — see
        // `vector::axpy_n`, which takes the `Vec<f64>` level rows
        // directly, so the common `i ∈ {0, 1}` steps touch nothing but
        // the rows themselves); then zero the consumed levels.
        let (low, high) = self.a.split_at_mut(i);
        let ai = &mut high[0];
        ai.copy_from_slice(v);
        vector::axpy_n(1.0, low, ai);
        for aj in low.iter_mut() {
            aj.iter_mut().for_each(|x| *x = 0.0);
        }
        // Levels 0..i are exactly the trailing-one levels of t−1: their
        // noisy nodes leave the prefix decomposition now. Retire them all
        // from the maintained release in one fused sweep, then zero them.
        vector::axpy_n(-1.0, &self.b[..i], &mut self.s);
        for bj in self.b.iter_mut().take(i) {
            bj.iter_mut().for_each(|x| *x = 0.0);
        }
        // b_i ← a_i + N(0, σ² I) (paper Step 8). Noise lands in b_i first
        // via the slice-filling sampler; adding a_i after is elementwise
        // commutative, so the distribution (and determinism) are unchanged.
        if self.sigma > 0.0 {
            self.rng.fill_gaussian(&mut self.b[i], self.sigma);
            vector::axpy(1.0, &self.a[i], &mut self.b[i]);
        } else {
            self.b[i].copy_from_slice(&self.a[i]);
        }
        // Bit i of t is set (t has i trailing zeros): the fresh node joins
        // the decomposition, completing s_{t-1} → s_t in amortized O(d).
        vector::axpy(1.0, &self.b[i], &mut self.s);
        self.debug_check_against_resummed();
    }

    /// [`update_into`](TreeMechanism::update_into) returning a borrow of
    /// the maintained release instead of copying it out — the copy-free
    /// primitive the batch-amortized `observe_batch` paths in `pir-core`
    /// drive: the mechanism reads the private prefix sum exactly where it
    /// is maintained, saving an `O(d)` (or `O(d²)`, for matrix-shaped
    /// streams) copy per point. Release-for-release identical to
    /// [`update`](TreeMechanism::update).
    ///
    /// # Errors
    /// As [`update`](TreeMechanism::update).
    pub fn update_ref(&mut self, v: &[f64]) -> Result<&[f64]> {
        self.validate_item(v)?;
        if self.t >= self.t_max {
            return Err(ContinualError::StreamOverflow { t_max: self.t_max });
        }
        self.advance_unchecked(v);
        Ok(&self.s)
    }

    /// Borrow the maintained release `s_t` without copying — the
    /// query-side counterpart of [`update_ref`](TreeMechanism::update_ref)
    /// (pure post-processing, like [`query`](TreeMechanism::query)).
    pub fn release_view(&self) -> &[f64] {
        &self.s
    }

    /// Debug-build invariant: the incrementally maintained release agrees
    /// with the level re-summation reference up to floating-point drift.
    /// Allocation-free (coordinate-wise re-summation) so the steady-state
    /// allocation audit holds in debug builds too.
    #[inline]
    fn debug_check_against_resummed(&self) {
        #[cfg(debug_assertions)]
        for k in 0..self.dim {
            let mut reference = 0.0;
            let mut scale = 1.0f64;
            for j in 0..self.levels {
                if self.t & (1 << j) != 0 {
                    reference += self.b[j][k];
                    scale = scale.max(self.b[j][k].abs());
                }
            }
            // Drift per step is O(ε_machine · ‖b‖); scale the tolerance by
            // the magnitude of the active nodes so large-σ trees don't trip
            // it spuriously.
            debug_assert!(
                (reference - self.s[k]).abs() <= 1e-9 * scale.max(reference.abs()),
                "incremental release diverged from re-summation at t={}, coord {k}: {} vs {reference}",
                self.t,
                self.s[k]
            );
        }
    }

    /// Current private prefix sum `s_t` (pure post-processing; free of
    /// privacy cost). A copy of the incrementally maintained release — `O(d)`
    /// regardless of `popcount(t)`. Returns the zero vector before any
    /// update.
    pub fn query(&self) -> Vec<f64> {
        self.s.clone()
    }

    /// [`query`](TreeMechanism::query) writing into a caller-provided
    /// buffer; value-for-value identical to it.
    ///
    /// # Errors
    /// [`ContinualError::DimensionMismatch`] if `out.len() != dim`.
    pub fn query_into(&self, out: &mut [f64]) -> Result<()> {
        if out.len() != self.dim {
            return Err(ContinualError::DimensionMismatch { expected: self.dim, found: out.len() });
        }
        self.query_unchecked_into(out);
        Ok(())
    }

    fn query_unchecked_into(&self, out: &mut [f64]) {
        out.copy_from_slice(&self.s);
    }

    /// The pre-incremental release computation: re-sum the noisy partial
    /// sums of the `popcount(t)` levels in the prefix decomposition of `t`.
    /// Kept as the `O(d · popcount(t))` reference that the maintained
    /// release is checked against (debug builds assert agreement on every
    /// update; `tests/incremental_release.rs` pins it property-style).
    pub fn release_resummed(&self) -> Vec<f64> {
        let mut s = vec![0.0; self.dim];
        let t = self.t;
        for j in 0..self.levels {
            if t & (1 << j) != 0 {
                vector::axpy(1.0, &self.b[j], &mut s);
            }
        }
        s
    }

    /// Proposition C.1 error bound: with probability at least `1 − β`,
    /// `‖s_t − Σ υ_i‖ ≤ σ √(levels) (√d + √(2 ln(1/β)))` — at most
    /// `levels` noisy nodes enter any release, each `N(0, σ² I_d)`.
    pub fn error_bound(&self, beta: f64) -> f64 {
        debug_assert!(beta > 0.0 && beta < 1.0);
        self.sigma
            * (self.levels as f64).sqrt()
            * ((self.dim as f64).sqrt() + (2.0 * (1.0 / beta).ln()).sqrt())
    }

    /// Declared L2-sensitivity `Δ₂` (0 when constructed via `with_sigma`).
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// Approximate resident memory in `f64` slots (`2 · levels · d` for the
    /// partial sums plus `d` for the maintained release): the `O(d log T)`
    /// space claim of Appendix C.
    pub fn memory_slots(&self) -> usize {
        2 * self.levels * self.dim + self.dim
    }

    /// Capture the dynamic state (step counter, partial sums, maintained
    /// release, noise-generator state) for serialization. Pair with
    /// [`restore_state`](TreeMechanism::restore_state).
    pub fn export_state(&self) -> TreeState {
        TreeState {
            t: self.t,
            a: self.a.clone(),
            b: self.b.clone(),
            s: self.s.clone(),
            rng: self.rng.state(),
        }
    }

    /// Overwrite this mechanism's dynamic state with a previously captured
    /// one. The mechanism must have been constructed with the same static
    /// configuration (dimension, horizon — hence levels) as the one the
    /// state came from; afterwards its releases and noise stream continue
    /// bit-identically from the captured point.
    ///
    /// On error, the mechanism is untouched.
    ///
    /// # Errors
    /// [`ContinualError::InvalidState`] if the shapes don't match this
    /// mechanism's `(levels, dim)`, `t` exceeds the horizon, or any partial
    /// sum is non-finite.
    pub fn restore_state(&mut self, state: &TreeState) -> Result<()> {
        if state.t > self.t_max {
            return Err(ContinualError::InvalidState {
                reason: format!("t = {} exceeds horizon T = {}", state.t, self.t_max),
            });
        }
        if state.a.len() != self.levels || state.b.len() != self.levels {
            return Err(ContinualError::InvalidState {
                reason: format!(
                    "level count mismatch (expected {}, found a: {}, b: {})",
                    self.levels,
                    state.a.len(),
                    state.b.len()
                ),
            });
        }
        if state.s.len() != self.dim {
            return Err(ContinualError::InvalidState {
                reason: format!(
                    "release dimension mismatch (expected {}, found {})",
                    self.dim,
                    state.s.len()
                ),
            });
        }
        for (label, rows) in [("a", &state.a), ("b", &state.b)] {
            for (j, row) in rows.iter().enumerate() {
                if row.len() != self.dim {
                    return Err(ContinualError::InvalidState {
                        reason: format!(
                            "{label}[{j}] dimension mismatch (expected {}, found {})",
                            self.dim,
                            row.len()
                        ),
                    });
                }
                if !vector::is_finite(row) {
                    return Err(ContinualError::InvalidState {
                        reason: format!("{label}[{j}] contains NaN/infinite entries"),
                    });
                }
            }
        }
        if !vector::is_finite(&state.s) {
            return Err(ContinualError::InvalidState {
                reason: "maintained release contains NaN/infinite entries".to_string(),
            });
        }
        self.t = state.t;
        for (dst, src) in self.a.iter_mut().zip(&state.a) {
            dst.copy_from_slice(src);
        }
        for (dst, src) in self.b.iter_mut().zip(&state.b) {
            dst.copy_from_slice(src);
        }
        self.s.copy_from_slice(&state.s);
        self.rng = NoiseRng::from_state(state.rng);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> NoiseRng {
        NoiseRng::seed_from_u64(1234)
    }

    fn params() -> PrivacyParams {
        PrivacyParams::approx(1.0, 1e-5).unwrap()
    }

    #[test]
    fn levels_formula() {
        assert_eq!(levels_for(1), 1);
        assert_eq!(levels_for(2), 2);
        assert_eq!(levels_for(3), 3);
        assert_eq!(levels_for(4), 3);
        assert_eq!(levels_for(8), 4);
        assert_eq!(levels_for(9), 5);
        assert_eq!(levels_for(1024), 11);
    }

    #[test]
    fn noiseless_tree_returns_exact_prefix_sums() {
        let mut mech = TreeMechanism::with_sigma(3, 16, 0.0, rng());
        let mut acc = vec![0.0; 3];
        for t in 1..=16usize {
            let v = vec![t as f64, -(t as f64), 0.5];
            vector::axpy(1.0, &v, &mut acc);
            let s = mech.update(&v).unwrap();
            assert!(vector::distance(&s, &acc) < 1e-9, "t={t}");
            // query() agrees with the update's return value.
            assert!(vector::distance(&mech.query(), &s) < 1e-12);
        }
    }

    #[test]
    fn noisy_tree_error_stays_within_bound() {
        let mut mech = TreeMechanism::new(4, 64, 1.0, &params(), rng()).unwrap();
        let bound = mech.error_bound(0.001);
        let mut acc = vec![0.0; 4];
        let mut max_err: f64 = 0.0;
        let mut item_rng = NoiseRng::seed_from_u64(7);
        for _ in 0..64 {
            let v = item_rng.unit_sphere(4);
            vector::axpy(1.0, &v, &mut acc);
            let s = mech.update(&v).unwrap();
            max_err = max_err.max(vector::distance(&s, &acc));
        }
        assert!(max_err <= bound, "max_err {max_err} > bound {bound}");
        assert!(max_err > 0.0, "noise should actually be injected");
    }

    #[test]
    fn update_validations() {
        let mut mech = TreeMechanism::new(2, 2, 1.0, &params(), rng()).unwrap();
        assert!(matches!(mech.update(&[1.0]), Err(ContinualError::DimensionMismatch { .. })));
        assert!(matches!(mech.update(&[f64::NAN, 0.0]), Err(ContinualError::NonFinite)));
        assert!(matches!(
            mech.update(&[3.0, 4.0]), // norm 5 > 1
            Err(ContinualError::NormBoundViolated { .. })
        ));
        mech.update(&[0.6, 0.0]).unwrap();
        mech.update(&[0.0, 0.6]).unwrap();
        assert!(matches!(mech.update(&[0.1, 0.1]), Err(ContinualError::StreamOverflow { .. })));
    }

    #[test]
    fn constructor_validations() {
        assert!(TreeMechanism::new(2, 8, 0.0, &params(), rng()).is_err());
        assert!(TreeMechanism::with_sensitivity(2, 8, -1.0, &params(), rng()).is_err());
        let pure = PrivacyParams::new(1.0, 0.0).unwrap();
        assert!(TreeMechanism::with_sensitivity(2, 8, 1.0, &pure, rng()).is_err());
    }

    #[test]
    fn sigma_matches_paper_formula() {
        let p = params();
        let mech = TreeMechanism::with_sensitivity(1, 1024, 2.0, &p, rng()).unwrap();
        let expect = (2.0f64).sqrt() * 10.0 * 2.0 * (2.0f64 / 1e-5).ln().sqrt() / 1.0;
        assert!((mech.sigma() - expect).abs() < 1e-9);
    }

    #[test]
    fn memory_is_logarithmic_in_t() {
        let m1 = TreeMechanism::with_sigma(10, 1 << 10, 0.0, rng());
        let m2 = TreeMechanism::with_sigma(10, 1 << 20, 0.0, rng());
        // Doubling the exponent roughly doubles (not squares) the footprint.
        assert!(m2.memory_slots() <= 2 * m1.memory_slots() + 2 * 10);
    }

    #[test]
    fn noise_reuse_is_consistent_across_queries() {
        // Repeated query() calls must return the *same* release (noise is
        // attached to nodes, not redrawn per query) — otherwise averaging
        // queries would wash out the privacy noise.
        let mut mech = TreeMechanism::new(2, 8, 1.0, &params(), rng()).unwrap();
        mech.update(&[0.5, 0.5]).unwrap();
        let q1 = mech.query();
        let q2 = mech.query();
        assert_eq!(q1, q2);
    }

    #[test]
    fn maintained_release_agrees_with_resummation() {
        let mut mech = TreeMechanism::new(3, 64, 1.0, &params(), rng()).unwrap();
        let mut item_rng = NoiseRng::seed_from_u64(11);
        let mut v = vec![0.0; 3];
        for t in 1..=64usize {
            item_rng.unit_sphere_into(&mut v);
            let s = mech.update(&v).unwrap();
            let reference = mech.release_resummed();
            let scale = reference.iter().fold(1.0f64, |m, x| m.max(x.abs()));
            for (a, b) in s.iter().zip(&reference) {
                assert!((a - b).abs() <= 1e-9 * scale, "t={t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn t_equal_one_horizon() {
        let mut mech = TreeMechanism::with_sigma(1, 1, 0.0, rng());
        let s = mech.update(&[5.0]).unwrap();
        assert_eq!(s, vec![5.0]);
        assert!(mech.update(&[1.0]).is_err());
    }

    #[test]
    fn export_restore_continues_bit_identically() {
        // Run a live tree and a restored clone side by side from an
        // arbitrary mid-stream point (odd t, so several levels are active):
        // every future release must match bit-for-bit.
        let mut live = TreeMechanism::new(3, 64, 1.0, &params(), rng()).unwrap();
        let mut item_rng = NoiseRng::seed_from_u64(55);
        for _ in 0..21 {
            live.update(&item_rng.unit_sphere(3)).unwrap();
        }
        let state = live.export_state();
        let mut restored = TreeMechanism::new(3, 64, 1.0, &params(), rng()).unwrap();
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.len(), 21);
        assert_eq!(restored.query(), live.query());
        for _ in 21..64 {
            let v = item_rng.unit_sphere(3);
            assert_eq!(live.update(&v).unwrap(), restored.update(&v).unwrap());
        }
    }

    #[test]
    fn restore_rejects_malformed_state() {
        let mech = TreeMechanism::new(2, 8, 1.0, &params(), rng()).unwrap();
        let good = mech.export_state();
        let fresh = || TreeMechanism::new(2, 8, 1.0, &params(), rng()).unwrap();

        let mut s = good.clone();
        s.t = 9; // past the horizon
        assert!(matches!(fresh().restore_state(&s), Err(ContinualError::InvalidState { .. })));

        let mut s = good.clone();
        s.a.pop();
        assert!(matches!(fresh().restore_state(&s), Err(ContinualError::InvalidState { .. })));

        let mut s = good.clone();
        s.b[0] = vec![0.0; 3]; // wrong dim
        assert!(matches!(fresh().restore_state(&s), Err(ContinualError::InvalidState { .. })));

        let mut s = good.clone();
        s.s[0] = f64::NAN;
        assert!(matches!(fresh().restore_state(&s), Err(ContinualError::InvalidState { .. })));

        // A failed restore leaves the mechanism usable.
        let mut m = fresh();
        let mut s = good.clone();
        s.t = 100;
        assert!(m.restore_state(&s).is_err());
        assert_eq!(m.len(), 0);
        m.update(&[0.5, 0.0]).unwrap();
    }

    #[test]
    fn error_bound_grows_polylog_in_t() {
        let p = params();
        let m_small = TreeMechanism::with_sensitivity(4, 1 << 6, 2.0, &p, rng()).unwrap();
        let m_large = TreeMechanism::with_sensitivity(4, 1 << 12, 2.0, &p, rng()).unwrap();
        let ratio = m_large.error_bound(0.01) / m_small.error_bound(0.01);
        // log^{3/2} scaling: (12/6)^{3/2} ≈ 2.83 ≪ (2^12/2^6)^{1/2} = 8.
        assert!(ratio < 4.0, "ratio {ratio}");
        assert!(ratio > 1.5, "ratio {ratio}");
    }
}
