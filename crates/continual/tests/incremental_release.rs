//! The incremental-release law: the maintained `s_t` that
//! [`TreeMechanism::update`] returns (and `query` copies) must agree with
//! the `O(d · popcount(t))` level re-summation reference
//! ([`TreeMechanism::release_resummed`]) at **every** `t` — across random
//! streams, noise scales, and horizons. Agreement is up to floating-point
//! drift only: retiring a level subtracts the exact `b_j` that was added,
//! so the two paths differ by re-association, never by value.

use pir_continual::TreeMechanism;
use pir_dp::{NoiseRng, PrivacyParams};
use proptest::prelude::*;

/// Assert coordinate-wise agreement with a tolerance scaled to the active
/// nodes' magnitude (large σ inflates `b_j` without inflating the paper's
/// release, so an absolute tolerance would be wrong on both sides).
fn assert_matches_reference(mech: &TreeMechanism, maintained: &[f64], t: usize) {
    let reference = mech.release_resummed();
    let scale = reference.iter().chain(maintained).fold(1.0f64, |m, x| m.max(x.abs()))
        * mech.sigma().max(1.0);
    for (k, (r, m)) in reference.iter().zip(maintained).enumerate() {
        assert!((r - m).abs() <= 1e-9 * scale, "t={t} coord {k}: maintained {m} vs resummed {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_release_equals_resummation(
        seed in any::<u64>(),
        d in 1usize..8,
        log_t in 1usize..7,
        sigma in 0.0f64..50.0,
    ) {
        let t_max = 1usize << log_t;
        let mut mech = TreeMechanism::with_sigma(d, t_max, sigma, NoiseRng::seed_from_u64(seed));
        let mut item_rng = NoiseRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        let mut release = vec![0.0; d];
        for t in 1..=t_max {
            let v: Vec<f64> = (0..d).map(|_| item_rng.uniform_in(-1.0, 1.0)).collect();
            mech.update_into(&v, &mut release).unwrap();
            assert_matches_reference(&mech, &release, t);
            // query() is the same maintained vector.
            prop_assert_eq!(mech.query(), release.clone());
        }
    }

    #[test]
    fn incremental_release_equals_resummation_private_calibration(
        seed in any::<u64>(),
        log_t in 2usize..6,
    ) {
        // Same law through the paper-calibrated constructor (norm-bounded
        // items, σ from (ε, δ)) — σ here is orders of magnitude larger than
        // the signal, which is exactly where naive tolerance choices break.
        let p = PrivacyParams::approx(0.5, 1e-7).unwrap();
        let d = 3;
        let t_max = 1usize << log_t;
        let mut mech =
            TreeMechanism::new(d, t_max, 1.0, &p, NoiseRng::seed_from_u64(seed)).unwrap();
        let mut item_rng = NoiseRng::seed_from_u64(seed ^ 0xC3C3_3C3C);
        let mut v = vec![0.0; d];
        for t in 1..=t_max {
            item_rng.unit_sphere_into(&mut v);
            let release = mech.update(&v).unwrap();
            assert_matches_reference(&mech, &release, t);
        }
    }
}

/// Long-stream drift check: 4096 updates cross every retire pattern up to
/// 12 trailing ones; the maintained release must not accumulate visible
/// floating-point drift relative to re-summation.
#[test]
fn no_visible_drift_over_long_streams() {
    let mut mech = TreeMechanism::with_sigma(2, 1 << 12, 25.0, NoiseRng::seed_from_u64(99));
    let mut item_rng = NoiseRng::seed_from_u64(100);
    let mut release = vec![0.0; 2];
    for t in 1..=(1usize << 12) {
        let v = [item_rng.uniform_in(-1.0, 1.0), item_rng.uniform_in(-1.0, 1.0)];
        mech.update_into(&v, &mut release).unwrap();
        assert_matches_reference(&mech, &release, t);
    }
}
