//! Property tests for continual-release mechanisms.

use pir_continual::{HybridMechanism, TreeMechanism};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_linalg::vector;
use proptest::prelude::*;

proptest! {
    /// The noiseless tree is an exact streaming-sum data structure for any
    /// stream content and any horizon.
    #[test]
    fn noiseless_tree_exact_for_arbitrary_streams(
        items in prop::collection::vec(prop::collection::vec(-5.0f64..5.0, 3), 1..70),
    ) {
        let mut mech = TreeMechanism::with_sigma(3, items.len(), 0.0, NoiseRng::seed_from_u64(0));
        let mut acc = vec![0.0; 3];
        for v in &items {
            vector::axpy(1.0, v, &mut acc);
            let s = mech.update(v).unwrap();
            prop_assert!(vector::distance(&s, &acc) < 1e-8);
        }
    }

    /// Each release touches at most ⌈log₂T⌉+1 noisy nodes: empirically the
    /// noisy release differs from the exact one by at most the analytic
    /// bound at β=1e-4 (checked across random streams/seeds).
    #[test]
    fn noisy_tree_within_bound(seed in any::<u64>(), n in 1usize..128) {
        let params = PrivacyParams::approx(0.5, 1e-6).unwrap();
        let mut mech =
            TreeMechanism::new(2, n, 1.0, &params, NoiseRng::seed_from_u64(seed)).unwrap();
        let bound = mech.error_bound(1e-4);
        let mut item_rng = NoiseRng::seed_from_u64(seed.wrapping_add(1));
        let mut acc = vec![0.0; 2];
        for _ in 0..n {
            let v = item_rng.unit_sphere(2);
            vector::axpy(1.0, &v, &mut acc);
            let s = mech.update(&v).unwrap();
            prop_assert!(vector::distance(&s, &acc) <= bound);
        }
    }

    /// The hybrid mechanism matches a noiseless tree exactly when ε is
    /// effectively infinite, for any stream length (including lengths that
    /// cross several epoch boundaries).
    #[test]
    fn hybrid_noiseless_limit(n in 1usize..200) {
        let p = PrivacyParams::approx(1e12, 1e-6).unwrap();
        let mut mech = HybridMechanism::new(1, 1.0, &p, NoiseRng::seed_from_u64(9)).unwrap();
        let mut acc = 0.0;
        for i in 0..n {
            let v = [if i % 2 == 0 { 1.0 } else { -0.5 }];
            acc += v[0];
            let s = mech.update(&v).unwrap();
            prop_assert!((s[0] - acc).abs() < 1e-6);
        }
    }

    /// Tree releases are reproducible from the seed (bit-for-bit).
    #[test]
    fn tree_reproducible(seed in any::<u64>()) {
        let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
        let run = |seed: u64| {
            let mut mech =
                TreeMechanism::new(2, 8, 1.0, &params, NoiseRng::seed_from_u64(seed)).unwrap();
            let mut outs = Vec::new();
            for _ in 0..8 {
                outs.push(mech.update(&[0.5, -0.5]).unwrap());
            }
            outs
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
