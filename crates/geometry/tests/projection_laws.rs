//! Uniform laws every convex set implementation must satisfy, checked by
//! property-based testing across all sets:
//!
//! 1. **Membership**: `P_C(x) ∈ C`.
//! 2. **Idempotence**: `P_C(P_C(x)) = P_C(x)`.
//! 3. **Firm nonexpansiveness (weak form)**: `‖P_C(x) − P_C(y)‖ ≤ ‖x − y‖`.
//! 4. **Variational optimality**: `⟨x − P_C(x), z − P_C(x)⟩ ≤ 0 ∀ z ∈ C`.
//! 5. **Gauge consistency**: `gauge(x) ≤ 1 + tol ⇔ x ∈ C` (symmetric sets).
//! 6. **Support dominance**: `⟨support(g), g⟩ ≥ ⟨z, g⟩ ∀ z ∈ C`.

use pir_geometry::{
    BoxSet, ConvexSet, GroupL1Ball, L1Ball, L2Ball, LinfBall, LpBall, PolytopeHull, Simplex,
};
use proptest::prelude::*;

const DIM: usize = 6;

fn all_sets() -> Vec<(&'static str, Box<dyn ConvexSet>, f64)> {
    // (name, set, projection tolerance) — FW-projected hulls are iterative
    // and get a looser tolerance than the closed-form projections.
    vec![
        ("l2", Box::new(L2Ball::new(DIM, 1.5)), 1e-9),
        ("l1", Box::new(L1Ball::new(DIM, 1.2)), 1e-9),
        ("linf", Box::new(LinfBall::new(DIM, 0.8)), 1e-9),
        (
            "box",
            Box::new(BoxSet::new(vec![-1.0, 0.0, -0.5, -2.0, 0.1, -0.1], vec![1.0; DIM])),
            1e-9,
        ),
        ("simplex", Box::new(Simplex::new(DIM, 1.0)), 1e-9),
        ("lp1.5", Box::new(LpBall::new(DIM, 1.5, 1.0)), 1e-5),
        ("group", Box::new(GroupL1Ball::new(DIM, 2, 1.0)), 1e-9),
        (
            "hull",
            Box::new(PolytopeHull::cross_polytope(DIM, 1.0).with_projection_iters(1200)),
            8e-3,
        ),
    ]
}

fn point() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0f64..3.0, DIM)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn projection_membership_and_idempotence(x in point()) {
        for (name, set, tol) in all_sets() {
            let p = set.project(&x);
            prop_assert!(set.contains(&p, 10.0 * tol), "{name}: projection not a member");
            let pp = set.project(&p);
            prop_assert!(
                pir_linalg::vector::distance(&p, &pp) <= 20.0 * tol,
                "{name}: projection not idempotent"
            );
        }
    }

    #[test]
    fn projection_nonexpansive(x in point(), y in point()) {
        for (name, set, tol) in all_sets() {
            let px = set.project(&x);
            let py = set.project(&y);
            let lhs = pir_linalg::vector::distance(&px, &py);
            let rhs = pir_linalg::vector::distance(&x, &y);
            prop_assert!(lhs <= rhs + 100.0 * tol, "{name}: expansion {lhs} > {rhs}");
        }
    }

    #[test]
    fn variational_inequality(x in point(), z_raw in point()) {
        for (name, set, tol) in all_sets() {
            let p = set.project(&x);
            // A feasible comparison point: the projection of z_raw.
            let z = set.project(&z_raw);
            let gap: f64 = pir_linalg::vector::dot(
                &pir_linalg::vector::sub(&x, &p),
                &pir_linalg::vector::sub(&z, &p),
            );
            prop_assert!(gap <= 1000.0 * tol.max(1e-7), "{name}: VI violated, gap {gap}");
        }
    }

    #[test]
    fn support_dominates_members(g in point(), z_raw in point()) {
        for (name, set, tol) in all_sets() {
            let z = set.project(&z_raw);
            let sv = set.support_value(&g);
            let zv = pir_linalg::vector::dot(&z, &g);
            prop_assert!(zv <= sv + 100.0 * tol.max(1e-7), "{name}: member beats support");
            // The reported maximizer attains the support value.
            let s = set.support(&g);
            let attained = pir_linalg::vector::dot(&s, &g);
            prop_assert!(
                (attained - sv).abs() <= 1e-6 * sv.abs().max(1.0),
                "{name}: support vector does not attain the support value"
            );
        }
    }

    #[test]
    fn project_into_is_identical_to_project(x in point()) {
        // The borrowed-view projection must be value-for-value identical
        // to the allocating one — the zero-allocation descent path of
        // pir-core relies on this equivalence for every set.
        for (name, set, _tol) in all_sets() {
            let p = set.project(&x);
            let mut out = vec![f64::NAN; DIM];
            set.project_into(&x, &mut out);
            prop_assert_eq!(&p, &out, "{}: project_into diverges from project", name);
        }
    }

    #[test]
    fn gauge_member_consistency(x in point()) {
        for (name, set, tol) in all_sets() {
            let g = set.gauge(&x);
            let member = set.contains(&x, 10.0 * tol.max(1e-8));
            if member {
                prop_assert!(g <= 1.0 + 1e-3, "{name}: member has gauge {g} > 1");
            }
            if g.is_finite() && g <= 1.0 - 1e-3 {
                prop_assert!(member, "{name}: gauge {g} < 1 but not a member");
            }
        }
    }

    #[test]
    fn gauge_scaling_homogeneity(x in point(), alpha in 0.1f64..3.0) {
        // gauge(αx) = α·gauge(x) for symmetric sets (positive homogeneity).
        for (name, set, _tol) in all_sets() {
            if name == "simplex" || name == "box" {
                continue; // not symmetric / not homogeneous around 0
            }
            let g1 = set.gauge(&x);
            let scaled: Vec<f64> = x.iter().map(|v| alpha * v).collect();
            let g2 = set.gauge(&scaled);
            if g1.is_finite() && g1 > 1e-9 {
                // Iterative (FW) projections bound the achievable absolute
                // gauge accuracy; allow that slack on top of 1% relative.
                let slack = 1e-2 * alpha.max(1.0) + 3.0 * set.projection_accuracy();
                prop_assert!(
                    (g2 / g1 - alpha).abs() < slack,
                    "{name}: gauge not homogeneous: {g2} vs {}", alpha * g1
                );
            }
        }
    }

    #[test]
    fn diameter_dominates_members(z_raw in point()) {
        for (name, set, tol) in all_sets() {
            let z = set.project(&z_raw);
            prop_assert!(
                pir_linalg::vector::norm2(&z) <= set.diameter() + 100.0 * tol.max(1e-7),
                "{name}: member norm exceeds diameter"
            );
        }
    }
}
