//! Core traits: [`WidthSet`] (anything with a Gaussian width) and
//! [`ConvexSet`] (projectable constraint sets).

use pir_linalg::vector;

/// A set `S ⊆ R^d` with a computable support value and a Gaussian-width
/// bound. Input domains `X` (which may be non-convex, e.g. k-sparse
/// vectors) only need this much; constraint sets `C` additionally implement
/// [`ConvexSet`].
pub trait WidthSet: std::fmt::Debug + Send + Sync {
    /// Ambient dimension `d`.
    fn dim(&self) -> usize;

    /// Support value `h_S(g) = sup_{a ∈ S} ⟨a, g⟩`.
    fn support_value(&self, g: &[f64]) -> f64;

    /// Analytic upper bound on the Gaussian width `w(S)` (Definition 3).
    ///
    /// Bounds are the standard ones quoted in §2/§5.2 of the paper and are
    /// tight up to universal constants; [`crate::width::monte_carlo`]
    /// estimates the exact value when needed.
    fn width_bound(&self) -> f64;

    /// Diameter `‖S‖ = sup_{a∈S} ‖a‖₂` (Definition 2).
    fn diameter(&self) -> f64;
}

/// A closed convex set supporting Euclidean projection — the constraint
/// space `C` of the paper's ERM problems.
pub trait ConvexSet: WidthSet {
    /// Euclidean projection `P_C(x) = argmin_{z∈C} ‖x − z‖₂`.
    fn project(&self, x: &[f64]) -> Vec<f64>;

    /// [`ConvexSet::project`] writing into a caller-provided buffer —
    /// the allocation-free form the per-step descent loops use (`x` and
    /// `out` are distinct buffers so iterative solvers can ping-pong).
    /// Must be value-for-value identical to [`ConvexSet::project`].
    ///
    /// The default implementation allocates via [`ConvexSet::project`];
    /// sets on hot paths (closed-form projections) override it.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the projection's length.
    fn project_into(&self, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.project(x));
    }

    /// The maximizer `argmax_{a∈C} ⟨a, g⟩` (linear maximization oracle).
    ///
    /// Ties may be broken arbitrarily; the result must satisfy
    /// `⟨support(g), g⟩ = support_value(g)` up to floating-point error.
    fn support(&self, g: &[f64]) -> Vec<f64>;

    /// Minkowski gauge `‖x‖_C = inf{ρ ≥ 0 : x ∈ ρC}` (Definition 6).
    ///
    /// Returns `f64::INFINITY` when no scaling of `C` contains `x` (e.g.
    /// a negative coordinate against the probability simplex). The default
    /// implementation brackets and bisects using the scaling identity
    /// `P_{ρC}(x) = ρ·P_C(x/ρ)`; sets with closed-form gauges override it.
    fn gauge(&self, x: &[f64]) -> f64 {
        gauge_by_bisection(self, x)
    }

    /// Projection onto the scaled set `ρC`, via `ρ·P_C(x/ρ)`.
    ///
    /// # Panics
    /// Panics in debug builds if `rho <= 0`.
    fn project_scaled(&self, x: &[f64], rho: f64) -> Vec<f64> {
        debug_assert!(rho > 0.0);
        let scaled: Vec<f64> = x.iter().map(|v| v / rho).collect();
        let mut p = self.project(&scaled);
        vector::scale_mut(&mut p, rho);
        p
    }

    /// Membership test with tolerance: `dist(x, C) ≤ tol`.
    fn contains(&self, x: &[f64], tol: f64) -> bool {
        vector::distance(x, &self.project(x)) <= tol
    }

    /// Worst-case absolute accuracy of [`ConvexSet::project`].
    ///
    /// Closed-form projections return machine precision (the default);
    /// iterative projections (e.g. Frank–Wolfe on vertex hulls) override
    /// this with their convergence bound so that derived routines — the
    /// default [`ConvexSet::gauge`] bisection in particular — test
    /// membership at a resolution the projection can actually deliver.
    fn projection_accuracy(&self) -> f64 {
        1e-9
    }
}

impl<S: WidthSet + ?Sized> WidthSet for Box<S> {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn support_value(&self, g: &[f64]) -> f64 {
        (**self).support_value(g)
    }
    fn width_bound(&self) -> f64 {
        (**self).width_bound()
    }
    fn diameter(&self) -> f64 {
        (**self).diameter()
    }
}

impl<S: ConvexSet + ?Sized> ConvexSet for Box<S> {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        (**self).project(x)
    }
    fn project_into(&self, x: &[f64], out: &mut [f64]) {
        (**self).project_into(x, out)
    }
    fn support(&self, g: &[f64]) -> Vec<f64> {
        (**self).support(g)
    }
    fn gauge(&self, x: &[f64]) -> f64 {
        (**self).gauge(x)
    }
    fn project_scaled(&self, x: &[f64], rho: f64) -> Vec<f64> {
        (**self).project_scaled(x, rho)
    }
    fn contains(&self, x: &[f64], tol: f64) -> bool {
        (**self).contains(x, tol)
    }
    fn projection_accuracy(&self) -> f64 {
        (**self).projection_accuracy()
    }
}

/// Generic gauge computation by bracketing + bisection (60 iterations,
/// relative accuracy ≈ 1e-12 of the bracket width).
pub(crate) fn gauge_by_bisection<C: ConvexSet + ?Sized>(set: &C, x: &[f64]) -> f64 {
    let nx = vector::norm2(x);
    if nx == 0.0 {
        return 0.0;
    }
    let dist_at = |rho: f64| vector::distance(x, &set.project_scaled(x, rho));
    // Bracket: grow until x ∈ ρC (or give up ⇒ gauge is infinite, e.g. the
    // set has empty interior in some direction). The membership resolution
    // cannot be finer than what the projection delivers.
    let tol = (1e-9 * nx.max(1.0)).max(set.projection_accuracy());
    let mut hi = 1.0;
    let mut grow = 0;
    while dist_at(hi) > tol {
        hi *= 2.0;
        grow += 1;
        if grow > 60 {
            return f64::INFINITY;
        }
    }
    let mut lo = 0.0;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if mid == 0.0 {
            break;
        }
        if dist_at(mid) <= tol {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}
