//! # pir-geometry
//!
//! Convex geometry for private incremental regression: the constraint sets
//! `C` and input domains `X` of the paper, with the four operations the
//! mechanisms consume —
//!
//! 1. **Euclidean projection** `P_C(x)` (every step of the noisy projected
//!    gradient descent, Appendix B),
//! 2. **support function / linear minimization oracle** (Frank–Wolfe and
//!    Monte-Carlo Gaussian-width estimation),
//! 3. **Gaussian width** `w(S) = E_g sup_{a∈S} ⟨a, g⟩` (Definition 3;
//!    drives the dimension choice of Algorithm 3 and the bounds of
//!    Theorem 5.7),
//! 4. **Minkowski gauge** `‖x‖_C` (Definition 6; the lifting objective of
//!    Algorithm 3, Step 9).
//!
//! Implemented sets (§5.2 of the paper): L2 balls (ridge), L1 balls
//! (Lasso), boxes/L∞ balls, the probability simplex, Lp balls `1 < p < 2`,
//! group-L1 balls (block sparsity), polytopes given by vertices, and the
//! (non-convex) k-sparse input domain.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod sets;
mod traits;
pub mod width;

pub use sets::{
    BoxSet, GroupL1Ball, KSparseDomain, L1Ball, L2Ball, LinfBall, LpBall, PolytopeHull, Simplex,
};
pub use traits::{ConvexSet, WidthSet};
