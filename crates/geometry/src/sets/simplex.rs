//! The scaled probability simplex `{θ ≥ 0, Σθ_i = s}` — a §5.2 example of
//! a `Θ(√log d)`-width constraint set (portfolio-style regression).

use crate::traits::{ConvexSet, WidthSet};
use pir_linalg::vector;

/// Probability simplex scaled by `scale` (`scale = 1` is the standard one).
#[derive(Debug, Clone)]
pub struct Simplex {
    dim: usize,
    scale: f64,
}

impl Simplex {
    /// New simplex; `scale` must be positive and finite, `dim ≥ 1`.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(dim: usize, scale: f64) -> Self {
        assert!(dim >= 1, "Simplex needs dim >= 1");
        assert!(scale.is_finite() && scale > 0.0, "Simplex scale must be positive");
        Simplex { dim, scale }
    }

    /// Standard probability simplex.
    pub fn standard(dim: usize) -> Self {
        Self::new(dim, 1.0)
    }

    /// The mass constraint `Σθ = scale`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// Projection onto `{θ ≥ 0, Σθ = s}` (Held–Wolfe–Crowder / Duchi et al.):
/// sort, find the pivot, shift and clip. `O(d log d)`.
fn project_simplex(x: &[f64], s: f64) -> Vec<f64> {
    let mut u = x.to_vec();
    u.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN in project_simplex"));
    let mut cumsum = 0.0;
    let mut lambda = 0.0;
    for (j, &uj) in u.iter().enumerate() {
        cumsum += uj;
        let candidate = (s - cumsum) / (j as f64 + 1.0);
        if uj + candidate > 0.0 {
            lambda = candidate;
        } else {
            break;
        }
    }
    x.iter().map(|&v| (v + lambda).max(0.0)).collect()
}

impl WidthSet for Simplex {
    fn dim(&self) -> usize {
        self.dim
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        // sup over the simplex of ⟨θ, g⟩ = s · max_i g_i.
        self.scale * g.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// `w(s·Δ^d) ≤ s·√(2 ln d)` — same `Θ(√log d)` class as the L1 ball.
    fn width_bound(&self) -> f64 {
        if self.dim <= 1 {
            return self.scale;
        }
        self.scale * (2.0 * (self.dim as f64).ln()).sqrt().max(1.0)
    }

    fn diameter(&self) -> f64 {
        // The farthest point from the origin is a vertex s·e_i.
        self.scale
    }
}

impl ConvexSet for Simplex {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        project_simplex(x, self.scale)
    }

    fn support(&self, g: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        if let Some(i) = vector::argmax(g) {
            out[i] = self.scale;
        }
        out
    }

    /// The simplex is not symmetric: its gauge is `Σθ_i / s` on the
    /// non-negative orthant and `+∞` anywhere else.
    fn gauge(&self, x: &[f64]) -> f64 {
        if x.iter().any(|&v| v < 0.0) {
            f64::INFINITY
        } else {
            x.iter().sum::<f64>() / self.scale
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_satisfies_constraints() {
        let s = Simplex::standard(4);
        let p = s.project(&[0.5, -1.0, 2.0, 0.1]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn interior_feasible_point_fixed() {
        let s = Simplex::standard(2);
        let p = s.project(&[0.25, 0.75]);
        assert!(vector::distance(&p, &[0.25, 0.75]) < 1e-12);
    }

    #[test]
    fn projection_of_symmetric_point_is_uniform() {
        let s = Simplex::standard(3);
        let p = s.project(&[5.0, 5.0, 5.0]);
        for v in p {
            assert!((v - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn support_is_best_vertex() {
        let s = Simplex::new(3, 2.0);
        let g = [0.1, 0.9, -1.0];
        assert_eq!(s.support(&g), vec![0.0, 2.0, 0.0]);
        assert!((s.support_value(&g) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn gauge_handles_asymmetry() {
        let s = Simplex::standard(2);
        assert!((s.gauge(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!((s.gauge(&[0.25, 0.25]) - 0.5).abs() < 1e-12);
        assert_eq!(s.gauge(&[-0.1, 0.5]), f64::INFINITY);
    }

    #[test]
    fn scaled_simplex() {
        let s = Simplex::new(2, 10.0);
        let p = s.project(&[0.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        assert_eq!(s.diameter(), 10.0);
    }
}
