//! The k-sparse input domain of §5.2: vectors in `R^d` with at most `k`
//! non-zero entries and norm at most `radius`. Non-convex, so it only
//! implements [`WidthSet`] — it models the covariate domain `X`, not the
//! constraint set `C`. Its Gaussian width is `Θ(√(k log(d/k)))`, the key
//! fact that lets Mechanism 2 beat the worst-case `√d` noise on sparse
//! data.

use crate::traits::WidthSet;
use pir_linalg::vector;

/// Domain of `k`-sparse vectors with `‖x‖₂ ≤ radius`.
#[derive(Debug, Clone)]
pub struct KSparseDomain {
    dim: usize,
    k: usize,
    radius: f64,
}

impl KSparseDomain {
    /// New domain; requires `1 ≤ k ≤ dim` and a positive radius.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(dim: usize, k: usize, radius: f64) -> Self {
        assert!(k >= 1 && k <= dim, "KSparseDomain requires 1 <= k <= dim");
        assert!(radius.is_finite() && radius > 0.0, "radius must be positive");
        KSparseDomain { dim, k, radius }
    }

    /// Sparsity level `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Membership test: at most `k` non-zeros and `‖x‖ ≤ radius (1+tol)`.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.dim
            && vector::nnz(x) <= self.k
            && vector::norm2(x) <= self.radius * (1.0 + tol)
    }

    /// Nearest member: keep the `k` largest-magnitude entries, then clip
    /// the Euclidean norm. (This is the exact Euclidean projection onto
    /// the non-convex set.)
    pub fn project(&self, x: &[f64]) -> Vec<f64> {
        let mut t = vector::hard_threshold(x, self.k);
        let n = vector::norm2(&t);
        if n > self.radius {
            vector::scale_mut(&mut t, self.radius / n);
        }
        t
    }
}

impl WidthSet for KSparseDomain {
    fn dim(&self) -> usize {
        self.dim
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        // sup over k-sparse unit-ball vectors: the norm of the top-k
        // entries of g, scaled by the radius.
        let top = vector::hard_threshold(g, self.k);
        self.radius * vector::norm2(&top)
    }

    /// `w ≤ r·(√k + √(2k ln(ed/k)))` — the `Θ(√(k log(d/k)))` bound
    /// quoted in §2 (union bound over supports + width of `B₂^k`).
    fn width_bound(&self) -> f64 {
        let (d, k, r) = (self.dim as f64, self.k as f64, self.radius);
        r * (k.sqrt() + (2.0 * k * (std::f64::consts::E * d / k).ln()).sqrt())
    }

    fn diameter(&self) -> f64 {
        self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let dom = KSparseDomain::new(5, 2, 1.0);
        assert!(dom.contains(&[0.6, 0.0, 0.8, 0.0, 0.0], 1e-9));
        assert!(!dom.contains(&[0.5, 0.5, 0.5, 0.0, 0.0], 1e-9)); // 3 nonzeros
        assert!(!dom.contains(&[2.0, 0.0, 0.0, 0.0, 0.0], 1e-9)); // norm
        assert!(!dom.contains(&[1.0, 0.0], 1e-9)); // dim
    }

    #[test]
    fn projection_produces_members() {
        let dom = KSparseDomain::new(4, 2, 1.0);
        let p = dom.project(&[3.0, 0.1, -4.0, 0.2]);
        assert!(dom.contains(&p, 1e-9));
        // Keeps the two largest and rescales: direction (3, -4)/5.
        assert!((p[0] - 0.6).abs() < 1e-12);
        assert!((p[2] + 0.8).abs() < 1e-12);
    }

    #[test]
    fn support_value_is_topk_norm() {
        let dom = KSparseDomain::new(4, 2, 2.0);
        let g = [3.0, 1.0, -4.0, 0.5];
        assert!((dom.support_value(&g) - 10.0).abs() < 1e-12); // 2 * ‖(3,-4)‖
    }

    #[test]
    fn width_grows_like_sqrt_k_log_d_over_k() {
        let d = 100_000;
        let w1 = KSparseDomain::new(d, 5, 1.0).width_bound();
        let w2 = KSparseDomain::new(d, 20, 1.0).width_bound();
        // Quadrupling k roughly doubles the width (√k scaling).
        assert!(w2 / w1 > 1.5 && w2 / w1 < 2.5, "ratio {}", w2 / w1);
        // And both stay far below √d ≈ 316.
        assert!(w2 < 60.0);
    }

    #[test]
    fn full_sparsity_recovers_l2_width_order() {
        let dom = KSparseDomain::new(64, 64, 1.0);
        let w = dom.width_bound();
        assert!(w >= (64.0f64).sqrt());
        assert!(w <= 3.0 * (64.0f64).sqrt() + 10.0);
    }
}
