//! Concrete constraint sets and input domains.

mod boxes;
mod group;
mod hull;
mod l1;
mod l2;
mod lp;
mod simplex;
mod sparse;

pub use boxes::{BoxSet, LinfBall};
pub use group::GroupL1Ball;
pub use hull::PolytopeHull;
pub use l1::L1Ball;
pub use l2::L2Ball;
pub use lp::LpBall;
pub use simplex::Simplex;
pub use sparse::KSparseDomain;
