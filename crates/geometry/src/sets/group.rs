//! Group/block-L1 balls for the `‖·‖_{k,L1,2}` norm of §5.2: coordinates
//! are partitioned into contiguous blocks of size `k`; the norm is the sum
//! of per-block Euclidean norms. The unit ball has Gaussian width
//! `O(√(k + log(d/k)))` — the structured-sparsity example of the paper.

use crate::sets::l1::project_l1;
use crate::traits::{ConvexSet, WidthSet};
use pir_linalg::vector;

/// Ball of radius `radius` in the block-L1,2 norm with contiguous blocks
/// of size `group_size` (the final block may be shorter when `group_size`
/// does not divide `dim`, matching the paper's `⌈d/k⌉` blocks).
#[derive(Debug, Clone)]
pub struct GroupL1Ball {
    dim: usize,
    group_size: usize,
    radius: f64,
}

impl GroupL1Ball {
    /// New ball; needs `group_size ∈ [1, dim]` and a positive radius.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(dim: usize, group_size: usize, radius: f64) -> Self {
        assert!(group_size >= 1 && group_size <= dim.max(1), "invalid group size");
        assert!(radius.is_finite() && radius > 0.0, "GroupL1Ball radius must be positive");
        GroupL1Ball { dim, group_size, radius }
    }

    /// Number of blocks `⌈d/k⌉`.
    pub fn num_groups(&self) -> usize {
        self.dim.div_ceil(self.group_size)
    }

    /// Block size `k`.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Iterator over block ranges.
    fn blocks(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.num_groups()).map(move |g| {
            let start = g * self.group_size;
            start..(start + self.group_size).min(self.dim)
        })
    }

    /// The block-L1,2 norm `Σ_g ‖x_g‖₂`.
    pub fn block_norm(&self, x: &[f64]) -> f64 {
        self.blocks().map(|r| vector::norm2(&x[r])).sum()
    }
}

impl WidthSet for GroupL1Ball {
    fn dim(&self) -> usize {
        self.dim
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        // Dual of the block-L1,2 norm is block-L∞,2: r·max_g ‖g_block‖₂.
        self.radius * self.blocks().map(|r| vector::norm2(&g[r])).fold(0.0f64, f64::max)
    }

    /// `w ≤ r·(√k + √(2 ln(#groups)))` — `O(√(k log(d/k)))`, matching the
    /// paper's quoted width for the block-sparsity ball (Talwar et al.).
    fn width_bound(&self) -> f64 {
        let ngroups = self.num_groups().max(1) as f64;
        let log_term = if ngroups > 1.0 { (2.0 * ngroups.ln()).sqrt() } else { 0.0 };
        self.radius * ((self.group_size as f64).sqrt() + log_term)
    }

    fn diameter(&self) -> f64 {
        // Mass r concentrated in one block gives ‖θ‖₂ = r; splitting mass
        // across blocks only shrinks the Euclidean norm.
        self.radius
    }
}

impl ConvexSet for GroupL1Ball {
    /// Projection reduces to an L1-ball projection of the vector of block
    /// norms: if `u_g = ‖x_g‖₂` and `u′ = P_{rB₁}(u)`, the projection
    /// rescales each block by `u′_g/u_g` (standard block-norm identity).
    fn project(&self, x: &[f64]) -> Vec<f64> {
        let norms: Vec<f64> = self.blocks().map(|r| vector::norm2(&x[r])).collect();
        if norms.iter().sum::<f64>() <= self.radius {
            return x.to_vec();
        }
        let shrunk = project_l1(&norms, self.radius);
        let mut out = vec![0.0; self.dim];
        for (g, r) in self.blocks().enumerate() {
            if norms[g] > 0.0 {
                let factor = shrunk[g] / norms[g];
                for i in r {
                    out[i] = x[i] * factor;
                }
            }
        }
        out
    }

    fn support(&self, g: &[f64]) -> Vec<f64> {
        // All mass on the block with the largest Euclidean norm.
        let mut best: Option<(usize, f64)> = None;
        for (gi, r) in self.blocks().enumerate() {
            let n = vector::norm2(&g[r]);
            if best.is_none_or(|(_, bn)| n > bn) {
                best = Some((gi, n));
            }
        }
        let mut out = vec![0.0; self.dim];
        if let Some((gi, n)) = best {
            if n > 0.0 {
                let start = gi * self.group_size;
                let end = (start + self.group_size).min(self.dim);
                for i in start..end {
                    out[i] = self.radius * g[i] / n;
                }
            }
        }
        out
    }

    fn gauge(&self, x: &[f64]) -> f64 {
        self.block_norm(x) / self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_norm_and_gauge() {
        let set = GroupL1Ball::new(4, 2, 1.0);
        // Blocks (3,4) and (0,0): block norm 5.
        let x = [3.0, 4.0, 0.0, 0.0];
        assert!((set.block_norm(&x) - 5.0).abs() < 1e-12);
        assert!((set.gauge(&x) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn projection_feasible_and_fixed_inside() {
        let set = GroupL1Ball::new(6, 2, 1.0);
        let inside = [0.1, 0.1, 0.2, 0.0, 0.1, 0.05];
        assert_eq!(set.project(&inside), inside.to_vec());
        let outside = [3.0, 4.0, 1.0, 0.0, 0.0, 2.0];
        let p = set.project(&outside);
        assert!(set.block_norm(&p) <= 1.0 + 1e-9);
        // Direction within a block is preserved.
        assert!((p[0] / p[1] - 3.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn uneven_final_block_is_handled() {
        let set = GroupL1Ball::new(5, 2, 1.0); // blocks: [0,1], [2,3], [4]
        assert_eq!(set.num_groups(), 3);
        let p = set.project(&[0.0, 0.0, 0.0, 0.0, 7.0]);
        assert!((vector::norm2(&p) - 1.0).abs() < 1e-9);
        assert!((p[4] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn support_attains_dual_norm() {
        let set = GroupL1Ball::new(4, 2, 2.0);
        let g = [1.0, 1.0, 3.0, 4.0];
        let s = set.support(&g);
        assert!((vector::dot(&s, &g) - set.support_value(&g)).abs() < 1e-9);
        assert!((vector::dot(&s, &g) - 10.0).abs() < 1e-9); // 2 * ‖(3,4)‖
        assert_eq!(&s[0..2], &[0.0, 0.0]);
    }

    #[test]
    fn width_is_sqrt_k_plus_log_terms() {
        let narrow = GroupL1Ball::new(10_000, 5, 1.0).width_bound();
        let wide = GroupL1Ball::new(10_000, 1_000, 1.0).width_bound();
        assert!(narrow < wide);
        assert!(narrow < 10.0); // ~√5 + √(2 ln 2000) ≈ 6.1
    }

    #[test]
    fn group_size_equal_dim_is_l2_ball() {
        let set = GroupL1Ball::new(3, 3, 2.0);
        let p = set.project(&[6.0, 0.0, 8.0]);
        assert!((vector::norm2(&p) - 2.0).abs() < 1e-9);
    }
}
