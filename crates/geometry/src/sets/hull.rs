//! Polytopes given as convex hulls of explicit vertices — the
//! `C = conv{a_1, …, a_l}` family of §5.2, whose Gaussian width
//! `O(max_i ‖a_i‖ · √log l)` is small whenever the vertex count is
//! polynomial in the dimension.

use crate::traits::{ConvexSet, WidthSet};
use pir_linalg::vector;

/// Convex hull of a finite vertex set.
#[derive(Debug, Clone)]
pub struct PolytopeHull {
    dim: usize,
    vertices: Vec<Vec<f64>>,
    max_vertex_norm: f64,
    /// Frank–Wolfe iterations used by [`ConvexSet::project`].
    projection_iters: usize,
}

impl PolytopeHull {
    /// New hull from at least one vertex; all vertices share a dimension.
    ///
    /// # Panics
    /// Panics on an empty vertex list, mismatched dimensions, or
    /// non-finite coordinates.
    pub fn new(vertices: Vec<Vec<f64>>) -> Self {
        assert!(!vertices.is_empty(), "PolytopeHull needs at least one vertex");
        let dim = vertices[0].len();
        let mut max_norm = 0.0f64;
        for v in &vertices {
            assert_eq!(v.len(), dim, "PolytopeHull vertices must share a dimension");
            assert!(vector::is_finite(v), "PolytopeHull vertex has non-finite entries");
            max_norm = max_norm.max(vector::norm2(v));
        }
        PolytopeHull { dim, vertices, max_vertex_norm: max_norm, projection_iters: 300 }
    }

    /// Override the Frank–Wolfe projection iteration budget (default 300;
    /// the projection error decays as `O(diam²/k)`).
    pub fn with_projection_iters(mut self, iters: usize) -> Self {
        assert!(iters >= 1);
        self.projection_iters = iters;
        self
    }

    /// The vertex list.
    pub fn vertices(&self) -> &[Vec<f64>] {
        &self.vertices
    }

    /// The cross-polytope `c·B₁^d` as an explicit hull of `2d` vertices
    /// (useful for testing the generic machinery against the closed-form
    /// [`crate::L1Ball`]).
    pub fn cross_polytope(dim: usize, radius: f64) -> Self {
        let mut vs = Vec::with_capacity(2 * dim);
        for i in 0..dim {
            let mut plus = vec![0.0; dim];
            plus[i] = radius;
            let mut minus = vec![0.0; dim];
            minus[i] = -radius;
            vs.push(plus);
            vs.push(minus);
        }
        Self::new(vs)
    }
}

impl WidthSet for PolytopeHull {
    fn dim(&self) -> usize {
        self.dim
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        self.vertices.iter().map(|v| vector::dot(v, g)).fold(f64::NEG_INFINITY, f64::max)
    }

    /// `w(conv{a_i}) ≤ max_i ‖a_i‖ · √(2 ln(2l))` (finite-class bound; the
    /// supremum over a hull is attained at a vertex).
    fn width_bound(&self) -> f64 {
        let l = self.vertices.len() as f64;
        self.max_vertex_norm * (2.0 * (2.0 * l).ln()).sqrt()
    }

    fn diameter(&self) -> f64 {
        self.max_vertex_norm
    }
}

impl ConvexSet for PolytopeHull {
    /// Frank–Wolfe minimization of `½‖θ − x‖²` with exact line search;
    /// each step is one pass over the vertices.
    fn project(&self, x: &[f64]) -> Vec<f64> {
        let mut theta = self.vertices[0].clone();
        for _ in 0..self.projection_iters {
            // ∇f(θ) = θ − x; LMO minimizes ⟨∇f, s⟩ = maximizes ⟨−∇f, s⟩.
            let grad = vector::sub(&theta, x);
            let neg: Vec<f64> = grad.iter().map(|v| -v).collect();
            let s = self.support(&neg);
            let dir = vector::sub(&s, &theta);
            let denom = vector::norm2_sq(&dir);
            if denom <= 1e-30 {
                break;
            }
            // Exact line search for the quadratic: γ = ⟨x − θ, dir⟩/‖dir‖².
            let gamma = (vector::dot(&vector::sub(x, &theta), &dir) / denom).clamp(0.0, 1.0);
            if gamma <= 0.0 {
                break; // FW gap is zero: θ is optimal.
            }
            vector::axpy(gamma, &dir, &mut theta);
        }
        theta
    }

    fn support(&self, g: &[f64]) -> Vec<f64> {
        let mut best = &self.vertices[0];
        let mut best_val = vector::dot(best, g);
        for v in &self.vertices[1..] {
            let val = vector::dot(v, g);
            if val > best_val {
                best_val = val;
                best = v;
            }
        }
        best.clone()
    }

    /// Frank–Wolfe primal gap after `k` iterations is `O(2·diam²/(k+2))`;
    /// the distance error is its square root.
    fn projection_accuracy(&self) -> f64 {
        let d = self.max_vertex_norm.max(1e-12);
        (2.0 * (2.0 * d) * (2.0 * d) / (self.projection_iters as f64 + 2.0)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::l1::L1Ball;

    #[test]
    fn support_matches_vertex_enumeration() {
        let hull = PolytopeHull::new(vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, -1.0]]);
        let g = [2.0, -1.0];
        assert_eq!(hull.support(&g), vec![1.0, 0.0]);
        assert!((hull.support_value(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn projection_agrees_with_closed_form_l1() {
        let hull = PolytopeHull::cross_polytope(3, 1.0).with_projection_iters(4000);
        let l1 = L1Ball::new(3, 1.0);
        for x in [[2.0, -1.0, 0.5], [0.2, 0.1, -0.1], [5.0, 5.0, 5.0]] {
            let ph = hull.project(&x);
            let pe = l1.project(&x);
            assert!(
                vector::distance(&ph, &pe) < 5e-3,
                "hull {ph:?} vs exact {pe:?} for input {x:?}"
            );
        }
    }

    #[test]
    fn projection_returns_member() {
        let hull = PolytopeHull::new(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let p = hull.project(&[2.0, 2.0]);
        // The projection of (2,2) onto this triangle is (0.5, 0.5).
        assert!(vector::distance(&p, &[0.5, 0.5]) < 1e-3, "{p:?}");
    }

    #[test]
    fn singleton_hull_projects_to_the_point() {
        let hull = PolytopeHull::new(vec![vec![1.0, 2.0]]);
        assert!(vector::distance(&hull.project(&[9.0, -9.0]), &[1.0, 2.0]) < 1e-12);
        assert_eq!(hull.diameter(), (5.0f64).sqrt());
    }

    #[test]
    fn gauge_by_bisection_on_cross_polytope() {
        // Default (bisection) gauge should match the L1 norm to within the
        // Frank–Wolfe projection accuracy.
        let hull = PolytopeHull::cross_polytope(2, 1.0).with_projection_iters(20_000);
        let g = hull.gauge(&[0.5, -0.25]);
        assert!((g - 0.75).abs() < 0.06, "gauge {g}");
    }

    #[test]
    fn width_bound_is_logarithmic_in_vertex_count() {
        let small = PolytopeHull::cross_polytope(4, 1.0).width_bound();
        let large = PolytopeHull::cross_polytope(4096, 1.0).width_bound();
        assert!(large / small < 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn rejects_empty_vertex_list() {
        let _ = PolytopeHull::new(vec![]);
    }
}
