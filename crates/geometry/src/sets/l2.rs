//! The Euclidean ball `c·B₂^d` — the constraint set of Ridge regression.

use crate::traits::{ConvexSet, WidthSet};
use pir_linalg::vector;

/// Euclidean ball of radius `radius` centered at the origin.
#[derive(Debug, Clone)]
pub struct L2Ball {
    dim: usize,
    radius: f64,
}

impl L2Ball {
    /// New ball; `radius` must be positive and finite.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite radius.
    pub fn new(dim: usize, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "L2Ball radius must be positive");
        L2Ball { dim, radius }
    }

    /// Unit ball `B₂^d`.
    pub fn unit(dim: usize) -> Self {
        Self::new(dim, 1.0)
    }

    /// The radius `c`.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

impl WidthSet for L2Ball {
    fn dim(&self) -> usize {
        self.dim
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        self.radius * vector::norm2(g)
    }

    /// `w(cB₂^d) = c·E‖g‖₂ ≤ c√d` (and `≥ c√(d − 1)`, so this is tight).
    fn width_bound(&self) -> f64 {
        self.radius * (self.dim as f64).sqrt()
    }

    fn diameter(&self) -> f64 {
        self.radius
    }
}

impl ConvexSet for L2Ball {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        let n = vector::norm2(x);
        if n <= self.radius {
            x.to_vec()
        } else {
            vector::scale(x, self.radius / n)
        }
    }

    fn project_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), x.len(), "project_into: output length mismatch");
        let n = vector::norm2(x);
        if n <= self.radius {
            out.copy_from_slice(x);
        } else {
            vector::scaled_copy_into(self.radius / n, x, out);
        }
    }

    fn support(&self, g: &[f64]) -> Vec<f64> {
        match vector::normalize(g) {
            Some(u) => vector::scale(&u, self.radius),
            // Degenerate direction: any point attains the (zero) supremum.
            None => vec![0.0; self.dim],
        }
    }

    fn gauge(&self, x: &[f64]) -> f64 {
        vector::norm2(x) / self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_scales_only_outside() {
        let ball = L2Ball::new(2, 2.0);
        assert_eq!(ball.project(&[1.0, 0.0]), vec![1.0, 0.0]);
        let p = ball.project(&[6.0, 8.0]);
        assert!((vector::norm2(&p) - 2.0).abs() < 1e-12);
        assert!((p[0] - 1.2).abs() < 1e-12 && (p[1] - 1.6).abs() < 1e-12);
    }

    #[test]
    fn support_attains_support_value() {
        let ball = L2Ball::new(3, 1.5);
        let g = [1.0, -2.0, 2.0];
        let s = ball.support(&g);
        assert!((vector::dot(&s, &g) - ball.support_value(&g)).abs() < 1e-12);
        assert!((vector::dot(&s, &g) - 1.5 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_matches_membership() {
        let ball = L2Ball::new(2, 2.0);
        assert!((ball.gauge(&[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(ball.gauge(&[0.5, 0.0]) < 1.0);
        assert!(ball.gauge(&[3.0, 0.0]) > 1.0);
        assert_eq!(ball.gauge(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn width_bound_sane() {
        let ball = L2Ball::new(100, 2.0);
        assert!((ball.width_bound() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_radius() {
        let _ = L2Ball::new(2, -1.0);
    }
}
