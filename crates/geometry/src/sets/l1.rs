//! The cross-polytope `c·B₁^d` — the constraint set of Lasso regression
//! and the flagship low-Gaussian-width set of the paper's §5.2.

use crate::traits::{ConvexSet, WidthSet};
use pir_linalg::vector;

/// L1 ball of radius `radius` centered at the origin.
///
/// ```
/// use pir_geometry::{ConvexSet, L1Ball, WidthSet};
///
/// let ball = L1Ball::unit(4);
/// // Sort-based exact projection (soft thresholding):
/// let p = ball.project(&[2.0, -1.0, 0.0, 0.5]);
/// assert!((p.iter().map(|v| v.abs()).sum::<f64>() - 1.0).abs() < 1e-9);
/// // Gaussian width is only Θ(√log d) — the Lasso advantage of §5.2:
/// assert!(L1Ball::unit(10_000).width_bound() < 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct L1Ball {
    dim: usize,
    radius: f64,
}

impl L1Ball {
    /// New ball; `radius` must be positive and finite.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite radius.
    pub fn new(dim: usize, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "L1Ball radius must be positive");
        L1Ball { dim, radius }
    }

    /// Unit ball `B₁^d`.
    pub fn unit(dim: usize) -> Self {
        Self::new(dim, 1.0)
    }

    /// The radius `c`.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

/// Soft-threshold projection of `x` onto the L1 ball of radius `r`
/// (Duchi, Shalev-Shwartz, Singer & Chandra, ICML 2008): `O(d log d)`.
pub(crate) fn project_l1(x: &[f64], r: f64) -> Vec<f64> {
    if vector::norm1(x) <= r {
        return x.to_vec();
    }
    let mut mags: Vec<f64> = x.iter().map(|v| v.abs()).collect();
    mags.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN in project_l1"));
    let mut cumsum = 0.0;
    let mut tau = 0.0;
    for (j, &u) in mags.iter().enumerate() {
        cumsum += u;
        let candidate = (cumsum - r) / (j as f64 + 1.0);
        if u - candidate > 0.0 {
            tau = candidate;
        } else {
            break;
        }
    }
    x.iter().map(|&v| v.signum() * (v.abs() - tau).max(0.0)).collect()
}

impl WidthSet for L1Ball {
    fn dim(&self) -> usize {
        self.dim
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        self.radius * vector::norm_inf(g)
    }

    /// `w(cB₁^d) = c·E max_i |g_i| ≤ c√(2 ln(2d))` — the `Θ(√log d)`
    /// width that makes Lasso-style constraint sets cheap for Mechanism 2.
    fn width_bound(&self) -> f64 {
        if self.dim <= 1 {
            return self.radius;
        }
        self.radius * (2.0 * (2.0 * self.dim as f64).ln()).sqrt()
    }

    fn diameter(&self) -> f64 {
        self.radius
    }
}

impl ConvexSet for L1Ball {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        project_l1(x, self.radius)
    }

    /// In-place soft-threshold projection: the descending magnitude sort
    /// the threshold `τ` needs runs inside `out` itself (`sort_unstable`
    /// is in-place), so the projection is allocation-free — the form the
    /// per-step mechanism lift (Algorithm 3, Step 9) iterates on.
    fn project_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), x.len(), "project_into: output length mismatch");
        if vector::norm1(x) <= self.radius {
            out.copy_from_slice(x);
            return;
        }
        for (o, &v) in out.iter_mut().zip(x) {
            *o = v.abs();
        }
        out.sort_unstable_by(|a, b| b.partial_cmp(a).expect("NaN in project_l1"));
        let mut cumsum = 0.0;
        let mut tau = 0.0;
        for (j, &u) in out.iter().enumerate() {
            cumsum += u;
            let candidate = (cumsum - self.radius) / (j as f64 + 1.0);
            if u - candidate > 0.0 {
                tau = candidate;
            } else {
                break;
            }
        }
        for (o, &v) in out.iter_mut().zip(x) {
            *o = v.signum() * (v.abs() - tau).max(0.0);
        }
    }

    fn support(&self, g: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        if let Some(i) = vector::argmax_abs(g) {
            if g[i] != 0.0 {
                out[i] = self.radius * g[i].signum();
            }
        }
        out
    }

    fn gauge(&self, x: &[f64]) -> f64 {
        vector::norm1(x) / self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_points_are_fixed() {
        let ball = L1Ball::new(3, 1.0);
        let x = [0.2, -0.3, 0.1];
        assert_eq!(ball.project(&x), x.to_vec());
    }

    #[test]
    fn projection_lands_on_boundary_for_outside_points() {
        let ball = L1Ball::new(3, 1.0);
        let p = ball.project(&[2.0, -2.0, 1.0]);
        assert!((vector::norm1(&p) - 1.0).abs() < 1e-9, "norm1 {}", vector::norm1(&p));
        // Signs are preserved, soft-thresholding shrinks uniformly.
        assert!(p[0] > 0.0 && p[1] < 0.0);
        assert!((p[0] + p[1].abs() + p[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn projection_is_exactly_soft_thresholding() {
        // Known example: project (3, 1) onto B1 => tau = (4-1)/2 = 1.5 gives
        // u1 - tau = 1.5 > 0, u2 - tau = -0.5 < 0 => rho=1, tau = 3-1 = 2.
        let ball = L1Ball::new(2, 1.0);
        let p = ball.project(&[3.0, 1.0]);
        assert!((p[0] - 1.0).abs() < 1e-12);
        assert!(p[1].abs() < 1e-12);
    }

    #[test]
    fn support_picks_largest_coordinate() {
        let ball = L1Ball::new(3, 2.0);
        let g = [1.0, -4.0, 2.0];
        let s = ball.support(&g);
        assert_eq!(s, vec![0.0, -2.0, 0.0]);
        assert!((vector::dot(&s, &g) - ball.support_value(&g)).abs() < 1e-12);
    }

    #[test]
    fn gauge_is_scaled_l1_norm() {
        let ball = L1Ball::new(2, 2.0);
        assert!((ball.gauge(&[1.0, -1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn width_is_logarithmic_in_dimension() {
        let w10 = L1Ball::unit(10).width_bound();
        let w10000 = L1Ball::unit(10_000).width_bound();
        assert!(w10000 / w10 < 2.0, "polylog growth expected");
        assert!(w10000 < 5.0);
    }

    #[test]
    fn zero_gradient_support_is_origin() {
        let ball = L1Ball::new(2, 1.0);
        assert_eq!(ball.support(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn project_into_is_identical_to_project() {
        let ball = L1Ball::new(5, 1.5);
        let cases: [&[f64]; 4] = [
            &[0.2, -0.3, 0.1, 0.0, 0.05],  // interior: copied through
            &[2.0, -2.0, 1.0, 0.5, -0.25], // exterior: thresholded
            &[3.0, 1.0, 0.0, 0.0, 0.0],    // sparse exterior
            &[-0.4, 0.4, -0.4, 0.4, -0.4], // ties in the sort
        ];
        let mut out = [7.0; 5]; // dirty buffer must be fully overwritten
        for x in cases {
            ball.project_into(x, &mut out);
            assert_eq!(out.to_vec(), ball.project(x), "x = {x:?}");
        }
    }
}
