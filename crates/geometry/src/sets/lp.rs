//! Lp balls for `1 < p < 2` — the §5.2 family interpolating between Lasso
//! (`p → 1`) and Ridge (`p = 2`), with `w(cB_p^d) = O(c·d^{1−1/p})`.

use crate::traits::{ConvexSet, WidthSet};
use pir_linalg::vector;

/// Lp ball `{θ : ‖θ‖_p ≤ radius}` with `1 < p < 2`.
///
/// (Use [`crate::L1Ball`] / [`crate::L2Ball`] for the endpoints — their
/// projections have cheaper closed forms.)
#[derive(Debug, Clone)]
pub struct LpBall {
    dim: usize,
    p: f64,
    radius: f64,
}

impl LpBall {
    /// New ball; requires `1 < p < 2` and a positive finite radius.
    ///
    /// # Panics
    /// Panics on parameters outside those ranges.
    pub fn new(dim: usize, p: f64, radius: f64) -> Self {
        assert!(p > 1.0 && p < 2.0, "LpBall requires 1 < p < 2 (got {p})");
        assert!(radius.is_finite() && radius > 0.0, "LpBall radius must be positive");
        LpBall { dim, p, radius }
    }

    /// The exponent `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The radius `c`.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Hölder-dual exponent `q = p/(p−1)`.
    fn q(&self) -> f64 {
        self.p / (self.p - 1.0)
    }
}

/// Solve `t + λ p t^{p−1} = a` for `t ∈ [0, a]`, `a ≥ 0`.
///
/// The left side is continuous and strictly increasing on `[0, ∞)` with
/// value `0 ≤ a` at `t = 0` and `≥ a` at `t = a`, so bisection converges
/// unconditionally (Newton is unreliable near 0 because `t^{p−2} → ∞`).
fn solve_coordinate(a: f64, lambda: f64, p: f64) -> f64 {
    if a == 0.0 || lambda == 0.0 {
        return a;
    }
    let (mut lo, mut hi) = (0.0, a);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        let val = mid + lambda * p * mid.powf(p - 1.0);
        if val < a {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// KKT projection onto the Lp ball: outer bisection on the multiplier `λ`,
/// inner per-coordinate scalar solves. `‖θ(λ)‖_p` is continuous and
/// strictly decreasing in `λ`, with `θ(0) = x` (‖·‖ₚ > r when outside) and
/// `θ(λ) → 0` as `λ → ∞`, so the boundary value `r` is bracketed.
fn project_lp(x: &[f64], p: f64, r: f64) -> Vec<f64> {
    if vector::norm_p(x, p) <= r {
        return x.to_vec();
    }
    let solve_at = |lambda: f64| -> Vec<f64> {
        x.iter().map(|&v| v.signum() * solve_coordinate(v.abs(), lambda, p)).collect()
    };
    // Bracket λ by doubling until the solution falls inside the ball.
    let mut hi = 1.0;
    for _ in 0..200 {
        if vector::norm_p(&solve_at(hi), p) <= r {
            break;
        }
        hi *= 2.0;
    }
    let mut lo = 0.0;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if vector::norm_p(&solve_at(mid), p) > r {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    solve_at(0.5 * (lo + hi))
}

impl WidthSet for LpBall {
    fn dim(&self) -> usize {
        self.dim
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        // Hölder: sup_{‖a‖_p ≤ r} ⟨a, g⟩ = r‖g‖_q.
        self.radius * vector::norm_p(g, self.q())
    }

    /// `w(cB_p^d) ≈ c·d^{1−1/p}` (§2 of the paper).
    fn width_bound(&self) -> f64 {
        self.radius * (self.dim as f64).powf(1.0 - 1.0 / self.p)
    }

    fn diameter(&self) -> f64 {
        // B_p ⊂ B_2 scaled: max ‖θ‖₂ over ‖θ‖_p ≤ r is r (attained at a
        // standard basis vector) because p < 2 implies ‖θ‖₂ ≤ ‖θ‖_p.
        self.radius
    }
}

impl ConvexSet for LpBall {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        project_lp(x, self.p, self.radius)
    }

    fn support(&self, g: &[f64]) -> Vec<f64> {
        let q = self.q();
        let nq = vector::norm_p(g, q);
        if nq == 0.0 {
            return vec![0.0; self.dim];
        }
        // Gradient of the dual norm: a_i = r·sign(g_i)|g_i|^{q−1}/‖g‖_q^{q−1}.
        g.iter().map(|&gi| self.radius * gi.signum() * (gi.abs() / nq).powf(q - 1.0)).collect()
    }

    fn gauge(&self, x: &[f64]) -> f64 {
        vector::norm_p(x, self.p) / self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_points_are_fixed() {
        let ball = LpBall::new(3, 1.5, 1.0);
        let x = [0.3, -0.2, 0.1];
        assert_eq!(ball.project(&x), x.to_vec());
    }

    #[test]
    fn projection_lands_on_boundary() {
        let ball = LpBall::new(3, 1.5, 1.0);
        let p = ball.project(&[2.0, -1.0, 0.5]);
        let n = vector::norm_p(&p, 1.5);
        assert!((n - 1.0).abs() < 1e-6, "boundary norm {n}");
    }

    #[test]
    fn projection_is_optimal_against_candidates() {
        // No feasible candidate should be closer to x than the projection.
        let ball = LpBall::new(2, 1.3, 1.0);
        let x = [3.0, 1.0];
        let p = ball.project(&x);
        let d_star = vector::distance(&x, &p);
        for cand in [[1.0, 0.0], [0.0, 1.0], [0.7, 0.5], [-0.2, 0.3]] {
            if vector::norm_p(&cand, 1.3) <= 1.0 {
                assert!(vector::distance(&x, &cand) >= d_star - 1e-7);
            }
        }
    }

    #[test]
    fn support_attains_hoelder_bound() {
        let ball = LpBall::new(3, 1.5, 2.0);
        let g = [1.0, -2.0, 0.5];
        let s = ball.support(&g);
        let attained = vector::dot(&s, &g);
        assert!((attained - ball.support_value(&g)).abs() < 1e-9);
        // And s is feasible.
        assert!(vector::norm_p(&s, 1.5) <= 2.0 + 1e-9);
    }

    #[test]
    fn width_between_l1_and_l2_orders() {
        let d = 10_000usize;
        let l1ish = LpBall::new(d, 1.01, 1.0).width_bound();
        let l2ish = LpBall::new(d, 1.99, 1.0).width_bound();
        assert!(l1ish < l2ish);
        assert!(l2ish < (d as f64).sqrt() * 1.01);
    }

    #[test]
    #[should_panic(expected = "1 < p < 2")]
    fn rejects_out_of_range_p() {
        let _ = LpBall::new(2, 2.0, 1.0);
    }
}
