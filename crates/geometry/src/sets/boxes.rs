//! Axis-aligned boxes and the symmetric L∞ ball.

use crate::traits::{ConvexSet, WidthSet};
use pir_linalg::vector;

/// General axis-aligned box `Π_i [lo_i, hi_i]`.
#[derive(Debug, Clone)]
pub struct BoxSet {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoxSet {
    /// New box from per-coordinate bounds.
    ///
    /// # Panics
    /// Panics if lengths differ, any bound is non-finite, or `lo_i > hi_i`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "BoxSet bounds must have equal length");
        for (l, h) in lo.iter().zip(&hi) {
            assert!(l.is_finite() && h.is_finite() && l <= h, "BoxSet needs finite lo <= hi");
        }
        BoxSet { lo, hi }
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }
}

impl WidthSet for BoxSet {
    fn dim(&self) -> usize {
        self.lo.len()
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        g.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&gi, (&l, &h))| if gi >= 0.0 { gi * h } else { gi * l })
            .sum()
    }

    /// `w(box) ≤ √(2/π)·Σ_i (hi_i − lo_i)/2 + |center|-term`; we report the
    /// standard bound for the centered box of half-widths `r_i`:
    /// `E Σ r_i |g_i| = √(2/π) Σ r_i`, plus the center's norm.
    fn width_bound(&self) -> f64 {
        let half_sum: f64 = self.lo.iter().zip(&self.hi).map(|(l, h)| (h - l) / 2.0).sum();
        let center_norm = {
            let c: Vec<f64> = self.lo.iter().zip(&self.hi).map(|(l, h)| (l + h) / 2.0).collect();
            vector::norm2(&c)
        };
        (2.0 / std::f64::consts::PI).sqrt() * half_sum + center_norm
    }

    fn diameter(&self) -> f64 {
        // sup ‖θ‖ over the box: per coordinate pick the larger |bound|.
        self.lo.iter().zip(&self.hi).map(|(l, h)| l.abs().max(h.abs()).powi(2)).sum::<f64>().sqrt()
    }
}

impl ConvexSet for BoxSet {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        x.iter().zip(self.lo.iter().zip(&self.hi)).map(|(&v, (&l, &h))| v.clamp(l, h)).collect()
    }

    fn project_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.lo.len(), "project_into: output length mismatch");
        for ((o, &v), (&l, &h)) in out.iter_mut().zip(x).zip(self.lo.iter().zip(&self.hi)) {
            *o = v.clamp(l, h);
        }
    }

    fn support(&self, g: &[f64]) -> Vec<f64> {
        g.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .map(|(&gi, (&l, &h))| if gi >= 0.0 { h } else { l })
            .collect()
    }
}

/// Symmetric L∞ ball `c·B∞^d = [−c, c]^d`.
#[derive(Debug, Clone)]
pub struct LinfBall {
    dim: usize,
    radius: f64,
}

impl LinfBall {
    /// New ball; `radius` must be positive and finite.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite radius.
    pub fn new(dim: usize, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "LinfBall radius must be positive");
        LinfBall { dim, radius }
    }

    /// The radius `c`.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

impl WidthSet for LinfBall {
    fn dim(&self) -> usize {
        self.dim
    }

    fn support_value(&self, g: &[f64]) -> f64 {
        self.radius * vector::norm1(g)
    }

    /// `w(cB∞^d) = c·E‖g‖₁ = c·d·√(2/π)` — linear in `d` (§2), the
    /// *expensive* end of the constraint-set spectrum.
    fn width_bound(&self) -> f64 {
        self.radius * self.dim as f64 * (2.0 / std::f64::consts::PI).sqrt()
    }

    fn diameter(&self) -> f64 {
        self.radius * (self.dim as f64).sqrt()
    }
}

impl ConvexSet for LinfBall {
    fn project(&self, x: &[f64]) -> Vec<f64> {
        x.iter().map(|&v| v.clamp(-self.radius, self.radius)).collect()
    }

    fn project_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), x.len(), "project_into: output length mismatch");
        for (o, &v) in out.iter_mut().zip(x) {
            *o = v.clamp(-self.radius, self.radius);
        }
    }

    fn support(&self, g: &[f64]) -> Vec<f64> {
        g.iter().map(|&gi| if gi >= 0.0 { self.radius } else { -self.radius }).collect()
    }

    fn gauge(&self, x: &[f64]) -> f64 {
        vector::norm_inf(x) / self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_projection_clamps() {
        let b = BoxSet::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        assert_eq!(b.project(&[2.0, -3.0]), vec![1.0, -1.0]);
        assert_eq!(b.project(&[0.5, 0.0]), vec![0.5, 0.0]);
    }

    #[test]
    fn box_support_picks_corners() {
        let b = BoxSet::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        let g = [1.0, -2.0];
        let s = b.support(&g);
        assert_eq!(s, vec![1.0, -1.0]);
        assert!((pir_linalg::vector::dot(&s, &g) - b.support_value(&g)).abs() < 1e-12);
    }

    #[test]
    fn linf_gauge_and_membership() {
        let b = LinfBall::new(3, 2.0);
        assert!((b.gauge(&[2.0, 1.0, -2.0]) - 1.0).abs() < 1e-12);
        assert!(b.contains(&[1.0, 1.0, 1.0], 1e-9));
        assert!(!b.contains(&[3.0, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn linf_width_linear_in_d() {
        let w = LinfBall::new(100, 1.0).width_bound();
        assert!((w - 100.0 * (2.0 / std::f64::consts::PI).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn box_diameter_uses_farthest_corner() {
        let b = BoxSet::new(vec![-3.0, 0.0], vec![1.0, 4.0]);
        assert!((b.diameter() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn rejects_inverted_bounds() {
        let _ = BoxSet::new(vec![1.0], vec![0.0]);
    }
}
