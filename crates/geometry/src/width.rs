//! Monte-Carlo estimation of Gaussian width (Definition 3):
//! `w(S) = E_{g ∼ N(0, I_d)} [sup_{a ∈ S} ⟨a, g⟩]`.
//!
//! The analytic `width_bound`s on the sets are upper bounds tight up to
//! universal constants; this estimator gives the actual value, used by the
//! experiment harness (E6) to report measured widths next to measured
//! excess risks, and by Algorithm 3 callers who want a data-driven `m`.

use crate::traits::WidthSet;
use pir_dp::NoiseRng;

/// Monte-Carlo width estimate with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WidthEstimate {
    /// Sample mean of `sup_{a∈S} ⟨a, g⟩` over the Gaussian draws.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Number of Gaussian draws used.
    pub samples: usize,
}

/// Estimate `w(S)` with `samples` i.i.d. standard Gaussian directions.
///
/// # Panics
/// Panics if `samples == 0`.
pub fn monte_carlo<S: WidthSet + ?Sized>(
    set: &S,
    samples: usize,
    rng: &mut NoiseRng,
) -> WidthEstimate {
    assert!(samples > 0, "need at least one sample");
    let d = set.dim();
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for _ in 0..samples {
        let g = rng.gaussian_vec(d, 1.0);
        let v = set.support_value(&g);
        sum += v;
        sum_sq += v * v;
    }
    let n = samples as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    WidthEstimate { mean, std_error: (var / n).sqrt(), samples }
}

/// Combined width `W = w(X) + w(C)` (the quantity in Theorem 5.7), using
/// the analytic bounds.
pub fn combined_width_bound(domain: &dyn WidthSet, constraint: &dyn WidthSet) -> f64 {
    domain.width_bound() + constraint.width_bound()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::{KSparseDomain, L1Ball, L2Ball, LinfBall, Simplex};

    fn rng() -> NoiseRng {
        NoiseRng::seed_from_u64(2024)
    }

    #[test]
    fn l2_ball_width_is_close_to_sqrt_d() {
        // E‖g‖₂ ∈ [√(d−1), √d]; MC should land within a few std errors.
        let set = L2Ball::unit(64);
        let est = monte_carlo(&set, 4000, &mut rng());
        assert!((est.mean - 8.0).abs() < 0.2, "mean {}", est.mean);
        assert!(est.mean <= set.width_bound() + 3.0 * est.std_error);
    }

    #[test]
    fn l1_ball_width_matches_log_growth_and_bound() {
        let set = L1Ball::unit(1000);
        let est = monte_carlo(&set, 4000, &mut rng());
        // E max|g_i| for d=1000 is ≈ 3.24; bound is √(2 ln 2000) ≈ 3.90.
        assert!(est.mean > 2.5 && est.mean < set.width_bound(), "mean {}", est.mean);
    }

    #[test]
    fn simplex_width_close_to_l1_half() {
        // Simplex support is max g_i (one-sided); its width is slightly
        // below the (two-sided) L1-ball width.
        let sim = Simplex::standard(1000);
        let l1 = L1Ball::unit(1000);
        let ws = monte_carlo(&sim, 3000, &mut rng()).mean;
        let w1 = monte_carlo(&l1, 3000, &mut rng()).mean;
        assert!(ws < w1);
        assert!(ws > 0.5 * w1);
    }

    #[test]
    fn linf_width_is_linear_in_d() {
        let set = LinfBall::new(50, 1.0);
        let est = monte_carlo(&set, 2000, &mut rng());
        let expect = 50.0 * (2.0 / std::f64::consts::PI).sqrt();
        assert!((est.mean - expect).abs() / expect < 0.05, "mean {}", est.mean);
    }

    #[test]
    fn ksparse_width_between_orders() {
        let dom = KSparseDomain::new(2000, 10, 1.0);
        let est = monte_carlo(&dom, 1500, &mut rng());
        // Must be well below √d ≈ 44.7 and above √k ≈ 3.16.
        assert!(est.mean < 20.0, "mean {}", est.mean);
        assert!(est.mean > 3.0, "mean {}", est.mean);
        assert!(est.mean <= dom.width_bound());
    }

    #[test]
    fn combined_width_adds() {
        let x = KSparseDomain::new(100, 5, 1.0);
        let c = L1Ball::unit(100);
        let w = combined_width_bound(&x, &c);
        assert!((w - (x.width_bound() + c.width_bound())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let set = L2Ball::unit(2);
        let _ = monte_carlo(&set, 0, &mut rng());
    }
}
