//! Gordon-theorem dimension selection (Theorem 5.1 of the paper).
//!
//! Gordon's escape-through-a-mesh theorem: a Gaussian `Φ` with `N(0, 1/m)`
//! entries satisfies `sup_{a∈S} |‖Φa‖² − ‖a‖²| ≤ γ‖a‖²` with probability
//! `≥ 1 − β` once `m ≥ (C/γ²)·max{w(S)², ln(1/β)}`. The universal constant
//! `C` is not pinned down by the theory; Algorithm 3 treats it as a knob.
//! Our default `C = 1` reproduces the asymptotics; the experiment harness
//! sweeps it in the adaptive-JL experiment (E9).

/// Parameters of the Gordon dimension rule.
#[derive(Debug, Clone, Copy)]
pub struct GordonParams {
    /// Distortion level `γ ∈ (0, 1)`.
    pub gamma: f64,
    /// Failure probability `β ∈ (0, 1)`.
    pub beta: f64,
    /// Universal constant `C > 0` (default 1.0).
    pub constant: f64,
}

impl GordonParams {
    /// New parameter set with the default constant.
    ///
    /// # Panics
    /// Panics unless `γ, β ∈ (0, 1)`.
    pub fn new(gamma: f64, beta: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0,1), got {gamma}");
        assert!(beta > 0.0 && beta < 1.0, "beta must lie in (0,1), got {beta}");
        GordonParams { gamma, beta, constant: 1.0 }
    }

    /// Override the universal constant.
    ///
    /// # Panics
    /// Panics unless `c > 0`.
    pub fn with_constant(mut self, c: f64) -> Self {
        assert!(c > 0.0, "Gordon constant must be positive");
        self.constant = c;
        self
    }
}

/// Projected dimension `m = ⌈(C/γ²)·max{W², ln(1/β)}⌉`, clamped to
/// `[1, d]` (projecting to more than `d` dimensions is pointless; callers
/// should treat `m = d` as "skip the projection").
pub fn dimension(width: f64, d: usize, params: &GordonParams) -> usize {
    assert!(width >= 0.0 && width.is_finite(), "width must be finite and non-negative");
    let m = (params.constant / (params.gamma * params.gamma))
        * (width * width).max((1.0 / params.beta).ln());
    (m.ceil() as usize).clamp(1, d.max(1))
}

/// Algorithm 3's distortion choice `γ = (w(X) + w(C))^{1/3} / T^{1/3}`,
/// clamped into `(0, 1)` (the theory regime; for tiny `T` relative to `W`
/// the projection cannot help and `γ` saturates just below 1).
pub fn gamma_for(width: f64, t: usize) -> f64 {
    assert!(t >= 1, "stream length must be positive");
    let g = (width.max(1e-12) / t as f64).cbrt();
    g.clamp(1e-6, 0.999)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_scales_with_width_squared_over_gamma_squared() {
        let p = GordonParams::new(0.1, 0.01);
        let m1 = dimension(4.0, 1_000_000, &p);
        let m2 = dimension(8.0, 1_000_000, &p);
        // Doubling the width quadruples m (once past the log(1/β) floor).
        assert!((m2 as f64 / m1 as f64 - 4.0).abs() < 0.05, "{m1} vs {m2}");
    }

    #[test]
    fn dimension_clamped_to_ambient() {
        let p = GordonParams::new(0.01, 0.01);
        assert_eq!(dimension(100.0, 50, &p), 50);
        let expected = (((100.0f64).ln() / 1e-4).ceil() as usize).min(50);
        assert_eq!(dimension(0.0, 50, &p), expected);
    }

    #[test]
    fn log_beta_floor_applies_for_tiny_widths() {
        let p = GordonParams::new(0.5, 1e-6);
        let m = dimension(0.001, 10_000, &p);
        let floor = ((1e6f64).ln() / 0.25).ceil() as usize;
        assert_eq!(m, floor);
    }

    #[test]
    fn gamma_matches_algorithm3_formula() {
        let g = gamma_for(8.0, 1000);
        assert!((g - (8.0f64 / 1000.0).cbrt()).abs() < 1e-12);
        // Saturation for degenerate T.
        assert!(gamma_for(100.0, 1) < 1.0);
    }

    #[test]
    fn constant_knob_scales_linearly() {
        let p1 = GordonParams::new(0.1, 0.01);
        let p2 = GordonParams::new(0.1, 0.01).with_constant(2.0);
        let m1 = dimension(3.0, usize::MAX, &p1);
        let m2 = dimension(3.0, usize::MAX, &p2);
        assert!((m2 as f64 / m1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let _ = GordonParams::new(1.5, 0.1);
    }
}
