//! # pir-sketch
//!
//! Gaussian random projections for Algorithm 3 (`PrivIncReg2`).
//!
//! A sketch `Φ ∈ R^{m×d}` has i.i.d. `N(0, 1/m)` entries. Two results
//! govern its use in the paper:
//!
//! - **Johnson–Lindenstrauss**: pairwise geometry of any *fixed* point set
//!   survives with `m = O(log n / γ²)` — but the guarantee breaks down for
//!   *adaptively chosen* points, exactly the situation of a private stream
//!   whose adversary sees releases that depend on `Φ`.
//! - **Gordon's theorem** (Theorem 5.1 / Corollary 5.2 of the paper): for
//!   an entire *set* `S`, `sup_{a∈S} |‖Φa‖² − ‖a‖²| ≤ γ‖a‖²` w.h.p. once
//!   `m ≳ max{w(S)², log(1/β)}/γ²`. Because the bound covers every point
//!   of `S` simultaneously, adaptivity within `S` is harmless — this is
//!   why Algorithm 3 sizes `m` by Gaussian width, not by stream length.
//!
//! [`gordon::dimension`] implements the `m` rule,
//! [`gordon::gamma_for`] the `γ = W^{1/3}/T^{1/3}` trade-off of
//! Algorithm 3, and [`GaussianSketch`] the projection itself together with
//! the norm-preserving rescaling `x̃ = (‖x‖/‖Φx‖)·x` (Step 4).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod gordon;

use pir_dp::NoiseRng;
use pir_linalg::{LinalgError, Matrix};

/// A sampled Gaussian projection `Φ ∈ R^{m×d}` with i.i.d. `N(0, 1/m)`
/// entries.
#[derive(Debug, Clone)]
pub struct GaussianSketch {
    phi: Matrix,
}

impl GaussianSketch {
    /// Sample a fresh `m × d` sketch.
    ///
    /// # Panics
    /// Panics if `m == 0` or `d == 0`.
    pub fn sample(m: usize, d: usize, rng: &mut NoiseRng) -> Self {
        assert!(m > 0 && d > 0, "sketch dimensions must be positive");
        let sigma = 1.0 / (m as f64).sqrt();
        let data = rng.gaussian_vec(m * d, sigma);
        // Trusted internal data: finite Gaussian deviates by construction,
        // so skip the release-mode finiteness sweep.
        let phi = Matrix::from_vec_trusted(m, d, data).expect("shape fixed by construction");
        GaussianSketch { phi }
    }

    /// Projected dimension `m`.
    pub fn m(&self) -> usize {
        self.phi.rows()
    }

    /// Ambient dimension `d`.
    pub fn d(&self) -> usize {
        self.phi.cols()
    }

    /// The raw projection matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.phi
    }

    /// Apply the sketch: `Φx ∈ R^m`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `x.len() != d`.
    pub fn apply(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.phi.matvec(x)
    }

    /// Adjoint application: `Φᵀy ∈ R^d`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `y.len() != m`.
    pub fn apply_t(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.phi.matvec_t(y)
    }

    /// [`apply`](GaussianSketch::apply) writing into a caller-provided
    /// buffer of length `m` — the allocation-free form, value-for-value
    /// identical to the allocating method.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `x.len() != d` or
    /// `out.len() != m`.
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        self.phi.matvec_into(x, out)
    }

    /// [`apply_t`](GaussianSketch::apply_t) writing into a caller-provided
    /// buffer of length `d` — the allocation-free form, value-for-value
    /// identical to the allocating method.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `y.len() != m` or
    /// `out.len() != d`.
    pub fn apply_t_into(&self, y: &[f64], out: &mut [f64]) -> Result<(), LinalgError> {
        self.phi.matvec_t_into(y, out)
    }

    /// Algorithm 3, Step 4: the projected, norm-preserving embedding
    /// `Φx̃` where `x̃ = (‖x‖/‖Φx‖)·x`, so that `‖Φx̃‖₂ = ‖x‖₂` exactly.
    /// This is what keeps the Tree-Mechanism sensitivity in the projected
    /// space equal to the original domain bound (`‖Φx̃‖ = ‖x‖ ≤ 1`).
    ///
    /// Returns `None` for `x = 0` or the measure-zero event `Φx = 0`
    /// (callers treat such covariates as the zero point, which contributes
    /// nothing to the regression objective).
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `x.len() != d`.
    pub fn embed_normalized(&self, x: &[f64]) -> Result<Option<Vec<f64>>, LinalgError> {
        let mut out = vec![0.0; self.m()];
        Ok(self.embed_normalized_into(x, &mut out)?.then_some(out))
    }

    /// [`embed_normalized`](GaussianSketch::embed_normalized) writing into
    /// a caller-provided buffer of length `m` — the allocation-free form
    /// the per-step mechanism path uses, value-for-value identical to the
    /// allocating method. Returns `false` for the degenerate cases where
    /// the allocating method returns `None` (`x = 0` or `Φx = 0`); `out`
    /// is zero-filled in that case, matching the "treat as the zero point"
    /// convention of the callers.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `x.len() != d` or
    /// `out.len() != m`.
    pub fn embed_normalized_into(&self, x: &[f64], out: &mut [f64]) -> Result<bool, LinalgError> {
        self.phi.matvec_into(x, out)?;
        let nx = pir_linalg::vector::norm2(x);
        let npx = pir_linalg::vector::norm2(out);
        if nx == 0.0 || npx == 0.0 {
            out.iter_mut().for_each(|v| *v = 0.0);
            return Ok(false);
        }
        pir_linalg::vector::scale_mut(out, nx / npx);
        Ok(true)
    }

    /// Batched [`embed_normalized`](GaussianSketch::embed_normalized):
    /// one entry per input covariate, in order. Point-for-point identical
    /// to the sequential calls; the win is amortization — `Φ` stays hot in
    /// cache across the whole batch and the per-call dimension checks are
    /// hoisted, which is what the multi-stream engine's batched ingest
    /// leans on.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if any `x.len() != d` (checked
    /// for the whole batch before any embedding is computed).
    pub fn embed_normalized_batch(
        &self,
        xs: &[&[f64]],
    ) -> Result<Vec<Option<Vec<f64>>>, LinalgError> {
        let d = self.d();
        for x in xs {
            if x.len() != d {
                return Err(LinalgError::DimensionMismatch {
                    op: "embed_normalized_batch",
                    expected: d,
                    found: x.len(),
                });
            }
        }
        xs.iter().map(|x| self.embed_normalized(x)).collect()
    }

    /// Worst squared-norm distortion over a point set:
    /// `max_i |‖Φa_i‖² − ‖a_i‖²| / ‖a_i‖²` (zero vectors are skipped).
    ///
    /// # Errors
    /// Propagates dimension mismatches.
    pub fn max_norm_distortion(&self, points: &[Vec<f64>]) -> Result<f64, LinalgError> {
        let mut worst = 0.0f64;
        for a in points {
            let na = pir_linalg::vector::norm2_sq(a);
            if na == 0.0 {
                continue;
            }
            let pa = pir_linalg::vector::norm2_sq(&self.apply(a)?);
            worst = worst.max((pa - na).abs() / na);
        }
        Ok(worst)
    }

    /// Worst inner-product distortion over point pairs:
    /// `max |⟨Φa, Φb⟩ − ⟨a, b⟩| / (‖a‖‖b‖)` (Corollary 5.2's quantity).
    ///
    /// # Errors
    /// Propagates dimension mismatches.
    pub fn max_inner_distortion(&self, points: &[Vec<f64>]) -> Result<f64, LinalgError> {
        let projected: Vec<Vec<f64>> =
            points.iter().map(|p| self.apply(p)).collect::<Result<_, _>>()?;
        let mut worst = 0.0f64;
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let denom =
                    pir_linalg::vector::norm2(&points[i]) * pir_linalg::vector::norm2(&points[j]);
                if denom == 0.0 {
                    continue;
                }
                let orig = pir_linalg::vector::dot(&points[i], &points[j]);
                let proj = pir_linalg::vector::dot(&projected[i], &projected[j]);
                worst = worst.max((proj - orig).abs() / denom);
            }
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pir_linalg::vector;

    fn rng() -> NoiseRng {
        NoiseRng::seed_from_u64(77)
    }

    #[test]
    fn shapes_and_adjoint_identity() {
        let mut r = rng();
        let s = GaussianSketch::sample(5, 20, &mut r);
        assert_eq!((s.m(), s.d()), (5, 20));
        // ⟨Φx, y⟩ = ⟨x, Φᵀy⟩.
        let x = r.gaussian_vec(20, 1.0);
        let y = r.gaussian_vec(5, 1.0);
        let lhs = vector::dot(&s.apply(&x).unwrap(), &y);
        let rhs = vector::dot(&x, &s.apply_t(&y).unwrap());
        assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn norms_preserved_in_expectation() {
        // E‖Φx‖² = ‖x‖² with variance O(1/m): averaging over 8 independent
        // sketches at m = 400 drops the standard error to ~2.5%, so a 15%
        // tolerance is ~6σ — robust to the exact bit stream of the sampler.
        let mut r = rng();
        let x = r.unit_sphere(50);
        let mean = (0..8)
            .map(|_| vector::norm2_sq(&GaussianSketch::sample(400, 50, &mut r).apply(&x).unwrap()))
            .sum::<f64>()
            / 8.0;
        assert!((mean - 1.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn embed_normalized_has_exact_norm() {
        let mut r = rng();
        let s = GaussianSketch::sample(10, 30, &mut r);
        let x = vector::scale(&r.unit_sphere(30), 0.7);
        let e = s.embed_normalized(&x).unwrap().unwrap();
        assert!((vector::norm2(&e) - 0.7).abs() < 1e-10);
        assert!(s.embed_normalized(&vec![0.0; 30]).unwrap().is_none());
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let mut r = rng();
        let s = GaussianSketch::sample(3, 7, &mut r);
        assert!(s.apply(&[1.0; 6]).is_err());
        assert!(s.apply_t(&[1.0; 7]).is_err());
    }

    #[test]
    fn distortion_shrinks_with_m() {
        let mut r = rng();
        let points: Vec<Vec<f64>> = (0..20).map(|_| r.unit_sphere(60)).collect();
        let small = GaussianSketch::sample(8, 60, &mut r);
        let large = GaussianSketch::sample(512, 60, &mut r);
        let ds = small.max_norm_distortion(&points).unwrap();
        let dl = large.max_norm_distortion(&points).unwrap();
        assert!(dl < ds, "distortion should shrink with m: {dl} !< {ds}");
        assert!(dl < 0.35, "large-m distortion too big: {dl}");
    }

    #[test]
    fn inner_products_approximately_preserved() {
        let mut r = rng();
        let points: Vec<Vec<f64>> = (0..15).map(|_| r.unit_sphere(40)).collect();
        let s = GaussianSketch::sample(600, 40, &mut r);
        let d = s.max_inner_distortion(&points).unwrap();
        assert!(d < 0.25, "inner-product distortion {d}");
    }

    #[test]
    fn reproducible_from_seed() {
        let a = GaussianSketch::sample(4, 6, &mut NoiseRng::seed_from_u64(1));
        let b = GaussianSketch::sample(4, 6, &mut NoiseRng::seed_from_u64(1));
        assert_eq!(a.matrix().as_slice(), b.matrix().as_slice());
    }
}
