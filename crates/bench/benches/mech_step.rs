//! Per-timestep cost of the two regression mechanisms — the running-time
//! discussion of §4 (Algorithm 2 is `O(d²(log T + r))` per step) and §5
//! (Algorithm 3 replaces `d²` with `m²` plus an `O(md)` lift).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pir_core::{
    IncrementalMechanism, PrivIncReg1, PrivIncReg1Config, PrivIncReg2, PrivIncReg2Config,
};
use pir_datagen::{linear_stream, sparse_theta, CovariateKind, LinearModel};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::DataPoint;
use pir_geometry::{L1Ball, L2Ball};
use std::hint::black_box;

fn stream_for(d: usize, n: usize, kind: CovariateKind, seed: u64) -> Vec<DataPoint> {
    let mut rng = NoiseRng::seed_from_u64(seed);
    let model = LinearModel { theta_star: sparse_theta(d, 2, 0.4, &mut rng), noise_std: 0.02 };
    linear_stream(n, d, kind, &model, &mut rng)
}

fn bench_mech1(c: &mut Criterion) {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut group = c.benchmark_group("mech1_observe");
    group.sample_size(20);
    // d ∈ {4, 16, 64} is the BENCH_*.json trajectory grid; 128 tracks the
    // large-d trend.
    for d in [4usize, 16, 64, 128] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            // Effectively inexhaustible horizon so Criterion can run as
            // many iterations as it likes; pre-warm so the per-step PGD
            // iteration count sits at its steady-state cap.
            let t_max = 1usize << 32;
            let mut rng = NoiseRng::seed_from_u64(5);
            let mut mech = PrivIncReg1::new(
                Box::new(L2Ball::unit(d)),
                t_max,
                &params,
                &mut rng,
                PrivIncReg1Config::default(),
            )
            .unwrap();
            let stream = stream_for(d, 64, CovariateKind::DenseSphere { radius: 0.95 }, 6);
            for z in &stream {
                mech.observe(z).unwrap();
            }
            let mut i = 0usize;
            b.iter(|| {
                let z = &stream[i % stream.len()];
                i += 1;
                black_box(mech.observe(black_box(z)).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_mech2(c: &mut Criterion) {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut group = c.benchmark_group("mech2_observe_d1000");
    group.sample_size(20);
    for m in [20usize, 50, 100] {
        group.bench_with_input(BenchmarkId::new("m", m), &m, |b, &m| {
            let d = 1000;
            let t_max = 1usize << 32;
            let mut rng = NoiseRng::seed_from_u64(7);
            let mut mech = PrivIncReg2::new(
                Box::new(L1Ball::unit(d)),
                8.0,
                t_max,
                &params,
                &mut rng,
                PrivIncReg2Config { m_override: Some(m), lift_iters: 80, ..Default::default() },
            )
            .unwrap();
            let stream = stream_for(d, 64, CovariateKind::Sparse { k: 3 }, 8);
            for z in &stream {
                mech.observe(z).unwrap();
            }
            let mut i = 0usize;
            b.iter(|| {
                let z = &stream[i % stream.len()];
                i += 1;
                black_box(mech.observe(black_box(z)).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mech1, bench_mech2);
criterion_main!(benches);
