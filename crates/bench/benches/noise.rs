//! Throughput of the raw noise path — the per-draw cost that, multiplied
//! by the `d²` draws of each completing second-moment node, dominates the
//! steady-state observe loop (see BENCH_tree_mech.json). Measures the
//! ziggurat sampler against the retained polar Box–Muller reference, and
//! the slice-filling primitives against scalar call loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pir_dp::NoiseRng;
use std::hint::black_box;

fn bench_scalar(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_scalar");
    group.throughput(Throughput::Elements(1));
    group.bench_function("gaussian_ziggurat", |b| {
        let mut rng = NoiseRng::seed_from_u64(1);
        b.iter(|| black_box(rng.standard_gaussian()));
    });
    group.bench_function("gaussian_box_muller", |b| {
        let mut rng = NoiseRng::seed_from_u64(2);
        b.iter(|| black_box(rng.standard_gaussian_box_muller()));
    });
    group.bench_function("laplace", |b| {
        let mut rng = NoiseRng::seed_from_u64(3);
        b.iter(|| black_box(rng.laplace(1.0)));
    });
    group.finish();
}

fn bench_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("noise_fill_gaussian");
    // 64 and 1024 mirror the tree_mech grid; 4096 is the d² stream width
    // of PrivIncReg1 at d = 64.
    for d in [64usize, 1024, 4096] {
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let mut rng = NoiseRng::seed_from_u64(4);
            let mut buf = vec![0.0; d];
            b.iter(|| {
                rng.fill_gaussian(&mut buf, 1.0);
                black_box(buf[d - 1])
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("noise_fill_laplace");
    group.throughput(Throughput::Elements(1024));
    group.bench_with_input(BenchmarkId::new("d", 1024), &1024usize, |b, &d| {
        let mut rng = NoiseRng::seed_from_u64(5);
        let mut buf = vec![0.0; d];
        b.iter(|| {
            rng.fill_laplace(&mut buf, 1.0);
            black_box(buf[d - 1])
        });
    });
    group.finish();
}

fn bench_unit_sphere(c: &mut Criterion) {
    // The reusable-buffer rebuild: unit_sphere_into must beat the
    // allocating unit_sphere it wraps.
    let mut group = c.benchmark_group("noise_unit_sphere");
    group.throughput(Throughput::Elements(256));
    group.bench_function("into/d/256", |b| {
        let mut rng = NoiseRng::seed_from_u64(6);
        let mut buf = vec![0.0; 256];
        b.iter(|| {
            rng.unit_sphere_into(&mut buf);
            black_box(buf[255])
        });
    });
    group.bench_function("alloc/d/256", |b| {
        let mut rng = NoiseRng::seed_from_u64(7);
        b.iter(|| black_box(rng.unit_sphere(256)));
    });
    group.finish();
}

criterion_group!(benches, bench_scalar, bench_fill, bench_unit_sphere);
criterion_main!(benches);
