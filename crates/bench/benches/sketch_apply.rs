//! Cost of the sketching front-end of Algorithm 3: projecting a covariate
//! and the norm-preserving embedding, across ambient dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pir_dp::NoiseRng;
use pir_sketch::GaussianSketch;
use std::hint::black_box;

fn bench_apply(c: &mut Criterion) {
    let m = 100usize;
    let mut group = c.benchmark_group("sketch_apply_m100");
    for d in [1000usize, 10_000] {
        let mut rng = NoiseRng::seed_from_u64(d as u64);
        let sketch = GaussianSketch::sample(m, d, &mut rng);
        let x = rng.unit_sphere(d);
        group.bench_with_input(BenchmarkId::new("apply/d", d), &d, |b, _| {
            b.iter(|| black_box(sketch.apply(black_box(&x)).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("embed_normalized/d", d), &d, |b, _| {
            b.iter(|| black_box(sketch.embed_normalized(black_box(&x)).unwrap()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sketch_sample");
    group.sample_size(20);
    for d in [1000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let mut rng = NoiseRng::seed_from_u64(9);
            b.iter(|| black_box(GaussianSketch::sample(m, d, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apply);
criterion_main!(benches);
