//! The kernel layer in isolation: blocked flat-slice primitives
//! (`pir_linalg::kernels`, `vector::axpy_n`) against the scalar
//! references that define their semantics, plus the register-local
//! Gaussian fill at widths around its former 64-word refill boundary.
//! These are the leaf operations under every row of
//! BENCH_mech_step.json — a regression here shows up there multiplied
//! by `d²`/`m²`.
//!
//! The `*_ref` rows are not dead weight: the blocked/ref ratio is the
//! direct measurement of what register blocking buys on this machine,
//! and `kernel_identity.rs` proves the two sides are bit-identical, so
//! the ratio is a pure-speed comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pir_dp::NoiseRng;
use pir_linalg::{kernels, vector};
use std::hint::black_box;

/// Deterministic pseudo-data: cheap, nonzero, no RNG draw order to keep
/// stable across PRs.
fn ramp(n: usize, scale: f64) -> Vec<f64> {
    (0..n).map(|i| scale * (1.0 + 0.001 * i as f64) * if i % 2 == 0 { 1.0 } else { -1.0 }).collect()
}

fn bench_set_outer(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_set_outer");
    // 16/64 mirror the mech_step mech1 grid; 128 is the largest d the
    // mech_step trajectory tracks.
    for d in [16usize, 64, 128] {
        group.throughput(Throughput::Elements((d * d) as u64));
        let u = ramp(d, 0.5);
        let v = ramp(d, 0.25);
        group.bench_with_input(BenchmarkId::new("blocked/d", d), &d, |b, &d| {
            let mut out = vec![0.0; d * d];
            b.iter(|| {
                kernels::set_outer(&u, &v, &mut out);
                black_box(out[d * d - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("ref/d", d), &d, |b, &d| {
            let mut out = vec![0.0; d * d];
            b.iter(|| {
                kernels::set_outer_ref(&u, &v, &mut out);
                black_box(out[d * d - 1])
            });
        });
    }
    group.finish();
}

fn bench_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_matvec");
    // Square d×d: the descent gradient shape. 100×1000 is the sketch
    // application (m=100, d=1000) from the mech2 trajectory row.
    for (rows, cols) in [(64usize, 64usize), (256, 256), (100, 1000)] {
        let label = format!("{rows}x{cols}");
        group.throughput(Throughput::Elements((rows * cols) as u64));
        let a = ramp(rows * cols, 0.01);
        let x = ramp(cols, 0.5);
        // `blocked` is the tiled variant `matvec_blocked`, NOT what
        // `Matrix::matvec` runs: the production form is the per-row dot
        // sweep because the tiled form needs per-element lane broadcasts
        // SSE2 lacks (see the `kernels::matvec` docs). The rows keep
        // measuring the rejected form so the choice is re-examined, not
        // re-litigated, when the target changes.
        group.bench_with_input(BenchmarkId::new("blocked", &label), &rows, |b, &rows| {
            let mut out = vec![0.0; rows];
            b.iter(|| {
                kernels::matvec_blocked(cols, &a, &x, &mut out);
                black_box(out[rows - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("ref", &label), &rows, |b, &rows| {
            let mut out = vec![0.0; rows];
            b.iter(|| {
                kernels::matvec_ref(cols, &a, &x, &mut out);
                black_box(out[rows - 1])
            });
        });
    }
    group.finish();
}

fn bench_axpy_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_axpy_n");
    // The tree release walk folds up to log2(T) node slices into the
    // running sum; 2/4/8 lanes bracket the realistic popcount(t) range
    // at d = 1024 (the tree_mech grid's largest width).
    let d = 1024usize;
    let backing: Vec<Vec<f64>> = (0..8).map(|i| ramp(d, 0.1 * (i + 1) as f64)).collect();
    for lanes in [2usize, 4, 8] {
        group.throughput(Throughput::Elements((lanes * d) as u64));
        let xs: Vec<&[f64]> = backing[..lanes].iter().map(Vec::as_slice).collect();
        group.bench_with_input(BenchmarkId::new("fused/lanes", lanes), &lanes, |b, _| {
            let mut y = vec![0.0; d];
            b.iter(|| {
                vector::axpy_n(1.0, &xs, &mut y);
                black_box(y[d - 1])
            });
        });
        group.bench_with_input(BenchmarkId::new("ref/lanes", lanes), &lanes, |b, _| {
            let mut y = vec![0.0; d];
            b.iter(|| {
                vector::axpy_n_ref(1.0, &xs, &mut y);
                black_box(y[d - 1])
            });
        });
    }
    group.finish();
}

fn bench_fill_gaussian_blocks(c: &mut Criterion) {
    // The bulk fill samples on a register-local copy of the RNG state,
    // written back once per call (a 64-word refill buffer was tried and
    // measured as a strict pessimization — see the `NoiseRng` docs);
    // 63/64/65 pin the widths that straddled the abandoned block
    // boundary, 4096 is the d² stream width of PrivIncReg1 at d = 64
    // (the steady-state noise cost under BENCH_mech_step.json).
    let mut group = c.benchmark_group("kernels_fill_gaussian");
    for d in [63usize, 64, 65, 4096] {
        group.throughput(Throughput::Elements(d as u64));
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let mut rng = NoiseRng::seed_from_u64(9);
            let mut buf = vec![0.0; d];
            b.iter(|| {
                rng.fill_gaussian(&mut buf, 1.0);
                black_box(buf[d - 1])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_set_outer, bench_matvec, bench_axpy_n, bench_fill_gaussian_blocks);
criterion_main!(benches);
