//! Euclidean-projection cost per constraint set — the dominant inner-loop
//! operation of `NOISYPROJGRAD` and the lifting FISTA.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pir_dp::NoiseRng;
use pir_geometry::{
    ConvexSet, GroupL1Ball, L1Ball, L2Ball, LinfBall, LpBall, PolytopeHull, Simplex,
};
use std::hint::black_box;

fn bench_projections(c: &mut Criterion) {
    let d = 1000usize;
    let mut rng = NoiseRng::seed_from_u64(1);
    let x: Vec<f64> = rng.gaussian_vec(d, 1.0);

    let sets: Vec<(&str, Box<dyn ConvexSet>)> = vec![
        ("l2", Box::new(L2Ball::unit(d))),
        ("l1", Box::new(L1Ball::unit(d))),
        ("linf", Box::new(LinfBall::new(d, 0.5))),
        ("simplex", Box::new(Simplex::standard(d))),
        ("group_l1_k10", Box::new(GroupL1Ball::new(d, 10, 1.0))),
        ("lp_1.5", Box::new(LpBall::new(d, 1.5, 1.0))),
    ];
    let mut group = c.benchmark_group("projection_d1000");
    for (name, set) in &sets {
        group.bench_with_input(BenchmarkId::from_parameter(name), set, |b, set| {
            b.iter(|| black_box(set.project(black_box(&x))));
        });
    }
    group.finish();

    // The hull projection is iterative; bench at a smaller dimension.
    let dh = 100usize;
    let hull = PolytopeHull::cross_polytope(dh, 1.0).with_projection_iters(300);
    let xh: Vec<f64> = rng.gaussian_vec(dh, 1.0);
    c.bench_function("projection_hull_d100_fw300", |b| {
        b.iter(|| black_box(hull.project(black_box(&xh))));
    });
}

criterion_group!(benches, bench_projections);
criterion_main!(benches);
