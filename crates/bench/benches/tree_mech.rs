//! Computational cost of the Tree Mechanism: per-update time vs dimension
//! and horizon — the `O(d log T)` space / amortized `O(d)` time claims of
//! Appendix C.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pir_continual::TreeMechanism;
use pir_dp::{NoiseRng, PrivacyParams};
use std::hint::black_box;

fn bench_updates(c: &mut Criterion) {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut group = c.benchmark_group("tree_mech_update");
    // {4, 16, 64} is the BENCH_*.json trajectory grid; 1024 covers the
    // d²-flattened second-moment streams of PrivIncReg1.
    for d in [4usize, 16, 64, 1024] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            // Horizon far beyond any iteration count Criterion will run
            // (memory is only O(d log T), so a 2^40 horizon is cheap).
            let mut mech =
                TreeMechanism::new(d, 1 << 40, 1.0, &params, NoiseRng::seed_from_u64(1)).unwrap();
            let mut rng = NoiseRng::seed_from_u64(2);
            let v = rng.unit_sphere(d);
            b.iter(|| {
                let out = mech.update(black_box(&v)).unwrap();
                black_box(out)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("tree_mech_horizon");
    group.sample_size(20);
    for log_t in [24u32, 32, 40] {
        group.bench_with_input(BenchmarkId::new("log2_T", log_t), &log_t, |b, &log_t| {
            let mut mech =
                TreeMechanism::new(64, 1usize << log_t, 1.0, &params, NoiseRng::seed_from_u64(3))
                    .unwrap();
            let mut rng = NoiseRng::seed_from_u64(4);
            let v = rng.unit_sphere(64);
            b.iter(|| {
                let out = mech.update(black_box(&v)).unwrap();
                black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
