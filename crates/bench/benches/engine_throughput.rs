//! Multi-stream engine throughput: points/sec through `ingest` as a
//! function of shard count, at a fleet size of ≥ 1000 concurrent
//! sessions — the scaling claim of the serving layer. The curve is
//! measured end-to-end through the **pipelined** frontend
//! (`EngineHandle::ingest`), with the direct synchronous
//! `ShardedEngine::ingest` as the baseline the pipeline must not regress
//! (budget: 10% on one core; see `docs/OPERATIONS.md` for how to read
//! the output).
//!
//! Also benches batched vs sequential observation on one session, which
//! isolates the `observe_batch` amortization from the sharding win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pir_core::PrivIncReg1Config;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_engine::{
    EngineConfig, EngineHandle, FsyncPolicy, IngressConfig, MechanismSpec, ShardedEngine,
    SpillOptions, WalOptions,
};
use pir_erm::DataPoint;
use std::hint::black_box;
use std::path::PathBuf;

const SESSIONS: u64 = 1024;
const DIM: usize = 8;

fn valid_point(rng: &mut NoiseRng) -> DataPoint {
    let x: Vec<f64> = rng.unit_sphere(DIM).iter().map(|v| 0.9 * v).collect();
    let y = (0.8 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}

/// One mixed batch: a point for every session in the fleet.
fn fleet_batch(rng: &mut NoiseRng) -> Vec<(u64, DataPoint)> {
    (0..SESSIONS).map(|sid| (sid, valid_point(rng))).collect()
}

fn build_engine(num_shards: usize) -> ShardedEngine {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut engine =
        ShardedEngine::new(EngineConfig { num_shards, seed: 11, parallel: num_shards > 1 })
            .unwrap();
    // An effectively inexhaustible horizon so the bench can run as many
    // iterations as it likes.
    let spec = MechanismSpec::Reg1 {
        set: pir_engine::SetSpec::unit_l2(DIM),
        config: PrivIncReg1Config { max_pgd_iters: 16, ..Default::default() },
    };
    engine.spawn_sessions(0..SESSIONS, &spec, 1usize << 32, &params).unwrap();
    engine
}

fn build_handle(num_shards: usize) -> EngineHandle {
    build_handle_with(num_shards, None)
}

fn build_handle_with(num_shards: usize, wal: Option<&WalOptions>) -> EngineHandle {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let config = IngressConfig {
        num_shards,
        seed: 11,
        // Deep enough that a whole fleet batch fits any single shard.
        queue_depth: 4 * SESSIONS as usize,
    };
    let handle = match wal {
        None => EngineHandle::new(config).unwrap(),
        Some(options) => EngineHandle::with_wal(config, options).unwrap().0,
    };
    let spec = MechanismSpec::Reg1 {
        set: pir_engine::SetSpec::unit_l2(DIM),
        config: PrivIncReg1Config { max_pgd_iters: 16, ..Default::default() },
    };
    for sid in 0..SESSIONS {
        handle.open(sid, &spec, 1usize << 32, &params).unwrap();
    }
    handle.flush();
    handle
}

/// The headline curve: fleet batches through the pipelined frontend.
fn bench_pipelined_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelined_ingest_1024_sessions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SESSIONS));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let handle = build_handle(shards);
            let mut rng = NoiseRng::seed_from_u64(5);
            b.iter(|| {
                let batch = fleet_batch(&mut rng);
                black_box(handle.ingest(black_box(batch)))
            });
            handle.close();
        });
    }
    group.finish();
}

/// The durability tax: identical fleet batches through the pipelined
/// frontend with the write-ahead log off, on with `FsyncPolicy::Off`
/// (kill-safe, not power-loss-safe), and on with the default interval
/// fsync (the recommended production mode; budget ≤ 10% over unlogged —
/// see `docs/OPERATIONS.md`).
fn bench_wal_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_logged_vs_unlogged_1024_sessions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SESSIONS));
    let modes: [(&str, Option<FsyncPolicy>); 3] = [
        ("unlogged", None),
        ("fsync_off", Some(FsyncPolicy::Off)),
        ("fsync_interval4096", Some(FsyncPolicy::Interval { every: 4096 })),
    ];
    for (label, fsync) in modes {
        group.bench_with_input(BenchmarkId::new("mode", label), &fsync, |b, fsync| {
            let dir: Option<PathBuf> = fsync.map(|_| {
                std::env::temp_dir().join(format!("pir-bench-wal-{}-{label}", std::process::id()))
            });
            if let Some(d) = &dir {
                let _ = std::fs::remove_dir_all(d);
            }
            let options = dir.as_ref().zip(*fsync).map(|(d, fsync)| {
                let mut o = WalOptions::new(d);
                o.fsync = fsync;
                o
            });
            let handle = build_handle_with(2, options.as_ref());
            let mut rng = NoiseRng::seed_from_u64(5);
            b.iter(|| {
                let batch = fleet_batch(&mut rng);
                black_box(handle.ingest(black_box(batch)))
            });
            handle.close();
            if let Some(d) = &dir {
                let _ = std::fs::remove_dir_all(d);
            }
        });
    }
    group.finish();
}

/// The spill-tier tax, in both regimes: `resident` keeps the cap above
/// the fleet so the LRU only does bookkeeping (budget ≤ 2% over
/// `no_spill` — spilling you don't use must be near-free), while
/// `cold_restore` squeezes 512 sessions/shard through a 64-session cap,
/// so nearly every point pays a snapshot write + in-band restore — the
/// `spill_restore_latency` row in `BENCH_engine.json`.
fn bench_spill_restore_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("spill_restore_latency");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SESSIONS));
    let modes: [(&str, Option<usize>); 3] =
        [("no_spill", None), ("resident", Some(SESSIONS as usize)), ("cold_restore", Some(64))];
    for (label, cap) in modes {
        group.bench_with_input(BenchmarkId::new("mode", label), &cap, |b, cap| {
            let dir = cap.map(|_| {
                std::env::temp_dir().join(format!("pir-bench-spill-{}-{label}", std::process::id()))
            });
            if let Some(d) = &dir {
                let _ = std::fs::remove_dir_all(d);
            }
            let spill = dir.as_ref().zip(*cap).map(|(d, resident_cap)| SpillOptions {
                resident_cap,
                ..SpillOptions::new(d.clone())
            });
            let handle = build_handle_spill(2, spill.as_ref());
            let mut rng = NoiseRng::seed_from_u64(5);
            b.iter(|| {
                let batch = fleet_batch(&mut rng);
                black_box(handle.ingest(black_box(batch)))
            });
            handle.close();
            if let Some(d) = &dir {
                let _ = std::fs::remove_dir_all(d);
            }
        });
    }
    group.finish();
}

fn build_handle_spill(num_shards: usize, spill: Option<&SpillOptions>) -> EngineHandle {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let config = IngressConfig { num_shards, seed: 11, queue_depth: 4 * SESSIONS as usize };
    let handle = match spill {
        None => EngineHandle::new(config).unwrap(),
        Some(options) => EngineHandle::with_spill(config, options).unwrap(),
    };
    let spec = MechanismSpec::Reg1 {
        set: pir_engine::SetSpec::unit_l2(DIM),
        config: PrivIncReg1Config { max_pgd_iters: 16, ..Default::default() },
    };
    for sid in 0..SESSIONS {
        handle.open(sid, &spec, 1usize << 32, &params).unwrap();
    }
    handle.flush();
    handle
}

/// The synchronous baseline the pipeline is compared against.
fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ingest_1024_sessions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SESSIONS));
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let mut engine = build_engine(shards);
            let mut rng = NoiseRng::seed_from_u64(5);
            b.iter(|| {
                let batch = fleet_batch(&mut rng);
                black_box(engine.ingest(black_box(batch)))
            });
        });
    }
    group.finish();
}

fn bench_batch_amortization(c: &mut Criterion) {
    use pir_core::{IncrementalMechanism, PrivIncReg1};
    use pir_geometry::L2Ball;
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut group = c.benchmark_group("observe_batch_vs_sequential_d64");
    group.sample_size(10);
    let batch_len = 32usize;
    group.throughput(Throughput::Elements(batch_len as u64));
    for batched in [false, true] {
        let label = if batched { "batched" } else { "sequential" };
        group.bench_with_input(BenchmarkId::new("mode", label), &batched, |b, &batched| {
            let d = 64;
            let mut rng = NoiseRng::seed_from_u64(3);
            let mut mech = PrivIncReg1::new(
                Box::new(L2Ball::unit(d)),
                1usize << 32,
                &params,
                &mut rng,
                PrivIncReg1Config { max_pgd_iters: 16, ..Default::default() },
            )
            .unwrap();
            let mut data_rng = NoiseRng::seed_from_u64(4);
            let batch: Vec<DataPoint> = (0..batch_len)
                .map(|_| {
                    let x: Vec<f64> = data_rng.unit_sphere(d).iter().map(|v| 0.9 * v).collect();
                    let y = (0.8 * x[0]).clamp(-1.0, 1.0);
                    DataPoint::new(x, y)
                })
                .collect();
            b.iter(|| {
                if batched {
                    black_box(mech.observe_batch(black_box(&batch)).unwrap());
                } else {
                    for z in &batch {
                        black_box(mech.observe(black_box(z)).unwrap());
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipelined_shard_scaling,
    bench_wal_overhead,
    bench_spill_restore_latency,
    bench_shard_scaling,
    bench_batch_amortization
);
criterion_main!(benches);
