//! Cost of the Algorithm 3 lifting step: constrained-LS FISTA vs the
//! literal min-gauge program, across sketch dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pir_core::lift::{lift_constrained_ls, lift_min_gauge, sketch_smoothness, AffinePreimage};
use pir_dp::NoiseRng;
use pir_geometry::L1Ball;
use pir_sketch::GaussianSketch;
use std::hint::black_box;

fn bench_lift(c: &mut Criterion) {
    let d = 400usize;
    let set = L1Ball::unit(d);
    let mut group = c.benchmark_group("lift_d400");
    group.sample_size(20);
    for m in [20usize, 60] {
        let mut rng = NoiseRng::seed_from_u64(m as u64);
        let sketch = GaussianSketch::sample(m, d, &mut rng);
        let mut theta_true = vec![0.0; d];
        theta_true[5] = 0.8;
        let target = sketch.apply(&theta_true).unwrap();
        let smooth = sketch_smoothness(&sketch);
        group.bench_with_input(BenchmarkId::new("constrained_ls/m", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    lift_constrained_ls(
                        &sketch,
                        black_box(&target),
                        &set,
                        smooth,
                        200,
                        &vec![0.0; d],
                    )
                    .unwrap(),
                )
            });
        });
        let affine = AffinePreimage::new(&sketch).unwrap();
        group.bench_with_input(BenchmarkId::new("min_gauge/m", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    lift_min_gauge(&sketch, black_box(&target), &set, &affine, 15, 60).unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lift);
criterion_main!(benches);
