//! Parallel sweep execution over `std::thread::scope`: experiment grids
//! are embarrassingly parallel (one mechanism run per cell), so we fan
//! out across cores and reassemble in input order.

/// Map `f` over `inputs` in parallel, preserving order. Falls back to
/// sequential execution for a single input or a single CPU.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).min(n);
    if workers <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let mut results: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let inputs_ref = &inputs;
    let f_ref = &f;
    let results_mutex = std::sync::Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let out = f_ref(&inputs_ref[i]);
                let mut guard = results_mutex.lock().expect("runner mutex poisoned");
                guard[i] = Some(out);
            });
        }
    });
    results.into_iter().map(|o| o.expect("all cells computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(inputs, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn single_input_sequential_path() {
        let out = parallel_map(vec![5usize], |&x| x + 1);
        assert_eq!(out, vec![6]);
    }
}
