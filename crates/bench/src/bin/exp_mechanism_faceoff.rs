//! E5 — the paper's §1.1 / Remark 4.3 comparisons on one stream family:
//!
//! 1. naive per-step recomputation ≻ (worse than) generic τ-transform
//!    ≻ PrivIncReg1, at small-to-moderate `d`;
//! 2. the crossover: PrivIncReg2 overtakes PrivIncReg1 as `d` grows with
//!    `T` fixed (the §5.2 “d ≫ T^{4/3}” narrative);
//! 3. the trivial mechanism as the sanity ceiling.

use pir_bench::{median, report, runner, scaled};
use pir_core::baselines::{naive_recompute, TrivialMechanism};
use pir_core::evaluate::evaluate_squared_loss;
use pir_core::{
    IncrementalMechanism, PrivIncErm, PrivIncReg1, PrivIncReg1Config, PrivIncReg2,
    PrivIncReg2Config, TauRule,
};
use pir_datagen::{linear_stream, CovariateKind, LinearModel};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::{NoisyGdSolver, SquaredLoss};
use pir_geometry::{KSparseDomain, L1Ball, WidthSet};

const K: usize = 3;

fn stream_for(d: usize, t: usize, seed: u64) -> Vec<pir_erm::DataPoint> {
    let mut rng = NoiseRng::seed_from_u64(seed);
    // Anchored-sparse: dimension-independent signal strength so the
    // trivial mechanism's level is the same reference at every d.
    let mut theta_star = vec![0.0; d];
    theta_star[0] = 0.95;
    let model = LinearModel { theta_star, noise_std: 0.03 };
    linear_stream(t, d, CovariateKind::AnchoredSparse { k: K }, &model, &mut rng)
}

fn eval(
    mech: &mut dyn IncrementalMechanism,
    stream: &[pir_erm::DataPoint],
    d: usize,
) -> (f64, f64) {
    let rep =
        evaluate_squared_loss(mech, stream, Box::new(L1Ball::unit(d)), (stream.len() / 8).max(1))
            .unwrap();
    (rep.max_excess(), rep.final_excess())
}

/// One full face-off at a given dimension; returns
/// (trivial, naive, generic, mech1, mech2) final excesses.
fn faceoff(d: usize, t: usize, eps: f64, seed: u64) -> [f64; 5] {
    let params = PrivacyParams::approx(eps, 1e-6).unwrap();
    let stream = stream_for(d, t, seed);
    let mut rng = NoiseRng::seed_from_u64(seed ^ 0x5a5a);

    let set = L1Ball::unit(d);
    let mut trivial = TrivialMechanism::new(&set);
    let (_, triv) = eval(&mut trivial, &stream, d);

    let mut naive = naive_recompute(
        Box::new(SquaredLoss),
        Box::new(NoisyGdSolver { iters: 8, beta: 0.1 }),
        Box::new(L1Ball::unit(d)),
        t,
        &params,
        rng.fork(),
    )
    .unwrap();
    let (_, nav) = eval(&mut naive, &stream, d);

    let mut generic = PrivIncErm::new(
        Box::new(SquaredLoss),
        Box::new(NoisyGdSolver { iters: 16, beta: 0.1 }),
        Box::new(L1Ball::unit(d)),
        t,
        &params,
        TauRule::Convex,
        rng.fork(),
    )
    .unwrap();
    let (_, gen) = eval(&mut generic, &stream, d);

    let mut mech1 = PrivIncReg1::new(
        Box::new(L1Ball::unit(d)),
        t,
        &params,
        &mut rng,
        PrivIncReg1Config::default(),
    )
    .unwrap();
    let (_, m1) = eval(&mut mech1, &stream, d);

    let mut mech2 = PrivIncReg2::new(
        Box::new(L1Ball::unit(d)),
        KSparseDomain::new(d, K, 1.0).width_bound(),
        t,
        &params,
        &mut rng,
        PrivIncReg2Config { gordon_constant: 0.02, lift_iters: 60, ..Default::default() },
    )
    .unwrap();
    let (_, m2) = eval(&mut mech2, &stream, d);

    [triv, nav, gen, m1, m2]
}

fn main() {
    report::banner(
        "E5",
        "Mechanism face-off on sparse regression streams",
        "naive ≻ generic ≻ mech1 at small d (Rmk 4.3); mech2 overtakes mech1 at large d (§5.2)",
    );
    let t = scaled(1024, 256);
    let eps = 50.0; // shape regime for the d-crossover — see the E3 regime note
    let reps = scaled(3, 2) as u64;
    let d_values: Vec<usize> = vec![16, 64, 256];

    let cells: Vec<(usize, u64)> =
        d_values.iter().flat_map(|&d| (0..reps).map(move |r| (d, r))).collect();
    let results = runner::parallel_map(cells.clone(), |&(d, r)| faceoff(d, t, eps, 10 + r));

    let mut table = report::Table::new(&[
        "d",
        "T",
        "trivial",
        "naive τ=1",
        "generic τ*",
        "mech1 (√d)",
        "mech2 (W)",
    ]);
    for &d in &d_values {
        let per_mech: Vec<Vec<f64>> = (0..5)
            .map(|i| {
                cells
                    .iter()
                    .zip(&results)
                    .filter(|((dd, _), _)| *dd == d)
                    .map(|(_, v)| v[i])
                    .collect()
            })
            .collect();
        table.row(&[
            d.to_string(),
            t.to_string(),
            report::f(median(&per_mech[0])),
            report::f(median(&per_mech[1])),
            report::f(median(&per_mech[2])),
            report::f(median(&per_mech[3])),
            report::f(median(&per_mech[4])),
        ]);
    }
    table.print();
    println!();
    println!(
        "readings: (i) the naive baseline pays the √T composition penalty at every d; \
         (ii) mech1 beats the generic transform (Remark 4.3); (iii) mech1's √d noise \
         grows down the column while mech2's width-driven noise stays flat — the \
         crossover the paper predicts for d ≫ T^{{4/3}} (final excesses; medians over \
         {reps} seeds)."
    );
}
