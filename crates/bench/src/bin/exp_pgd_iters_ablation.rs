//! A2 — ablation of DESIGN.md decision 5: per-timestep descent strategy
//! and iteration budget.
//!
//! The paper-literal `NOISYPROJGRAD` uses the Proposition B.1 worst-case
//! step size `η = ‖C‖/(√r(α + L_t))`; with the union-bounded `α` this
//! step is tiny at practical scales, so the optimizer barely tracks the
//! moving minimizer and the measured risk is *optimization*-dominated.
//! The default `RidgedQuadraticFista` strategy minimizes the released
//! quadratic directly (same post-processing privacy status, same
//! `O(α‖C‖)` guarantee) and realizes the Theorem 4.2 noise-dominated
//! behaviour already at small iteration budgets.

use pir_bench::{median, report, runner, scaled};
use pir_core::evaluate::evaluate_squared_loss;
use pir_core::{DescentStrategy, PrivIncReg1, PrivIncReg1Config};
use pir_datagen::{linear_stream, sparse_theta, CovariateKind, LinearModel};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_geometry::L2Ball;

fn run_cell(strategy: DescentStrategy, iters: usize, seed: u64) -> f64 {
    let d = 8;
    let t = scaled(768, 256);
    let params = PrivacyParams::approx(4.0, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(seed);
    let model = LinearModel { theta_star: sparse_theta(d, d, 0.7, &mut rng), noise_std: 0.05 };
    let stream = linear_stream(t, d, CovariateKind::DenseSphere { radius: 0.95 }, &model, &mut rng);
    let mut mech = PrivIncReg1::new(
        Box::new(L2Ball::unit(d)),
        t,
        &params,
        &mut rng,
        PrivIncReg1Config { max_pgd_iters: iters, warm_start: true, beta: 0.05, strategy },
    )
    .unwrap();
    let rep = evaluate_squared_loss(&mut mech, &stream, Box::new(L2Ball::unit(d)), (t / 8).max(1))
        .unwrap();
    rep.max_excess()
}

fn main() {
    report::banner(
        "A2",
        "Per-timestep descent ablation: paper NOISYPROJGRAD vs ridged-quadratic FISTA",
        "FISTA on the released quadratic attains the O(α‖C‖) guarantee at small budgets; \
         the Prop B.1 step needs far more iterations (Corollary B.2 is sufficient, not tight)",
    );
    let reps = scaled(5, 3) as u64;
    let budgets = [1usize, 4, 16, 64, 256];

    let cells: Vec<(usize, bool, u64)> = budgets
        .iter()
        .flat_map(|&c| {
            [(c, true), (c, false)]
                .into_iter()
                .flat_map(move |(c, fista)| (0..reps).map(move |r| (c, fista, r)))
        })
        .collect();
    let results = runner::parallel_map(cells.clone(), |&(c, fista, r)| {
        let strategy = if fista {
            DescentStrategy::RidgedQuadraticFista
        } else {
            DescentStrategy::PaperNoisyPgd
        };
        run_cell(strategy, c, 400 + r)
    });

    let mut table = report::Table::new(&[
        "iteration budget",
        "ridged FISTA (median max excess)",
        "paper NOISYPROJGRAD (median max excess)",
    ]);
    for &c in &budgets {
        let grab = |fista: bool| -> f64 {
            let vals: Vec<f64> = cells
                .iter()
                .zip(&results)
                .filter(|((cc, ff, _), _)| *cc == c && *ff == fista)
                .map(|(_, v)| *v)
                .collect();
            median(&vals)
        };
        table.row(&[c.to_string(), report::f(grab(true)), report::f(grab(false))]);
    }
    table.print();
    println!();
    println!(
        "reading: the FISTA column saturates by ≈16 iterations at the noise-driven \
         risk level; the paper-literal column stays optimization-dominated even at \
         256 iterations per step — this is DESIGN.md decision 5, and why \
         RidgedQuadraticFista is the default strategy."
    );
}
