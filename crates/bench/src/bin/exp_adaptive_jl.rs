//! E9 — Gordon vs adaptive adversaries (Theorem 5.1 / Corollary 5.2 and
//! footnote 10): an unconstrained adaptive covariate can be annihilated
//! by any fixed sketch (`Φx = 0`), but a covariate restricted to a
//! low-width domain `S` has distortion at most `γ` once
//! `m ≥ C·max{w(S)², ln(1/β)}/γ²`. This experiment also *calibrates* the
//! universal constant `C` used by the other experiments.

use pir_bench::{report, scaled};
use pir_datagen::adaptive;
use pir_dp::NoiseRng;
use pir_geometry::{KSparseDomain, WidthSet};
use pir_linalg::vector;
use pir_sketch::GaussianSketch;

fn main() {
    report::banner(
        "E9",
        "Adaptive inputs: JL annihilation vs Gordon-width protection",
        "unconstrained adaptive distortion ≈ 1 ∀m<d; k-sparse adaptive distortion ≤ γ(m) = √(w²/m·C⁻¹)",
    );
    let d = scaled(400, 150);
    let k = 3;
    let tries = scaled(120, 40);
    let mut rng = NoiseRng::seed_from_u64(17);
    let domain = KSparseDomain::new(d, k, 1.0);
    let w = domain.width_bound();
    println!("d = {d}, domain = {k}-sparse unit vectors, w(S) ≲ {w:.2}");
    println!();

    let mut table = report::Table::new(&[
        "m",
        "unconstrained |‖Φx‖²−1|",
        "k-sparse |‖Φx‖²−1|",
        "implied C = m·γ²/w²",
    ]);
    let mut calibrated_c = 0.0f64;
    for m in [8usize, 16, 32, 64, 128, 256] {
        let sketch = GaussianSketch::sample(m, d, &mut rng);
        let unconstrained = match adaptive::null_space_direction(&sketch, &mut rng) {
            Some(x) => (vector::norm2_sq(&sketch.apply(&x).unwrap()) - 1.0).abs(),
            None => 0.0,
        };
        let (_, sparse_dist) = adaptive::worst_sparse_direction(&sketch, k, tries, &mut rng);
        // Invert Gordon: the measured worst distortion γ satisfies
        // m = C·w²/γ², so C = m·γ²/w².
        let implied_c = m as f64 * sparse_dist * sparse_dist / (w * w);
        calibrated_c = calibrated_c.max(implied_c);
        table.row(&[
            m.to_string(),
            report::f(unconstrained),
            report::f(sparse_dist),
            report::f(implied_c),
        ]);
    }
    table.print();
    println!();
    println!(
        "calibration: taking the max implied constant over the sweep gives \
         C ≈ {calibrated_c:.3}; any gordon_constant ≥ this value makes the \
         Gordon dimension rule sound for this domain. The experiments in this \
         repository use 0.05–1.0 (see EXPERIMENTS.md)."
    );
    println!(
        "reading: the unconstrained column sits at ≈ 1 for every m < d — adaptivity \
         destroys plain JL. The width-restricted column decays like 1/√m, exactly \
         Gordon's γ ∝ w(S)/√m."
    );
}
