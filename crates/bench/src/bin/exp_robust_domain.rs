//! E7 — §5.2 robustness extension: streams where a `p_off` fraction of
//! covariates falls outside the sparse domain `G`. The robust mechanism
//! zeroes those points inside the private pipeline; its guarantee is on
//! the `G`-restricted objective with `W = w(G) + w(C)`.

use pir_bench::{median, report, runner, scaled};
use pir_core::baselines::ExactIncrementalRestricted;
use pir_core::{IncrementalMechanism, PrivIncReg2Config, RobustPrivIncReg2};
use pir_datagen::{mixture_stream, sparse_theta, LinearModel};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_geometry::{KSparseDomain, L1Ball, WidthSet};

const K: usize = 3;

/// Returns (G-restricted max excess, fraction substituted).
fn run_cell(d: usize, t: usize, p_off: f64, seed: u64) -> (f64, f64) {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(seed);
    let model = LinearModel { theta_star: sparse_theta(d, 2, 0.4, &mut rng), noise_std: 0.02 };
    let stream = mixture_stream(t, d, K, p_off, &model, &mut rng);
    let dom = KSparseDomain::new(d, K, 1.0);
    let mut mech = RobustPrivIncReg2::new(
        Box::new(L1Ball::unit(d)),
        dom.width_bound(),
        {
            let dom = KSparseDomain::new(d, K, 1.0);
            Box::new(move |x: &[f64]| dom.contains(x, 1e-9))
        },
        t,
        &params,
        &mut rng,
        PrivIncReg2Config { gordon_constant: 0.05, lift_iters: 60, ..Default::default() },
    )
    .unwrap();
    let eval_dom = KSparseDomain::new(d, K, 1.0);
    let mut oracle = ExactIncrementalRestricted::new(
        Box::new(L1Ball::unit(d)),
        Box::new(move |x: &[f64]| eval_dom.contains(x, 1e-9)),
    );
    let mut max_excess = 0.0f64;
    for (i, z) in stream.iter().enumerate() {
        let theta = mech.observe(z).unwrap();
        oracle.observe(z).unwrap();
        if (i + 1) % (t / 8).max(1) == 0 {
            let excess = (oracle.risk_of(&theta).unwrap() - oracle.opt().unwrap()).max(0.0);
            max_excess = max_excess.max(excess);
        }
    }
    (max_excess, mech.substituted() as f64 / t as f64)
}

fn main() {
    report::banner(
        "E7",
        "Robust extension: contaminated streams, G-restricted guarantee",
        "G-restricted excess stays at the clean-stream level for any off-domain fraction",
    );
    let d = scaled(300, 100);
    let t = scaled(384, 128);
    let reps = scaled(3, 2) as u64;
    let p_values = [0.0, 0.25, 0.5, 0.75];

    let cells: Vec<(usize, u64)> =
        p_values.iter().enumerate().flat_map(|(i, _)| (0..reps).map(move |r| (i, r))).collect();
    let results =
        runner::parallel_map(cells.clone(), |&(i, r)| run_cell(d, t, p_values[i], 60 + r));

    let mut table = report::Table::new(&[
        "p_off",
        "substituted frac (measured)",
        "G-restricted max excess (median)",
        "in-G points",
    ]);
    for (i, &p) in p_values.iter().enumerate() {
        let ex: Vec<f64> =
            cells.iter().zip(&results).filter(|((ii, _), _)| *ii == i).map(|(_, v)| v.0).collect();
        let sub: Vec<f64> =
            cells.iter().zip(&results).filter(|((ii, _), _)| *ii == i).map(|(_, v)| v.1).collect();
        let in_g = ((1.0 - median(&sub)) * t as f64).round() as usize;
        table.row(&[
            format!("{p}"),
            report::f(median(&sub)),
            report::f(median(&ex)),
            in_g.to_string(),
        ]);
    }
    table.print();
    println!();
    println!(
        "reading: the substituted fraction tracks p_off, and the G-restricted excess \
         does not blow up as contamination grows (it can even shrink — fewer in-G \
         points means a shorter effective stream). DP holds unconditionally: zeroed \
         points are ordinary norm-0 stream items under the sensitivity-2 calibration."
    );
}
