//! E8 — Proposition C.1: the Tree Mechanism's release error is
//! `O(Δ₂(√d + √log(1/β))·log^{3/2}T/ε·√log(1/δ))` — *poly-logarithmic* in
//! the stream length, versus the `√T` growth naive per-step noising
//! would give.

use pir_bench::{fitting, median, report, scaled};
use pir_continual::TreeMechanism;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_linalg::vector;

fn max_error(d: usize, t_max: usize, seed: u64) -> f64 {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut mech =
        TreeMechanism::new(d, t_max, 1.0, &params, NoiseRng::seed_from_u64(seed)).unwrap();
    let mut items = NoiseRng::seed_from_u64(seed ^ 0xabcd);
    let mut acc = vec![0.0; d];
    let mut worst = 0.0f64;
    for _ in 0..t_max {
        let v = items.unit_sphere(d);
        vector::axpy(1.0, &v, &mut acc);
        let s = mech.update(&v).unwrap();
        worst = worst.max(vector::distance(&s, &acc));
    }
    worst
}

fn main() {
    report::banner(
        "E8",
        "Tree Mechanism error vs stream length and dimension (Prop. C.1)",
        "max_t ‖s_t − Σv_i‖ grows polylog in T (log^{3/2}) and like √d in d",
    );
    let reps = scaled(5, 3) as u64;
    let t_values: Vec<usize> = vec![1 << 6, 1 << 8, 1 << 10, 1 << 12];
    let d_values: Vec<usize> = vec![1, 4, 16, 64];

    let mut table = report::Table::new(&["d", "T", "measured max err (median)", "Prop C.1 bound"]);
    let mut t_axis = Vec::new();
    let mut err_axis_t = Vec::new();
    for &t in &t_values {
        let d = 16;
        let errs: Vec<f64> = (0..reps).map(|r| max_error(d, t, 100 + r)).collect();
        let m = median(&errs);
        let bound = TreeMechanism::new(
            d,
            t,
            1.0,
            &PrivacyParams::approx(1.0, 1e-6).unwrap(),
            NoiseRng::seed_from_u64(0),
        )
        .unwrap()
        .error_bound(0.01);
        table.row(&[d.to_string(), t.to_string(), report::f(m), report::f(bound)]);
        t_axis.push(t as f64);
        err_axis_t.push(m);
    }
    let mut d_axis = Vec::new();
    let mut err_axis_d = Vec::new();
    for &d in &d_values {
        let t = 1 << 10;
        let errs: Vec<f64> = (0..reps).map(|r| max_error(d, t, 200 + r)).collect();
        let m = median(&errs);
        let bound = TreeMechanism::new(
            d,
            t,
            1.0,
            &PrivacyParams::approx(1.0, 1e-6).unwrap(),
            NoiseRng::seed_from_u64(0),
        )
        .unwrap()
        .error_bound(0.01);
        table.row(&[d.to_string(), t.to_string(), report::f(m), report::f(bound)]);
        d_axis.push(d as f64);
        err_axis_d.push(m);
    }
    table.print();

    // Shape checks: error vs T must be far below the √T slope of naive
    // noising (polylog in T means a tiny log–log slope); error vs d ≈ √d.
    let t_slope = fitting::loglog_slope(&t_axis, &err_axis_t);
    let d_slope = fitting::loglog_slope(&d_axis, &err_axis_d);
    println!();
    println!("{}", fitting::verdict("error vs T (polylog ⇒ slope ≪ 0.5)", t_slope, 0.15, 0.2));
    println!("{}", fitting::verdict("error vs d", d_slope, 0.5, 0.2));
}
