//! E3 — Table 1, row 3, Mechanism 1 (Theorem 4.2, Remark 4.3):
//! `PrivIncReg1` has excess risk `≈ √d·‖C‖²·polylog(T)·√log(1/δ)/ε`, with
//! the `min{·, T}` clause.
//!
//! **Regime note (recorded in EXPERIMENTS.md):** with the paper's own
//! noise constants (`σ ≈ √2·log₂T·Δ₂·√ln(2/δ)/ε` per tree node), at
//! `ε ≈ 1` and laptop-scale `T ≤ 10⁴` the noise term exceeds the trivial
//! excess — the bound's `min{·, T}` clause is active and the mechanism
//! (correctly) degrades to trivial-level behaviour. Because the mechanism
//! is *exactly linear in σ ∝ 1/ε*, the bound's shape is measured in the
//! signal-dominated regime (larger ε·T) where the theorem's leading term
//! is the binding one; the `ε = 1` row is reported for honesty.

use pir_bench::{fitting, median, report, runner, scaled};
use pir_core::evaluate::evaluate_squared_loss;
use pir_core::{PrivIncReg1, PrivIncReg1Config};
use pir_datagen::{linear_stream, CovariateKind, LinearModel};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_geometry::L2Ball;

/// Anchored stream: y = 0.9·x₀ with dimension-independent Var(y).
fn run_cell(d: usize, t: usize, eps: f64, seed: u64) -> f64 {
    let params = PrivacyParams::approx(eps, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(seed);
    let mut theta_star = vec![0.0; d];
    theta_star[0] = 0.9;
    let model = LinearModel { theta_star, noise_std: 0.02 };
    let stream = linear_stream(t, d, CovariateKind::Anchored { radius: 0.95 }, &model, &mut rng);
    let mut mech = PrivIncReg1::new(
        Box::new(L2Ball::unit(d)),
        t,
        &params,
        &mut rng,
        PrivIncReg1Config::default(),
    )
    .unwrap();
    let report =
        evaluate_squared_loss(&mut mech, &stream, Box::new(L2Ball::unit(d)), (t / 16).max(1))
            .unwrap();
    report.max_excess()
}

fn main() {
    report::banner(
        "E3",
        "PrivIncReg1 excess risk: √d scaling, polylog-T, 1/ε scaling",
        "α ≈ √d·‖C‖²·polylog(T)/ε, min{·,T} (Theorem 4.2); beats the generic (Td)^{1/3}",
    );
    let reps = scaled(5, 3) as u64;
    let t_fixed = scaled(4096, 1024);
    let eps_shape = 100.0;

    // Sweep 1: dimension at fixed T, ε (shape regime).
    let d_values: Vec<usize> = vec![4, 8, 16, 32, 64, 128];
    let cells: Vec<(usize, u64)> =
        d_values.iter().flat_map(|&d| (0..reps).map(move |r| (d, r))).collect();
    let results = runner::parallel_map(cells.clone(), |&(d, r)| {
        run_cell(d, t_fixed, eps_shape, 1000 + 37 * d as u64 + r)
    });
    let mut table = report::Table::new(&["d", "T", "ε", "max excess (median)"]);
    let mut d_axis = Vec::new();
    let mut ex_axis = Vec::new();
    for &d in &d_values {
        let vals: Vec<f64> =
            cells.iter().zip(&results).filter(|((dd, _), _)| *dd == d).map(|(_, v)| *v).collect();
        let m = median(&vals);
        table.row(&[d.to_string(), t_fixed.to_string(), format!("{eps_shape}"), report::f(m)]);
        d_axis.push(d as f64);
        ex_axis.push(m);
    }
    table.print();
    let d_slope = fitting::loglog_slope(&d_axis, &ex_axis);
    println!("{}", fitting::verdict("excess vs d", d_slope, 0.5, 0.25));
    println!();

    // Sweep 2: stream length at fixed d, ε — polylog only.
    let t_values: Vec<usize> = vec![1024, 2048, 4096, 8192, 16384]
        .into_iter()
        .map(|t| scaled(t, 256).max(256))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let cells_t: Vec<(usize, u64)> =
        t_values.iter().flat_map(|&t| (0..reps).map(move |r| (t, r))).collect();
    let results_t = runner::parallel_map(cells_t.clone(), |&(t, r)| {
        run_cell(8, t, eps_shape, 2000 + t as u64 + r)
    });
    let mut table_t = report::Table::new(&["d", "T", "ε", "max excess (median)"]);
    let mut t_axis = Vec::new();
    let mut ex_t = Vec::new();
    for &t in &t_values {
        let vals: Vec<f64> = cells_t
            .iter()
            .zip(&results_t)
            .filter(|((tt, _), _)| *tt == t)
            .map(|(_, v)| *v)
            .collect();
        let m = median(&vals);
        table_t.row(&["8".into(), t.to_string(), format!("{eps_shape}"), report::f(m)]);
        t_axis.push(t as f64);
        ex_t.push(m);
    }
    table_t.print();
    let t_slope = fitting::loglog_slope(&t_axis, &ex_t);
    println!(
        "{}",
        fitting::verdict(
            "excess vs T (polylog ⇒ slope ≪ 1; trivial would be 1.0)",
            t_slope,
            0.2,
            0.3
        )
    );
    println!();

    // Sweep 3: privacy level at fixed d, T.
    let eps_values = [25.0, 50.0, 100.0, 200.0, 400.0];
    let cells_e: Vec<(u64, u64)> =
        (0..eps_values.len() as u64).flat_map(|i| (0..reps).map(move |r| (i, r))).collect();
    let results_e = runner::parallel_map(cells_e.clone(), |&(i, r)| {
        run_cell(16, t_fixed, eps_values[i as usize], 3000 + i * 17 + r)
    });
    let mut table_e = report::Table::new(&["d", "T", "ε", "max excess (median)"]);
    let mut e_axis = Vec::new();
    let mut ex_e = Vec::new();
    for (i, &eps) in eps_values.iter().enumerate() {
        let vals: Vec<f64> = cells_e
            .iter()
            .zip(&results_e)
            .filter(|((ii, _), _)| *ii == i as u64)
            .map(|(_, v)| *v)
            .collect();
        let m = median(&vals);
        table_e.row(&["16".into(), t_fixed.to_string(), format!("{eps}"), report::f(m)]);
        e_axis.push(eps);
        ex_e.push(m);
    }
    table_e.print();
    let e_slope = fitting::loglog_slope(&e_axis, &ex_e);
    println!("{}", fitting::verdict("excess vs ε (bound ∝ 1/ε)", e_slope, -1.0, 0.4));
    println!();

    // Honesty row: the ε = 1 regime, where min{·, T} is active.
    let clamped: Vec<f64> =
        (0..reps).map(|r| run_cell(16, scaled(1024, 256), 1.0, 4000 + r)).collect();
    let trivial_level = {
        // Trivial excess ≈ Σ y² for this stream (θ = 0).
        let mut rng = NoiseRng::seed_from_u64(4242);
        let mut theta_star = vec![0.0; 16];
        theta_star[0] = 0.9;
        let model = LinearModel { theta_star, noise_std: 0.02 };
        let stream = linear_stream(
            scaled(1024, 256),
            16,
            CovariateKind::Anchored { radius: 0.95 },
            &model,
            &mut rng,
        );
        stream.iter().map(|z| z.y * z.y).sum::<f64>()
    };
    println!(
        "ε = 1 regime check (d=16, T={}): measured excess {} vs trivial level ≈ {} — \
         the min{{·, T}} clause is active at single-digit ε on laptop-scale streams, \
         exactly as the constants in Theorem 4.2 predict.",
        scaled(1024, 256),
        report::f(median(&clamped)),
        report::f(trivial_level)
    );
}
