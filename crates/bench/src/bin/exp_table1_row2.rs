//! E2 — Table 1, row 2 (Theorem 3.1(2)): with a `ν`-strongly convex loss
//! and the output-perturbation batch solver, the generic transformation's
//! excess risk improves to `≈ √d·L^{3/2}‖C‖^{1/2}/(√ν·ε)` — notably
//! **independent of the stream length `T`**.
//!
//! Two parts:
//! 1. **Noise driver** (scale-independent): the output-perturbation noise
//!    magnitude `‖θ_priv − θ̂_batch‖` scales as `√d·2L/(ν·n·ε)` — the
//!    argmin sensitivity of Theorem 3.1(2)'s proof. Measured exactly.
//! 2. **End-to-end excess** over streams (informational at small scale:
//!    the doubly composed budget keeps ε′ tiny, so the `min{·, T}` clause
//!    binds at ε ≈ 1 — see the E3 regime note).

use pir_bench::{fitting, median, report, runner, scaled};
use pir_core::evaluate::evaluate_generic;
use pir_core::{PrivIncErm, TauRule};
use pir_datagen::{linear_stream, sparse_theta, CovariateKind, LinearModel};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::{
    solve_exact, OutputPerturbationSolver, PrivateBatchSolver, Regularized, SquaredLoss,
};
use pir_geometry::L2Ball;
use pir_linalg::vector;

/// Distance between the private batch output and the exact batch solution
/// — the Gaussian perturbation norm (post-projection).
fn noise_driver(d: usize, n: usize, nu: f64, eps: f64, seed: u64) -> f64 {
    let params = PrivacyParams::approx(eps, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(seed);
    let model = LinearModel { theta_star: sparse_theta(d, d, 0.5, &mut rng), noise_std: 0.05 };
    let batch = linear_stream(n, d, CovariateKind::DenseSphere { radius: 0.95 }, &model, &mut rng);
    let loss = Regularized::new(SquaredLoss, nu);
    let set = L2Ball::unit(d);
    let exact = solve_exact(&loss, &batch, &set, 2000).unwrap();
    let solver = OutputPerturbationSolver { exact_iters: 2000 };
    let priv_out = solver.solve(&loss, &batch, &set, &params, &mut rng).unwrap();
    vector::distance(&priv_out, &exact)
}

fn run_stream_cell(d: usize, t: usize, nu: f64, eps: f64, seed: u64) -> f64 {
    let params = PrivacyParams::approx(eps, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(seed);
    let model = LinearModel { theta_star: sparse_theta(d, d, 0.6, &mut rng), noise_std: 0.05 };
    let stream = linear_stream(t, d, CovariateKind::DenseSphere { radius: 0.95 }, &model, &mut rng);
    let loss = Regularized::new(SquaredLoss, nu);
    let mut mech = PrivIncErm::new(
        Box::new(Regularized::new(SquaredLoss, nu)),
        Box::new(OutputPerturbationSolver { exact_iters: 800 }),
        Box::new(L2Ball::unit(d)),
        t,
        &params,
        TauRule::StronglyConvex,
        rng.fork(),
    )
    .unwrap();
    let rep = evaluate_generic(&mut mech, &stream, &loss, &L2Ball::unit(d), (t / 8).max(1), 1000)
        .unwrap();
    rep.max_excess()
}

fn main() {
    report::banner(
        "E2",
        "Generic transformation, strongly convex loss: √d/(√ν ε), T-free",
        "noise driver ‖θ_priv − θ̂‖ ∝ √d·2L/(ν n ε); end-to-end excess T-free up to min{·,T}",
    );
    let reps = scaled(6, 3) as u64;
    let eps = 20.0; // single-shot solver: moderate ε already in-regime

    // Part 1a: √d scaling of the perturbation.
    let d_values = [4usize, 16, 64, 256];
    let mut table = report::Table::new(&["d", "n", "ν", "ε", "‖θ_priv − θ̂‖ (median)"]);
    let mut d_axis = Vec::new();
    let mut dist_d = Vec::new();
    for &d in &d_values {
        let vals: Vec<f64> =
            (0..reps).map(|r| noise_driver(d, 400, 0.5, eps, 11 + d as u64 + r)).collect();
        let m = median(&vals);
        table.row(&[d.to_string(), "400".into(), "0.5".into(), format!("{eps}"), report::f(m)]);
        d_axis.push(d as f64);
        dist_d.push(m);
    }
    table.print();
    println!(
        "{}",
        fitting::verdict("‖Δθ‖ vs d", fitting::loglog_slope(&d_axis, &dist_d), 0.5, 0.2)
    );
    println!();

    // Part 1b: 1/(ν·n) scaling.
    let mut table_nn = report::Table::new(&["ν", "n", "‖θ_priv − θ̂‖ (median)"]);
    let mut nu_axis = Vec::new();
    let mut dist_nu = Vec::new();
    for &nu in &[0.25f64, 0.5, 1.0, 2.0] {
        let vals: Vec<f64> = (0..reps)
            .map(|r| noise_driver(16, 400, nu, eps, 170 + (nu * 8.0) as u64 + r))
            .collect();
        let m = median(&vals);
        table_nn.row(&[format!("{nu}"), "400".into(), report::f(m)]);
        nu_axis.push(nu);
        dist_nu.push(m);
    }
    let mut n_axis = Vec::new();
    let mut dist_n = Vec::new();
    for &n in &[100usize, 200, 400, 800] {
        let vals: Vec<f64> =
            (0..reps).map(|r| noise_driver(16, n, 0.5, eps, 370 + n as u64 + r)).collect();
        let m = median(&vals);
        table_nn.row(&["0.5".into(), n.to_string(), report::f(m)]);
        n_axis.push(n as f64);
        dist_n.push(m);
    }
    table_nn.print();
    println!(
        "{}",
        fitting::verdict(
            "‖Δθ‖ vs ν (sensitivity ∝ 1/ν)",
            fitting::loglog_slope(&nu_axis, &dist_nu),
            -1.0,
            0.3
        )
    );
    println!(
        "{}",
        fitting::verdict(
            "‖Δθ‖ vs n (sensitivity ∝ 1/n)",
            fitting::loglog_slope(&n_axis, &dist_n),
            -1.0,
            0.3
        )
    );
    println!();

    // Part 2: end-to-end excess over streams (informational).
    let cells: Vec<(usize, u64)> = [32usize, 64, 128, 256]
        .iter()
        .flat_map(|&t| (0..reps.min(3)).map(move |r| (scaled(t * 4, t), r)))
        .collect();
    let results =
        runner::parallel_map(cells.clone(), |&(t, r)| run_stream_cell(16, t, 0.5, 1.0, 80 + r));
    let mut table_t = report::Table::new(&["d", "T", "ν", "ε", "max excess (median)"]);
    let t_list: Vec<usize> = {
        let mut v: Vec<usize> = cells.iter().map(|(t, _)| *t).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    for &t in &t_list {
        let vals: Vec<f64> =
            cells.iter().zip(&results).filter(|((tt, _), _)| *tt == t).map(|(_, v)| *v).collect();
        table_t.row(&[
            "16".into(),
            t.to_string(),
            "0.5".into(),
            "1.0".into(),
            report::f(median(&vals)),
        ]);
    }
    table_t.print();
    println!(
        "regime note: at ε = 1, τ(ν) from Theorem 3.1(2) forces many invocations and \
         the per-invocation budget collapses, so the end-to-end excess tracks the \
         trivial level (min{{·, T}} clause) — the noise-driver checks above verify \
         the bound's √d/(νn) machinery directly, where it is measurable."
    );
}
