//! E10 — privacy-accounting ledger across the whole parameter grid used
//! by the other experiments: for every mechanism schedule, the composed
//! privacy cost must not exceed the declared `(ε, δ)`.

use pir_bench::report;
use pir_core::{PrivIncErm, TauRule};
use pir_dp::{composition, NoiseRng, PrivacyAccountant, PrivacyParams};
use pir_erm::{NoisyGdSolver, SquaredLoss};
use pir_geometry::L2Ball;

fn main() {
    report::banner(
        "E10",
        "Composition ledger: every schedule fits its budget",
        "advanced composition of each mechanism's per-invocation budget ≤ declared (ε, δ)",
    );

    let mut table = report::Table::new(&[
        "schedule",
        "T",
        "ε",
        "invocations k",
        "per-invocation ε′",
        "composed ε",
        "fits",
    ]);
    for &t in &[64usize, 256, 1024, 4096] {
        for &eps in &[0.25, 1.0] {
            for rule in [TauRule::Fixed(1), TauRule::Convex] {
                let total = PrivacyParams::approx(eps, 1e-6).unwrap();
                let mech = PrivIncErm::new(
                    Box::new(SquaredLoss),
                    Box::new(NoisyGdSolver { iters: 4, beta: 0.1 }),
                    Box::new(L2Ball::unit(8)),
                    t,
                    &total,
                    rule,
                    NoiseRng::seed_from_u64(1),
                )
                .unwrap();
                let composed = composition::verify_within_budget(
                    mech.invocations(),
                    &mech.per_invocation(),
                    &total,
                );
                let label = match rule {
                    TauRule::Fixed(1) => "naive τ=1",
                    _ => "generic τ*",
                };
                let (ce, fits) = match &composed {
                    Ok(p) => (p.epsilon(), "yes"),
                    Err(_) => (f64::NAN, "NO"),
                };
                table.row(&[
                    label.to_string(),
                    t.to_string(),
                    format!("{eps}"),
                    mech.invocations().to_string(),
                    report::f(mech.per_invocation().epsilon()),
                    report::f(ce),
                    fits.to_string(),
                ]);
            }
        }
    }
    table.print();
    println!();

    // Mechanism 2-style ledger: two trees at (ε/2, δ/2) compose exactly.
    let total = PrivacyParams::approx(1.0, 1e-5).unwrap();
    let mut acc = PrivacyAccountant::new(total);
    acc.charge("tree over Φx̃·y", total.halve()).unwrap();
    acc.charge("tree over (Φx̃)(Φx̃)ᵀ", total.halve()).unwrap();
    let (e, d) = acc.spent();
    println!("Algorithms 2/3 ledger: two half-budget trees spend (ε={e}, δ={d}) of {total}");
    println!("post-processing (gradient evals, PGD, lifting) charges nothing further.");
    let overdraft = acc.charge("third sub-mechanism", total.halve());
    println!(
        "attempting a third half-budget charge: {}",
        if overdraft.is_err() { "rejected (as it must be)" } else { "ACCEPTED — BUG" }
    );
}
