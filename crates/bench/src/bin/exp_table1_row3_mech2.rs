//! E4 — Table 1, row 3, Mechanism 2 (Theorem 5.7): `PrivIncReg2` on
//! sparse/Lasso instances has excess risk
//! `≈ T^{1/3}W^{2/3}/ε + T^{1/6}W^{1/3}√OPT + T^{1/4}W^{1/2}·OPT^{1/4}`,
//! i.e. *sublinear in T* and only poly-logarithmic in `d` when
//! `W = w(X) + w(C) = polylog(d)`.

use pir_bench::{fitting, median, report, runner, scaled};
use pir_core::evaluate::evaluate_squared_loss;
use pir_core::{PrivIncReg2, PrivIncReg2Config};
use pir_datagen::{linear_stream, CovariateKind, LinearModel};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_geometry::{KSparseDomain, L1Ball, WidthSet};

const SPARSITY: usize = 3;

fn run_cell(d: usize, t: usize, eps: f64, noise_std: f64, seed: u64) -> (f64, f64, usize) {
    let params = PrivacyParams::approx(eps, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(seed);
    // Anchored-sparse covariates: k-sparse (low-width domain) with a
    // dimension-independent signal on coordinate 0; θ* ∈ B₁.
    let mut theta_star = vec![0.0; d];
    theta_star[0] = 0.95;
    let model = LinearModel { theta_star, noise_std };
    let stream =
        linear_stream(t, d, CovariateKind::AnchoredSparse { k: SPARSITY }, &model, &mut rng);
    let domain = KSparseDomain::new(d, SPARSITY, 1.0);
    let mut mech = PrivIncReg2::new(
        Box::new(L1Ball::unit(d)),
        domain.width_bound(),
        t,
        &params,
        &mut rng,
        PrivIncReg2Config { gordon_constant: 0.02, lift_iters: 60, ..Default::default() },
    )
    .unwrap();
    let m = mech.m();
    let rep = evaluate_squared_loss(&mut mech, &stream, Box::new(L1Ball::unit(d)), (t / 8).max(1))
        .unwrap();
    (rep.max_excess(), rep.final_opt(), m)
}

fn main() {
    report::banner(
        "E4",
        "PrivIncReg2 (sketched) excess risk: T^{1/3} scaling, polylog-d scaling",
        "α ≈ T^{1/3}W^{2/3}/ε + OPT terms (Theorem 5.7); W = w(X)+w(C) = polylog(d)",
    );
    let reps = scaled(3, 2) as u64;

    // Sweep 1: stream length at fixed (large) d — the T^{1/3} claim.
    let d_fixed = scaled(600, 300);
    let t_values: Vec<usize> = vec![512, 1024, 2048, 4096]
        .into_iter()
        .map(|t| scaled(t, 128).max(128))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let cells: Vec<(usize, u64)> =
        t_values.iter().flat_map(|&t| (0..reps).map(move |r| (t, r))).collect();
    let eps_shape = 400.0; // shape regime — see the E3 regime note
    let results = runner::parallel_map(cells.clone(), |&(t, r)| {
        run_cell(d_fixed, t, eps_shape, 0.02, 5000 + t as u64 + r)
    });
    let mut table = report::Table::new(&["d", "T", "m", "W", "max excess (median)", "OPT_T"]);
    let w = KSparseDomain::new(d_fixed, SPARSITY, 1.0).width_bound()
        + L1Ball::unit(d_fixed).width_bound();
    let mut t_axis = Vec::new();
    let mut ex_axis = Vec::new();
    for &t in &t_values {
        let vals: Vec<(f64, f64, usize)> =
            cells.iter().zip(&results).filter(|((tt, _), _)| *tt == t).map(|(_, v)| *v).collect();
        let ex = median(&vals.iter().map(|v| v.0).collect::<Vec<_>>());
        let opt = median(&vals.iter().map(|v| v.1).collect::<Vec<_>>());
        let m = vals[0].2;
        table.row(&[
            d_fixed.to_string(),
            t.to_string(),
            m.to_string(),
            report::f(w),
            report::f(ex),
            report::f(opt),
        ]);
        t_axis.push(t as f64);
        ex_axis.push(ex);
    }
    table.print();
    let t_slope = fitting::loglog_slope(&t_axis, &ex_axis);
    // With label noise the √OPT terms contribute; the leading term is
    // T^{1/3}, the OPT terms push the effective slope toward ~0.4–0.6.
    println!("{}", fitting::verdict("excess vs T (sublinear, ≈1/3–1/2)", t_slope, 0.4, 0.3));
    println!();

    // Sweep 2: dimension at fixed T — the polylog(d) claim.
    let t_fixed = scaled(1024, 256);
    let d_values: Vec<usize> = vec![300, 900, 2700]
        .into_iter()
        .map(|d| scaled(d, 100).max(100))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let cells_d: Vec<(usize, u64)> =
        d_values.iter().flat_map(|&d| (0..reps).map(move |r| (d, r))).collect();
    let results_d = runner::parallel_map(cells_d.clone(), |&(d, r)| {
        run_cell(d, t_fixed, 400.0, 0.02, 7000 + d as u64 + r)
    });
    let mut table_d = report::Table::new(&["d", "T", "m", "W", "max excess (median)"]);
    let mut d_axis = Vec::new();
    let mut ex_d = Vec::new();
    for &d in &d_values {
        let vals: Vec<f64> = cells_d
            .iter()
            .zip(&results_d)
            .filter(|((dd, _), _)| *dd == d)
            .map(|(_, v)| v.0)
            .collect();
        let m_used =
            cells_d.iter().zip(&results_d).find(|((dd, _), _)| *dd == d).map(|(_, v)| v.2).unwrap();
        let wd = KSparseDomain::new(d, SPARSITY, 1.0).width_bound() + L1Ball::unit(d).width_bound();
        let ex = median(&vals);
        table_d.row(&[
            d.to_string(),
            t_fixed.to_string(),
            m_used.to_string(),
            report::f(wd),
            report::f(ex),
        ]);
        d_axis.push(d as f64);
        ex_d.push(ex);
    }
    table_d.print();
    let d_slope = fitting::loglog_slope(&d_axis, &ex_d);
    println!(
        "{}",
        fitting::verdict(
            "excess vs d (polylog ⇒ slope ≈ 0, vs 0.5 for the √d mechanism)",
            d_slope,
            0.1,
            0.25
        )
    );
    println!();

    // Sweep 3: OPT dependence via label noise (the √OPT terms).
    let mut table_o = report::Table::new(&["noise σ", "OPT_T", "max excess (median)"]);
    for &ns in &[0.0, 0.05, 0.15] {
        let vals: Vec<(f64, f64, usize)> = (0..reps)
            .map(|r| run_cell(scaled(600, 200), scaled(512, 128), 400.0, ns, 9000 + r))
            .collect();
        let ex = median(&vals.iter().map(|v| v.0).collect::<Vec<_>>());
        let opt = median(&vals.iter().map(|v| v.1).collect::<Vec<_>>());
        table_o.row(&[format!("{ns}"), report::f(opt), report::f(ex)]);
    }
    table_o.print();
    println!("reading: excess grows with OPT as the √OPT/⁴√OPT terms predict.");
}
