//! A1 — ablation of DESIGN.md decision 3: the two lifting solvers for
//! Algorithm 3, Step 9 — FISTA-based constrained least squares (default)
//! vs the paper's literal min-gauge program (bisection + alternating
//! projections) — compared on recovery error and wall time, against the
//! Theorem 5.3 M*-bound.

use pir_bench::{median, report, scaled};
use pir_core::lift::{
    lift_constrained_ls, lift_min_gauge, sketch_smoothness, theorem_5_3_bound, AffinePreimage,
};
use pir_dp::NoiseRng;
use pir_geometry::{L1Ball, WidthSet};
use pir_linalg::vector;
use pir_sketch::GaussianSketch;
use std::time::Instant;

fn main() {
    report::banner(
        "A1",
        "Lifting ablation: constrained-LS (FISTA) vs min-gauge (bisection/POCS)",
        "both track the Theorem 5.3 error O((w(C)+‖C‖√log(1/β))/√m); LS is faster",
    );
    let d = scaled(200, 100);
    let reps = scaled(5, 3) as u64;
    let set = L1Ball::unit(d);

    let mut table = report::Table::new(&[
        "m",
        "Thm 5.3 bound",
        "LS err (median)",
        "LS ms",
        "gauge err (median)",
        "gauge ms",
    ]);
    for m in [10usize, 20, 40, 80] {
        let mut ls_errs = Vec::new();
        let mut gauge_errs = Vec::new();
        let mut ls_ms = Vec::new();
        let mut gauge_ms = Vec::new();
        for r in 0..reps {
            let mut rng = NoiseRng::seed_from_u64(300 + m as u64 * 13 + r);
            let sketch = GaussianSketch::sample(m, d, &mut rng);
            let mut theta_true = vec![0.0; d];
            theta_true[(7 * (r as usize + 1)) % d] = 0.9;
            let target = sketch.apply(&theta_true).unwrap();

            let t0 = Instant::now();
            let smooth = sketch_smoothness(&sketch);
            let ls =
                lift_constrained_ls(&sketch, &target, &set, smooth, 500, &vec![0.0; d]).unwrap();
            ls_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            ls_errs.push(vector::distance(&ls, &theta_true));

            let t1 = Instant::now();
            let affine = AffinePreimage::new(&sketch).unwrap();
            let mg = lift_min_gauge(&sketch, &target, &set, &affine, 20, 120).unwrap();
            gauge_ms.push(t1.elapsed().as_secs_f64() * 1e3);
            gauge_errs.push(vector::distance(&mg, &theta_true));
        }
        let bound = theorem_5_3_bound(set.width_bound(), set.diameter(), m, 0.05);
        table.row(&[
            m.to_string(),
            report::f(bound),
            report::f(median(&ls_errs)),
            report::f(median(&ls_ms)),
            report::f(median(&gauge_errs)),
            report::f(median(&gauge_ms)),
        ]);
    }
    table.print();
    println!();
    println!(
        "reading: both solvers' errors shrink like 1/√m and sit at or below the \
         Theorem 5.3 bound; the constrained-LS path is the cheaper default, the \
         min-gauge path is the paper's program verbatim (DESIGN.md, decision 3)."
    );
}
