//! E1 — Table 1, row 1 (Theorem 3.1(1)): the generic transformation with
//! a convex loss has excess risk `≈ (Td)^{1/3}·L‖C‖/ε^{2/3}`, achieved at
//! the recomputation interval `τ* = (Td)^{1/3}/ε^{2/3}`.

#[allow(unused_imports)]
use pir_bench::fitting as _fitting;
use pir_bench::{fitting, median, report, runner, scaled};
use pir_core::evaluate::evaluate_generic;
use pir_core::{PrivIncErm, TauRule};
use pir_datagen::{classification_stream, sparse_theta, CovariateKind};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::{LogisticLoss, NoisyGdSolver};
use pir_geometry::L2Ball;

fn run_cell(d: usize, t: usize, eps: f64, rule: TauRule, seed: u64) -> f64 {
    let params = PrivacyParams::approx(eps, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(seed);
    let theta_star = sparse_theta(d, d.min(4), 0.9, &mut rng);
    let stream = classification_stream(
        t,
        d,
        CovariateKind::DenseSphere { radius: 0.95 },
        &theta_star,
        0.4,
        &mut rng,
    );
    let mut mech = PrivIncErm::new(
        Box::new(LogisticLoss),
        Box::new(NoisyGdSolver { iters: 32, beta: 0.05 }),
        Box::new(L2Ball::unit(d)),
        t,
        &params,
        rule,
        rng.fork(),
    )
    .unwrap();
    let rep =
        evaluate_generic(&mut mech, &stream, &LogisticLoss, &L2Ball::unit(d), (t / 8).max(1), 1200)
            .unwrap();
    rep.max_excess()
}

fn main() {
    report::banner(
        "E1",
        "Generic transformation, convex loss (logistic): (Td)^{1/3}/ε^{2/3}",
        "α ≈ (Td)^{1/3}·L‖C‖·polylog/ε^{2/3} at τ = (Td)^{1/3}/ε^{2/3} (Thm 3.1(1))",
    );
    let reps = scaled(3, 2) as u64;

    // Sweep T at fixed d.
    let t_values: Vec<usize> = vec![64, 128, 256, 512]
        .into_iter()
        .map(|t| scaled(t, 32).max(32))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let cells: Vec<(usize, u64)> =
        t_values.iter().flat_map(|&t| (0..reps).map(move |r| (t, r))).collect();
    let results = runner::parallel_map(cells.clone(), |&(t, r)| {
        run_cell(10, t, 1.0, TauRule::Convex, 100 + t as u64 + r)
    });
    let mut table = report::Table::new(&["d", "T", "ε", "max excess (median)"]);
    let mut t_axis = Vec::new();
    let mut ex_t = Vec::new();
    for &t in &t_values {
        let vals: Vec<f64> =
            cells.iter().zip(&results).filter(|((tt, _), _)| *tt == t).map(|(_, v)| *v).collect();
        let m = median(&vals);
        table.row(&["10".into(), t.to_string(), "1.0".into(), report::f(m)]);
        t_axis.push(t as f64);
        ex_t.push(m);
    }
    table.print();
    let t_slope = fitting::loglog_slope(&t_axis, &ex_t);
    println!(
        "measured excess-vs-T slope: {t_slope:.3} (paper leading term: 1/3). Regime \
         note: at ε = 1 and laptop-scale T the generic transformation's doubly \
         composed noise keeps it in the min{{·, T}} clause (slope → 1); the τ* \
         balancing property below is the scale-independent check."
    );
    println!();

    // Sweep d at fixed T.
    let d_values = [5usize, 20, 80];
    let t_fixed = scaled(256, 64);
    let cells_d: Vec<(usize, u64)> =
        d_values.iter().flat_map(|&d| (0..reps).map(move |r| (d, r))).collect();
    let results_d = runner::parallel_map(cells_d.clone(), |&(d, r)| {
        run_cell(d, t_fixed, 1.0, TauRule::Convex, 300 + d as u64 + r)
    });
    let mut table_d = report::Table::new(&["d", "T", "ε", "max excess (median)"]);
    let mut d_axis = Vec::new();
    let mut ex_d = Vec::new();
    for &d in &d_values {
        let vals: Vec<f64> = cells_d
            .iter()
            .zip(&results_d)
            .filter(|((dd, _), _)| *dd == d)
            .map(|(_, v)| *v)
            .collect();
        let m = median(&vals);
        table_d.row(&[d.to_string(), t_fixed.to_string(), "1.0".into(), report::f(m)]);
        d_axis.push(d as f64);
        ex_d.push(m);
    }
    table_d.print();
    let d_slope = fitting::loglog_slope(&d_axis, &ex_d);
    println!(
        "measured excess-vs-d slope: {d_slope:.3} (paper leading term: 1/3; flat in \
         the min{{·, T}}-clamped regime since the trivial level is d-insensitive \
         for logistic loss)."
    );
    println!();

    // τ ablation at one cell: the Theorem 3.1(1) τ* should be within a
    // small factor of the best fixed τ.
    let (d, t) = (10usize, scaled(256, 64));
    let mut table_tau = report::Table::new(&["τ rule", "τ", "max excess (median)"]);
    let star = TauRule::Convex.resolve(&LogisticLoss, &L2Ball::unit(d), t, 1.0);
    for (label, rule) in [
        ("naive τ=1".to_string(), TauRule::Fixed(1)),
        (format!("theorem τ*={star}"), TauRule::Convex),
        ("stale τ=T/2".to_string(), TauRule::Fixed(t / 2)),
    ] {
        let vals: Vec<f64> = (0..reps).map(|r| run_cell(d, t, 1.0, rule, 500 + r)).collect();
        let tau = rule.resolve(&LogisticLoss, &L2Ball::unit(d), t, 1.0);
        table_tau.row(&[label, tau.to_string(), report::f(median(&vals))]);
    }
    table_tau.print();
    println!("reading: τ* balances staleness against per-invocation noise (§3).");
}
