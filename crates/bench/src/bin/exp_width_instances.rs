//! E6 — the §5.2 instantiation list: for each constraint-set family the
//! paper highlights (L1 ball / Lasso, probability simplex, group-L1,
//! Lp ball with p = 1.5, sparse polytope hull), report the analytic and
//! Monte-Carlo Gaussian widths and the measured excess risk of
//! `PrivIncReg2` on the same sparse stream. The claim: risk tracks
//! `W^{2/3}`, so low-width sets are uniformly cheaper.

use pir_bench::{median, report, scaled};
use pir_core::evaluate::evaluate_squared_loss;
use pir_core::{PrivIncReg2, PrivIncReg2Config};
use pir_datagen::{linear_stream, CovariateKind, LinearModel};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_geometry::{
    width, ConvexSet, GroupL1Ball, KSparseDomain, L1Ball, LpBall, PolytopeHull, Simplex, WidthSet,
};

const K: usize = 3;

fn make_set(name: &str, d: usize) -> Box<dyn ConvexSet> {
    match name {
        "L1 ball (Lasso)" => Box::new(L1Ball::unit(d)),
        "simplex" => Box::new(Simplex::standard(d)),
        "group-L1 (k=5)" => Box::new(GroupL1Ball::new(d, 5, 1.0)),
        "Lp ball (p=1.5)" => Box::new(LpBall::new(d, 1.5, 1.0)),
        "cross-polytope hull" => {
            Box::new(PolytopeHull::cross_polytope(d, 1.0).with_projection_iters(60))
        }
        _ => unreachable!("unknown set"),
    }
}

/// θ* adapted to the set: on the simplex use a positive sparse vector.
fn theta_star_for(name: &str, d: usize, rng: &mut NoiseRng) -> Vec<f64> {
    let mut theta = vec![0.0; d];
    match name {
        "simplex" => {
            theta[0] = 0.3;
            theta[1] = 0.15;
            // Remaining mass spread very thinly to stay in the simplex
            // interior direction (Σθ ≤ 1; the oracle projects anyway).
        }
        _ => {
            theta[0] = 0.3 * if rng.uniform_open() > 0.5 { 1.0 } else { -1.0 };
            theta[1] = 0.15;
        }
    }
    theta
}

fn run_instance(name: &'static str, d: usize, t: usize, seed: u64) -> f64 {
    let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
    let mut rng = NoiseRng::seed_from_u64(seed);
    let theta = theta_star_for(name, d, &mut rng);
    let model = LinearModel { theta_star: theta, noise_std: 0.02 };
    let stream = linear_stream(t, d, CovariateKind::Sparse { k: K }, &model, &mut rng);
    let set = make_set(name, d);
    let domain_w = KSparseDomain::new(d, K, 1.0).width_bound();
    let mut mech = PrivIncReg2::new(
        set,
        domain_w,
        t,
        &params,
        &mut rng,
        PrivIncReg2Config { gordon_constant: 0.05, lift_iters: 40, ..Default::default() },
    )
    .unwrap();
    let rep = evaluate_squared_loss(&mut mech, &stream, make_set(name, d), (t / 4).max(1)).unwrap();
    rep.max_excess()
}

fn main() {
    report::banner(
        "E6",
        "§5.2 constraint-set instances: width vs measured risk",
        "risk of PrivIncReg2 tracks W^{2/3}; every §5.2 set has W ≪ √d",
    );
    let d = scaled(120, 60);
    let t = scaled(256, 96);
    let reps = scaled(3, 2) as u64;
    let names: [&'static str; 5] =
        ["L1 ball (Lasso)", "simplex", "group-L1 (k=5)", "Lp ball (p=1.5)", "cross-polytope hull"];

    let mut table = report::Table::new(&[
        "constraint set",
        "w(C) bound",
        "w(C) Monte-Carlo",
        "W=w(X)+w(C)",
        "max excess (median)",
    ]);
    let mut mc_rng = NoiseRng::seed_from_u64(777);
    let domain_w = KSparseDomain::new(d, K, 1.0).width_bound();
    println!(
        "d = {d}, T = {t}, sparse covariates (k = {K}), w(X) bound = {domain_w:.2}, √d = {:.2}",
        (d as f64).sqrt()
    );
    println!();
    for name in names {
        let set = make_set(name, d);
        let bound = set.width_bound();
        let mc = width::monte_carlo(&set, 400, &mut mc_rng).mean;
        let vals: Vec<f64> = (0..reps).map(|r| run_instance(name, d, t, 900 + r)).collect();
        table.row(&[
            name.to_string(),
            report::f(bound),
            report::f(mc),
            report::f(domain_w + bound),
            report::f(median(&vals)),
        ]);
    }
    table.print();
    println!();
    println!(
        "reading: all five §5.2 sets keep W at polylog(d) scale, and the measured \
         risks are within small factors of one another — in contrast to a width-√d \
         set, which would inflate both W and the risk by ≈ {:.1}×.",
        (d as f64).sqrt() / L1Ball::unit(d).width_bound()
    );
}
