//! # pir-bench
//!
//! Experiment harness regenerating every evaluation artifact of the paper
//! (see DESIGN.md §3 for the experiment index E1–E10, A1–A2). Each
//! `exp_*` binary in `src/bin/` prints the paper-style rows; Criterion
//! benches under `benches/` cover the computational-cost claims.
//!
//! Run an experiment:
//! ```text
//! cargo run --release -p pir-bench --bin exp_table1_row3_mech1
//! ```
//! Set `PIR_QUICK=1` to shrink every sweep ~4× for smoke runs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fitting;
pub mod report;
pub mod runner;

/// Whether quick mode is enabled via the `PIR_QUICK` environment variable.
pub fn quick_mode() -> bool {
    std::env::var("PIR_QUICK").map(|v| v == "1" || v.eq_ignore_ascii_case("true")).unwrap_or(false)
}

/// Scale a size parameter down in quick mode (never below `min`).
pub fn scaled(full: usize, min: usize) -> usize {
    if quick_mode() {
        (full / 4).max(min)
    } else {
        full
    }
}

/// Median of a non-empty slice (copies and sorts).
///
/// # Panics
/// Panics on empty input or NaN entries.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn scaled_respects_min() {
        // Not asserting on quick_mode() (env-dependent); the arithmetic
        // contract holds either way.
        assert!(scaled(1024, 64) >= 64);
        assert!(scaled(1024, 64) <= 1024);
    }
}
