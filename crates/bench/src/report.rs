//! Markdown-ish table emission for experiment binaries: fixed-width
//! columns so output is readable both raw and when pasted into
//! EXPERIMENTS.md.

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "table arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable items.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Render with pipe separators and aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push_str(&format!(" {:>width$} |", cells[i], width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 4 significant-ish decimals for table cells.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

/// Print an experiment banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("claim under test: {claim}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_pipes() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("| long-header |"));
        assert_eq!(r.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.5000");
        assert!(f(12345.0).contains('e'));
    }
}
