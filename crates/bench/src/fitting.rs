//! Log–log slope fitting for shape checks: the paper reports bounds like
//! `α ≈ T^{1/3}` or `α ≈ √d`; we fit `log y = a + b·log x` by ordinary
//! least squares and compare `b` against the predicted exponent.

/// Least-squares slope of `log y` against `log x`.
///
/// # Panics
/// Panics if fewer than two points or any non-positive value is supplied
/// (log–log fits need strictly positive data).
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit a slope");
    let lx: Vec<f64> = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "log-log fit needs positive x");
            x.ln()
        })
        .collect();
    let ly: Vec<f64> = ys
        .iter()
        .map(|&y| {
            assert!(y > 0.0, "log-log fit needs positive y");
            y.ln()
        })
        .collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = lx.iter().map(|a| (a - mx) * (a - mx)).sum();
    cov / var
}

/// Human-readable verdict line comparing a fitted exponent against the
/// predicted one within a tolerance band.
pub fn verdict(label: &str, fitted: f64, predicted: f64, tol: f64) -> String {
    let ok = (fitted - predicted).abs() <= tol;
    format!(
        "{label}: fitted exponent {fitted:.3} vs paper {predicted:.3} (±{tol:.2}) → {}",
        if ok { "SHAPE OK" } else { "SHAPE DEVIATES" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_power_laws_exactly() {
        let xs: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        assert!((loglog_slope(&xs, &ys) - 0.5).abs() < 1e-12);
        let ys2: Vec<f64> = xs.iter().map(|x| 0.1 * x.powf(1.0 / 3.0)).collect();
        assert!((loglog_slope(&xs, &ys2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn verdict_strings() {
        assert!(verdict("t", 0.52, 0.5, 0.1).contains("SHAPE OK"));
        assert!(verdict("t", 0.9, 0.5, 0.1).contains("DEVIATES"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        let _ = loglog_slope(&[1.0, 2.0], &[0.0, 1.0]);
    }
}
