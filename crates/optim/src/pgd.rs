//! Exact-gradient first-order methods: projected gradient descent, FISTA,
//! and Frank–Wolfe.

use crate::objective::Objective;
use pir_geometry::ConvexSet;
use pir_linalg::vector;

/// Step-size schedules for [`projected_gradient`].
#[derive(Debug, Clone, Copy)]
pub enum StepSize {
    /// Fixed step `η`.
    Constant(f64),
    /// `η_k = c/√(k+1)` — the schedule for non-smooth objectives.
    DiminishingSqrt(f64),
}

/// Configuration for [`projected_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct PgdConfig {
    /// Number of iterations `r`.
    pub iters: usize,
    /// Step-size rule.
    pub step: StepSize,
    /// Return the running average of iterates (needed for the standard
    /// subgradient-method rate) instead of the last iterate.
    pub average: bool,
}

impl PgdConfig {
    /// Constant-step configuration with averaging.
    pub fn averaged(iters: usize, eta: f64) -> Self {
        PgdConfig { iters, step: StepSize::Constant(eta), average: true }
    }

    /// Last-iterate configuration (appropriate for smooth + small steps).
    pub fn last_iterate(iters: usize, eta: f64) -> Self {
        PgdConfig { iters, step: StepSize::Constant(eta), average: false }
    }
}

/// Projected (sub)gradient descent:
/// `θ_{k+1} = P_C(θ_k − η_k ∇f(θ_k))`, starting from `P_C(θ₀)`.
pub fn projected_gradient<O: Objective + ?Sized, C: ConvexSet + ?Sized>(
    obj: &O,
    set: &C,
    config: &PgdConfig,
    theta0: &[f64],
) -> Vec<f64> {
    let mut theta = set.project(theta0);
    let mut avg = vec![0.0; theta.len()];
    for k in 0..config.iters {
        let eta = match config.step {
            StepSize::Constant(c) => c,
            StepSize::DiminishingSqrt(c) => c / ((k + 1) as f64).sqrt(),
        };
        let g = obj.gradient(&theta);
        vector::axpy(-eta, &g, &mut theta);
        theta = set.project(&theta);
        if config.average {
            vector::axpy(1.0, &theta, &mut avg);
        }
    }
    if config.average && config.iters > 0 {
        vector::scale_mut(&mut avg, 1.0 / config.iters as f64);
        avg
    } else {
        theta
    }
}

/// FISTA (accelerated projected gradient) for an `L_s`-smooth convex
/// objective: `O(1/k²)` value convergence. Used to solve the lifting
/// program `min_{θ∈C} ‖Φθ − ϑ‖²` of Algorithm 3, Step 9.
pub fn fista<O: Objective + ?Sized, C: ConvexSet + ?Sized>(
    obj: &O,
    set: &C,
    smoothness: f64,
    iters: usize,
    theta0: &[f64],
) -> Vec<f64> {
    let mut out = vec![0.0; theta0.len()];
    let mut scratch = FistaScratch::new(theta0.len());
    fista_into(obj, set, smoothness, iters, theta0, &mut scratch, &mut out);
    out
}

/// Reusable iteration buffers for [`fista_into`]: gradient, momentum
/// point, pre-projection step, and projected iterate — all of dimension
/// `d`.
#[derive(Debug, Clone)]
pub struct FistaScratch {
    g: Vec<f64>,
    momentum: Vec<f64>,
    raw: Vec<f64>,
    next: Vec<f64>,
}

impl FistaScratch {
    /// Buffers for a `d`-dimensional FISTA run.
    pub fn new(d: usize) -> Self {
        FistaScratch {
            g: vec![0.0; d],
            momentum: vec![0.0; d],
            raw: vec![0.0; d],
            next: vec![0.0; d],
        }
    }
}

/// [`fista`] writing the final iterate into `out` and reusing
/// caller-owned iteration buffers — the allocation-free form the per-step
/// mechanism descent runs on (paired with [`Objective::gradient_into`]
/// and [`ConvexSet::project_into`], a whole FISTA run touches the heap
/// zero times). Value-for-value identical to [`fista`].
///
/// # Panics
/// Panics if `smoothness <= 0` or if `out`/`scratch` dimensions do not
/// match `theta0`.
pub fn fista_into<O: Objective + ?Sized, C: ConvexSet + ?Sized>(
    obj: &O,
    set: &C,
    smoothness: f64,
    iters: usize,
    theta0: &[f64],
    scratch: &mut FistaScratch,
    out: &mut [f64],
) {
    assert!(smoothness > 0.0, "fista needs a positive smoothness constant");
    assert_eq!(out.len(), theta0.len(), "fista_into: output length mismatch");
    assert_eq!(scratch.g.len(), theta0.len(), "fista_into: scratch dimension mismatch");
    let step = 1.0 / smoothness;
    let FistaScratch { g, momentum, raw, next } = scratch;
    // `out` holds the current iterate θ_k throughout.
    set.project_into(theta0, out);
    momentum.copy_from_slice(out);
    let mut t_k = 1.0f64;
    for _ in 0..iters {
        obj.gradient_into(momentum, g);
        raw.copy_from_slice(momentum);
        vector::axpy(-step, g, raw);
        set.project_into(raw, next);
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_k * t_k).sqrt());
        let beta = (t_k - 1.0) / t_next;
        for ((m, &n), &p) in momentum.iter_mut().zip(next.iter()).zip(out.iter()) {
            *m = n + beta * (n - p);
        }
        out.copy_from_slice(next);
        t_k = t_next;
    }
}

/// [`fista_into`] with a relative-progress stopping rule: the loop exits
/// early once the projected step moves the iterate by no more than
/// `rel_tol · max(1, ‖θ_{k+1}‖)` in `ℓ₂`, with `iters` as a hard ceiling.
/// Returns the number of iterations actually performed.
///
/// Every iteration it does perform is **bit-identical** to the
/// corresponding [`fista_into`] iteration — the rule only decides when to
/// stop, never how to step — so with `rel_tol = 0` the two are
/// indistinguishable. A tight tolerance (the descent uses `1e-10`, the
/// lift `1e-8` — each documented and property-tested at its call site)
/// keeps the returned iterate within the tail movement of the truncated
/// iterations: FISTA's momentum can amplify one step by at most the
/// remaining-iteration count, so callers that need a value guarantee pick
/// `rel_tol ≲ wanted_tolerance / iters`.
///
/// # Panics
/// As [`fista_into`]; additionally `rel_tol` must be finite and `≥ 0`.
#[allow(clippy::too_many_arguments)]
pub fn fista_into_adaptive<O: Objective + ?Sized, C: ConvexSet + ?Sized>(
    obj: &O,
    set: &C,
    smoothness: f64,
    iters: usize,
    rel_tol: f64,
    theta0: &[f64],
    scratch: &mut FistaScratch,
    out: &mut [f64],
) -> usize {
    assert!(smoothness > 0.0, "fista needs a positive smoothness constant");
    assert!(rel_tol.is_finite() && rel_tol >= 0.0, "fista stop tolerance must be finite and >= 0");
    assert_eq!(out.len(), theta0.len(), "fista_into_adaptive: output length mismatch");
    assert_eq!(scratch.g.len(), theta0.len(), "fista_into_adaptive: scratch dimension mismatch");
    let step = 1.0 / smoothness;
    let FistaScratch { g, momentum, raw, next } = scratch;
    set.project_into(theta0, out);
    momentum.copy_from_slice(out);
    let mut t_k = 1.0f64;
    for k in 0..iters {
        obj.gradient_into(momentum, g);
        raw.copy_from_slice(momentum);
        vector::axpy(-step, g, raw);
        set.project_into(raw, next);
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_k * t_k).sqrt());
        let beta = (t_k - 1.0) / t_next;
        let mut moved_sq = 0.0;
        for ((m, &n), &p) in momentum.iter_mut().zip(next.iter()).zip(out.iter()) {
            let dp = n - p;
            moved_sq += dp * dp;
            *m = n + beta * dp;
        }
        out.copy_from_slice(next);
        t_k = t_next;
        let scale = vector::norm2(out).max(1.0);
        if moved_sq.sqrt() <= rel_tol * scale {
            return k + 1;
        }
    }
    iters
}

/// Frank–Wolfe (conditional gradient) with the standard `2/(k+2)` step:
/// projection-free; every iterate is a convex combination of support
/// points, so it stays feasible by construction.
pub fn frank_wolfe<O: Objective + ?Sized, C: ConvexSet + ?Sized>(
    obj: &O,
    set: &C,
    iters: usize,
    theta0: &[f64],
) -> Vec<f64> {
    let mut theta = set.project(theta0);
    for k in 0..iters {
        let g = obj.gradient(&theta);
        let neg: Vec<f64> = g.iter().map(|v| -v).collect();
        let s = set.support(&neg);
        let gamma = 2.0 / (k as f64 + 2.0);
        for (t, si) in theta.iter_mut().zip(&s) {
            *t += gamma * (si - *t);
        }
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Quadratic;
    use pir_geometry::{L1Ball, L2Ball};
    use pir_linalg::Matrix;

    /// f(θ) = ‖θ − target‖², constrained to a ball excluding the target.
    fn shifted_quadratic(target: &[f64]) -> Quadratic {
        let d = target.len();
        let mut a = Matrix::identity(d);
        a.scale_mut(2.0);
        Quadratic::new(a, vector::scale(target, 2.0), vector::norm2_sq(target))
    }

    #[test]
    fn pgd_finds_constrained_optimum_on_ball_boundary() {
        // Unconstrained optimum (3, 0); constrained to unit L2 ball the
        // minimizer is (1, 0).
        let obj = shifted_quadratic(&[3.0, 0.0]);
        let set = L2Ball::unit(2);
        let cfg = PgdConfig::last_iterate(500, 0.2);
        let theta = projected_gradient(&obj, &set, &cfg, &[0.0, 0.0]);
        assert!(vector::distance(&theta, &[1.0, 0.0]) < 1e-6, "{theta:?}");
    }

    #[test]
    fn pgd_diminishing_step_with_averaging_converges() {
        let obj = shifted_quadratic(&[0.5, -0.25]);
        let set = L2Ball::unit(2);
        let cfg = PgdConfig { iters: 4000, step: StepSize::DiminishingSqrt(0.5), average: true };
        let theta = projected_gradient(&obj, &set, &cfg, &[1.0, 1.0]);
        // Interior optimum: averaging converges at the slow √k rate.
        assert!(vector::distance(&theta, &[0.5, -0.25]) < 0.05, "{theta:?}");
    }

    #[test]
    fn fista_beats_pgd_on_ill_conditioned_quadratic() {
        // Condition number 400.
        let a = Matrix::from_rows(&[&[400.0, 0.0], &[0.0, 1.0]]).unwrap();
        let obj = Quadratic::new(a, vec![0.0, 1.0], 0.0); // optimum (0, 1) — inside 2-ball
        let set = L2Ball::new(2, 2.0);
        let iters = 400;
        let x_fista = fista(&obj, &set, 400.0, iters, &[1.5, -1.5]);
        let x_pgd = projected_gradient(
            &obj,
            &set,
            &PgdConfig::last_iterate(iters, 1.0 / 400.0),
            &[1.5, -1.5],
        );
        // Optimal value is f(0, 1) = −0.5.
        let f_fista = obj.value(&x_fista) + 0.5;
        let f_pgd = obj.value(&x_pgd) + 0.5;
        assert!(f_fista < f_pgd, "fista {f_fista} !< pgd {f_pgd}");
        assert!(vector::distance(&x_fista, &[0.0, 1.0]) < 0.1, "{x_fista:?}");
    }

    #[test]
    fn frank_wolfe_stays_feasible_and_converges_on_l1_ball() {
        let obj = shifted_quadratic(&[0.9, 0.0, 0.0]);
        let set = L1Ball::unit(3);
        let theta = frank_wolfe(&obj, &set, 2000, &[0.0, 0.0, 0.0]);
        assert!(vector::norm1(&theta) <= 1.0 + 1e-9);
        assert!(vector::distance(&theta, &[0.9, 0.0, 0.0]) < 1e-2, "{theta:?}");
    }

    #[test]
    fn fista_into_is_identical_to_fista_and_scratch_is_reusable() {
        let a = Matrix::from_rows(&[&[400.0, 0.0], &[0.0, 1.0]]).unwrap();
        let obj = Quadratic::new(a, vec![0.0, 1.0], 0.0);
        let set = L2Ball::new(2, 2.0);
        let expect = fista(&obj, &set, 400.0, 200, &[1.5, -1.5]);
        let mut scratch = FistaScratch::new(2);
        let mut out = [0.0; 2];
        // Dirty scratch from a previous run must not leak into the next.
        fista_into(&obj, &set, 400.0, 10, &[-0.3, 0.9], &mut scratch, &mut out);
        fista_into(&obj, &set, 400.0, 200, &[1.5, -1.5], &mut scratch, &mut out);
        assert_eq!(out.to_vec(), expect);
        // The borrowed view drives the same trajectory as the owner.
        let a2 = Matrix::from_rows(&[&[400.0, 0.0], &[0.0, 1.0]]).unwrap();
        let b2 = [0.0, 1.0];
        let view = crate::objective::QuadraticView::new(&a2, &b2, 0.0);
        fista_into(&view, &set, 400.0, 200, &[1.5, -1.5], &mut scratch, &mut out);
        assert_eq!(out.to_vec(), expect);
    }

    #[test]
    fn adaptive_with_zero_tolerance_is_bit_identical_to_fixed() {
        // rel_tol = 0 never triggers (a projected FISTA step on a
        // non-degenerate quadratic always moves), so the adaptive loop
        // must replay the fixed loop exactly.
        let a = Matrix::from_rows(&[&[400.0, 0.0], &[0.0, 1.0]]).unwrap();
        let obj = Quadratic::new(a, vec![0.0, 1.0], 0.0);
        let set = L2Ball::new(2, 2.0);
        let mut scratch = FistaScratch::new(2);
        let mut fixed = [0.0; 2];
        let mut adaptive = [0.0; 2];
        for iters in [1, 7, 50] {
            fista_into(&obj, &set, 400.0, iters, &[1.5, -1.5], &mut scratch, &mut fixed);
            let used = fista_into_adaptive(
                &obj,
                &set,
                400.0,
                iters,
                0.0,
                &[1.5, -1.5],
                &mut scratch,
                &mut adaptive,
            );
            assert_eq!(used, iters);
            assert_eq!(fixed.map(f64::to_bits), adaptive.map(f64::to_bits));
        }
    }

    #[test]
    fn adaptive_stop_saves_iterations_and_stays_near_the_fixed_answer() {
        // Well-conditioned strongly convex problem: FISTA contracts fast,
        // so a tight relative-progress stop fires long before the ceiling
        // while staying within the documented tolerance of the fixed run.
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let obj = Quadratic::new(a, vec![1.0, -0.5], 0.0);
        let set = L2Ball::new(2, 2.0);
        let mut scratch = FistaScratch::new(2);
        let iters = 400;
        let mut fixed = [0.0; 2];
        fista_into(&obj, &set, 5.0, iters, &[1.5, -1.5], &mut scratch, &mut fixed);
        let mut adaptive = [0.0; 2];
        let used = fista_into_adaptive(
            &obj,
            &set,
            5.0,
            iters,
            1e-10,
            &[1.5, -1.5],
            &mut scratch,
            &mut adaptive,
        );
        assert!(used < iters, "stop rule never fired ({used} iterations)");
        assert!(
            vector::distance(&fixed, &adaptive) <= 1e-8,
            "adaptive {adaptive:?} vs fixed {fixed:?}"
        );
    }

    #[test]
    fn zero_iterations_returns_projected_start() {
        let obj = shifted_quadratic(&[3.0, 0.0]);
        let set = L2Ball::unit(2);
        let theta = projected_gradient(&obj, &set, &PgdConfig::last_iterate(0, 0.1), &[5.0, 0.0]);
        assert!(vector::distance(&theta, &[1.0, 0.0]) < 1e-12);
    }
}
