//! Exact-gradient first-order methods: projected gradient descent, FISTA,
//! and Frank–Wolfe.

use crate::objective::Objective;
use pir_geometry::ConvexSet;
use pir_linalg::vector;

/// Step-size schedules for [`projected_gradient`].
#[derive(Debug, Clone, Copy)]
pub enum StepSize {
    /// Fixed step `η`.
    Constant(f64),
    /// `η_k = c/√(k+1)` — the schedule for non-smooth objectives.
    DiminishingSqrt(f64),
}

/// Configuration for [`projected_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct PgdConfig {
    /// Number of iterations `r`.
    pub iters: usize,
    /// Step-size rule.
    pub step: StepSize,
    /// Return the running average of iterates (needed for the standard
    /// subgradient-method rate) instead of the last iterate.
    pub average: bool,
}

impl PgdConfig {
    /// Constant-step configuration with averaging.
    pub fn averaged(iters: usize, eta: f64) -> Self {
        PgdConfig { iters, step: StepSize::Constant(eta), average: true }
    }

    /// Last-iterate configuration (appropriate for smooth + small steps).
    pub fn last_iterate(iters: usize, eta: f64) -> Self {
        PgdConfig { iters, step: StepSize::Constant(eta), average: false }
    }
}

/// Projected (sub)gradient descent:
/// `θ_{k+1} = P_C(θ_k − η_k ∇f(θ_k))`, starting from `P_C(θ₀)`.
pub fn projected_gradient<O: Objective + ?Sized, C: ConvexSet + ?Sized>(
    obj: &O,
    set: &C,
    config: &PgdConfig,
    theta0: &[f64],
) -> Vec<f64> {
    let mut theta = set.project(theta0);
    let mut avg = vec![0.0; theta.len()];
    for k in 0..config.iters {
        let eta = match config.step {
            StepSize::Constant(c) => c,
            StepSize::DiminishingSqrt(c) => c / ((k + 1) as f64).sqrt(),
        };
        let g = obj.gradient(&theta);
        vector::axpy(-eta, &g, &mut theta);
        theta = set.project(&theta);
        if config.average {
            vector::axpy(1.0, &theta, &mut avg);
        }
    }
    if config.average && config.iters > 0 {
        vector::scale_mut(&mut avg, 1.0 / config.iters as f64);
        avg
    } else {
        theta
    }
}

/// FISTA (accelerated projected gradient) for an `L_s`-smooth convex
/// objective: `O(1/k²)` value convergence. Used to solve the lifting
/// program `min_{θ∈C} ‖Φθ − ϑ‖²` of Algorithm 3, Step 9.
pub fn fista<O: Objective + ?Sized, C: ConvexSet + ?Sized>(
    obj: &O,
    set: &C,
    smoothness: f64,
    iters: usize,
    theta0: &[f64],
) -> Vec<f64> {
    assert!(smoothness > 0.0, "fista needs a positive smoothness constant");
    let step = 1.0 / smoothness;
    let mut theta = set.project(theta0);
    let mut momentum = theta.clone();
    let mut t_k = 1.0f64;
    for _ in 0..iters {
        let g = obj.gradient(&momentum);
        let mut next = momentum.clone();
        vector::axpy(-step, &g, &mut next);
        let next = set.project(&next);
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t_k * t_k).sqrt());
        let beta = (t_k - 1.0) / t_next;
        momentum = next.iter().zip(&theta).map(|(n, p)| n + beta * (n - p)).collect();
        theta = next;
        t_k = t_next;
    }
    theta
}

/// Frank–Wolfe (conditional gradient) with the standard `2/(k+2)` step:
/// projection-free; every iterate is a convex combination of support
/// points, so it stays feasible by construction.
pub fn frank_wolfe<O: Objective + ?Sized, C: ConvexSet + ?Sized>(
    obj: &O,
    set: &C,
    iters: usize,
    theta0: &[f64],
) -> Vec<f64> {
    let mut theta = set.project(theta0);
    for k in 0..iters {
        let g = obj.gradient(&theta);
        let neg: Vec<f64> = g.iter().map(|v| -v).collect();
        let s = set.support(&neg);
        let gamma = 2.0 / (k as f64 + 2.0);
        for (t, si) in theta.iter_mut().zip(&s) {
            *t += gamma * (si - *t);
        }
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Quadratic;
    use pir_geometry::{L1Ball, L2Ball};
    use pir_linalg::Matrix;

    /// f(θ) = ‖θ − target‖², constrained to a ball excluding the target.
    fn shifted_quadratic(target: &[f64]) -> Quadratic {
        let d = target.len();
        let mut a = Matrix::identity(d);
        a.scale_mut(2.0);
        Quadratic::new(a, vector::scale(target, 2.0), vector::norm2_sq(target))
    }

    #[test]
    fn pgd_finds_constrained_optimum_on_ball_boundary() {
        // Unconstrained optimum (3, 0); constrained to unit L2 ball the
        // minimizer is (1, 0).
        let obj = shifted_quadratic(&[3.0, 0.0]);
        let set = L2Ball::unit(2);
        let cfg = PgdConfig::last_iterate(500, 0.2);
        let theta = projected_gradient(&obj, &set, &cfg, &[0.0, 0.0]);
        assert!(vector::distance(&theta, &[1.0, 0.0]) < 1e-6, "{theta:?}");
    }

    #[test]
    fn pgd_diminishing_step_with_averaging_converges() {
        let obj = shifted_quadratic(&[0.5, -0.25]);
        let set = L2Ball::unit(2);
        let cfg = PgdConfig { iters: 4000, step: StepSize::DiminishingSqrt(0.5), average: true };
        let theta = projected_gradient(&obj, &set, &cfg, &[1.0, 1.0]);
        // Interior optimum: averaging converges at the slow √k rate.
        assert!(vector::distance(&theta, &[0.5, -0.25]) < 0.05, "{theta:?}");
    }

    #[test]
    fn fista_beats_pgd_on_ill_conditioned_quadratic() {
        // Condition number 400.
        let a = Matrix::from_rows(&[&[400.0, 0.0], &[0.0, 1.0]]).unwrap();
        let obj = Quadratic::new(a, vec![0.0, 1.0], 0.0); // optimum (0, 1) — inside 2-ball
        let set = L2Ball::new(2, 2.0);
        let iters = 400;
        let x_fista = fista(&obj, &set, 400.0, iters, &[1.5, -1.5]);
        let x_pgd = projected_gradient(
            &obj,
            &set,
            &PgdConfig::last_iterate(iters, 1.0 / 400.0),
            &[1.5, -1.5],
        );
        // Optimal value is f(0, 1) = −0.5.
        let f_fista = obj.value(&x_fista) + 0.5;
        let f_pgd = obj.value(&x_pgd) + 0.5;
        assert!(f_fista < f_pgd, "fista {f_fista} !< pgd {f_pgd}");
        assert!(vector::distance(&x_fista, &[0.0, 1.0]) < 0.1, "{x_fista:?}");
    }

    #[test]
    fn frank_wolfe_stays_feasible_and_converges_on_l1_ball() {
        let obj = shifted_quadratic(&[0.9, 0.0, 0.0]);
        let set = L1Ball::unit(3);
        let theta = frank_wolfe(&obj, &set, 2000, &[0.0, 0.0, 0.0]);
        assert!(vector::norm1(&theta) <= 1.0 + 1e-9);
        assert!(vector::distance(&theta, &[0.9, 0.0, 0.0]) < 1e-2, "{theta:?}");
    }

    #[test]
    fn zero_iterations_returns_projected_start() {
        let obj = shifted_quadratic(&[3.0, 0.0]);
        let set = L2Ball::unit(2);
        let theta = projected_gradient(&obj, &set, &PgdConfig::last_iterate(0, 0.1), &[5.0, 0.0]);
        assert!(vector::distance(&theta, &[1.0, 0.0]) < 1e-12);
    }
}
