//! Objective abstraction and the quadratic test objective.

use pir_linalg::{vector, Matrix};

/// A differentiable (or subdifferentiable) objective `f : R^d → R`.
pub trait Objective {
    /// Ambient dimension.
    fn dim(&self) -> usize;

    /// Objective value `f(θ)`.
    fn value(&self, theta: &[f64]) -> f64;

    /// A gradient (or subgradient) of `f` at `θ`.
    fn gradient(&self, theta: &[f64]) -> Vec<f64>;
}

/// The quadratic `f(θ) = ½ θᵀAθ − ⟨b, θ⟩ + c` with symmetric PSD `A` —
/// the regression objective in sufficient-statistics form and the standard
/// test objective for the optimizers.
#[derive(Debug, Clone)]
pub struct Quadratic {
    a: Matrix,
    b: Vec<f64>,
    c: f64,
}

impl Quadratic {
    /// New quadratic; `a` must be square and match `b`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn new(a: Matrix, b: Vec<f64>, c: f64) -> Self {
        assert_eq!(a.rows(), a.cols(), "Quadratic needs a square matrix");
        assert_eq!(a.rows(), b.len(), "Quadratic shape mismatch");
        Quadratic { a, b, c }
    }

    /// The least-squares objective `‖y − Xθ‖²` in sufficient-statistics
    /// form: `A = 2XᵀX`, `b = 2Xᵀy`, `c = ‖y‖²`.
    pub fn least_squares(xtx: &Matrix, xty: &[f64], y_norm_sq: f64) -> Self {
        let mut a = xtx.clone();
        a.scale_mut(2.0);
        Quadratic::new(a, vector::scale(xty, 2.0), y_norm_sq)
    }

    /// Smoothness constant (largest eigenvalue of `A`), via power
    /// iteration; used to set FISTA step sizes.
    pub fn smoothness(&self) -> f64 {
        self.a.spectral_norm(1e-9, 100_000).unwrap_or(0.0)
    }
}

impl Objective for Quadratic {
    fn dim(&self) -> usize {
        self.b.len()
    }

    fn value(&self, theta: &[f64]) -> f64 {
        let at = self.a.matvec(theta).expect("dimension checked at construction");
        0.5 * vector::dot(theta, &at) - vector::dot(&self.b, theta) + self.c
    }

    fn gradient(&self, theta: &[f64]) -> Vec<f64> {
        let mut g = self.a.matvec(theta).expect("dimension checked at construction");
        vector::axpy(-1.0, &self.b, &mut g);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_value_and_gradient() {
        // f(θ) = ½(θ₀² + 4θ₁²) − θ₀; minimum at (1, 0) with value −0.5.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]).unwrap();
        let q = Quadratic::new(a, vec![1.0, 0.0], 0.0);
        assert!((q.value(&[1.0, 0.0]) + 0.5).abs() < 1e-12);
        let g = q.gradient(&[1.0, 0.0]);
        assert!(vector::norm2(&g) < 1e-12);
        assert!((q.smoothness() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_form_matches_direct_residual() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]).unwrap();
        let y = [1.0, 2.0, 2.0];
        let xtx = x.transpose().matmul(&x).unwrap();
        let xty = x.matvec_t(&y).unwrap();
        let q = Quadratic::least_squares(&xtx, &xty, vector::norm2_sq(&y));
        for theta in [[0.0, 0.0], [1.0, 1.0], [-0.5, 2.0]] {
            let resid: f64 = (0..3)
                .map(|i| {
                    let pred = vector::dot(x.row(i), &theta);
                    (y[i] - pred) * (y[i] - pred)
                })
                .sum();
            assert!((q.value(&theta) - resid).abs() < 1e-9, "theta {theta:?}");
        }
    }
}
