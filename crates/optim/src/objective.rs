//! Objective abstraction and the quadratic test objective.

use pir_linalg::{vector, Matrix};

/// A differentiable (or subdifferentiable) objective `f : R^d → R`.
pub trait Objective {
    /// Ambient dimension.
    fn dim(&self) -> usize;

    /// Objective value `f(θ)`.
    fn value(&self, theta: &[f64]) -> f64;

    /// A gradient (or subgradient) of `f` at `θ`.
    fn gradient(&self, theta: &[f64]) -> Vec<f64>;

    /// [`Objective::gradient`] writing into a caller-provided buffer — the
    /// allocation-free form driven by [`crate::pgd::fista_into`]. Must be
    /// value-for-value identical to the allocating method; the default
    /// implementation delegates to it, and hot objectives override.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the gradient's length.
    fn gradient_into(&self, theta: &[f64], out: &mut [f64]) {
        out.copy_from_slice(&self.gradient(theta));
    }
}

/// The quadratic `f(θ) = ½ θᵀAθ − ⟨b, θ⟩ + c` with symmetric PSD `A` —
/// the regression objective in sufficient-statistics form and the standard
/// test objective for the optimizers.
#[derive(Debug, Clone)]
pub struct Quadratic {
    a: Matrix,
    b: Vec<f64>,
    c: f64,
}

impl Quadratic {
    /// New quadratic; `a` must be square and match `b`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn new(a: Matrix, b: Vec<f64>, c: f64) -> Self {
        assert_eq!(a.rows(), a.cols(), "Quadratic needs a square matrix");
        assert_eq!(a.rows(), b.len(), "Quadratic shape mismatch");
        Quadratic { a, b, c }
    }

    /// The least-squares objective `‖y − Xθ‖²` in sufficient-statistics
    /// form: `A = 2XᵀX`, `b = 2Xᵀy`, `c = ‖y‖²`.
    pub fn least_squares(xtx: &Matrix, xty: &[f64], y_norm_sq: f64) -> Self {
        let mut a = xtx.clone();
        a.scale_mut(2.0);
        Quadratic::new(a, vector::scale(xty, 2.0), y_norm_sq)
    }

    /// Smoothness constant (largest eigenvalue of `A`), via power
    /// iteration; used to set FISTA step sizes.
    pub fn smoothness(&self) -> f64 {
        self.a.spectral_norm(1e-9, 100_000).unwrap_or(0.0)
    }
}

impl Objective for Quadratic {
    fn dim(&self) -> usize {
        self.b.len()
    }

    fn value(&self, theta: &[f64]) -> f64 {
        QuadraticView::new(&self.a, &self.b, self.c).value(theta)
    }

    fn gradient(&self, theta: &[f64]) -> Vec<f64> {
        QuadraticView::new(&self.a, &self.b, self.c).gradient(theta)
    }

    fn gradient_into(&self, theta: &[f64], out: &mut [f64]) {
        QuadraticView::new(&self.a, &self.b, self.c).gradient_into(theta, out);
    }
}

/// A borrowed view of the quadratic `f(θ) = ½ θᵀAθ − ⟨b, θ⟩ + c`: same
/// objective as [`Quadratic`] without owning (or copying) the statistics.
/// This is what lets the per-step descent of `pir-core` run against
/// mechanism-owned scratch matrices with zero allocation — the matrix
/// stays wherever the mechanism keeps it.
#[derive(Debug, Clone, Copy)]
pub struct QuadraticView<'a> {
    a: &'a Matrix,
    b: &'a [f64],
    c: f64,
}

impl<'a> QuadraticView<'a> {
    /// New view; `a` must be square and match `b`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn new(a: &'a Matrix, b: &'a [f64], c: f64) -> Self {
        assert_eq!(a.rows(), a.cols(), "QuadraticView needs a square matrix");
        assert_eq!(a.rows(), b.len(), "QuadraticView shape mismatch");
        QuadraticView { a, b, c }
    }
}

impl Objective for QuadraticView<'_> {
    fn dim(&self) -> usize {
        self.b.len()
    }

    fn value(&self, theta: &[f64]) -> f64 {
        let at = self.a.matvec(theta).expect("dimension checked at construction");
        0.5 * vector::dot(theta, &at) - vector::dot(self.b, theta) + self.c
    }

    fn gradient(&self, theta: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; self.b.len()];
        self.gradient_into(theta, &mut g);
        g
    }

    fn gradient_into(&self, theta: &[f64], out: &mut [f64]) {
        self.a.matvec_into(theta, out).expect("dimension checked at construction");
        vector::axpy(-1.0, self.b, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_value_and_gradient() {
        // f(θ) = ½(θ₀² + 4θ₁²) − θ₀; minimum at (1, 0) with value −0.5.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]).unwrap();
        let q = Quadratic::new(a, vec![1.0, 0.0], 0.0);
        assert!((q.value(&[1.0, 0.0]) + 0.5).abs() < 1e-12);
        let g = q.gradient(&[1.0, 0.0]);
        assert!(vector::norm2(&g) < 1e-12);
        assert!((q.smoothness() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_form_matches_direct_residual() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]).unwrap();
        let y = [1.0, 2.0, 2.0];
        let xtx = x.transpose().matmul(&x).unwrap();
        let xty = x.matvec_t(&y).unwrap();
        let q = Quadratic::least_squares(&xtx, &xty, vector::norm2_sq(&y));
        for theta in [[0.0, 0.0], [1.0, 1.0], [-0.5, 2.0]] {
            let resid: f64 = (0..3)
                .map(|i| {
                    let pred = vector::dot(x.row(i), &theta);
                    (y[i] - pred) * (y[i] - pred)
                })
                .sum();
            assert!((q.value(&theta) - resid).abs() < 1e-9, "theta {theta:?}");
        }
    }
}
