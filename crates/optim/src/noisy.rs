//! `NOISYPROJGRAD` — projected gradient descent with an inexact gradient
//! oracle (Appendix B of the paper).
//!
//! The oracle is any `g : C → R^d` with `sup_{θ∈C} ‖g(θ) − ∇f(θ)‖ ≤ α`
//! (with high probability) — in the mechanisms it is the *private gradient
//! function* of Definition 5, so every evaluation is post-processing of
//! already-released noisy statistics and costs no additional privacy.
//!
//! Proposition B.1: with constant step `η = ‖C‖/(√r (α + L))` and iterate
//! averaging, after `r` steps
//! `f(θ̄) − f(θ*) ≤ (α + L)‖C‖/√r + α‖C‖`.
//! Corollary B.2: choosing `r = (1 + L/α)²` makes the first term at most
//! `α‖C‖`, i.e. total excess `≤ 2α‖C‖`.

use pir_geometry::ConvexSet;
use pir_linalg::vector;

/// Configuration for [`noisy_projected_gradient`].
#[derive(Debug, Clone, Copy)]
pub struct NoisyPgdConfig {
    /// Iteration count `r` (Corollary B.2 sufficiency via
    /// [`iterations_for_accuracy`], possibly capped by the caller).
    pub iters: usize,
    /// Uniform gradient-error bound `α` of the oracle.
    pub alpha: f64,
    /// Lipschitz constant `L` of the true objective over `C`.
    pub lipschitz: f64,
}

impl NoisyPgdConfig {
    /// Step size `η = ‖C‖/(√r (α + L))` from Proposition B.1.
    pub fn step_size(&self, diameter: f64) -> f64 {
        let denom = (self.iters.max(1) as f64).sqrt() * (self.alpha + self.lipschitz);
        if denom <= 0.0 {
            0.0
        } else {
            diameter / denom
        }
    }

    /// Excess-risk guarantee of Proposition B.1 for this configuration:
    /// `(α + L)‖C‖/√r + α‖C‖`.
    pub fn excess_bound(&self, diameter: f64) -> f64 {
        (self.alpha + self.lipschitz) * diameter / (self.iters.max(1) as f64).sqrt()
            + self.alpha * diameter
    }
}

/// Corollary B.2 iteration rule: `r = ⌈(1 + L/α)²⌉` (for `α > 0`)
/// guarantees excess `≤ 2α‖C‖`; callers typically clamp the result with a
/// compute budget (recorded explicitly in experiment outputs — see
/// DESIGN.md, decision 5).
pub fn iterations_for_accuracy(alpha: f64, lipschitz: f64) -> usize {
    assert!(alpha > 0.0, "iterations_for_accuracy requires alpha > 0");
    let r = (1.0 + lipschitz / alpha).powi(2);
    r.ceil().min(1e12) as usize
}

/// Run `r` steps of noisy projected gradient descent from `θ₀` and return
/// the iterate average `θ̄ = (1/r) Σ θ_k` (Appendix B, equation (12)).
///
/// `grad` is the inexact oracle; it is invoked once per iteration.
pub fn noisy_projected_gradient<C, G>(
    grad: G,
    set: &C,
    config: &NoisyPgdConfig,
    theta0: &[f64],
) -> Vec<f64>
where
    C: ConvexSet + ?Sized,
    G: Fn(&[f64]) -> Vec<f64>,
{
    let eta = config.step_size(set.diameter());
    let mut theta = set.project(theta0);
    let mut avg = vec![0.0; theta.len()];
    let r = config.iters.max(1);
    for _ in 0..r {
        let g = grad(&theta);
        vector::axpy(-eta, &g, &mut theta);
        theta = set.project(&theta);
        vector::axpy(1.0, &theta, &mut avg);
    }
    vector::scale_mut(&mut avg, 1.0 / r as f64);
    avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Objective, Quadratic};
    use pir_dp::NoiseRng;
    use pir_geometry::{L2Ball, WidthSet};
    use pir_linalg::Matrix;

    /// f(θ) = ‖θ − target‖² over the unit ball.
    fn objective(target: &[f64]) -> Quadratic {
        let mut a = Matrix::identity(target.len());
        a.scale_mut(2.0);
        Quadratic::new(a, vector::scale(target, 2.0), vector::norm2_sq(target))
    }

    #[test]
    fn matches_exact_pgd_when_alpha_is_zero_noise() {
        // With a noiseless oracle the procedure is plain averaged PGD.
        let obj = objective(&[0.5, 0.2]);
        let set = L2Ball::unit(2);
        let cfg = NoisyPgdConfig { iters: 5000, alpha: 1e-3, lipschitz: 4.0 };
        let theta = noisy_projected_gradient(|t| obj.gradient(t), &set, &cfg, &[0.0, 0.0]);
        let excess = obj.value(&theta); // f* = 0 at the interior optimum
        assert!(excess <= cfg.excess_bound(set.diameter()), "excess {excess}");
        assert!(excess < 0.02, "excess {excess}");
    }

    #[test]
    fn respects_proposition_b1_bound_under_adversarial_noise() {
        // Bounded adversarial noise of norm exactly α on every call.
        let obj = objective(&[0.8, 0.0, 0.0]);
        let set = L2Ball::unit(3);
        let alpha = 0.05;
        let lipschitz = 4.0; // ‖∇f‖ = 2‖θ − target‖ ≤ 2(1 + 0.8) ≤ 4
        let r = iterations_for_accuracy(alpha, lipschitz);
        let cfg = NoisyPgdConfig { iters: r, alpha, lipschitz };
        let mut rng = NoiseRng::seed_from_u64(5);
        let noise_dirs: Vec<Vec<f64>> = (0..r).map(|_| rng.unit_sphere(3)).collect();
        let counter = std::cell::Cell::new(0usize);
        let theta = noisy_projected_gradient(
            |t| {
                let mut g = obj.gradient(t);
                let k = counter.get();
                counter.set(k + 1);
                vector::axpy(alpha, &noise_dirs[k % noise_dirs.len()], &mut g);
                g
            },
            &set,
            &cfg,
            &[0.0, 0.0, 0.0],
        );
        let excess = obj.value(&theta);
        // Corollary B.2: ≤ 2α‖C‖ = 0.1.
        assert!(excess <= 2.0 * alpha * set.diameter() + 1e-9, "excess {excess}");
    }

    #[test]
    fn iteration_rule_matches_corollary_b2() {
        assert_eq!(iterations_for_accuracy(1.0, 1.0), 4);
        assert_eq!(iterations_for_accuracy(0.5, 4.5), 100);
    }

    #[test]
    #[should_panic(expected = "alpha > 0")]
    fn iteration_rule_rejects_zero_alpha() {
        let _ = iterations_for_accuracy(0.0, 1.0);
    }

    #[test]
    fn excess_bound_decreases_in_iterations() {
        let c1 = NoisyPgdConfig { iters: 10, alpha: 0.1, lipschitz: 1.0 };
        let c2 = NoisyPgdConfig { iters: 1000, alpha: 0.1, lipschitz: 1.0 };
        assert!(c2.excess_bound(1.0) < c1.excess_bound(1.0));
        // Both bounded below by the irreducible α‖C‖ term.
        assert!(c2.excess_bound(1.0) >= 0.1);
    }

    #[test]
    fn output_is_feasible() {
        let obj = objective(&[10.0, 10.0]);
        let set = L2Ball::unit(2);
        let cfg = NoisyPgdConfig { iters: 50, alpha: 0.5, lipschitz: 44.0 };
        let mut rng = NoiseRng::seed_from_u64(9);
        let noise: Vec<f64> = rng.gaussian_vec(2, 0.3);
        let theta = noisy_projected_gradient(
            |t| {
                let mut g = obj.gradient(t);
                vector::axpy(1.0, &noise, &mut g);
                g
            },
            &set,
            &cfg,
            &[0.0, 0.0],
        );
        assert!(vector::norm2(&theta) <= 1.0 + 1e-9);
    }
}
