//! # pir-optim
//!
//! First-order convex optimizers used by the private incremental
//! mechanisms:
//!
//! - [`projected_gradient`] — classical projected (sub)gradient descent
//!   with optional Polyak-style averaging (the non-private reference
//!   solver, and the inner loop of the private batch ERM solvers).
//! - [`noisy_projected_gradient`] — the paper's Appendix B procedure
//!   `NOISYPROJGRAD(C, g, r)`: projected descent driven by an *inexact*
//!   gradient oracle whose error is uniformly bounded by `α`. With the
//!   constant step `η = ‖C‖/(√r(α + L))` and iterate averaging it attains
//!   `f(θ̄) − f(θ*) ≤ (α + L)‖C‖/√r + α‖C‖` (Proposition B.1), so
//!   `r = (1 + L/α)²` gives excess `≤ 2α‖C‖` (Corollary B.2).
//! - [`fista`] — accelerated projected gradient for smooth objectives
//!   (used by the lifting step of Algorithm 3).
//! - [`frank_wolfe`] — projection-free conditional gradient (used by the
//!   private Frank–Wolfe batch solver and polytope machinery).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod noisy;
pub mod objective;
pub mod pgd;

pub use noisy::{iterations_for_accuracy, noisy_projected_gradient, NoisyPgdConfig};
pub use objective::{Objective, Quadratic, QuadraticView};
pub use pgd::{
    fista, fista_into, fista_into_adaptive, frank_wolfe, projected_gradient, FistaScratch,
    PgdConfig, StepSize,
};
