//! `pir-lint` — the in-tree invariant linter.
//!
//! The workspace carries invariants that `rustc` and `clippy` cannot
//! express because they are *this repo's* contracts, not the
//! language's:
//!
//! - **R1** the engine serving path is panic-free (typed errors only);
//! - **R2** `*_into` kernels perform zero heap allocations;
//! - **R3** the durability layer always fsyncs before renaming;
//! - **R4** protocol constants in source match `docs/PROTOCOL.md`
//!   byte-for-byte, in both directions;
//! - **R5** every crate root forbids `unsafe_code` and its
//!   `missing_docs` state matches a reviewed manifest.
//!
//! The tool is dependency-free by necessity (the build environment is
//! offline): [`lexer`] is a small hand-rolled Rust lexer that skips
//! comments, strings, char literals, lifetimes, and nested block
//! comments, so the token-level [`rules`] never fire on prose. Accepted
//! violations live in `lint.toml` (see [`baseline`]) — every entry
//! needs a written reason, caps how much it may absorb, and goes stale
//! loudly when the code it excused is fixed.
//!
//! Run it as CI does:
//!
//! ```text
//! cargo run -p pir-lint -- --check
//! ```
//!
//! or via the test harness (`cargo test -p pir-lint`), which drives the
//! same entry points over fixtures and the real tree. See
//! `docs/LINTING.md` for the rule catalog and the suppression workflow.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod repo;
pub mod rules;
