//! CLI for the in-tree invariant linter.
//!
//! ```text
//! cargo run -p pir-lint -- --check [--root PATH]
//! ```
//!
//! Exit codes: `0` clean, `1` findings or baseline ratchet failures,
//! `2` usage or I/O error. See `docs/LINTING.md`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "pir-lint: in-tree invariant linter (R1 panic-free serving path, \
                     R2 zero-alloc _into kernels, R3 fsync-before-rename, \
                     R4 protocol-constant drift, R5 crate-root hygiene)\n\n\
                     usage: pir-lint --check [--root PATH]\n\n\
                     Findings are suppressed only by reviewed lint.toml entries; \
                     see docs/LINTING.md."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !check {
        return usage("nothing to do — pass --check");
    }
    let root = root.unwrap_or_else(find_workspace_root);
    let result = match pir_lint::repo::check(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pir-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for e in &result.baseline_errors {
        eprintln!("{e}");
    }
    for f in &result.findings {
        eprintln!("{f}");
        if !f.excerpt.is_empty() {
            eprintln!("    {}", f.excerpt);
        }
    }
    let suppressed = result.raw_count - result.findings.len();
    if result.is_clean() {
        println!(
            "pir-lint: clean ({} findings checked, {suppressed} suppressed by reviewed baseline)",
            result.raw_count
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "pir-lint: {} finding(s), {} baseline error(s) ({suppressed} suppressed)",
            result.findings.len(),
            result.baseline_errors.len()
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("pir-lint: {msg}\nusage: pir-lint --check [--root PATH]");
    ExitCode::from(2)
}

/// Default root: the workspace this binary was built from (compile-time
/// manifest dir, two levels up), falling back to the current directory
/// when that path does not exist (e.g. a relocated binary).
fn find_workspace_root() -> PathBuf {
    let baked = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    if baked.join("Cargo.toml").is_file() {
        return baked;
    }
    PathBuf::from(".")
}
