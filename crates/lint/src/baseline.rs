//! The reviewed suppression baseline (`lint.toml`).
//!
//! Findings the team has examined and judged acceptable are recorded in
//! `lint.toml` at the repo root, one `[[allow]]` entry per suppression.
//! Every entry **must** carry a written `reason`; entries without one
//! are a parse error. The file is a ratchet, not a dumping ground:
//!
//! - `max_entries = N` at the top caps the entry count — adding a new
//!   suppression without consciously raising the cap fails the run (and
//!   raising it is a visible diff for reviewers);
//! - an entry's `max` (default 1) caps how many findings it may absorb,
//!   so a pattern-scoped entry cannot quietly swallow new sites;
//! - an entry matching **zero** findings is stale and fails the run —
//!   fixed code must shed its suppressions.
//!
//! The format is a small TOML subset (this tool is dependency-free):
//! comments, `key = value` with integer/string values, and `[[allow]]`
//! array-of-tables headers. Example:
//!
//! ```toml
//! max_entries = 12
//!
//! [[allow]]
//! rule = "R1"
//! file = "crates/engine/src/wire.rs"
//! token = "index"
//! pattern = "CRC_TABLES["
//! max = 4
//! reason = "table index is `byte as usize` into [u64; 256]; in bounds by type"
//! ```

use crate::rules::Finding;

/// One `[[allow]]` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Rule id the entry applies to (`"R1"` … `"R5"`).
    pub rule: String,
    /// Repo-relative file the entry applies to.
    pub file: String,
    /// Optional finding-token filter (`"index"`, `"unwrap"`, …).
    pub token: Option<String>,
    /// Optional substring that must appear in the finding's trimmed
    /// source line. Anchors the suppression to specific code, so the
    /// entry dies with the code it excuses.
    pub pattern: Option<String>,
    /// How many findings this entry may absorb (default 1).
    pub max: u32,
    /// Why the finding is acceptable. Required.
    pub reason: String,
    /// 1-based line of the entry header in `lint.toml`, for messages.
    pub line: u32,
}

/// The parsed baseline file.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Hard cap on `allows.len()`, the reviewed ratchet.
    pub max_entries: u32,
    /// The suppression entries.
    pub allows: Vec<Allow>,
}

/// A problem in the baseline file itself or in its application.
#[derive(Debug, PartialEq, Eq)]
pub struct BaselineError {
    /// 1-based line in `lint.toml` (0 when file-level).
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

/// Parse `lint.toml` text.
pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
    let mut baseline = Baseline::default();
    let mut current: Option<Allow> = None;
    let mut saw_max = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish_entry(&mut baseline, current.take(), lineno)?;
            current = Some(Allow {
                rule: String::new(),
                file: String::new(),
                token: None,
                pattern: None,
                max: 1,
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(BaselineError {
                line: lineno,
                message: format!("expected `key = value` or `[[allow]]`, got `{line}`"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        match (&mut current, key) {
            (None, "max_entries") => {
                baseline.max_entries = value.parse().map_err(|_| BaselineError {
                    line: lineno,
                    message: format!("max_entries must be an integer, got `{value}`"),
                })?;
                saw_max = true;
            }
            (None, other) => {
                return Err(BaselineError {
                    line: lineno,
                    message: format!("unknown top-level key `{other}`"),
                });
            }
            (Some(a), _) => {
                let s = |v: &str| -> Result<String, BaselineError> {
                    v.strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .map(|v| v.replace("\\\"", "\"").replace("\\\\", "\\"))
                        .ok_or_else(|| BaselineError {
                            line: lineno,
                            message: format!("`{key}` must be a quoted string"),
                        })
                };
                match key {
                    "rule" => a.rule = s(value)?,
                    "file" => a.file = s(value)?,
                    "token" => a.token = Some(s(value)?),
                    "pattern" => a.pattern = Some(s(value)?),
                    "reason" => a.reason = s(value)?,
                    "max" => {
                        a.max = value.parse().map_err(|_| BaselineError {
                            line: lineno,
                            message: format!("max must be an integer, got `{value}`"),
                        })?;
                    }
                    other => {
                        return Err(BaselineError {
                            line: lineno,
                            message: format!("unknown allow key `{other}`"),
                        });
                    }
                }
            }
        }
    }
    let end = text.lines().count() as u32;
    finish_entry(&mut baseline, current.take(), end)?;
    if !saw_max {
        return Err(BaselineError {
            line: 0,
            message: "missing required `max_entries = N` (the review ratchet)".to_string(),
        });
    }
    Ok(baseline)
}

fn finish_entry(
    baseline: &mut Baseline,
    entry: Option<Allow>,
    lineno: u32,
) -> Result<(), BaselineError> {
    let Some(a) = entry else { return Ok(()) };
    for (field, ok) in [
        ("rule", !a.rule.is_empty()),
        ("file", !a.file.is_empty()),
        ("reason", !a.reason.is_empty()),
    ] {
        if !ok {
            return Err(BaselineError {
                line: a.line,
                message: format!(
                    "[[allow]] entry ending before line {lineno} is missing required `{field}`"
                ),
            });
        }
    }
    if a.max == 0 {
        return Err(BaselineError {
            line: a.line,
            message: "max = 0 suppresses nothing — delete the entry instead".to_string(),
        });
    }
    baseline.allows.push(a);
    Ok(())
}

/// Apply the baseline to raw findings.
///
/// Returns the findings that survive (unsuppressed) plus ratchet errors
/// (over-budget entries, stale entries, entry-count over `max_entries`).
/// A finding is absorbed by the **first** entry that matches it and
/// still has budget.
pub fn apply(baseline: &Baseline, findings: &[Finding]) -> (Vec<Finding>, Vec<BaselineError>) {
    let mut errors = Vec::new();
    if baseline.allows.len() as u32 > baseline.max_entries {
        errors.push(BaselineError {
            line: 0,
            message: format!(
                "{} [[allow]] entries exceed max_entries = {} — fix findings or consciously raise the ratchet",
                baseline.allows.len(),
                baseline.max_entries
            ),
        });
    }
    let mut used = vec![0u32; baseline.allows.len()];
    let mut surviving = Vec::new();
    'findings: for f in findings {
        for (i, a) in baseline.allows.iter().enumerate() {
            if entry_matches(a, f) {
                used[i] += 1;
                if used[i] > a.max {
                    errors.push(BaselineError {
                        line: a.line,
                        message: format!(
                            "entry for {} [{}] absorbed more than max = {} findings (extra: {}:{}) — new sites need their own review",
                            a.file,
                            a.rule,
                            a.max,
                            f.file,
                            f.line
                        ),
                    });
                }
                continue 'findings;
            }
        }
        surviving.push(f.clone());
    }
    for (i, a) in baseline.allows.iter().enumerate() {
        if used[i] == 0 {
            errors.push(BaselineError {
                line: a.line,
                message: format!(
                    "stale entry: no {} finding in {} matches it any more — delete it (and lower max_entries)",
                    a.rule, a.file
                ),
            });
        }
    }
    (surviving, errors)
}

fn entry_matches(a: &Allow, f: &Finding) -> bool {
    a.rule == f.rule
        && a.file == f.file
        && a.token.as_deref().is_none_or(|t| t == f.token)
        && a.pattern.as_deref().is_none_or(|p| f.excerpt.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32, token: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            token: token.to_string(),
            file: file.to_string(),
            line,
            message: String::new(),
            excerpt: excerpt.to_string(),
        }
    }

    const TOML: &str = r#"
# Reviewed suppressions.
max_entries = 2

[[allow]]
rule = "R1"
file = "a.rs"
token = "index"
pattern = "TABLE["
max = 2
reason = "byte-as-usize into a [u64; 256]"

[[allow]]
rule = "R1"
file = "b.rs"
reason = "join() on a thread we spawned"
"#;

    #[test]
    fn parse_roundtrip() {
        let b = parse(TOML).unwrap();
        assert_eq!(b.max_entries, 2);
        assert_eq!(b.allows.len(), 2);
        assert_eq!(b.allows[0].max, 2);
        assert_eq!(b.allows[0].pattern.as_deref(), Some("TABLE["));
        assert_eq!(b.allows[1].max, 1);
    }

    #[test]
    fn missing_reason_is_a_parse_error() {
        let e = parse("max_entries = 1\n[[allow]]\nrule = \"R1\"\nfile = \"a.rs\"\n").unwrap_err();
        assert!(e.message.contains("reason"), "{e}");
    }

    #[test]
    fn suppression_stale_and_overflow() {
        let b = parse(TOML).unwrap();
        // Two TABLE[ findings absorbed; third overflows; b.rs entry is
        // stale; one unrelated finding survives.
        let findings = vec![
            finding("R1", "a.rs", 10, "index", "let x = TABLE[b as usize];"),
            finding("R1", "a.rs", 20, "index", "let y = TABLE[c as usize];"),
            finding("R1", "a.rs", 30, "index", "let z = TABLE[d as usize];"),
            finding("R1", "c.rs", 5, "unwrap", "v.unwrap()"),
        ];
        let (surviving, errors) = apply(&b, &findings);
        assert_eq!(surviving.len(), 1);
        assert_eq!(surviving[0].file, "c.rs");
        assert_eq!(errors.len(), 2, "{errors:#?}");
        assert!(errors.iter().any(|e| e.message.contains("more than max")));
        assert!(errors.iter().any(|e| e.message.contains("stale")));
    }

    #[test]
    fn entry_count_ratchet() {
        let mut b = parse(TOML).unwrap();
        b.max_entries = 1;
        let findings = vec![
            finding("R1", "a.rs", 10, "index", "TABLE[0]"),
            finding("R1", "b.rs", 1, "unwrap", "x.unwrap()"),
        ];
        let (_, errors) = apply(&b, &findings);
        assert!(errors.iter().any(|e| e.message.contains("max_entries")), "{errors:#?}");
    }

    #[test]
    fn missing_max_entries_fails() {
        assert!(parse("[[allow]]\nrule=\"R1\"\nfile=\"a\"\nreason=\"r\"\n").is_err());
    }
}
