//! R6 — storage abstraction: no direct filesystem calls in the
//! durability layer.
//!
//! The storage fault rig (PR 10) threads every filesystem operation in
//! the WAL, snapshot, and spill paths through the
//! [`Storage`](../../engine/src/storage.rs) trait, so the
//! crash-consistency harness can substitute a simulated power-loss
//! disk and crash at every op boundary. One stray `std::fs::` or
//! `File::` call re-opens a hole the harness cannot see into: the op
//! happens for real, is never counted, never faulted, never crashed —
//! and the bit-identical-recovery proof silently stops covering it.
//!
//! Per non-test function body in the threaded files, any call through
//! `fs::…` (`std::fs`, `fs::write`, …), `File::…`, or `OpenOptions::…`
//! is a finding. The `storage.rs` backend itself is exempt — it is the
//! one place those calls belong — and test code may use the real
//! filesystem freely.

use super::{fn_bodies, line_excerpt, strip_test_code, Finding};
use crate::lexer::lex;

/// Run R6 over one file's source.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let tokens = strip_test_code(&tokens);
    let mut out = Vec::new();
    for f in fn_bodies(&tokens) {
        let body = &tokens[f.body.clone()];
        for (i, t) in body.iter().enumerate() {
            // An owner segment in a call path: `owner :: member`.
            let path_sep = body.get(i + 1).is_some_and(|n| n.is_punct(':'))
                && body.get(i + 2).is_some_and(|n| n.is_punct(':'));
            if !path_sep {
                continue;
            }
            let owner = if t.is_ident("fs") {
                Some("fs")
            } else if t.is_ident("File") {
                Some("File")
            } else if t.is_ident("OpenOptions") {
                Some("OpenOptions")
            } else {
                None
            };
            if let Some(owner) = owner {
                out.push(Finding {
                    rule: "R6",
                    token: owner.to_string(),
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "direct `{owner}::` call in `{}` bypasses the Storage trait — the \
                         crash-consistency harness cannot fault or crash this op; route it \
                         through the shard's StorageHandle",
                        f.name
                    ),
                    excerpt: line_excerpt(src, t.line),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_fs_and_file_calls_are_flagged() {
        let src = r#"
fn persist(dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let f = File::create(dir.join("x"))?;
    let g = OpenOptions::new().append(true).open(dir.join("y"))?;
    drop((f, g));
    Ok(())
}
"#;
        let findings = check_file("f.rs", src);
        assert_eq!(findings.len(), 3, "{findings:#?}");
        assert_eq!(findings[0].token, "fs");
        assert_eq!(findings[1].token, "File");
        assert_eq!(findings[2].token, "OpenOptions");
    }

    #[test]
    fn storage_trait_calls_pass() {
        let src = r#"
fn persist(storage: &StorageHandle, dir: &Path) -> io::Result<()> {
    storage.create_dir_all(dir)?;
    let mut f = storage.create_new(&dir.join("x"))?;
    f.append(b"data")?;
    f.sync_data()?;
    storage.sync_dir(dir)?;
    Ok(())
}
"#;
        assert!(check_file("f.rs", src).is_empty());
    }

    #[test]
    fn test_code_may_touch_the_real_filesystem() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn scratch() { std::fs::create_dir_all("/tmp/x").unwrap(); }
}
"#;
        assert!(check_file("f.rs", src).is_empty());
    }

    #[test]
    fn non_call_identifiers_named_fs_pass() {
        // A variable named `fs`, or `fs` without a `::`, is not a call
        // into std::fs.
        let src = "fn f(fs: u32) -> u32 { fs + 1 }";
        assert!(check_file("f.rs", src).is_empty());
    }
}
