//! R4 — protocol-constant drift detection.
//!
//! `docs/PROTOCOL.md` pins the on-disk/on-wire formats byte-for-byte:
//! magics (`PIRW`/`PIRL`/`PIRS`/`PIRC`), format versions, frame
//! opcodes, `MechanismSpec` tags, and `EngineError` wire kinds. The
//! same constants live in `crates/engine/src/{wire,wal,snapshot}.rs`.
//! Nothing previously cross-checked the two: a new opcode added in
//! source but not in the doc (or a doc table edited without touching
//! source) would drift silently — until an operator debugging a hex
//! dump trusts the wrong table. This rule extracts both sides and fails
//! on drift in **either** direction.
//!
//! Extracted from source (by token patterns, so comments and strings
//! never confuse it):
//!
//! - `pub const <NAME>MAGIC: [u8; 4] = *b"…";`
//! - `pub const <NAME>VERSION: u8 = <int>;` — paired with its magic by
//!   shared prefix (`WAL_MAGIC` ↔ `WAL_VERSION`, bare `MAGIC` ↔
//!   `VERSION`);
//! - `pub const <OPCODE>: u8 = 0x…;` inside `mod opcode { … }`;
//! - `<int> => EngineError::<Variant>` arms in `dec_engine_error` and
//!   `EngineError::<Variant> … => (<int>, …)` arms in
//!   `enc_engine_error` (the two must agree with each other too);
//! - `<int> => MechanismSpec::<Variant>` arms in `dec_spec`.
//!
//! Extracted from the document: magic lines carrying a backticked hex
//! quad plus a quoted name (table cell or prose), `version` rows/prose
//! with a backticked hex byte, and the opcode / error-kind / spec-tag
//! tables (recognized by their header rows).

use super::Finding;
use crate::lexer::{lex, Token, TokenKind};

/// Constants extracted from the engine source files.
#[derive(Debug, Default, PartialEq)]
pub struct SourceConstants {
    /// Magic-name prefix (`""`, `"WAL_"`, …) → (ascii magic, file, line).
    pub magics: Vec<(String, String, String, u32)>,
    /// Version-name prefix → (value, file, line).
    pub versions: Vec<(String, u64, String, u32)>,
    /// Opcode const name → value.
    pub opcodes: Vec<(String, u64)>,
    /// Wire kind → `EngineError` variant, from the decoder.
    pub err_kinds_dec: Vec<(u64, String)>,
    /// Wire kind → `EngineError` variant, from the encoder.
    pub err_kinds_enc: Vec<(u64, String)>,
    /// Spec tag → `MechanismSpec` variant, from the decoder.
    pub spec_tags: Vec<(u64, String)>,
}

/// Extract every protocol constant from `(rel_path, source)` pairs.
pub fn extract_source(files: &[(&str, &str)]) -> SourceConstants {
    let mut out = SourceConstants::default();
    for (path, src) in files {
        let tokens = lex(src);
        extract_consts(path, &tokens, &mut out);
        if let Some(range) = mod_body(&tokens, "opcode") {
            extract_opcodes(&tokens[range], &mut out);
        }
        if let Some(range) = fn_body_range(&tokens, "dec_engine_error") {
            extract_decode_arms(&tokens[range], "EngineError", &mut out.err_kinds_dec);
        }
        if let Some(range) = fn_body_range(&tokens, "enc_engine_error") {
            extract_encode_arms(&tokens[range], "EngineError", &mut out.err_kinds_enc);
        }
        if let Some(range) = fn_body_range(&tokens, "dec_spec") {
            extract_decode_arms(&tokens[range], "MechanismSpec", &mut out.spec_tags);
        }
    }
    out
}

fn extract_consts(path: &str, tokens: &[Token<'_>], out: &mut SourceConstants) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("const") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            continue;
        };
        // Find the `=` ending the type annotation (consts have no
        // generics, so the first top-level `=` is the initializer).
        let Some(eq) = tokens[i..].iter().position(|x| x.is_punct('=')).map(|p| p + i) else {
            continue;
        };
        if let Some(prefix) = name.text.strip_suffix("MAGIC") {
            // `= *b"PIRW"` or `= b"PIRW"`.
            let lit =
                tokens.get(eq + 1..eq + 3).into_iter().flatten().find(|x| x.kind == TokenKind::Str);
            if let Some(ascii) = lit.and_then(|l| l.str_content()) {
                out.magics.push((
                    prefix.to_string(),
                    ascii.to_string(),
                    path.to_string(),
                    name.line,
                ));
            }
        } else if let Some(prefix) = name.text.strip_suffix("VERSION") {
            if let Some(v) = tokens.get(eq + 1).and_then(|x| x.int_value()) {
                out.versions.push((prefix.to_string(), v, path.to_string(), name.line));
            }
        }
    }
}

/// Token range of `mod <name> { … }` (exclusive of braces).
fn mod_body(tokens: &[Token<'_>], name: &str) -> Option<std::ops::Range<usize>> {
    let start = tokens.windows(2).position(|w| w[0].is_ident("mod") && w[1].is_ident(name))?;
    brace_body(tokens, start + 2)
}

/// Token range of `fn <name> … { … }` (exclusive of braces).
fn fn_body_range(tokens: &[Token<'_>], name: &str) -> Option<std::ops::Range<usize>> {
    let start = tokens.windows(2).position(|w| w[0].is_ident("fn") && w[1].is_ident(name))?;
    brace_body(tokens, start + 2)
}

/// The balanced `{…}` starting at the first `{` at or after `from`.
fn brace_body(tokens: &[Token<'_>], from: usize) -> Option<std::ops::Range<usize>> {
    let open = tokens[from..].iter().position(|t| t.is_punct('{'))? + from;
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(open + 1..j);
            }
        }
    }
    None
}

fn extract_opcodes(body: &[Token<'_>], out: &mut SourceConstants) {
    for (i, t) in body.iter().enumerate() {
        if t.is_ident("const") {
            if let (Some(name), Some(eq)) = (
                body.get(i + 1).filter(|n| n.kind == TokenKind::Ident),
                body[i..].iter().position(|x| x.is_punct('=')).map(|p| p + i),
            ) {
                if let Some(v) = body.get(eq + 1).and_then(|x| x.int_value()) {
                    out.opcodes.push((name.text.to_string(), v));
                }
            }
        }
    }
}

/// `<int> => <enum>::<Variant>` arms.
fn extract_decode_arms(body: &[Token<'_>], enum_name: &str, out: &mut Vec<(u64, String)>) {
    for i in 0..body.len() {
        if body[i].kind == TokenKind::Int
            && body.get(i + 1).is_some_and(|t| t.is_punct('='))
            && body.get(i + 2).is_some_and(|t| t.is_punct('>'))
            && body.get(i + 3).is_some_and(|t| t.is_ident(enum_name))
            && body.get(i + 4).is_some_and(|t| t.is_punct(':'))
            && body.get(i + 5).is_some_and(|t| t.is_punct(':'))
        {
            if let (Some(v), Some(name)) = (body[i].int_value(), body.get(i + 6)) {
                out.push((v, name.text.to_string()));
            }
        }
    }
}

/// `<enum>::<Variant> … => [{] (<int>, …` arms.
fn extract_encode_arms(body: &[Token<'_>], enum_name: &str, out: &mut Vec<(u64, String)>) {
    let mut current_variant: Option<String> = None;
    for i in 0..body.len() {
        if body[i].is_ident(enum_name)
            && body.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && body.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            current_variant = body.get(i + 3).map(|t| t.text.to_string());
        }
        if body[i].is_punct('=') && body.get(i + 1).is_some_and(|t| t.is_punct('>')) {
            // Skip an optional `{` for block-bodied arms.
            let mut j = i + 2;
            if body.get(j).is_some_and(|t| t.is_punct('{')) {
                j += 1;
            }
            if body.get(j).is_some_and(|t| t.is_punct('(')) {
                if let Some(v) = body.get(j + 1).and_then(|t| t.int_value()) {
                    if let Some(variant) = current_variant.take() {
                        out.push((v, variant));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Document side
// ---------------------------------------------------------------------------

/// Constants extracted from `docs/PROTOCOL.md`.
#[derive(Debug, Default, PartialEq)]
pub struct DocConstants {
    /// Magic ascii name → (hex bytes, line).
    pub magics: Vec<(String, Vec<u8>, u32)>,
    /// Magic ascii name → (version, line).
    pub versions: Vec<(String, u64, u32)>,
    /// Opcode doc name → (value, line).
    pub opcodes: Vec<(String, u64, u32)>,
    /// Error kind → (doc phrase, line).
    pub err_kinds: Vec<(u64, String, u32)>,
    /// Spec tag → (variant name, line).
    pub spec_tags: Vec<(u64, String, u32)>,
}

/// Which table the parser is currently inside.
#[derive(PartialEq)]
enum TableMode {
    None,
    Opcodes,
    ErrKinds,
    SpecTags,
}

/// Parse the protocol document.
pub fn extract_doc(doc: &str) -> DocConstants {
    let mut out = DocConstants::default();
    let mut mode = TableMode::None;
    let mut current_magic: Option<String> = None;
    for (idx, line) in doc.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let spans = backtick_spans(line);
        // Magic: a quoted 4-letter name plus a 4-byte hex group in
        // backticks, in a table cell or in prose.
        let name = spans.iter().find_map(|s| quoted_name(s));
        let hex = spans.iter().find_map(|s| hex_bytes(s));
        if let (Some(name), Some(hex)) = (&name, hex) {
            out.magics.push((name.clone(), hex, lineno));
            current_magic = Some(name.clone());
            // Prose form carries the version on the same line.
            if let Some(v) = version_on_line(line, &spans) {
                out.versions.push((name.clone(), v, lineno));
            }
            continue;
        }
        if !line.trim_start().starts_with('|') {
            if mode != TableMode::None {
                mode = TableMode::None;
            }
            continue;
        }
        let cells: Vec<String> =
            line.trim().trim_matches('|').split('|').map(|c| c.trim().to_string()).collect();
        let lower: Vec<String> = cells.iter().map(|c| c.to_lowercase()).collect();
        // Header rows switch table mode.
        if lower.iter().any(|c| c == "opcode")
            && lower.iter().any(|c| c == "command" || c == "reply")
        {
            mode = TableMode::Opcodes;
            continue;
        }
        if lower.first().is_some_and(|c| c == "kind") && lower.get(1).is_some_and(|c| c == "error")
        {
            mode = TableMode::ErrKinds;
            continue;
        }
        if lower.first().is_some_and(|c| c == "tag") && lower.get(1).is_some_and(|c| c == "variant")
        {
            mode = TableMode::SpecTags;
            continue;
        }
        if cells.iter().all(|c| c.chars().all(|ch| ch == '-' || ch == ' ')) {
            continue; // separator row
        }
        // Version table row: `| 4 | 1 | version | `01` |`.
        if lower.iter().any(|c| c == "version") {
            if let (Some(magic), Some(v)) =
                (&current_magic, cells.iter().find_map(|c| bare_hex_byte(c)))
            {
                out.versions.push((magic.clone(), v, lineno));
            }
            continue;
        }
        match mode {
            TableMode::Opcodes => {
                if let (Some(v), Some(name)) = (
                    cells.first().and_then(|c| bare_hex_byte(c)),
                    cells.get(1).map(|c| c.trim_matches('`').to_string()),
                ) {
                    if !name.is_empty() {
                        out.opcodes.push((name, v, lineno));
                    }
                }
            }
            TableMode::ErrKinds => {
                if let (Some(v), Some(name)) = (
                    cells.first().and_then(|c| c.parse::<u64>().ok()),
                    cells.get(1).map(|c| c.to_string()),
                ) {
                    out.err_kinds.push((v, name, lineno));
                }
            }
            TableMode::SpecTags => {
                if let (Some(v), Some(name)) = (
                    cells.first().and_then(|c| c.parse::<u64>().ok()),
                    cells.get(1).map(|c| c.trim_matches('`').to_string()),
                ) {
                    out.spec_tags.push((v, name, lineno));
                }
            }
            TableMode::None => {}
        }
    }
    out
}

/// All `` `…` `` spans in a line.
fn backtick_spans(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        out.push(&after[..close]);
        rest = &after[close + 1..];
    }
    out
}

/// `"PIRW"` → `PIRW` for a span that is exactly a quoted 4-letter
/// uppercase name.
fn quoted_name(span: &str) -> Option<String> {
    let inner = span.strip_prefix('"')?.strip_suffix('"')?;
    (inner.len() == 4 && inner.chars().all(|c| c.is_ascii_uppercase())).then(|| inner.to_string())
}

/// `50 49 52 57` → bytes, for a span of exactly four hex pairs.
fn hex_bytes(span: &str) -> Option<Vec<u8>> {
    let parts: Vec<&str> = span.split_whitespace().collect();
    if parts.len() != 4 {
        return None;
    }
    parts
        .iter()
        .map(|p| (p.len() == 2).then_some(()).and_then(|()| u8::from_str_radix(p, 16).ok()))
        .collect()
}

/// A span that is exactly one hex byte (`01`) or a `0x…` literal.
fn bare_hex_byte(cell: &str) -> Option<u64> {
    let s = cell.trim_matches('`');
    if let Some(h) = s.strip_prefix("0x") {
        return u64::from_str_radix(h, 16).ok();
    }
    (s.len() == 2 && s.chars().all(|c| c.is_ascii_hexdigit()))
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

/// `… version `01` …` prose.
fn version_on_line(line: &str, spans: &[&str]) -> Option<u64> {
    line.contains("version").then(|| spans.iter().find_map(|s| bare_hex_byte(s))).flatten()
}

// ---------------------------------------------------------------------------
// Cross-check
// ---------------------------------------------------------------------------

/// How `EngineError` variants are phrased in the document's error-kind
/// table. A doc rewording is treated as drift on purpose: the table is
/// an operator-facing contract, and silent rewording deserves review.
const ERR_PHRASES: [(&str, &str); 9] = [
    ("UnknownSession", "unknown session"),
    ("DuplicateSession", "duplicate session"),
    ("InvalidConfig", "invalid config"),
    ("Mechanism", "mechanism error"),
    ("Budget", "budget error"),
    ("Backpressure", "backpressure (transient)"),
    ("Closed", "engine closed"),
    ("CommandTooLarge", "command too large (permanent)"),
    ("Wal", "write-ahead log failure"),
];

const DOC_FILE: &str = "docs/PROTOCOL.md";

/// Diff source constants against the document.
pub fn compare(src: &SourceConstants, doc: &DocConstants) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |file: &str, line: u32, token: &str, message: String| {
        out.push(Finding {
            rule: "R4",
            token: token.to_string(),
            file: file.to_string(),
            line,
            message,
            excerpt: String::new(),
        });
    };

    // Magics: names must match both ways, hex must equal ascii.
    for (prefix, ascii, file, line) in &src.magics {
        match doc.magics.iter().find(|(n, _, _)| n == ascii) {
            None => push(
                file,
                *line,
                "magic",
                format!("magic `{ascii}` ({prefix}MAGIC) is not documented in {DOC_FILE}"),
            ),
            Some((_, hex, doc_line)) => {
                if hex != ascii.as_bytes() {
                    push(
                        DOC_FILE,
                        *doc_line,
                        "magic",
                        format!("documented hex for `{ascii}` does not spell {ascii:?}"),
                    );
                }
            }
        }
    }
    for (name, _, line) in &doc.magics {
        if !src.magics.iter().any(|(_, ascii, _, _)| ascii == name) {
            push(
                DOC_FILE,
                *line,
                "magic",
                format!("documented magic `{name}` has no source constant"),
            );
        }
    }

    // Versions, paired via the magic that shares the const prefix.
    for (prefix, value, file, line) in &src.versions {
        let Some((_, ascii, _, _)) = src.magics.iter().find(|(p, _, _, _)| p == prefix) else {
            push(
                file,
                *line,
                "version",
                format!("version const `{prefix}VERSION` has no matching `{prefix}MAGIC`"),
            );
            continue;
        };
        match doc.versions.iter().find(|(n, _, _)| n == ascii) {
            None => push(
                file,
                *line,
                "version",
                format!("format `{ascii}` version is not documented in {DOC_FILE}"),
            ),
            Some((_, doc_v, doc_line)) if doc_v != value => push(
                DOC_FILE,
                *doc_line,
                "version",
                format!("`{ascii}` version drift: source says {value}, doc says {doc_v}"),
            ),
            Some(_) => {}
        }
    }

    // Opcodes: doc names are the source names with any `R_` prefix
    // stripped.
    for (name, value) in &src.opcodes {
        let doc_name = name.strip_prefix("R_").unwrap_or(name);
        match doc.opcodes.iter().find(|(n, _, _)| n == doc_name) {
            None => push(
                "crates/engine/src/wire.rs",
                0,
                "opcode",
                format!("opcode `{name}` (0x{value:02X}) is not documented in {DOC_FILE}"),
            ),
            Some((_, doc_v, doc_line)) if doc_v != value => push(
                DOC_FILE,
                *doc_line,
                "opcode",
                format!("opcode `{doc_name}` drift: source 0x{value:02X}, doc 0x{doc_v:02X}"),
            ),
            Some(_) => {}
        }
    }
    for (name, value, line) in &doc.opcodes {
        if !src.opcodes.iter().any(|(n, _)| n.strip_prefix("R_").unwrap_or(n) == name) {
            push(
                DOC_FILE,
                *line,
                "opcode",
                format!("documented opcode `{name}` (0x{value:02X}) has no source constant"),
            );
        }
    }

    // Error kinds: encoder and decoder must agree with each other, and
    // the decoder's set with the document's.
    let mut enc_sorted: Vec<_> = src.err_kinds_enc.clone();
    let mut dec_sorted: Vec<_> = src.err_kinds_dec.clone();
    enc_sorted.sort();
    dec_sorted.sort();
    if enc_sorted != dec_sorted && !enc_sorted.is_empty() && !dec_sorted.is_empty() {
        push(
            "crates/engine/src/wire.rs",
            0,
            "errkind",
            format!(
                "enc_engine_error and dec_engine_error disagree: enc {enc_sorted:?} vs dec {dec_sorted:?}"
            ),
        );
    }
    for (kind, variant) in &src.err_kinds_dec {
        let phrase = ERR_PHRASES.iter().find(|(v, _)| v == variant).map(|(_, p)| *p);
        match doc.err_kinds.iter().find(|(k, _, _)| k == kind) {
            None => push(
                "crates/engine/src/wire.rs",
                0,
                "errkind",
                format!("error kind {kind} ({variant}) is not documented in {DOC_FILE}"),
            ),
            Some((_, doc_phrase, doc_line)) => {
                if let Some(p) = phrase {
                    if doc_phrase != p {
                        push(
                            DOC_FILE,
                            *doc_line,
                            "errkind",
                            format!(
                                "error kind {kind} phrase drift: expected \"{p}\" for {variant}, doc says \"{doc_phrase}\""
                            ),
                        );
                    }
                } else {
                    push(
                        "crates/engine/src/wire.rs",
                        0,
                        "errkind",
                        format!(
                            "EngineError::{variant} (kind {kind}) has no documented phrase mapping — extend ERR_PHRASES in the linter and the doc table together"
                        ),
                    );
                }
            }
        }
    }
    for (kind, _, line) in &doc.err_kinds {
        if !src.err_kinds_dec.iter().any(|(k, _)| k == kind) && !src.err_kinds_dec.is_empty() {
            push(
                DOC_FILE,
                *line,
                "errkind",
                format!("documented error kind {kind} is not decoded by source"),
            );
        }
    }

    // Spec tags: names must match the enum variants exactly.
    for (tag, variant) in &src.spec_tags {
        match doc.spec_tags.iter().find(|(t, _, _)| t == tag) {
            None => push(
                "crates/engine/src/wire.rs",
                0,
                "spectag",
                format!("spec tag {tag} ({variant}) is not documented in {DOC_FILE}"),
            ),
            Some((_, doc_name, doc_line)) if doc_name != variant => push(
                DOC_FILE,
                *doc_line,
                "spectag",
                format!("spec tag {tag} drift: source variant `{variant}`, doc `{doc_name}`"),
            ),
            Some(_) => {}
        }
    }
    for (tag, _, line) in &doc.spec_tags {
        if !src.spec_tags.iter().any(|(t, _)| t == tag) && !src.spec_tags.is_empty() {
            push(
                DOC_FILE,
                *line,
                "spectag",
                format!("documented spec tag {tag} is not decoded by source"),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
pub const MAGIC: [u8; 4] = *b"PIRW";
pub const VERSION: u8 = 1;
pub mod opcode {
    pub const OPEN: u8 = 0x01;
    pub const R_OPENED: u8 = 0x81;
}
fn enc_engine_error(e: &mut Enc<'_>, err: &EngineError) {
    let (kind, a): (u8, u64) = match err {
        EngineError::UnknownSession { id } => (1, *id),
        EngineError::Closed => (7, 0),
    };
}
fn dec_engine_error(d: &mut Dec) -> Result<EngineError, WireError> {
    Ok(match kind {
        1 => EngineError::UnknownSession { id: a },
        7 => EngineError::Closed,
        t => return Err(WireError::Malformed(format!("unknown kind {t}"))),
    })
}
fn dec_spec(d: &mut Dec) -> Result<MechanismSpec, WireError> {
    Ok(match tag {
        0 => MechanismSpec::Erm { set },
        3 => MechanismSpec::Trivial { set },
        t => return Err(WireError::Malformed(format!("bad tag {t}"))),
    })
}
"#;

    const DOC: &str = r#"
| 0 | 4 | magic | `50 49 52 57` (`"PIRW"`) |
| 4 | 1 | version | `01` |

| opcode | command | payload |
|---|---|---|
| `0x01` | `OPEN` | stuff |

| opcode | reply | payload |
|---|---|---|
| `0x81` | `OPENED` | stuff |

| tag | variant | fields |
|---|---|---|
| 0 | `Erm` | stuff |
| 3 | `Trivial` | stuff |

| kind | error | details |
|---|---|---|
| 1 | unknown session | `a` = session id |
| 7 | engine closed | — |
"#;

    #[test]
    fn clean_pair_has_no_findings() {
        let src = extract_source(&[("wire.rs", SRC)]);
        assert_eq!(src.magics.len(), 1);
        assert_eq!(src.opcodes.len(), 2);
        assert_eq!(src.err_kinds_dec.len(), 2);
        assert_eq!(src.err_kinds_enc.len(), 2);
        assert_eq!(src.spec_tags.len(), 2);
        let doc = extract_doc(DOC);
        assert_eq!(doc.versions, vec![("PIRW".to_string(), 1, 3)]);
        let findings = compare(&src, &doc);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn each_drift_direction_is_caught() {
        let src = extract_source(&[("wire.rs", SRC)]);
        // Doc claims version 02 and an extra opcode; drops a spec tag.
        let doc = extract_doc(
            &DOC.replace("| `01` |", "| `02` |").replace("| 3 | `Trivial` | stuff |", "").replace(
                "| `0x81` | `OPENED` | stuff |",
                "| `0x81` | `OPENED` | stuff |\n| `0x83` | `GHOST` | stuff |",
            ),
        );
        let findings = compare(&src, &doc);
        let tokens: Vec<_> = findings.iter().map(|f| f.token.as_str()).collect();
        assert!(tokens.contains(&"version"), "{findings:#?}");
        assert!(tokens.contains(&"opcode"), "{findings:#?}");
        assert!(tokens.contains(&"spectag"), "{findings:#?}");
    }

    #[test]
    fn enc_dec_disagreement_is_caught() {
        let src = extract_source(&[(
            "wire.rs",
            &SRC.replace("EngineError::Closed => (7, 0),", "EngineError::Closed => (8, 0),"),
        )]);
        let doc = extract_doc(DOC);
        let findings = compare(&src, &doc);
        assert!(findings.iter().any(|f| f.token == "errkind"), "{findings:#?}");
    }

    #[test]
    fn prose_magic_with_inline_version_parses() {
        let doc = extract_doc(
            "The framing mirrors the snapshot format — a 12-byte header (magic\n`50 49 52 43`, `\"PIRC\"`; version `01`; 3 reserved zero bytes).",
        );
        assert_eq!(doc.magics.len(), 1);
        assert_eq!(doc.magics[0].0, "PIRC");
        assert_eq!(doc.versions, vec![("PIRC".to_string(), 1, 2)]);
    }
}
