//! The rule engine: shared token-stream machinery and the rules.
//!
//! Every rule is a pure function from source text (plus, for R4, the
//! protocol document) to a list of [`Finding`]s (six rules, R1–R6) — no filesystem access
//! inside the rules themselves, so the fixture suite can drive each rule
//! on seeded violations and clean code alike. The repo driver in
//! [`crate::repo`] maps real files into these functions.

pub mod durability;
pub mod hygiene;
pub mod panic_free;
pub mod protocol;
pub mod storage_layer;
pub mod zero_alloc;

use crate::lexer::{Token, TokenKind};

/// One rule violation at a specific site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`"R1"` … `"R6"`).
    pub rule: &'static str,
    /// Short machine-readable tag for the specific check within the rule
    /// (`"unwrap"`, `"index"`, `"alloc"`, …) — baseline entries can match
    /// on it.
    pub token: String,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// The trimmed source line, for baseline pattern matching and
    /// review-friendly output.
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} [{}]: {}", self.file, self.line, self.rule, self.token, self.message)
    }
}

/// The trimmed text of `line` (1-based) in `src`, for excerpts.
pub(crate) fn line_excerpt(src: &str, line: u32) -> String {
    src.lines().nth(line.saturating_sub(1) as usize).unwrap_or("").trim().to_string()
}

/// Drop every token belonging to an item annotated `#[test]` or
/// `#[cfg(test)]` (or any `cfg` combination naming `test` positively —
/// `#[cfg(not(test))]` marks *production* code and is kept).
///
/// Works on the token stream alone: attributes are recognized as
/// `#` `[` … `]` runs, and the annotated item is skipped to its closing
/// `}` (or terminating `;` for bodiless items), with paren/bracket depth
/// tracked so a `;` inside `[u8; 4]` does not end the item early.
pub(crate) fn strip_test_code<'a>(tokens: &[Token<'a>]) -> Vec<Token<'a>> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Gather the full run of consecutive outer attributes.
            let attr_start = i;
            let mut is_test = false;
            while tokens.get(i).is_some_and(|t| t.is_punct('#'))
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            {
                let close = match matching_bracket(tokens, i + 1) {
                    Some(c) => c,
                    None => break,
                };
                if attr_marks_test(&tokens[i + 2..close]) {
                    is_test = true;
                }
                i = close + 1;
            }
            if is_test {
                i = skip_item(tokens, i);
            } else {
                out.extend_from_slice(&tokens[attr_start..i]);
            }
            continue;
        }
        out.push(tokens[i]);
        i += 1;
    }
    out
}

/// Whether an attribute's inner tokens mark the following item as
/// test-only.
fn attr_marks_test(inner: &[Token<'_>]) -> bool {
    let mentions_test = inner.iter().any(|t| t.is_ident("test"));
    let negated = inner.iter().any(|t| t.is_ident("not"));
    mentions_test && !negated
}

/// Index just past the matching `]` for the `[` at `open`.
fn matching_bracket(tokens: &[Token<'_>], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skip one item starting at `i` (after its attributes); returns the
/// index just past the item.
fn skip_item(tokens: &[Token<'_>], i: usize) -> usize {
    let (mut curly, mut round, mut square) = (0i64, 0i64, 0i64);
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'{') => curly += 1,
                Some(b'}') => {
                    curly -= 1;
                    if curly == 0 {
                        return j + 1;
                    }
                }
                Some(b'(') => round += 1,
                Some(b')') => round -= 1,
                Some(b'[') => square += 1,
                Some(b']') => square -= 1,
                Some(b';') if curly == 0 && round == 0 && square == 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// A function found in a token stream: its name and the token range of
/// its body (exclusive of the outer braces).
pub(crate) struct FnBody<'a> {
    pub name: &'a str,
    /// Index range into the token slice covering the body's tokens.
    pub body: std::ops::Range<usize>,
}

/// Locate every `fn` and its body in `tokens`. Bodiless declarations
/// (trait method signatures) are skipped. Nested functions appear both
/// inside their parent's range and as their own entry — rules that scan
/// bodies are strict either way.
pub(crate) fn fn_bodies<'a>(tokens: &'a [Token<'a>]) -> Vec<FnBody<'a>> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let name = tokens[i + 1].text;
            // Scan forward to the body's `{` (or a `;` ending a bodiless
            // declaration), tracking paren/bracket depth so type-level
            // brackets never confuse the search.
            let (mut round, mut square) = (0i64, 0i64);
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokenKind::Punct {
                    match t.text.as_bytes().first() {
                        Some(b'(') => round += 1,
                        Some(b')') => round -= 1,
                        Some(b'[') => square += 1,
                        Some(b']') => square -= 1,
                        Some(b'{') if round == 0 && square == 0 => {
                            // Body found: take its balanced range.
                            let mut depth = 0i64;
                            let open = j;
                            while j < tokens.len() {
                                if tokens[j].is_punct('{') {
                                    depth += 1;
                                } else if tokens[j].is_punct('}') {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                j += 1;
                            }
                            body = Some(open + 1..j.min(tokens.len()));
                            break;
                        }
                        Some(b';') if round == 0 && square == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(body) = body {
                out.push(FnBody { name, body });
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_modules_are_stripped() {
        let src = r#"
            fn serve() { go(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); }
            }
            fn after() { more(); }
        "#;
        let toks = lex(src);
        let stripped = strip_test_code(&toks);
        assert!(stripped.iter().any(|t| t.is_ident("serve")));
        assert!(stripped.iter().any(|t| t.is_ident("after")));
        assert!(!stripped.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(not(test))] fn prod() { x.unwrap(); }";
        let toks = lex(src);
        let stripped = strip_test_code(&toks);
        assert!(stripped.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn test_fn_with_array_type_const_is_skipped_fully() {
        let src = "#[cfg(test)] static S: [u8; 4] = [0; 4]; fn live() { a.unwrap(); }";
        let toks = lex(src);
        let stripped = strip_test_code(&toks);
        assert!(stripped.iter().any(|t| t.is_ident("unwrap")), "live fn must survive");
        assert!(!stripped.iter().any(|t| t.is_ident("S")));
    }

    #[test]
    fn fn_bodies_finds_names_and_ranges() {
        let src = "fn a(x: [u8; 4]) -> Result<(), E> { inner(); } fn b_into(o: &mut [f64]) { o.fill(0.0); }";
        let toks = lex(src);
        let fns = fn_bodies(&toks);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[1].name, "b_into");
        assert!(toks[fns[1].body.clone()].iter().any(|t| t.is_ident("fill")));
    }
}
