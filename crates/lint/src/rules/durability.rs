//! R3 — durability discipline: fsync before rename.
//!
//! The WAL checkpoint manifests (and any future tmp-file publication in
//! the durability layer) follow one discipline: write to a temporary
//! name, `sync_all`/`sync_data` the file, `rename` into place, sync the
//! directory. A rename of un-synced data is the classic
//! silent-corruption bug — after a power cut the rename may be durable
//! while the file contents are not, leaving a *valid-looking* manifest
//! of garbage. PRs 6–7 hand-repeated the discipline; this rule checks
//! it at every call site.
//!
//! Per function body (non-test code), every `rename` call must be
//! preceded by a `sync_all`/`sync_data` call that comes **after** the
//! most recent file-creation/write call (`File::create`,
//! `OpenOptions… .create`, `fs::write`). A rename with no preceding
//! sync at all in the same body is also flagged: if the sync happens in
//! a caller, hoist the rename there too, or baseline with the reason.

use super::{fn_bodies, line_excerpt, strip_test_code, Finding};
use crate::lexer::lex;

/// Run R3 over one file's source.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let tokens = strip_test_code(&tokens);
    let mut out = Vec::new();
    for f in fn_bodies(&tokens) {
        let body = &tokens[f.body.clone()];
        let mut last_create: Option<usize> = None;
        let mut last_sync: Option<usize> = None;
        for (i, t) in body.iter().enumerate() {
            let called = body.get(i + 1).is_some_and(|n| n.is_punct('('));
            if !called {
                continue;
            }
            let after_path_sep = |owner: &str| {
                i >= 2
                    && body[i - 1].is_punct(':')
                    && body[i - 2].is_punct(':')
                    && body.get(i.wrapping_sub(3)).is_some_and(|o| o.is_ident(owner))
            };
            if (t.is_ident("create") && (after_path_sep("File") || prev_is_dot(body, i)))
                || (t.is_ident("create_new") && after_path_sep("File"))
                || (t.is_ident("write") && after_path_sep("fs"))
            {
                last_create = Some(i);
            } else if t.is_ident("sync_all") || t.is_ident("sync_data") {
                last_sync = Some(i);
            } else if t.is_ident("rename") {
                let synced_since_create = match (last_create, last_sync) {
                    (Some(c), Some(s)) => s > c,
                    (None, Some(_)) => true,
                    (_, None) => false,
                };
                if !synced_since_create {
                    out.push(Finding {
                        rule: "R3",
                        token: "rename".to_string(),
                        file: rel_path.to_string(),
                        line: t.line,
                        message: format!(
                            "rename in `{}` without an intervening sync_all/sync_data after the last create/write — a power cut can publish unsynced data",
                            f.name
                        ),
                        excerpt: line_excerpt(src, t.line),
                    });
                }
            }
        }
    }
    out
}

/// `.create(true)` builder-style call.
fn prev_is_dot(body: &[crate::lexer::Token<'_>], i: usize) -> bool {
    i >= 1 && body[i - 1].is_punct('.')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_sync_between_create_and_rename_is_flagged() {
        let src = r#"
fn publish(dir: &Path) -> io::Result<()> {
    let mut f = File::create(dir.join("x.tmp"))?;
    f.write_all(b"data")?;
    fs::rename(dir.join("x.tmp"), dir.join("x"))?;
    Ok(())
}
"#;
        let f = check_file("f.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "rename");
    }

    #[test]
    fn sync_before_rename_passes() {
        let src = r#"
fn publish(dir: &Path) -> io::Result<()> {
    let mut f = File::create(dir.join("x.tmp"))?;
    f.write_all(b"data")?;
    f.sync_all()?;
    fs::rename(dir.join("x.tmp"), dir.join("x"))?;
    File::open(dir)?.sync_all()?;
    Ok(())
}
"#;
        assert!(check_file("f.rs", src).is_empty());
    }

    #[test]
    fn create_after_sync_invalidates_the_sync() {
        let src = r#"
fn publish(dir: &Path) -> io::Result<()> {
    let f = File::create(dir.join("a.tmp"))?;
    f.sync_all()?;
    fs::write(dir.join("b.tmp"), b"late data")?;
    fs::rename(dir.join("b.tmp"), dir.join("b"))?;
    Ok(())
}
"#;
        assert_eq!(check_file("f.rs", src).len(), 1);
    }

    #[test]
    fn rename_with_no_file_activity_needs_a_sync_somewhere() {
        let src = "fn mv(a: &Path, b: &Path) { let _ = fs::rename(a, b); }";
        assert_eq!(check_file("f.rs", src).len(), 1);
    }
}
