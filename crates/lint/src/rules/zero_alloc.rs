//! R2 — zero-allocation `_into` discipline.
//!
//! The `_into` kernels (PR 4) are the repo's steady-state hot path: the
//! whole point of `matvec_into` / `observe_into` / `update_into` is
//! that a session's per-point work runs on caller- or mechanism-owned
//! scratch with **zero heap events** — proven dynamically by the
//! counting allocator in `tests/alloc_steady_state.rs`, but only for
//! the configurations that test drives. This rule is the static side of
//! the same invariant: *every* function whose name ends in `_into` must
//! be free of the allocating calls below, at every call site, on every
//! CI run.
//!
//! Banned inside `*_into` bodies (non-test code):
//! `Vec::new`, `vec!`, `.to_vec()`, `.collect()`, `.clone()`,
//! `Box::new`, `format!`, `String::new`/`String::from`, `.to_string()`,
//! `.to_owned()`, and `with_capacity`.
//!
//! Codec `_into` functions (`encode_command_into` and friends) append
//! into a caller-owned *growable* buffer by design; they are still
//! scanned — growing a `Vec<u8>` via `extend_from_slice` is fine, but
//! allocating temporaries inside them is not.

use super::{fn_bodies, line_excerpt, strip_test_code, Finding};
use crate::lexer::{lex, Token};

/// Run R2 over one file's source.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let tokens = strip_test_code(&tokens);
    let mut out = Vec::new();
    for f in fn_bodies(&tokens) {
        if !f.name.ends_with("_into") {
            continue;
        }
        let body = &tokens[f.body.clone()];
        for (i, t) in body.iter().enumerate() {
            if let Some(call) = banned_call(body, i) {
                out.push(Finding {
                    rule: "R2",
                    token: "alloc".to_string(),
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{call}` allocates inside `{}` — _into kernels must run on caller-owned scratch",
                        f.name
                    ),
                    excerpt: line_excerpt(src, t.line),
                });
            }
        }
    }
    out
}

/// If the token at `i` begins a banned allocating call, its display
/// name.
fn banned_call(body: &[Token<'_>], i: usize) -> Option<&'static str> {
    let t = &body[i];
    let next = body.get(i + 1);
    let next_is = |c: char| next.is_some_and(|n| n.is_punct(c));
    // `path::segment` method position: `Vec::new`, `Box::new`, …
    let path_call = |owner: &str, method: &str| -> bool {
        t.is_ident(owner)
            && next_is(':')
            && body.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && body.get(i + 3).is_some_and(|n| n.is_ident(method))
    };
    // `.method(` — also matches `.collect::<…>(`.
    let method_call = |name: &str| -> bool {
        t.is_ident(name) && i > 0 && body[i - 1].is_punct('.') && (next_is('(') || next_is(':'))
    };
    let macro_call = |name: &str| -> bool {
        t.is_ident(name) && next_is('!') && !body.get(i + 2).is_some_and(|n| n.is_punct('='))
    };

    if path_call("Vec", "new") {
        return Some("Vec::new");
    }
    if path_call("Vec", "with_capacity") || method_call("with_capacity") {
        return Some("with_capacity");
    }
    if path_call("Box", "new") {
        return Some("Box::new");
    }
    if path_call("String", "new") || path_call("String", "from") {
        return Some("String allocation");
    }
    if macro_call("vec") {
        return Some("vec!");
    }
    if macro_call("format") {
        return Some("format!");
    }
    if method_call("to_vec") {
        return Some(".to_vec()");
    }
    if method_call("collect") {
        return Some(".collect()");
    }
    if method_call("clone") {
        return Some(".clone()");
    }
    if method_call("to_string") {
        return Some(".to_string()");
    }
    if method_call("to_owned") {
        return Some(".to_owned()");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_each_banned_call_inside_into_fns() {
        let src = r#"
fn update_into(xs: &[f64], out: &mut Vec<f64>) {
    let a: Vec<f64> = Vec::new();
    let b = vec![0.0; 4];
    let c = xs.to_vec();
    let d: Vec<f64> = xs.iter().copied().collect();
    let e = b.clone();
    let f = Box::new(3);
    let g = format!("{}", 1);
    let h = Vec::with_capacity(8);
    let _ = (a, c, d, e, f, g, h);
}
"#;
        let f = check_file("f.rs", src);
        let calls: Vec<_> =
            f.iter().map(|x| x.message.split('`').nth(1).unwrap().to_string()).collect();
        assert_eq!(
            calls,
            [
                "Vec::new",
                "vec!",
                ".to_vec()",
                ".collect()",
                ".clone()",
                "Box::new",
                "format!",
                "with_capacity"
            ]
        );
    }

    #[test]
    fn clean_into_fn_and_allocating_wrapper_pass() {
        let src = r#"
fn scaled_copy_into(alpha: f64, x: &[f64], out: &mut [f64]) {
    for (o, v) in out.iter_mut().zip(x) { *o = alpha * *v; }
}
/// The allocating wrapper is allowed to allocate — it is not `_into`.
fn scaled_copy(alpha: f64, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    scaled_copy_into(alpha, x, &mut out);
    out
}
"#;
        assert!(check_file("f.rs", src).is_empty());
    }

    #[test]
    fn turbofish_collect_is_caught() {
        let src = "fn a_into(x: &[u8]) { let _ = x.iter().collect::<Vec<_>>(); }";
        assert_eq!(check_file("f.rs", src).len(), 1);
    }

    #[test]
    fn test_code_inside_file_is_ignored() {
        let src = r#"
#[cfg(test)]
mod tests {
    fn helper_into(x: &[u8]) -> Vec<u8> { x.to_vec() }
}
"#;
        assert!(check_file("f.rs", src).is_empty());
    }
}
