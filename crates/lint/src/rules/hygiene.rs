//! R5 — crate-root hygiene: unsafe and missing-docs policy.
//!
//! Two invariants, both checked against an explicit per-crate manifest
//! (see [`crate::repo`]):
//!
//! 1. **Every** crate root carries `#![forbid(unsafe_code)]`. The
//!    workspace is pure-Rust numerical and I/O code with no FFI;
//!    `forbid` (not `deny`) means no module can quietly `allow` it
//!    back.
//! 2. The `missing_docs` state **matches the manifest** — crates the
//!    manifest marks [`DocPolicy::Deny`] must carry
//!    `#![deny(missing_docs)]`, and crates marked [`DocPolicy::None`]
//!    must not. Drift in either direction fails: a root that quietly
//!    gains or loses the attribute without a manifest edit is exactly
//!    the unreviewed policy change this rule exists to catch.
//!
//! The attributes are recognized on the token stream, so commented-out
//! or doc-quoted attribute text never satisfies (or trips) the rule.

use super::Finding;
use crate::lexer::{lex, Token};

/// What the manifest expects of a crate root's `missing_docs` state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocPolicy {
    /// Root must carry `#![deny(missing_docs)]`.
    Deny,
    /// Root must not carry `deny(missing_docs)` (e.g. macro-heavy test
    /// shims where item-level docs are generated code).
    None,
}

/// Run R5 over one crate root.
pub fn check_crate_root(rel_path: &str, src: &str, docs: DocPolicy) -> Vec<Finding> {
    let tokens = lex(src);
    let mut out = Vec::new();
    if !has_inner_attr(&tokens, "forbid", "unsafe_code") {
        out.push(Finding {
            rule: "R5",
            token: "unsafe".to_string(),
            file: rel_path.to_string(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            excerpt: String::new(),
        });
    }
    let has_deny_docs = has_inner_attr(&tokens, "deny", "missing_docs");
    match docs {
        DocPolicy::Deny if !has_deny_docs => out.push(Finding {
            rule: "R5",
            token: "docs".to_string(),
            file: rel_path.to_string(),
            line: 1,
            message: "crate root is missing `#![deny(missing_docs)]` (manifest expects Deny)"
                .to_string(),
            excerpt: String::new(),
        }),
        DocPolicy::None if has_deny_docs => out.push(Finding {
            rule: "R5",
            token: "docs".to_string(),
            file: rel_path.to_string(),
            line: 1,
            message:
                "crate root carries `#![deny(missing_docs)]` but the manifest says None — update \
                 the manifest in crates/lint/src/repo.rs to record the policy change"
                    .to_string(),
            excerpt: String::new(),
        }),
        _ => {}
    }
    out
}

/// Whether the stream contains the inner attribute `#![level(lint)]`.
fn has_inner_attr(tokens: &[Token<'_>], level: &str, lint: &str) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(level)
            && w[4].is_punct('(')
            && w[5].is_ident(lint)
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compliant_root_passes() {
        let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert!(check_crate_root("lib.rs", src, DocPolicy::Deny).is_empty());
    }

    #[test]
    fn missing_attrs_are_flagged() {
        let src = "//! Docs mentioning #![forbid(unsafe_code)] in prose only.\npub fn f() {}\n";
        let f = check_crate_root("lib.rs", src, DocPolicy::Deny);
        let tokens: Vec<_> = f.iter().map(|x| x.token.as_str()).collect();
        assert_eq!(tokens, ["unsafe", "docs"]);
    }

    #[test]
    fn warn_missing_docs_does_not_satisfy_deny() {
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        let f = check_crate_root("lib.rs", src, DocPolicy::Deny);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "docs");
    }

    #[test]
    fn unexpected_deny_under_none_policy_is_manifest_drift() {
        let src = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";
        let f = check_crate_root("lib.rs", src, DocPolicy::None);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "docs");
    }
}
