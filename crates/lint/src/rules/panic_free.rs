//! R1 — panic-free serving path.
//!
//! The engine's serving files (`ingress`, `wire`, `server`, `tcp`,
//! `wal`, `snapshot`, `session`) run on shard-worker and connection
//! threads. A panic there kills a worker: every session on the shard
//! stalls, queued commands are dropped, and the engine degrades to
//! `EngineError::Closed` for traffic that was perfectly healthy. The
//! contract since PR 6 is that these files report failures through
//! typed errors (`EngineError` / `WireError` / `WalError` /
//! `SnapshotError`) — never through the panic machinery.
//!
//! Flagged in non-test code:
//!
//! - `.unwrap()` / `.expect(…)` method calls;
//! - `panic!`, `unreachable!`, `todo!`, `unimplemented!` macro
//!   invocations;
//! - slice/array indexing (`buf[i]`, `buf[a..b]`) — every `Index` use
//!   can panic; panic-free code reaches for `.get(…)` / `.first_chunk()`
//!   and propagates the miss. Provably in-bounds sites (constant
//!   indices into fixed arrays, offsets re-validated a line above) are
//!   expected to be **baselined with a written reason**, not rewritten
//!   into noise.
//!
//! Doc comments, strings, and `#[cfg(test)]` / `#[test]` items never
//! produce findings (the lexer and the test-stripper see to it).

use super::{line_excerpt, strip_test_code, Finding};
use crate::lexer::{lex, TokenKind};

/// Macros whose expansion is a panic.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Run R1 over one file's source.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let tokens = strip_test_code(&tokens);
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let next_is = |c: char| tokens.get(i + 1).is_some_and(|n| n.is_punct(c));
        match t.kind {
            // Only method calls: `.unwrap()` — a free function named
            // `expect` would be the caller's own (fallible-signature)
            // code and is not this rule's business.
            TokenKind::Ident
                if (t.is_ident("unwrap") || t.is_ident("expect"))
                    && next_is('(')
                    && i > 0
                    && tokens[i - 1].is_punct('.') =>
            {
                out.push(finding(
                    rel_path,
                    src,
                    t.line,
                    t.text,
                    format!(
                        ".{}() on the serving path can panic — propagate a typed error instead",
                        t.text
                    ),
                ));
            }
            TokenKind::Ident
                if PANIC_MACROS.contains(&t.text)
                    && next_is('!')
                    // `!` must start a macro invocation, not `!=`.
                    && !tokens.get(i + 2).is_some_and(|n| n.is_punct('=')) =>
            {
                out.push(finding(
                    rel_path,
                    src,
                    t.line,
                    t.text,
                    format!("{}! aborts the worker thread — return a typed error instead", t.text),
                ));
            }
            // Indexing: `[` immediately after an expression-ending token
            // is `Index::index`, which panics out of bounds. `[` after
            // `#` (attribute), `=`/`(`/`,`/`&` (array literal or type
            // position) is not indexing.
            TokenKind::Punct if t.is_punct('[') && i > 0 && is_expr_end(&tokens[i - 1]) => {
                out.push(finding(
                    rel_path,
                    src,
                    t.line,
                    "index",
                    "slice indexing can panic — use .get()/.first_chunk() and propagate, or baseline with an in-bounds proof".to_string(),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Whether a token can end an expression (making a following `[` an
/// indexing operation rather than an array literal / type).
fn is_expr_end(t: &crate::lexer::Token<'_>) -> bool {
    match t.kind {
        TokenKind::Ident => !matches!(
            t.text,
            // Keywords that *precede* an array literal or pattern.
            "return"
                | "break"
                | "in"
                | "as"
                | "mut"
                | "ref"
                | "box"
                | "move"
                | "else"
                | "match"
                | "let"
        ),
        TokenKind::Str => true,
        TokenKind::Punct => t.is_punct(')') || t.is_punct(']') || t.is_punct('?'),
        _ => false,
    }
}

fn finding(rel_path: &str, src: &str, line: u32, token: &str, message: String) -> Finding {
    Finding {
        rule: "R1",
        token: token.to_string(),
        file: rel_path.to_string(),
        line,
        message,
        excerpt: line_excerpt(src, line),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let src = r#"
fn serve(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a == 0 { panic!("boom"); }
    match b { 0 => unreachable!(), _ => b }
}
"#;
        let f = check_file("f.rs", src);
        let tokens: Vec<_> = f.iter().map(|f| f.token.as_str()).collect();
        assert_eq!(tokens, ["unwrap", "expect", "panic", "unreachable"]);
    }

    #[test]
    fn flags_indexing_but_not_array_literals_attrs_or_types() {
        let src = r#"
#[derive(Debug)]
struct S { buf: [u8; 4] }
fn f(s: &S, xs: &[u8], i: usize) -> u8 {
    let lit = [0u8; 4];
    let a = xs[i];
    let b = s.buf[0];
    let c = &xs[1..3];
    let d = lit[3];
    a + b + c[0] + d
}
"#;
        let f = check_file("f.rs", src);
        assert_eq!(f.len(), 5, "{f:#?}");
        assert!(f.iter().all(|x| x.token == "index"));
    }

    #[test]
    fn ignores_comments_strings_and_test_code() {
        let src = r#"
//! Call `.unwrap()` as in `buf[0]`.
fn clean(x: Result<u8, ()>) -> Result<u8, ()> {
    // x.unwrap() would panic! here
    let msg = "don't unwrap() or panic! or index buf[0]";
    let _ = msg;
    x
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = vec![1];
        assert_eq!(v[0], Some(1).unwrap());
    }
}
"#;
        assert!(check_file("f.rs", src).is_empty());
    }

    #[test]
    fn not_equals_on_macro_names_is_not_a_macro_call() {
        // Contrived, but `panic != x` must not be read as `panic!`.
        let src = "fn f(panic: u8) -> bool { panic != 3 }";
        assert!(check_file("f.rs", src).is_empty());
    }
}
