//! A small, self-contained Rust lexer.
//!
//! The rule engine never wants to see the *inside* of a string literal,
//! a char literal, or a comment — `"call .unwrap() here"` in a doc
//! comment is not a finding. This lexer produces a token stream with
//! those regions correctly skipped (or folded into single literal
//! tokens), which is all the precision the token-pattern rules need.
//! It is deliberately **not** a parser: no AST, no expressions — just
//! tokens with line numbers.
//!
//! Handled correctly, because each one has burned a naive regex linter
//! before:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), including doc block comments;
//! - string literals with escapes (`"\""`), raw strings with any hash
//!   depth (`r#"..."#`), byte strings (`b"..."`, `br##"..."##`), and
//!   C strings (`c"..."`);
//! - char literals vs. lifetimes: `'a'` is a literal, `'a` is a
//!   lifetime, `'\''` is a literal, `'static` is a lifetime;
//! - numeric literals with underscores, base prefixes, type suffixes,
//!   and floats — `0..4` lexes as `0`, `..`, `4`, not as a float;
//! - raw identifiers (`r#match`).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#match`, …).
    Ident,
    /// A lifetime (`'a`, `'static`) — the text excludes the quote.
    Lifetime,
    /// A string / byte-string / C-string literal (raw or not). The text
    /// is the full source slice including quotes and prefix.
    Str,
    /// A character or byte-character literal (`'x'`, `b'\n'`).
    Char,
    /// An integer literal (`42`, `0x84`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `1e-6`, `2.5f64`).
    Float,
    /// A single punctuation character (`[`, `!`, `:`, …). Multi-char
    /// operators are emitted as consecutive single-char tokens, which
    /// is sufficient for token-pattern rules.
    Punct,
}

/// One lexed token: kind, source text, and 1-based line number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Classification of this token.
    pub kind: TokenKind,
    /// The token's text, borrowed from the source.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl<'a> Token<'a> {
    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Parse an integer literal (decimal, hex, octal, or binary, with
    /// `_` separators and an optional type suffix). `None` for
    /// non-integer tokens.
    pub fn int_value(&self) -> Option<u64> {
        if self.kind != TokenKind::Int {
            return None;
        }
        let t = self.text.replace('_', "");
        let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X"))
        {
            (h, 16)
        } else if let Some(o) = t.strip_prefix("0o") {
            (o, 8)
        } else if let Some(b) = t.strip_prefix("0b") {
            (b, 2)
        } else {
            (t.as_str(), 10)
        };
        // Trim any type suffix (u8, usize, i64, …).
        let end = digits.find(|c: char| !c.is_digit(radix)).map_or(digits.len(), |i| i);
        u64::from_str_radix(&digits[..end], radix).ok()
    }

    /// For a plain (non-raw) string or byte-string literal, the content
    /// between the quotes, unescaped only for the trivial case of no
    /// backslashes. `None` when the content contains escapes (callers
    /// in this linter only read protocol magic literals like `b"PIRW"`,
    /// which never do).
    pub fn str_content(&self) -> Option<&'a str> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let t = self.text;
        let open = t.find('"')?;
        let inner = &t[open + 1..t.len().checked_sub(1)?];
        if t[..open].contains('#') || inner.contains('\\') {
            return None;
        }
        Some(inner)
    }
}

/// Lex `src` into tokens, skipping whitespace and comments.
///
/// Unterminated literals or comments end the token stream at the point
/// of the problem rather than erroring: the linter runs on code that
/// `rustc` already accepted, so this is a defensive posture, not an
/// expected path.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' => {
                    if self.peek(1) == Some(b'/') {
                        self.skip_line_comment();
                    } else if self.peek(1) == Some(b'*') {
                        self.skip_block_comment();
                    } else {
                        self.push_punct();
                    }
                }
                b'"' => self.lex_string(self.pos),
                b'\'' => self.lex_char_or_lifetime(),
                b'0'..=b'9' => self.lex_number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident_or_prefixed(),
                _ if b < 0x80 => self.push_punct(),
                _ => {
                    // Multi-byte UTF-8 outside literals/comments: emit as
                    // punctuation covering the whole char.
                    let start = self.pos;
                    let ch_len = utf8_len(b);
                    self.pos = (start + ch_len).min(self.bytes.len());
                    self.push(TokenKind::Punct, start);
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.out.push(Token { kind, text: &self.src[start..self.pos], line: self.line });
    }

    fn push_punct(&mut self) {
        let start = self.pos;
        self.pos += 1;
        self.push(TokenKind::Punct, start);
    }

    fn skip_line_comment(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break; // the newline itself is handled by the main loop
            }
            self.pos += 1;
        }
    }

    fn skip_block_comment(&mut self) {
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while depth > 0 {
            match self.bytes.get(self.pos) {
                None => return, // unterminated: end of stream
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'/') if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                Some(b'*') if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Lex a plain `"…"` string starting at `token_start` (which may be
    /// earlier than the quote when a `b`/`c` prefix was consumed).
    fn lex_string(&mut self, token_start: usize) {
        let line = self.line;
        self.pos += 1; // opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    self.out.push(Token {
                        kind: TokenKind::Str,
                        text: &self.src[token_start..self.pos],
                        line,
                    });
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Lex a raw string `r#"…"#` (any hash depth, `r"…"` included)
    /// starting at `token_start`; `self.pos` is at the first `#` or `"`.
    fn lex_raw_string(&mut self, token_start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.bytes.get(self.pos) != Some(&b'"') {
            // `r#ident` raw identifier, or stray `r#`: rewind to lex as
            // identifier text (the `r#` stays part of the token).
            self.lex_ident_tail(token_start);
            return;
        }
        self.pos += 1;
        loop {
            match self.bytes.get(self.pos) {
                None => return, // unterminated
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let mut close = 0usize;
                    while close < hashes && self.bytes.get(self.pos + 1 + close) == Some(&b'#') {
                        close += 1;
                    }
                    if close == hashes {
                        self.pos += 1 + hashes;
                        self.out.push(Token {
                            kind: TokenKind::Str,
                            text: &self.src[token_start..self.pos],
                            line,
                        });
                        return;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// `'` — a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
    fn lex_char_or_lifetime(&mut self) {
        let start = self.pos;
        // Lifetime: quote + ident-start, where the char after the ident
        // run is NOT another quote (`'a'` is a char literal; `'a` as in
        // `&'a str` is a lifetime; `'_` is a lifetime too).
        if let Some(b) = self.peek(1) {
            if b.is_ascii_alphabetic() || b == b'_' {
                let mut end = self.pos + 2;
                while self.bytes.get(end).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                    end += 1;
                }
                if self.bytes.get(end) != Some(&b'\'') {
                    self.pos = end;
                    self.out.push(Token {
                        kind: TokenKind::Lifetime,
                        text: &self.src[start + 1..end],
                        line: self.line,
                    });
                    return;
                }
            }
        }
        // Char literal: consume until closing quote, honoring escapes.
        self.pos += 1;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    self.push(TokenKind::Char, start);
                    return;
                }
                b'\n' => return, // malformed; stop the literal here
                _ => self.pos += 1,
            }
        }
    }

    fn lex_number(&mut self) {
        let start = self.pos;
        let mut kind = TokenKind::Int;
        if self.bytes[self.pos] == b'0' && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'b')) {
            self.pos += 2;
            while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            {
                self.pos += 1;
            }
            self.push(TokenKind::Int, start);
            return;
        }
        while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_digit() || *c == b'_') {
            self.pos += 1;
        }
        // A decimal point only if followed by a digit (so `0..4` stays
        // integer + range) — `1.` at end of expression is rare enough to
        // classify either way without affecting any rule.
        if self.bytes.get(self.pos) == Some(&b'.')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            kind = TokenKind::Float;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_digit() || *c == b'_') {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E'))
            && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.bytes.get(self.pos + 2).is_some_and(|c| c.is_ascii_digit())))
        {
            kind = TokenKind::Float;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_digit() || *c == b'_') {
                self.pos += 1;
            }
        }
        // Type suffix (u8, f64, usize, …).
        if self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_alphabetic()) {
            let suffix_start = self.pos;
            while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            {
                self.pos += 1;
            }
            if self.src[suffix_start..self.pos].starts_with('f') {
                kind = TokenKind::Float;
            }
        }
        self.push(kind, start);
    }

    /// An identifier — or a prefixed literal (`b"…"`, `r"…"`, `r#"…"#`,
    /// `br"…"`, `c"…"`, `b'x'`).
    fn lex_ident_or_prefixed(&mut self) {
        let start = self.pos;
        let b0 = self.bytes[self.pos];
        // String/char prefixes must be checked before generic identifier
        // lexing: `b"PIRW"` is one byte-string token, not ident + string.
        match b0 {
            b'b' => match self.peek(1) {
                Some(b'"') => {
                    self.pos += 1;
                    self.lex_string(start);
                    return;
                }
                Some(b'\'') => {
                    self.pos += 1;
                    // Byte char literal: same shape as a char literal and
                    // never a lifetime (b'a is not legal Rust).
                    let quote = self.pos;
                    self.pos += 1;
                    while let Some(&c) = self.bytes.get(self.pos) {
                        match c {
                            b'\\' => self.pos += 2,
                            b'\'' => {
                                self.pos += 1;
                                self.push(TokenKind::Char, start);
                                return;
                            }
                            b'\n' => return,
                            _ => self.pos += 1,
                        }
                    }
                    let _ = quote;
                    return;
                }
                Some(b'r') if matches!(self.bytes.get(self.pos + 2), Some(b'"' | b'#')) => {
                    self.pos += 2;
                    self.lex_raw_string(start);
                    return;
                }
                _ => {}
            },
            b'r' => {
                if matches!(self.peek(1), Some(b'"' | b'#')) {
                    self.pos += 1;
                    self.lex_raw_string(start);
                    return;
                }
            }
            b'c' if self.peek(1) == Some(b'"') => {
                self.pos += 1;
                self.lex_string(start);
                return;
            }
            _ => {}
        }
        self.lex_ident_tail(start);
    }

    fn lex_ident_tail(&mut self, start: usize) {
        while self.bytes.get(self.pos).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
            self.pos += 1;
        }
        if self.pos == start {
            // Defensive: never loop forever on unexpected input.
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start);
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text.to_string())).collect()
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        let toks = kinds("a // unwrap()\nb /* x /* unwrap() */ y */ c");
        let idents: Vec<_> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
    }

    #[test]
    fn strings_hide_their_content() {
        let toks = lex(r###"call("unwrap()", b"PIRW", r#"panic!()"# )"###);
        assert!(toks.iter().all(|t| t.text != "unwrap" && t.text != "panic"));
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 3);
        assert_eq!(strs[1].str_content(), Some("PIRW"));
        // Raw strings never yield content via the trivial accessor.
        assert_eq!(strs[2].str_content(), None);
    }

    #[test]
    fn char_literals_versus_lifetimes() {
        let toks = kinds("'a' &'a str 'static '_ '\\'' b'\\n'");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Char, "'a'".to_string()),
                (TokenKind::Punct, "&".to_string()),
                (TokenKind::Lifetime, "a".to_string()),
                (TokenKind::Ident, "str".to_string()),
                (TokenKind::Lifetime, "static".to_string()),
                (TokenKind::Lifetime, "_".to_string()),
                (TokenKind::Char, "'\\''".to_string()),
                (TokenKind::Char, "b'\\n'".to_string()),
            ]
        );
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0..4 1.5 1e-6 0x84 1_000u64 2.5f64");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Int, "0".to_string()),
                (TokenKind::Punct, ".".to_string()),
                (TokenKind::Punct, ".".to_string()),
                (TokenKind::Int, "4".to_string()),
                (TokenKind::Float, "1.5".to_string()),
                (TokenKind::Float, "1e-6".to_string()),
                (TokenKind::Int, "0x84".to_string()),
                (TokenKind::Int, "1_000u64".to_string()),
                (TokenKind::Float, "2.5f64".to_string()),
            ]
        );
        assert_eq!(lex("0x84")[0].int_value(), Some(0x84));
        assert_eq!(lex("1_000u64")[0].int_value(), Some(1000));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        let toks = kinds("r#match r#\"raw\"#");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match".to_string()));
        assert_eq!(toks[1].0, TokenKind::Str);
    }

    #[test]
    fn line_numbers_track_every_literal_shape() {
        let src = "a\n\"s\ntring\"\nb /* c\nc */ d\nr#\"x\ny\"# e";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text == text).map(|t| t.line);
        assert_eq!(find("a"), Some(1));
        assert_eq!(find("b"), Some(4));
        assert_eq!(find("d"), Some(5));
        assert_eq!(find("e"), Some(7));
    }
}
