//! The repo driver: maps the rules onto the real workspace.
//!
//! The scope of each rule is an explicit manifest in this module, not a
//! filesystem guess — reviewers can see exactly which files are under
//! which contract, and adding a file to a contract is a visible diff.
//!
//! | rule | scope |
//! |------|-------|
//! | R1   | the engine serving path ([`R1_FILES`]) |
//! | R2   | every `.rs` file under the hot-path crates ([`R2_CRATES`]) |
//! | R3   | the durability layer ([`R3_FILES`]) |
//! | R4   | protocol sources ([`R4_SOURCES`]) vs `docs/PROTOCOL.md` |
//! | R5   | every crate root ([`CRATE_ROOTS`]) |
//! | R6   | files threaded through the `Storage` trait ([`R6_FILES`]) |
//!
//! A manifest path that no longer exists is an error, not a skip —
//! renames must update the manifest, or the contract silently shrinks.

use std::fs;
use std::io;
use std::path::Path;

use crate::baseline::{self, Baseline, BaselineError};
use crate::rules::{durability, hygiene, panic_free, protocol, storage_layer, zero_alloc, Finding};

/// R1 scope: files that run on shard-worker / connection threads.
pub const R1_FILES: [&str; 8] = [
    "crates/engine/src/ingress.rs",
    "crates/engine/src/wire.rs",
    "crates/engine/src/server.rs",
    "crates/engine/src/tcp.rs",
    "crates/engine/src/wal.rs",
    "crates/engine/src/snapshot.rs",
    "crates/engine/src/session.rs",
    "crates/engine/src/storage.rs",
];

/// R2 scope: crates whose `*_into` kernels must not allocate. `dp` is
/// in scope since the sampler-core rewrite: `fill_gaussian` and
/// friends sit directly under every per-point noise draw.
pub const R2_CRATES: [&str; 7] = [
    "crates/linalg/src",
    "crates/optim/src",
    "crates/geometry/src",
    "crates/continual/src",
    "crates/core/src",
    "crates/dp/src",
    "crates/engine/src",
];

/// R3 scope: the durability layer.
pub const R3_FILES: [&str; 2] = ["crates/engine/src/wal.rs", "crates/engine/src/snapshot.rs"];

/// R4 scope: files defining wire/WAL/snapshot/checkpoint constants.
pub const R4_SOURCES: [&str; 3] =
    ["crates/engine/src/wire.rs", "crates/engine/src/wal.rs", "crates/engine/src/snapshot.rs"];

/// R4 document side.
pub const R4_DOC: &str = "docs/PROTOCOL.md";

/// R6 scope: files whose filesystem access is threaded through the
/// `Storage` trait so the crash-consistency harness can fault and
/// crash every op. `storage.rs` itself is deliberately absent — it is
/// the one place direct `std::fs` calls belong.
pub const R6_FILES: [&str; 3] =
    ["crates/engine/src/wal.rs", "crates/engine/src/snapshot.rs", "crates/engine/src/ingress.rs"];

/// R5 manifest: every crate root and its `missing_docs` policy. The
/// test shims are `DocPolicy::None` — their public surface is largely
/// macro-generated and the real crates they stand in for own the docs
/// contract.
pub const CRATE_ROOTS: [(&str, hygiene::DocPolicy); 15] = [
    ("src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/bench/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/continual/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/core/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/datagen/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/dp/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/engine/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/erm/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/geometry/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/linalg/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/lint/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/optim/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/sketch/src/lib.rs", hygiene::DocPolicy::Deny),
    ("crates/shims/criterion/src/lib.rs", hygiene::DocPolicy::None),
    ("crates/shims/proptest/src/lib.rs", hygiene::DocPolicy::None),
];

/// Everything one lint run produced.
#[derive(Debug)]
pub struct CheckResult {
    /// Findings that survived the baseline.
    pub findings: Vec<Finding>,
    /// Baseline parse/ratchet errors (stale entries, over-budget, …).
    pub baseline_errors: Vec<BaselineError>,
    /// Raw finding count before the baseline was applied.
    pub raw_count: usize,
}

impl CheckResult {
    /// Whether the run is clean (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.baseline_errors.is_empty()
    }
}

/// Collect raw findings from every rule over the workspace at `root`.
pub fn collect_findings(root: &Path) -> io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for rel in R1_FILES {
        let src = read(root, rel)?;
        out.extend(panic_free::check_file(rel, &src));
    }
    for dir in R2_CRATES {
        for rel in rust_files(root, dir)? {
            let src = read(root, &rel)?;
            out.extend(zero_alloc::check_file(&rel, &src));
        }
    }
    for rel in R3_FILES {
        let src = read(root, rel)?;
        out.extend(durability::check_file(rel, &src));
    }
    let r4: Vec<(String, String)> = R4_SOURCES
        .iter()
        .map(|rel| read(root, rel).map(|src| (rel.to_string(), src)))
        .collect::<io::Result<_>>()?;
    let r4_refs: Vec<(&str, &str)> = r4.iter().map(|(p, s)| (p.as_str(), s.as_str())).collect();
    let src_consts = protocol::extract_source(&r4_refs);
    let doc_consts = protocol::extract_doc(&read(root, R4_DOC)?);
    out.extend(protocol::compare(&src_consts, &doc_consts));
    for (rel, policy) in CRATE_ROOTS {
        let src = read(root, rel)?;
        out.extend(hygiene::check_crate_root(rel, &src, policy));
    }
    for rel in R6_FILES {
        let src = read(root, rel)?;
        out.extend(storage_layer::check_file(rel, &src));
    }
    Ok(out)
}

/// Full check: collect findings, load `lint.toml`, apply the ratchet.
pub fn check(root: &Path) -> io::Result<CheckResult> {
    let raw = collect_findings(root)?;
    let raw_count = raw.len();
    let baseline = load_baseline(root)?;
    match baseline {
        Ok(b) => {
            let (findings, baseline_errors) = baseline::apply(&b, &raw);
            Ok(CheckResult { findings, baseline_errors, raw_count })
        }
        Err(e) => Ok(CheckResult { findings: raw, baseline_errors: vec![e], raw_count }),
    }
}

/// Read and parse `lint.toml`; a missing file is an empty baseline with
/// a zero-entry ratchet.
fn load_baseline(root: &Path) -> io::Result<Result<Baseline, BaselineError>> {
    let path = root.join("lint.toml");
    if !path.exists() {
        return Ok(Ok(Baseline::default()));
    }
    let text = fs::read_to_string(path)?;
    Ok(baseline::parse(&text))
}

fn read(root: &Path, rel: &str) -> io::Result<String> {
    fs::read_to_string(root.join(rel)).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "{rel}: {e} — if the file moved, update the manifest in crates/lint/src/repo.rs"
            ),
        )
    })
}

/// Repo-relative paths of every `.rs` file under `root/dir`, sorted for
/// deterministic output.
fn rust_files(root: &Path, dir: &str) -> io::Result<Vec<String>> {
    let mut stack = vec![root.join(dir)];
    let mut out = Vec::new();
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(rel_path(root, &path));
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// The workspace root, from the lint crate's own manifest dir.
    pub(crate) fn workspace_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
    }

    #[test]
    fn every_manifest_path_exists() {
        let root = workspace_root();
        for rel in
            R1_FILES.iter().chain(R3_FILES.iter()).chain(R4_SOURCES.iter()).chain(R6_FILES.iter())
        {
            assert!(root.join(rel).is_file(), "manifest path gone: {rel}");
        }
        for (rel, _) in CRATE_ROOTS {
            assert!(root.join(rel).is_file(), "crate root gone: {rel}");
        }
        assert!(root.join(R4_DOC).is_file());
    }

    #[test]
    fn rust_file_walk_finds_engine_sources() {
        let root = workspace_root();
        let files = rust_files(&root, "crates/engine/src").unwrap();
        assert!(files.iter().any(|f| f.ends_with("ingress.rs")), "{files:?}");
    }
}
