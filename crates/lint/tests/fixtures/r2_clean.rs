// R2 fixture: clean `_into` kernels plus allocating non-`_into`
// wrappers (which are allowed to allocate). Zero findings expected.
// Not compiled — consumed as text by tests/fixtures.rs.

/// In-place kernel: caller-owned scratch only.
fn scaled_add_into(alpha: f64, x: &[f64], out: &mut [f64]) {
    for (o, v) in out.iter_mut().zip(x) {
        *o += alpha * *v;
    }
}

/// Growable-buffer codec kernel: appending to a caller-owned Vec via
/// extend_from_slice is not an owned allocation.
fn encode_into(out: &mut Vec<u8>, word: u64) {
    out.extend_from_slice(&word.to_le_bytes());
    out.push(0);
}

/// The allocating wrapper is free to allocate — it is not `_into`.
fn scaled_add(alpha: f64, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    scaled_add_into(alpha, x, &mut out);
    out.clone()
}

#[cfg(test)]
mod tests {
    #[test]
    fn helper_into_in_tests_is_exempt() {
        fn probe_into(x: &[u8]) -> Vec<u8> {
            x.to_vec()
        }
        assert_eq!(probe_into(&[1]), vec![1]);
    }
}
