//! R6 fixture: the same operations routed through the Storage trait —
//! every call is visible to the crash-consistency harness. Never
//! compiled — driven as text by tests/fixtures.rs.

fn write_segment(storage: &StorageHandle, dir: &Path, bytes: &[u8]) -> io::Result<()> {
    storage.create_dir_all(dir)?;
    let mut f = storage.create_new(&dir.join("seg.wal"))?;
    f.append(bytes)?;
    f.sync_data()?;
    storage.sync_dir(dir)?;
    Ok(())
}

fn scan(storage: &StorageHandle, dir: &Path) -> io::Result<Vec<PathBuf>> {
    // read_dir returns files only, already sorted.
    storage.read_dir(dir)
}

fn unrelated_identifiers(fs: u32, file: &str) -> u32 {
    // Idents merely *named* like the forbidden owners, with no `::`
    // path, are not findings.
    let _ = file;
    fs + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        std::fs::create_dir_all("/tmp/r6-clean-scratch").unwrap();
        let f = File::create("/tmp/r6-clean-scratch/x").unwrap();
        drop(f);
        let _ = std::fs::remove_dir_all("/tmp/r6-clean-scratch");
    }
}
