// R4 fixture: a miniature protocol source file. Paired with
// r4_doc_clean.md (no drift) and r4_doc_drifted.md (four seeded
// drifts). Not compiled — consumed as text.

pub const MAGIC: [u8; 4] = *b"PIRW";
pub const VERSION: u8 = 1;
pub const WAL_MAGIC: [u8; 4] = *b"PIRL";
pub const WAL_VERSION: u8 = 1;

pub mod opcode {
    pub const OPEN: u8 = 0x01;
    pub const OBSERVE: u8 = 0x02;
    pub const R_OPENED: u8 = 0x81;
}

fn enc_engine_error(e: &mut Enc<'_>, err: &EngineError) {
    let (kind, a): (u8, u64) = match err {
        EngineError::UnknownSession { id } => (1, *id),
        EngineError::Closed => (7, 0),
    };
    e.u8(kind);
    e.u64(a);
}

fn dec_engine_error(d: &mut Dec) -> Result<EngineError, WireError> {
    let kind = d.u8()?;
    let a = d.u64()?;
    Ok(match kind {
        1 => EngineError::UnknownSession { id: a },
        7 => EngineError::Closed,
        t => return Err(WireError::Malformed(format!("unknown kind {t}"))),
    })
}

fn dec_spec(d: &mut Dec) -> Result<MechanismSpec, WireError> {
    let tag = d.u8()?;
    Ok(match tag {
        0 => MechanismSpec::Erm { horizon: d.u64()? },
        3 => MechanismSpec::Trivial { dimension: d.u64()? },
        t => return Err(WireError::Malformed(format!("bad tag {t}"))),
    })
}
