// R2 fixture: allocations inside `_into` bodies. Every marked line must
// produce a finding. Not compiled — consumed as text by tests/fixtures.rs.

fn observe_into(xs: &[f64], out: &mut [f64]) {
    let a: Vec<f64> = Vec::new(); // VIOLATION
    let b = vec![0.0; 4]; // VIOLATION
    let c = xs.to_vec(); // VIOLATION
    let d: Vec<f64> = xs.iter().copied().collect(); // VIOLATION
    let e = b.clone(); // VIOLATION
    let f = Box::new(3); // VIOLATION
    let g = format!("{}", out.len()); // VIOLATION
    let h = Vec::with_capacity(8); // VIOLATION
    let i = "x".to_string(); // VIOLATION
    let j = xs.to_owned(); // VIOLATION
    let _ = (a, c, d, e, f, g, h, i, j);
}
