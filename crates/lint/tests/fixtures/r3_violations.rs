// R3 fixture: renames publishing unsynced data. Every marked rename
// must produce a finding. Not compiled — consumed as text.

fn publish_unsynced(dir: &Path) -> io::Result<()> {
    let mut f = File::create(dir.join("m.tmp"))?;
    f.write_all(b"manifest")?;
    fs::rename(dir.join("m.tmp"), dir.join("m"))?; // VIOLATION: no sync after create
    Ok(())
}

fn sync_then_write_again(dir: &Path) -> io::Result<()> {
    let f = File::create(dir.join("a.tmp"))?;
    f.sync_all()?;
    fs::write(dir.join("b.tmp"), b"late")?;
    fs::rename(dir.join("b.tmp"), dir.join("b"))?; // VIOLATION: sync predates the write
    Ok(())
}

fn bare_move(a: &Path, b: &Path) -> io::Result<()> {
    fs::rename(a, b) // VIOLATION: no sync anywhere in this body
}
