//! R6 fixture: seeded direct-filesystem calls in a file that is
//! supposed to route all I/O through the Storage trait. Never
//! compiled — driven as text by tests/fixtures.rs.

fn write_segment(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?; // VIOLATION fs
    let mut f = File::create(dir.join("seg.wal"))?; // VIOLATION File
    f.write_all(bytes)?;
    f.sync_data()?;
    Ok(())
}

fn reopen_for_append(dir: &Path) -> io::Result<File> {
    OpenOptions::new().append(true).open(dir.join("seg.wal")) // VIOLATION OpenOptions
}

fn scan(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? { // VIOLATION fs
        out.push(entry?.path());
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    // Test code may use the real filesystem freely — none of these are
    // findings.
    #[test]
    fn scratch_dir() {
        std::fs::create_dir_all("/tmp/r6-scratch").unwrap();
        let _ = std::fs::remove_dir_all("/tmp/r6-scratch");
    }
}
