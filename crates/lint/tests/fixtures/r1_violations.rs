// R1 fixture: every line marked VIOLATION must produce a finding.
// Not compiled — consumed as text by tests/fixtures.rs.

fn serve(buf: &[u8], x: Option<u8>, r: Result<u8, ()>) -> u8 {
    let a = x.unwrap(); // VIOLATION unwrap
    let b = r.expect("present"); // VIOLATION expect
    if a == 0 {
        panic!("boom"); // VIOLATION panic
    }
    let c = buf[0]; // VIOLATION index
    let d = &buf[1..3]; // VIOLATION index
    match b {
        0 => unreachable!(), // VIOLATION unreachable
        1 => todo!(), // VIOLATION todo
        2 => unimplemented!(), // VIOLATION unimplemented
        _ => a + c + d[0], // VIOLATION index
    }
}
