// R3 fixture: the correct tmp-write → fsync → rename → dir-sync
// discipline, in both direct and builder styles. Zero findings
// expected. Not compiled — consumed as text.

fn publish(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join("manifest.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fs::rename(&tmp, dir.join("manifest"))?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

fn publish_builder(dir: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = dir.join("seg.tmp");
    let mut f = OpenOptions::new().write(true).create(true).open(&tmp)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    fs::rename(&tmp, dir.join("seg"))?;
    Ok(())
}

/// No rename at all: plain segment appends need no rename discipline.
fn append_only(f: &mut File, bytes: &[u8]) -> io::Result<()> {
    f.write_all(bytes)?;
    f.sync_data()?;
    Ok(())
}
