// R1 fixture: a clean serving-path file — zero findings expected.
// Exercises every non-firing shape: prose mentions in comments and
// strings, array literals and types, attributes, test-only code.
// Not compiled — consumed as text by tests/fixtures.rs.

//! Doc prose may say `.unwrap()` or `buf[0]` or panic! freely.

/// More prose: `xs[i]` and .expect("...") in a doc comment.
#[derive(Debug)]
struct Frame {
    header: [u8; 12],
}

fn serve(buf: &[u8], x: Option<u8>) -> Result<u8, String> {
    // a comment with buf[0].unwrap() and panic!() inside
    let msg = "don't unwrap() or panic! or index buf[0]";
    let lit = [0u8; 4]; // array literal, not indexing
    let _ = (msg, lit);
    let first = buf.first().copied().ok_or("empty")?;
    let pair = buf.first_chunk::<2>().ok_or("short")?;
    let val = x.ok_or("missing")?;
    let [a, b] = *pair; // let-pattern, not indexing
    Ok(first + a + b + val)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_do_anything() {
        let v = vec![1, 2];
        assert_eq!(v[0], Some(1).unwrap());
        if v[1] == 3 {
            panic!("fine in tests");
        }
    }
}
