//! The linter as a test: `cargo test -p pir-lint` fails whenever
//! `cargo run -p pir-lint -- --check` would — so the invariants are
//! enforced by the ordinary test run even where CI is not wired up.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn workspace_passes_the_invariant_lints() {
    let result = pir_lint::repo::check(&workspace_root()).expect("lint run");
    let mut report = String::new();
    for e in &result.baseline_errors {
        report.push_str(&format!("{e}\n"));
    }
    for f in &result.findings {
        report.push_str(&format!("{f}\n    {}\n", f.excerpt));
    }
    assert!(
        result.is_clean(),
        "pir-lint found unsuppressed violations (fix them or add a reviewed lint.toml entry — see docs/LINTING.md):\n{report}"
    );
}

#[test]
fn baseline_stays_within_its_ratchet() {
    // The CI job greps this cap; keep the number and the file in sync.
    let text = std::fs::read_to_string(workspace_root().join("lint.toml")).expect("lint.toml");
    let baseline = pir_lint::baseline::parse(&text).expect("parseable baseline");
    assert!(
        baseline.allows.len() as u32 <= baseline.max_entries,
        "lint.toml has {} entries but max_entries = {}",
        baseline.allows.len(),
        baseline.max_entries
    );
    assert!(
        baseline.max_entries <= 12,
        "max_entries grew past the reviewed cap of 12 — raising it requires review (see docs/LINTING.md)"
    );
}
