//! Fixture suite: each rule must catch every seeded violation in its
//! `*_violations` fixture and stay silent on its `*_clean` fixture.
//!
//! The fixtures live as plain text under `tests/fixtures/` (they are
//! never compiled); `VIOLATION` markers in them double as the expected
//! finding count, so adding a seeded violation without updating the
//! marker is impossible.

use pir_lint::rules::{durability, hygiene, panic_free, protocol, storage_layer, zero_alloc};

const R1_VIOLATIONS: &str = include_str!("fixtures/r1_violations.rs");
const R1_CLEAN: &str = include_str!("fixtures/r1_clean.rs");
const R2_VIOLATIONS: &str = include_str!("fixtures/r2_violations.rs");
const R2_CLEAN: &str = include_str!("fixtures/r2_clean.rs");
const R3_VIOLATIONS: &str = include_str!("fixtures/r3_violations.rs");
const R3_CLEAN: &str = include_str!("fixtures/r3_clean.rs");
const R4_SOURCE: &str = include_str!("fixtures/r4_source.rs");
const R6_VIOLATIONS: &str = include_str!("fixtures/r6_violations.rs");
const R6_CLEAN: &str = include_str!("fixtures/r6_clean.rs");
const R4_DOC_CLEAN: &str = include_str!("fixtures/r4_doc_clean.md");
const R4_DOC_DRIFTED: &str = include_str!("fixtures/r4_doc_drifted.md");

/// `// VIOLATION` markers in a fixture (its expected finding count).
fn seeded(src: &str) -> usize {
    src.lines().filter(|l| l.contains("// VIOLATION")).count()
}

#[test]
fn r1_catches_every_seeded_violation() {
    let findings = panic_free::check_file("r1_violations.rs", R1_VIOLATIONS);
    assert_eq!(findings.len(), seeded(R1_VIOLATIONS), "{findings:#?}");
    // The marker comments name the expected token for each line.
    for f in &findings {
        let line = R1_VIOLATIONS.lines().nth(f.line as usize - 1).unwrap_or("");
        assert!(
            line.contains(&format!("VIOLATION {}", f.token)) || f.token == "index",
            "finding {f} does not match its marker: {line}"
        );
    }
}

#[test]
fn r1_accepts_clean_code() {
    let findings = panic_free::check_file("r1_clean.rs", R1_CLEAN);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r2_catches_every_seeded_violation() {
    let findings = zero_alloc::check_file("r2_violations.rs", R2_VIOLATIONS);
    assert_eq!(findings.len(), seeded(R2_VIOLATIONS), "{findings:#?}");
}

#[test]
fn r2_accepts_clean_code() {
    let findings = zero_alloc::check_file("r2_clean.rs", R2_CLEAN);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r3_catches_every_seeded_violation() {
    let findings = durability::check_file("r3_violations.rs", R3_VIOLATIONS);
    assert_eq!(findings.len(), seeded(R3_VIOLATIONS), "{findings:#?}");
    assert!(findings.iter().all(|f| f.token == "rename"));
}

#[test]
fn r3_accepts_clean_code() {
    let findings = durability::check_file("r3_clean.rs", R3_CLEAN);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r4_clean_doc_produces_no_findings() {
    let src = protocol::extract_source(&[("r4_source.rs", R4_SOURCE)]);
    assert_eq!(src.magics.len(), 2, "{src:#?}");
    assert_eq!(src.opcodes.len(), 3);
    assert_eq!(src.err_kinds_dec.len(), 2);
    assert_eq!(src.spec_tags.len(), 2);
    let doc = protocol::extract_doc(R4_DOC_CLEAN);
    let findings = protocol::compare(&src, &doc);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r4_reports_every_seeded_drift() {
    let src = protocol::extract_source(&[("r4_source.rs", R4_SOURCE)]);
    let doc = protocol::extract_doc(R4_DOC_DRIFTED);
    let findings = protocol::compare(&src, &doc);
    let has = |token: &str, needle: &str| {
        findings.iter().any(|f| f.token == token && f.message.contains(needle))
    };
    assert!(has("version", "PIRW"), "version drift missed: {findings:#?}");
    assert!(has("opcode", "OBSERVE"), "opcode value drift missed: {findings:#?}");
    assert!(has("opcode", "GHOST"), "doc-only opcode missed: {findings:#?}");
    assert!(has("spectag", "Trivial"), "missing spec tag missed: {findings:#?}");
    assert!(has("errkind", "engine stopped"), "error rewording missed: {findings:#?}");
}

#[test]
fn r6_catches_every_seeded_violation() {
    let findings = storage_layer::check_file("r6_violations.rs", R6_VIOLATIONS);
    assert_eq!(findings.len(), seeded(R6_VIOLATIONS), "{findings:#?}");
    // The marker comments name the expected owner token for each line.
    for f in &findings {
        let line = R6_VIOLATIONS.lines().nth(f.line as usize - 1).unwrap_or("");
        assert!(
            line.contains(&format!("VIOLATION {}", f.token)),
            "finding {f} does not match its marker: {line}"
        );
    }
}

#[test]
fn r6_accepts_storage_trait_code() {
    let findings = storage_layer::check_file("r6_clean.rs", R6_CLEAN);
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn r5_catches_and_accepts() {
    let clean = "//! Docs.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";
    assert!(hygiene::check_crate_root("lib.rs", clean, hygiene::DocPolicy::Deny).is_empty());
    let bare = "//! Docs only.\npub fn f() {}\n";
    let findings = hygiene::check_crate_root("lib.rs", bare, hygiene::DocPolicy::Deny);
    assert_eq!(findings.len(), 2, "{findings:#?}");
}
