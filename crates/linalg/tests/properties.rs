//! Property-based tests for the linear-algebra substrate.

use pir_linalg::{vector, CholeskyFactor, Matrix};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

proptest! {
    #[test]
    fn cauchy_schwarz(a in vec_strategy(8), b in vec_strategy(8)) {
        let lhs = vector::dot(&a, &b).abs();
        let rhs = vector::norm2(&a) * vector::norm2(&b);
        prop_assert!(lhs <= rhs + 1e-6 * rhs.max(1.0));
    }

    #[test]
    fn triangle_inequality(a in vec_strategy(8), b in vec_strategy(8)) {
        let s = vector::add(&a, &b);
        prop_assert!(vector::norm2(&s) <= vector::norm2(&a) + vector::norm2(&b) + 1e-9);
        prop_assert!(vector::norm1(&s) <= vector::norm1(&a) + vector::norm1(&b) + 1e-9);
    }

    #[test]
    fn norm_ordering(v in vec_strategy(12)) {
        // ‖v‖∞ ≤ ‖v‖₂ ≤ ‖v‖₁ for every vector.
        let (li, l2, l1) = (vector::norm_inf(&v), vector::norm2(&v), vector::norm1(&v));
        prop_assert!(li <= l2 + 1e-9);
        prop_assert!(l2 <= l1 + 1e-9);
    }

    #[test]
    fn matvec_linearity(
        data in vec_strategy(12),
        x in vec_strategy(4),
        y in vec_strategy(4),
        alpha in -10.0f64..10.0,
    ) {
        let m = Matrix::from_vec(3, 4, data).unwrap();
        // M(alpha x + y) == alpha Mx + My
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        let lhs = m.matvec(&combo).unwrap();
        let mx = m.matvec(&x).unwrap();
        let my = m.matvec(&y).unwrap();
        for i in 0..3 {
            let rhs = alpha * mx[i] + my[i];
            prop_assert!((lhs[i] - rhs).abs() < 1e-6 * rhs.abs().max(1.0));
        }
    }

    #[test]
    fn matvec_t_is_transpose_matvec(data in vec_strategy(12), y in vec_strategy(3)) {
        let m = Matrix::from_vec(3, 4, data).unwrap();
        let a = m.matvec_t(&y).unwrap();
        let b = m.transpose().matvec(&y).unwrap();
        for (x, z) in a.iter().zip(&b) {
            prop_assert!((x - z).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_solve_roundtrip(rows in vec_strategy(12), x in vec_strategy(3)) {
        // Build SPD as B Bᵀ + I.
        let b = Matrix::from_vec(3, 4, rows).unwrap();
        let mut a = b.gram_rows();
        for i in 0..3 {
            let v = a.get(i, i) + 1.0;
            a.set(i, i, v);
        }
        let rhs = a.matvec(&x).unwrap();
        let sol = CholeskyFactor::factor(&a, 0.0).unwrap().solve(&rhs).unwrap();
        prop_assert!(vector::distance(&sol, &x) < 1e-5 * vector::norm2(&x).max(1.0));
    }

    #[test]
    fn spectral_norm_dominates_matvec_gain(data in vec_strategy(12), x in vec_strategy(4)) {
        let m = Matrix::from_vec(3, 4, data).unwrap();
        let s = m.spectral_norm(1e-9, 50_000).unwrap();
        let gain = vector::norm2(&m.matvec(&x).unwrap());
        prop_assert!(gain <= s * vector::norm2(&x) + 1e-6 * s.max(1.0));
    }

    #[test]
    fn hard_threshold_is_best_k_term_l2_approximation(v in vec_strategy(10), k in 0usize..10) {
        let t = vector::hard_threshold(&v, k);
        prop_assert!(vector::nnz(&t) <= k);
        // Residual of top-k selection never exceeds that of prefix selection.
        let mut prefix = vec![0.0; v.len()];
        prefix[..k].copy_from_slice(&v[..k]);
        prop_assert!(vector::distance(&t, &v) <= vector::distance(&prefix, &v) + 1e-9);
    }

    #[test]
    fn outer_matvec_identity(u in vec_strategy(5), v in vec_strategy(4), x in vec_strategy(4)) {
        // (u vᵀ) x = ⟨v, x⟩ u
        let m = Matrix::outer(&u, &v);
        let lhs = m.matvec(&x).unwrap();
        let c = vector::dot(&v, &x);
        for (l, ui) in lhs.iter().zip(&u) {
            prop_assert!((l - c * ui).abs() < 1e-6 * (c * ui).abs().max(1.0));
        }
    }
}
