//! Bit-identity pins for the blocked kernels in `pir_linalg::kernels`.
//!
//! Each blocked kernel must produce **bit-for-bit** the same output as
//! its scalar reference (`*_ref`) for every shape — including the 1–3
//! element row/column tails where the blocked path falls back to the
//! scalar one. This is what lets the `Matrix` methods switch to the
//! blocked forms without perturbing any released estimator sequence:
//! the blocking reuses loads but never reassociates floating-point adds.
//! Comparisons use `to_bits` equality, not a tolerance.

use pir_linalg::{kernels, vector};
use proptest::prelude::*;

fn buf(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, len)
}

/// Maximum rows/cols swept; data buffers are drawn at the max size and
/// sliced down so the shapes can vary inside one proptest case.
const MAX_R: usize = 19;
const MAX_C: usize = 13;

proptest! {
    /// Covers both the production sweep and the tiled variant: either
    /// may back `Matrix::matvec` depending on target retuning, so both
    /// are pinned to the reference.
    #[test]
    fn matvec_forms_are_bit_identical_to_reference(
        a in buf(MAX_R * MAX_C),
        x in buf(MAX_C),
        rows in 1usize..MAX_R,
        cols in 1usize..MAX_C,
    ) {
        let a = &a[..rows * cols];
        let x = &x[..cols];
        let mut got = vec![f64::NAN; rows];
        let mut got_blocked = vec![f64::NAN; rows];
        let mut want = vec![0.0; rows];
        kernels::matvec(cols, a, x, &mut got);
        kernels::matvec_blocked(cols, a, x, &mut got_blocked);
        kernels::matvec_ref(cols, a, x, &mut want);
        for ((g, gb), w) in got.iter().zip(&got_blocked).zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
            prop_assert_eq!(gb.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn matvec_t_blocked_is_bit_identical_to_reference(
        a in buf(MAX_R * MAX_C),
        y in buf(MAX_R),
        rows in 1usize..MAX_R,
        cols in 1usize..MAX_C,
    ) {
        let a = &a[..rows * cols];
        let y = &y[..rows];
        let mut got = vec![f64::NAN; cols];
        let mut want = vec![0.0; cols];
        kernels::matvec_t(cols, a, y, &mut got);
        kernels::matvec_t_ref(cols, a, y, &mut want);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn set_outer_blocked_is_bit_identical_to_reference(
        u in buf(MAX_R),
        v in buf(MAX_C),
        rows in 1usize..MAX_R,
        cols in 1usize..MAX_C,
    ) {
        let u = &u[..rows];
        let v = &v[..cols];
        let mut got = vec![f64::NAN; rows * cols];
        let mut want = vec![7.0; rows * cols];
        kernels::set_outer(u, v, &mut got);
        kernels::set_outer_ref(u, v, &mut want);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn add_scaled_outer_blocked_is_bit_identical_to_reference(
        init in buf(MAX_R * MAX_C),
        u in buf(MAX_R),
        v in buf(MAX_C),
        alpha in -10.0f64..10.0,
        rows in 1usize..MAX_R,
        cols in 1usize..MAX_C,
    ) {
        let u = &u[..rows];
        let v = &v[..cols];
        let mut got = init[..rows * cols].to_vec();
        let mut want = got.clone();
        kernels::add_scaled_outer(alpha, u, v, &mut got);
        kernels::add_scaled_outer_ref(alpha, u, v, &mut want);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn axpy_n_fused_is_bit_identical_to_sequential_axpys(
        data in buf(6 * MAX_C),
        y0 in buf(MAX_C),
        alpha in -4.0f64..4.0,
        n_src in 0usize..6,
        len in 1usize..MAX_C,
    ) {
        let sources: Vec<&[f64]> =
            (0..n_src).map(|k| &data[k * MAX_C..k * MAX_C + len]).collect();
        let mut got = y0[..len].to_vec();
        let mut want = got.clone();
        vector::axpy_n(alpha, &sources, &mut got);
        vector::axpy_n_ref(alpha, &sources, &mut want);
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
