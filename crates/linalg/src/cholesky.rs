//! Cholesky factorization and symmetric positive-definite solves.
//!
//! Used by the lifting step of Algorithm 3 (projection onto the affine
//! subspace `{θ : Φθ = ϑ}` requires solving `(ΦΦᵀ) z = r`, an `m × m`
//! SPD system) and by exact ridge-regression reference solvers.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// `n × n` lower-triangular factor (upper part is zero).
    l: Matrix,
}

impl CholeskyFactor {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's contract. `jitter ≥ 0` is added to the diagonal before
    /// factoring (callers solving nearly-singular Gram systems pass a small
    /// ridge, e.g. `1e-10`).
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is `≤ 0`;
    /// [`LinalgError::DimensionMismatch`] if `a` is not square.
    pub fn factor(a: &Matrix, jitter: f64) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                expected: a.rows(),
                found: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Dimension `n` of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward then backward substitution.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                expected: n,
                found: b.len(),
            });
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for (k, yk) in y.iter().enumerate().take(i) {
                s -= self.l.get(i, k) * yk;
            }
            y[i] = s / self.l.get(i, i);
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (k, xk) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.l.get(k, i) * xk;
            }
            x[i] = s / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Log-determinant of `A` (`2 Σ log Lᵢᵢ`); useful for diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }
}

/// Solve the ridge system `(AᵀA + λI) x = Aᵀ b` for tall `A` — the exact
/// (unconstrained) regularized least-squares estimator used as a reference
/// by tests and experiments.
///
/// # Errors
/// Propagates shape errors and [`LinalgError::NotPositiveDefinite`] when
/// `λ = 0` and `AᵀA` is singular.
pub fn ridge_solve(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "ridge_solve",
            expected: a.rows(),
            found: b.len(),
        });
    }
    let at = a.transpose();
    let mut gram = at.matmul(a)?;
    for i in 0..gram.rows() {
        let v = gram.get(i, i) + lambda;
        gram.set(i, i, v);
    }
    let rhs = a.matvec_t(b)?;
    CholeskyFactor::factor(&gram, 0.0)?.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn spd3() -> Matrix {
        // A = B Bᵀ + I for a fixed B, guaranteed SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[0.5, -1.0], &[2.0, 0.0]]).unwrap();
        let mut a = b.gram_rows();
        for i in 0..3 {
            let v = a.get(i, i) + 1.0;
            a.set(i, i, v);
        }
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let f = CholeskyFactor::factor(&a, 0.0).unwrap();
        let rec = f.l().matmul(&f.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec.get(i, j) - a.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = CholeskyFactor::factor(&a, 0.0).unwrap().solve(&b).unwrap();
        assert!(vector::distance(&x, &x_true) < 1e-9);
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            CholeskyFactor::factor(&a, 0.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        let a = Matrix::outer(&[1.0, 1.0], &[1.0, 1.0]); // rank 1, PSD not PD
        assert!(CholeskyFactor::factor(&a, 0.0).is_err());
        assert!(CholeskyFactor::factor(&a, 1e-8).is_ok());
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            CholeskyFactor::factor(&a, 0.0),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let f = CholeskyFactor::factor(&spd3(), 0.0).unwrap();
        assert!(f.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let f = CholeskyFactor::factor(&Matrix::identity(4), 0.0).unwrap();
        assert!(f.log_det().abs() < 1e-12);
    }

    #[test]
    fn ridge_solve_matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [1.0, 2.0, 3.0]; // exactly linear: intercept 1, slope 1
        let x = ridge_solve(&a, &b, 0.0).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
        // Heavy ridge shrinks toward zero.
        let xr = ridge_solve(&a, &b, 1e6).unwrap();
        assert!(vector::norm2(&xr) < 1e-3);
    }
}
