//! # pir-linalg
//!
//! Minimal, dependency-free dense linear algebra substrate for the
//! `private-incremental-regression` workspace.
//!
//! The paper's mechanisms only need a small surface: vector arithmetic,
//! row-major dense matrices with matrix–vector products and rank-1 updates
//! (for maintaining `Σ xᵢxᵢᵀ`), a Cholesky factorization (for the affine
//! projection inside the lifting step of Algorithm 3), and a power-iteration
//! spectral-norm estimate (FISTA step sizes). Everything is `f64`; all entry
//! points validate dimensions and finiteness and return [`LinalgError`]
//! rather than panicking on user input.
//!
//! No external BLAS is used: streams in this workspace have `d ≲ 10⁴` and
//! `m ≲ 10³`, where straightforward loops (which LLVM auto-vectorizes) are
//! adequate and keep the library fully self-contained.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cholesky;
mod error;
pub mod kernels;
mod matrix;
pub mod vector;

pub use cholesky::{ridge_solve, CholeskyFactor};
pub use error::LinalgError;
pub use matrix::{Matrix, PowerIterScratch};

/// Convenient result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
