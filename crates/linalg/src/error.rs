use std::fmt;

/// Errors produced by `pir-linalg` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (`expected` vs `found`, in elements).
    DimensionMismatch {
        /// Human-readable operation name, e.g. `"matvec"`.
        op: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A matrix expected to be (strictly) positive definite was not.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// An input contained `NaN` or `±∞`.
    NonFinite {
        /// Human-readable operation name.
        op: &'static str,
    },
    /// An iterative routine failed to converge within its iteration budget.
    DidNotConverge {
        /// Human-readable operation name.
        op: &'static str,
        /// Iterations performed before giving up.
        iters: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, expected, found } => {
                write!(f, "{op}: dimension mismatch (expected {expected}, found {found})")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::NonFinite { op } => write!(f, "{op}: non-finite input"),
            LinalgError::DidNotConverge { op, iters } => {
                write!(f, "{op}: did not converge after {iters} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
