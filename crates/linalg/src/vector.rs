//! Free functions over `&[f64]` vectors.
//!
//! Vectors are plain slices so callers can keep data in whatever container
//! they like; every function asserts matching lengths via debug assertions
//! (hot paths) or returns [`LinalgError`](crate::LinalgError) (checked
//! entry points are on [`Matrix`](crate::Matrix)).

/// Dot product `⟨a, b⟩`.
///
/// The inner loop is four-lane chunked (four independent accumulators,
/// scalar tail) so the autovectorizer can emit SIMD without intrinsics —
/// a strict left-to-right fold would serialize on one FP add chain.
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut lanes = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        lanes[0] += xa[0] * xb[0];
        lanes[1] += xa[1] * xb[1];
        lanes[2] += xa[2] * xb[2];
        lanes[3] += xa[3] * xb[3];
    }
    let mut s = (lanes[0] + lanes[2]) + (lanes[1] + lanes[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// Euclidean (L2) norm `‖v‖₂`.
#[inline]
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// Squared Euclidean norm `‖v‖₂²`.
#[inline]
pub fn norm2_sq(v: &[f64]) -> f64 {
    dot(v, v)
}

/// L1 norm `‖v‖₁ = Σ|vᵢ|`.
#[inline]
pub fn norm1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// L∞ norm `max |vᵢ|` (0 for the empty vector).
#[inline]
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// General Lp norm for `p ≥ 1`.
#[inline]
pub fn norm_p(v: &[f64], p: f64) -> f64 {
    debug_assert!(p >= 1.0, "norm_p requires p >= 1");
    v.iter().map(|x| x.abs().powf(p)).sum::<f64>().powf(1.0 / p)
}

/// Euclidean distance `‖a − b‖₂`.
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// `y ← y + alpha·x` (BLAS `axpy`).
///
/// Four-lane chunked like [`dot`]; the update is elementwise, so the
/// chunking changes nothing about the results — only the instruction mix.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut cx = x.chunks_exact(4);
    let mut cy = y.chunks_exact_mut(4);
    for (xc, yc) in cx.by_ref().zip(cy.by_ref()) {
        yc[0] += alpha * xc[0];
        yc[1] += alpha * xc[1];
        yc[2] += alpha * xc[2];
        yc[3] += alpha * xc[3];
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// Fused multi-vector `axpy`: `y ← y + alpha·Σₖ xₖ`, in one pass over `y`.
///
/// Bit-identical to `for x in xs { axpy(alpha, x, y) }` — per element the
/// sources are folded into `y` in slice order, which is exactly the
/// summation order of the sequential calls — but it reads and writes `y`
/// once instead of `xs.len()` times. This is the tree-walk kernel: the
/// mechanism retires all completed levels from its running sum in a
/// single sweep (see `TreeMechanism::update_into`).
///
/// Generic over the source row type (`&[f64]`, `Vec<f64>`, …) so a
/// caller holding `Vec<Vec<f64>>` rows — the tree's level buffers —
/// can pass a subrange directly instead of materializing a `&[&[f64]]`
/// table per call (building a fixed-size table every update measurably
/// dominated the tree walk at small `d`).
///
/// # Panics
/// Panics in debug builds if any source length differs from `y`.
#[inline]
pub fn axpy_n<S: AsRef<[f64]>>(alpha: f64, xs: &[S], y: &mut [f64]) {
    match xs {
        [] => {}
        [x] => axpy(alpha, x.as_ref(), y),
        [x0, x1] => axpy_2(alpha, x0.as_ref(), x1.as_ref(), y),
        [x0, x1, x2] => axpy_3(alpha, x0.as_ref(), x1.as_ref(), x2.as_ref(), y),
        _ => {
            // Fold three lanes at a time (then the tail) so every fused
            // pass is a monomorphized, bounds-check-free zip; the
            // per-element accumulation order is exactly the sequential
            // [`axpy`] order, keeping the result bit-identical to
            // [`axpy_n_ref`].
            let (head, tail) = xs.split_at(3);
            axpy_3(alpha, head[0].as_ref(), head[1].as_ref(), head[2].as_ref(), y);
            axpy_n(alpha, tail, y);
        }
    }
}

/// Two-lane fused fold `y ← (y + alpha·x0) + alpha·x1`, one pass over
/// `y` with the per-element order of two sequential [`axpy`] calls.
fn axpy_2(alpha: f64, x0: &[f64], x1: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x0.len(), y.len(), "axpy_n: length mismatch");
    debug_assert_eq!(x1.len(), y.len(), "axpy_n: length mismatch");
    for ((yi, &a), &b) in y.iter_mut().zip(x0).zip(x1) {
        let mut acc = *yi;
        acc += alpha * a;
        acc += alpha * b;
        *yi = acc;
    }
}

/// Three-lane fused fold, one pass over `y` with the per-element order
/// of three sequential [`axpy`] calls.
fn axpy_3(alpha: f64, x0: &[f64], x1: &[f64], x2: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x0.len(), y.len(), "axpy_n: length mismatch");
    debug_assert_eq!(x1.len(), y.len(), "axpy_n: length mismatch");
    debug_assert_eq!(x2.len(), y.len(), "axpy_n: length mismatch");
    for (((yi, &a), &b), &c) in y.iter_mut().zip(x0).zip(x1).zip(x2) {
        let mut acc = *yi;
        acc += alpha * a;
        acc += alpha * b;
        acc += alpha * c;
        *yi = acc;
    }
}

/// Scalar reference for [`axpy_n`]: the sequential-call definition it is
/// pinned against (`tests/` proptests drive both).
pub fn axpy_n_ref<S: AsRef<[f64]>>(alpha: f64, xs: &[S], y: &mut [f64]) {
    for x in xs {
        axpy(alpha, x.as_ref(), y);
    }
}

/// Scaled copy `out ← alpha·x` — the buffer-reuse form of [`scale`],
/// chunked like [`axpy`].
///
/// # Panics
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn scaled_copy_into(alpha: f64, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(x.len(), out.len(), "scaled_copy_into: length mismatch");
    let mut cx = x.chunks_exact(4);
    let mut co = out.chunks_exact_mut(4);
    for (xc, oc) in cx.by_ref().zip(co.by_ref()) {
        oc[0] = alpha * xc[0];
        oc[1] = alpha * xc[1];
        oc[2] = alpha * xc[2];
        oc[3] = alpha * xc[3];
    }
    for (oi, xi) in co.into_remainder().iter_mut().zip(cx.remainder()) {
        *oi = alpha * xi;
    }
}

/// Elementwise sum `a + b` as a new vector.
#[inline]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a − b` as a new vector.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// In-place scaling `v ← alpha·v`.
#[inline]
pub fn scale_mut(v: &mut [f64], alpha: f64) {
    for x in v {
        *x *= alpha;
    }
}

/// Scaled copy `alpha·v` as a new vector.
#[inline]
pub fn scale(v: &[f64], alpha: f64) -> Vec<f64> {
    v.iter().map(|x| alpha * x).collect()
}

/// Unit-normalized copy of `v`, or `None` when `‖v‖₂ = 0` or is non-finite.
#[inline]
pub fn normalize(v: &[f64]) -> Option<Vec<f64>> {
    let n = norm2(v);
    if n == 0.0 || !n.is_finite() {
        None
    } else {
        Some(scale(v, 1.0 / n))
    }
}

/// `true` iff every entry is finite (no NaN / ±∞).
#[inline]
pub fn is_finite(v: &[f64]) -> bool {
    v.iter().all(|x| x.is_finite())
}

/// All-zero vector of length `d`.
#[inline]
pub fn zeros(d: usize) -> Vec<f64> {
    vec![0.0; d]
}

/// Standard basis vector `e_i` in `R^d`.
///
/// # Panics
/// Panics if `i >= d`.
pub fn basis(d: usize, i: usize) -> Vec<f64> {
    assert!(i < d, "basis: index {i} out of range for dimension {d}");
    let mut v = vec![0.0; d];
    v[i] = 1.0;
    v
}

/// Index of the entry with maximum absolute value (`None` for empty input).
pub fn argmax_abs(v: &[f64]) -> Option<usize> {
    v.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.abs().partial_cmp(&b.abs()).expect("NaN in argmax_abs"))
        .map(|(i, _)| i)
}

/// Index of the entry with maximum value (`None` for empty input).
pub fn argmax(v: &[f64]) -> Option<usize> {
    v.iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN in argmax"))
        .map(|(i, _)| i)
}

/// Number of non-zero entries (exact zero comparison; inputs are synthetic).
#[inline]
pub fn nnz(v: &[f64]) -> usize {
    v.iter().filter(|x| **x != 0.0).count()
}

/// Keep the `k` largest-magnitude entries, zeroing the rest (hard threshold).
///
/// Used for the k-sparse input domain of §5.2; this is the (non-convex)
/// Euclidean "projection" onto the set of k-sparse vectors.
pub fn hard_threshold(v: &[f64], k: usize) -> Vec<f64> {
    if k >= v.len() {
        return v.to_vec();
    }
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_unstable_by(|&i, &j| {
        v[j].abs().partial_cmp(&v[i].abs()).expect("NaN in hard_threshold")
    });
    let mut out = vec![0.0; v.len()];
    for &i in idx.iter().take(k) {
        out[i] = v[i];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms_agree_on_small_vectors() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
        assert!((norm_p(&a, 2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn norm_p_interpolates_between_l1_and_l2() {
        let v = [1.0, -2.0, 0.5];
        let p15 = norm_p(&v, 1.5);
        assert!(p15 <= norm1(&v) + 1e-12);
        assert!(p15 >= norm2(&v) - 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 21.0]);
    }

    #[test]
    fn chunked_kernels_match_naive_at_every_tail_length() {
        // The 4-lane chunking must agree with the scalar definitions for
        // lengths that exercise 0–3 element tails.
        for n in 0..13usize {
            let a: Vec<f64> = (0..n).map(|i| 0.3 * i as f64 - 1.0).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.7 - 0.2 * i as f64).collect();
            let naive_dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive_dot).abs() < 1e-12 * (1.0 + naive_dot.abs()), "n={n}");

            let mut y = b.clone();
            axpy(0.25, &a, &mut y);
            for i in 0..n {
                assert_eq!(y[i], b[i] + 0.25 * a[i], "axpy n={n} i={i}");
            }

            let mut out = vec![0.0; n];
            scaled_copy_into(-1.5, &a, &mut out);
            for i in 0..n {
                assert_eq!(out[i], -1.5 * a[i], "scaled_copy n={n} i={i}");
            }
        }
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = [1.0, -2.0, 3.0];
        let b = [0.5, 0.5, 0.5];
        let s = add(&a, &b);
        let back = sub(&s, &b);
        for (x, y) in back.iter().zip(&a) {
            assert!((x - y).abs() < 1e-15);
        }
        assert_eq!(scale(&a, 2.0), vec![2.0, -4.0, 6.0]);
    }

    #[test]
    fn normalize_unit_norm_and_zero_rejection() {
        let v = [3.0, 4.0];
        let u = normalize(&v).unwrap();
        assert!((norm2(&u) - 1.0).abs() < 1e-12);
        assert!(normalize(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn basis_vectors_are_orthonormal() {
        let e0 = basis(3, 0);
        let e1 = basis(3, 1);
        assert_eq!(dot(&e0, &e1), 0.0);
        assert_eq!(norm2(&e0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_rejects_out_of_range_index() {
        let _ = basis(2, 5);
    }

    #[test]
    fn argmax_variants() {
        let v = [1.0, -5.0, 3.0];
        assert_eq!(argmax_abs(&v), Some(1));
        assert_eq!(argmax(&v), Some(2));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn hard_threshold_keeps_top_k_magnitudes() {
        let v = [0.1, -3.0, 2.0, 0.0, -0.5];
        let t = hard_threshold(&v, 2);
        assert_eq!(t, vec![0.0, -3.0, 2.0, 0.0, 0.0]);
        assert_eq!(nnz(&t), 2);
        // k >= len is the identity.
        assert_eq!(hard_threshold(&v, 10), v.to_vec());
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(is_finite(&[1.0, 2.0]));
        assert!(!is_finite(&[1.0, f64::NAN]));
        assert!(!is_finite(&[f64::INFINITY]));
    }

    #[test]
    fn distance_matches_norm_of_difference() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert!((distance(&a, &b) - 5.0).abs() < 1e-12);
    }
}
