//! Row-major dense matrices.

use crate::error::LinalgError;
use crate::kernels;
use crate::vector;
use crate::Result;

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// This is the workhorse for the second-moment statistics `Σ xᵢxᵢᵀ`
/// maintained by the tree mechanism and for the projection matrices `Φ` of
/// Algorithm 3. Entries are stored contiguously; `self.data[r * cols + c]`
/// holds entry `(r, c)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix `I_d`.
    pub fn identity(d: usize) -> Self {
        let mut m = Matrix::zeros(d, d);
        for i in 0..d {
            m.data[i * d + i] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`;
    /// [`LinalgError::NonFinite`] if any entry is NaN/∞.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_vec",
                expected: rows * cols,
                found: data.len(),
            });
        }
        if !vector::is_finite(&data) {
            return Err(LinalgError::NonFinite { op: "Matrix::from_vec" });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from a flat row-major buffer of *trusted* data, skipping the
    /// `O(rows·cols)` finiteness sweep of [`Matrix::from_vec`] (it still
    /// runs as a `debug_assert`). For internal hot paths where every entry
    /// was already validated on ingest — e.g. mechanism statistics
    /// assembled from stream items that passed `DataPoint::validate` —
    /// re-scanning on every step only burns the cycles the validation was
    /// supposed to protect. Public entry points must keep using the
    /// checked constructor.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `data.len() != rows * cols`
    /// (shape errors are programming bugs worth catching in release too).
    pub fn from_vec_trusted(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_vec_trusted",
                expected: rows * cols,
                found: data.len(),
            });
        }
        debug_assert!(
            vector::is_finite(&data),
            "Matrix::from_vec_trusted: non-finite entry in trusted data"
        );
        Ok(Matrix { rows, cols, data })
    }

    /// Overwrite the matrix contents from a flat row-major slice, reusing
    /// the allocation — the scratch-buffer counterpart of
    /// [`Matrix::from_vec_trusted`] (shape-checked, finiteness only as a
    /// `debug_assert`). The matrix shape is preserved.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `src.len() != rows * cols`.
    pub fn copy_from_slice_checked(&mut self, src: &[f64]) -> Result<()> {
        if src.len() != self.data.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::copy_from_slice_checked",
                expected: self.data.len(),
                found: src.len(),
            });
        }
        debug_assert!(
            vector::is_finite(src),
            "Matrix::copy_from_slice_checked: non-finite entry in trusted data"
        );
        self.data.copy_from_slice(src);
        Ok(())
    }

    /// Build from row slices (all rows must share a length).
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch {
                    op: "Matrix::from_rows",
                    expected: c,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Matrix::from_vec(r, c, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "Matrix::get out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set entry `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "Matrix::set out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major buffer (shape is preserved).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matvec`] writing into a caller-provided buffer — the
    /// allocation-free form the mechanism hot loops use. Value-for-value
    /// identical to the allocating method.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `x.len() != cols` or
    /// `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) -> Result<()> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                expected: self.cols,
                found: x.len(),
            });
        }
        if out.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec(out)",
                expected: self.rows,
                found: out.len(),
            });
        }
        kernels::matvec(self.cols, &self.data, x, out);
        Ok(())
    }

    /// Transposed matrix–vector product `Aᵀ y`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `y.len() != rows`.
    pub fn matvec_t(&self, y: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.cols];
        self.matvec_t_into(y, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matvec_t`] writing into a caller-provided buffer.
    /// Value-for-value identical to the allocating method.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `y.len() != rows` or
    /// `out.len() != cols`.
    pub fn matvec_t_into(&self, y: &[f64], out: &mut [f64]) -> Result<()> {
        if y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec_t",
                expected: self.rows,
                found: y.len(),
            });
        }
        if out.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec_t(out)",
                expected: self.cols,
                found: out.len(),
            });
        }
        kernels::matvec_t(self.cols, &self.data, y, out);
        Ok(())
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `self.cols != b.rows`.
    pub fn matmul(&self, b: &Matrix) -> Result<Matrix> {
        if self.cols != b.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                expected: self.cols,
                found: b.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, b.cols);
        // i-k-j loop order keeps the inner loop contiguous in both B and out.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b.data[k * b.cols..(k + 1) * b.cols];
                let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
                vector::axpy(aik, brow, orow);
            }
        }
        Ok(out)
    }

    /// Gram matrix `A Aᵀ` (`rows × rows`), exploiting symmetry.
    pub fn gram_rows(&self) -> Matrix {
        let n = self.rows;
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = vector::dot(self.row(i), self.row(j));
                g.data[i * n + j] = v;
                g.data[j * n + i] = v;
            }
        }
        g
    }

    /// Transpose copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Rank-1 update `A ← A + alpha·u vᵀ`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add_outer(&mut self, alpha: f64, u: &[f64], v: &[f64]) -> Result<()> {
        if u.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "add_outer(u)",
                expected: self.rows,
                found: u.len(),
            });
        }
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "add_outer(v)",
                expected: self.cols,
                found: v.len(),
            });
        }
        for (r, &ur) in u.iter().enumerate() {
            if ur == 0.0 {
                continue;
            }
            vector::axpy(alpha * ur, v, self.row_mut(r));
        }
        Ok(())
    }

    /// Outer product `u vᵀ` as a fresh matrix.
    pub fn outer(u: &[f64], v: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(u.len(), v.len());
        m.add_outer(1.0, u, v).expect("outer: shapes fixed by construction");
        m
    }

    /// Overwrite `self` with the outer product `u vᵀ`, reusing the
    /// allocation — the scratch-buffer form of [`Matrix::outer`] used by
    /// the batched mechanism paths, and value-for-value identical to it.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] if `self` is not
    /// `u.len() × v.len()`.
    pub fn set_outer(&mut self, u: &[f64], v: &[f64]) -> Result<()> {
        if u.len() != self.rows || v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "set_outer",
                expected: self.rows * self.cols,
                found: u.len() * v.len(),
            });
        }
        // Single overwrite pass (row r ← u_r·v) instead of zero-then-add:
        // half the memory traffic on the d² hot path of the mechanisms.
        kernels::set_outer(u, v, &mut self.data);
        Ok(())
    }

    /// Rank-1 update `A ← A + alpha·u vᵀ` through the register-blocked
    /// kernel — the unconditional counterpart of [`Matrix::add_outer`]
    /// for the mechanism hot paths. Unlike `add_outer` it does not skip
    /// zero rows of `u`: every entry receives the elementwise update
    /// `a_rc += (alpha·u_r)·v_c`, which is what the blocked kernel's
    /// reference pins bit-for-bit.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add_scaled_outer(&mut self, alpha: f64, u: &[f64], v: &[f64]) -> Result<()> {
        if u.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "add_scaled_outer(u)",
                expected: self.rows,
                found: u.len(),
            });
        }
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "add_scaled_outer(v)",
                expected: self.cols,
                found: v.len(),
            });
        }
        kernels::add_scaled_outer(alpha, u, v, &mut self.data);
        Ok(())
    }

    /// `A ← A + alpha·B`.
    ///
    /// # Errors
    /// [`LinalgError::DimensionMismatch`] on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, b: &Matrix) -> Result<()> {
        if self.rows != b.rows || self.cols != b.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "add_scaled",
                expected: self.rows * self.cols,
                found: b.rows * b.cols,
            });
        }
        vector::axpy(alpha, &b.data, &mut self.data);
        Ok(())
    }

    /// In-place scalar multiplication.
    pub fn scale_mut(&mut self, alpha: f64) {
        vector::scale_mut(&mut self.data, alpha);
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Trace (sum of diagonal entries); requires a square matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self.data[i * self.cols + i]).sum()
    }

    /// Symmetrize in place: `A ← (A + Aᵀ)/2`; requires a square matrix.
    ///
    /// Used after adding noise to `Σ xᵢxᵢᵀ` so the private second-moment
    /// estimate stays symmetric (the true statistic is).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetrize_mut(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let a = self.data[i * self.cols + j];
                let b = self.data[j * self.cols + i];
                let avg = 0.5 * (a + b);
                self.data[i * self.cols + j] = avg;
                self.data[j * self.cols + i] = avg;
            }
        }
    }

    /// Spectral norm (largest singular value) estimated by power iteration
    /// on `AᵀA`, accurate to relative tolerance `tol`.
    ///
    /// Deterministic: starts from the all-ones direction with a fallback
    /// re-seeding on degeneracy, so results are reproducible without an RNG.
    ///
    /// # Errors
    /// [`LinalgError::DidNotConverge`] if `max_iters` is exhausted before
    /// two successive estimates agree to `tol` (the best estimate so far is
    /// usually still usable; callers that can tolerate slack should pass a
    /// generous budget).
    pub fn spectral_norm(&self, tol: f64, max_iters: usize) -> Result<f64> {
        let mut scratch = PowerIterScratch::new(self.rows, self.cols);
        self.spectral_norm_with(tol, max_iters, &mut scratch)
    }

    /// [`Matrix::spectral_norm`] reusing caller-owned iteration buffers —
    /// the allocation-free form for per-step callers (the mechanisms
    /// estimate the smoothness of a fresh `d×d` quadratic every timestep).
    /// Value-for-value identical to the allocating method.
    ///
    /// # Errors
    /// As [`Matrix::spectral_norm`]; additionally
    /// [`LinalgError::DimensionMismatch`] if `scratch` was sized for a
    /// different shape.
    pub fn spectral_norm_with(
        &self,
        tol: f64,
        max_iters: usize,
        scratch: &mut PowerIterScratch,
    ) -> Result<f64> {
        if self.rows == 0 || self.cols == 0 {
            return Ok(0.0);
        }
        if scratch.av.len() != self.rows || scratch.v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "spectral_norm_with(scratch)",
                expected: self.rows + self.cols,
                found: scratch.av.len() + scratch.v.len(),
            });
        }
        let PowerIterScratch { v, av, atav } = scratch;
        v.iter_mut().for_each(|x| *x = 1.0_f64 / (self.cols as f64).sqrt());
        let mut prev = 0.0_f64;
        let mut null_hits = 0usize;
        for it in 0..max_iters {
            self.matvec_into(v, av)?;
            self.matvec_t_into(av, atav)?;
            let n = vector::norm2(atav);
            if n == 0.0 {
                // v is in the null space; re-seed with each basis direction
                // in turn. If they are all annihilated the matrix is zero.
                null_hits += 1;
                if null_hits > self.cols {
                    return Ok(0.0);
                }
                let k = it % self.cols;
                v.iter_mut().for_each(|x| *x = 0.0);
                v[k] = 1.0;
                continue;
            }
            let sigma = {
                // Rayleigh quotient: vᵀAᵀAv = ‖Av‖².
                vector::norm2(av)
            };
            vector::scaled_copy_into(1.0 / n, atav, v);
            if (sigma - prev).abs() <= tol * sigma.max(1e-300) {
                return Ok(sigma);
            }
            prev = sigma;
        }
        Err(LinalgError::DidNotConverge { op: "spectral_norm", iters: max_iters })
    }
}

/// Reusable buffers for [`Matrix::spectral_norm_with`]: the power-iteration
/// direction `v ∈ R^cols` and the products `Av ∈ R^rows`, `AᵀAv ∈ R^cols`.
#[derive(Debug, Clone)]
pub struct PowerIterScratch {
    v: Vec<f64>,
    av: Vec<f64>,
    atav: Vec<f64>,
}

impl PowerIterScratch {
    /// Buffers for power iteration on a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        PowerIterScratch { v: vec![0.0; cols], av: vec![0.0; rows], atav: vec![0.0; cols] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m.get(2, 1), 6.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_vec_validates_shape_and_finiteness() {
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Matrix::from_vec(1, 2, vec![1.0, f64::NAN]),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.matvec_t(&[1.0, 0.0, 1.0]).unwrap(), vec![6.0, 8.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_t(&[1.0]).is_err());
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let m = sample();
        let mut out3 = [9.0; 3];
        m.matvec_into(&[1.0, 1.0], &mut out3).unwrap();
        assert_eq!(out3.to_vec(), m.matvec(&[1.0, 1.0]).unwrap());
        let mut out2 = [9.0; 2];
        m.matvec_t_into(&[1.0, 0.0, 1.0], &mut out2).unwrap();
        assert_eq!(out2.to_vec(), m.matvec_t(&[1.0, 0.0, 1.0]).unwrap());
        // Wrong-size output buffers are rejected, inputs untouched.
        assert!(m.matvec_into(&[1.0, 1.0], &mut out2).is_err());
        assert!(m.matvec_t_into(&[1.0, 0.0, 1.0], &mut out3).is_err());
    }

    #[test]
    fn trusted_construction_checks_shape_only() {
        assert!(matches!(
            Matrix::from_vec_trusted(2, 2, vec![1.0; 3]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let m = Matrix::from_vec_trusted(1, 2, vec![1.0, 2.0]).unwrap();
        assert_eq!(m.as_slice(), &[1.0, 2.0]);
        let mut scratch = Matrix::zeros(2, 2);
        scratch.copy_from_slice_checked(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(scratch.get(1, 0), 3.0);
        assert!(scratch.copy_from_slice_checked(&[1.0]).is_err());
    }

    #[test]
    fn set_outer_matches_outer() {
        let u = [1.0, -2.0, 0.0];
        let v = [3.0, 4.0];
        let mut m = Matrix::from_rows(&[&[9.0, 9.0], &[9.0, 9.0], &[9.0, 9.0]]).unwrap();
        m.set_outer(&u, &v).unwrap();
        assert_eq!(m, Matrix::outer(&u, &v));
        assert!(m.set_outer(&u, &[1.0]).is_err());
    }

    #[test]
    fn spectral_norm_with_reused_scratch_matches() {
        let m = sample();
        let mut scratch = PowerIterScratch::new(3, 2);
        let direct = m.spectral_norm(1e-10, 10_000).unwrap();
        // Reuse the same scratch twice: results must be identical.
        let s1 = m.spectral_norm_with(1e-10, 10_000, &mut scratch).unwrap();
        let s2 = m.spectral_norm_with(1e-10, 10_000, &mut scratch).unwrap();
        assert_eq!(s1, direct);
        assert_eq!(s2, direct);
        // Shape-mismatched scratch is rejected.
        let mut bad = PowerIterScratch::new(2, 2);
        assert!(m.spectral_norm_with(1e-10, 100, &mut bad).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 3.0]]).unwrap();
        let ab = a.matmul(&b).unwrap();
        assert_eq!(ab.as_slice(), &[5.0, 6.0, 2.0, 3.0]);
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn outer_and_rank1_update() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(2.0, &[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 0), 0.0);
        let o = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(o.as_slice(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn gram_rows_is_symmetric_psd_diagonal() {
        let m = sample();
        let g = m.gram_rows();
        assert_eq!(g.get(0, 1), g.get(1, 0));
        for i in 0..3 {
            assert!(g.get(i, i) >= 0.0);
            assert!((g.get(i, i) - crate::vector::norm2_sq(m.row(i))).abs() < 1e-12);
        }
    }

    #[test]
    fn trace_and_identity() {
        let i3 = Matrix::identity(3);
        assert_eq!(i3.trace(), 3.0);
        assert_eq!(i3.matvec(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn symmetrize_averages_off_diagonals() {
        let mut m = Matrix::from_rows(&[&[1.0, 4.0], &[2.0, 1.0]]).unwrap();
        m.symmetrize_mut();
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn spectral_norm_of_diagonal_matrix() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -7.0]]).unwrap();
        let s = m.spectral_norm(1e-10, 10_000).unwrap();
        assert!((s - 7.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn spectral_norm_of_rank_one() {
        // ‖u vᵀ‖ = ‖u‖‖v‖.
        let m = Matrix::outer(&[1.0, 2.0, 2.0], &[3.0, 4.0]);
        let s = m.spectral_norm(1e-10, 10_000).unwrap();
        assert!((s - 15.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn spectral_norm_zero_matrix() {
        let m = Matrix::zeros(3, 3);
        assert_eq!(m.spectral_norm(1e-8, 100).unwrap(), 0.0);
    }

    #[test]
    fn add_scaled_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.add_scaled(3.0, &b).unwrap();
        a.scale_mut(0.5);
        assert_eq!(a.get(0, 0), 2.0);
        assert!(a.add_scaled(1.0, &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn frobenius_norm_matches_flat_l2() {
        let m = sample();
        let expect = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0 + 36.0).sqrt();
        assert!((m.frobenius_norm() - expect).abs() < 1e-12);
    }
}
