//! Blocked dense kernels for the mechanism hot paths.
//!
//! Every kernel here is a *flat-slice* primitive over row-major data, with
//! two implementations:
//!
//! - the production form (`matvec`, `matvec_t`, `set_outer`,
//!   `add_scaled_outer`) that [`Matrix`](crate::Matrix) methods and the
//!   mechanisms drive — row-blocked where blocking measures faster
//!   (`matvec_t`, the outer products below `OUTER_BLOCK_MAX_COLS`),
//!   the plain row sweep where it does not (`matvec`, whose tiled
//!   variant [`matvec_blocked`] is kept for the bench comparison);
//! - a scalar reference (`*_ref`) defining the semantics, which the
//!   proptest suite in `crates/linalg/tests/kernel_identity.rs` pins
//!   every other form against **bit-for-bit**.
//!
//! Bit-identity is a design constraint, not an accident: released
//! estimator sequences are reproducible across PRs only if the summation
//! order never changes. Each blocked kernel therefore keeps the exact
//! per-element operation order of its reference — row blocking reuses
//! *loads*, never reassociates *adds*:
//!
//! - `matvec`/`matvec_blocked` accumulate each output row in the same
//!   four lanes (and the same `(l0+l2)+(l1+l3)` reduction) as
//!   [`vector::dot`];
//! - `matvec_t` folds the rows of a block into the output in row order,
//!   matching the sequential per-row [`vector::axpy`] sweeps;
//! - the outer-product kernels are elementwise (one multiply per entry),
//!   so blocking cannot reorder anything.
//!
//! To add a kernel: write the `*_ref` form first, add the blocked form
//! that preserves its per-element operation order, extend
//! `kernel_identity.rs` with a proptest comparing the two with `to_bits`
//! equality (or a documented tolerance if reassociation is intentional),
//! and give it a row in `crates/bench/benches/kernels.rs`. See
//! `docs/ARCHITECTURE.md`, "The kernel layer".

use crate::vector;

/// Row width at which the outer-product kernels switch from the 4-row
/// block to the row-sequential sweep (at or above the threshold).
/// Interleaving four write streams wins while a block of rows stays
/// register/store-buffer friendly (measured ~20% at d ≤ 64) but
/// collapses once rows are wide enough that the streams thrash the
/// write-combining buffers (measured 2.6× *slower* at d = 128 on the
/// baseline x86-64 target). Both forms are elementwise, so the dispatch
/// cannot change results.
const OUTER_BLOCK_MAX_COLS: usize = 128;

/// `out ← A·x` for a row-major `out.len() × cols` matrix `a`: one
/// [`vector::dot`] sweep per row.
///
/// This *is* the reference form — deliberately. Row-blocking a
/// row-major `A·x` (see [`matvec_blocked`]) must broadcast each element
/// of `x` across the rows of the block, and the baseline x86-64 target
/// (SSE2; `movddup` is SSE3) has no cheap lane splat: the autovectorizer
/// falls back to scalar loads plus shuffles and the tiled form measures
/// ~1.7× *slower* than this sweep at every benchmarked shape. Contrast
/// [`matvec_t`], whose per-block broadcasts are loop-invariant and whose
/// blocked form therefore wins. `kernels_matvec` in
/// `crates/bench/benches/kernels.rs` tracks both so the choice can be
/// retuned if the deployment target ever grows wider vectors.
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn matvec(cols: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len() * cols, "matvec: matrix/out mismatch");
    debug_assert_eq!(x.len(), cols, "matvec: x mismatch");
    for (r, o) in out.iter_mut().enumerate() {
        *o = vector::dot(&a[r * cols..(r + 1) * cols], x);
    }
}

/// Row-pair tiled form of [`matvec`]: each 4-wide chunk of `x` is loaded
/// once per row pair instead of once per row, every row keeping its own
/// four accumulator lanes and the same `(l0+l2)+(l1+l3)` reduction as
/// [`vector::dot`] — bit-identical to [`matvec_ref`], and pinned so by
/// `kernel_identity.rs`.
///
/// **Measured slower than [`matvec`] on the current target** (no cheap
/// SSE2 lane broadcast — see the [`matvec`] docs); kept as the tuned
/// starting point for wider-vector targets, benchmarked alongside the
/// production sweep.
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn matvec_blocked(cols: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len() * cols, "matvec_blocked: matrix/out mismatch");
    debug_assert_eq!(x.len(), cols, "matvec_blocked: x mismatch");
    let full = cols / 4 * 4;
    let mut blocks = out.chunks_exact_mut(2);
    let mut r = 0usize;
    for ob in blocks.by_ref() {
        let r0 = &a[r * cols..(r + 1) * cols];
        let r1 = &a[(r + 1) * cols..(r + 2) * cols];
        // Flat lane arrays with a fully unrolled body, mirroring
        // [`vector::dot`]; chunks_exact gives the optimizer
        // constant-length slices, so the body compiles without bounds
        // checks.
        let mut l0 = [0.0f64; 4];
        let mut l1 = [0.0f64; 4];
        let cx = x[..full].chunks_exact(4);
        for (j, xc) in cx.enumerate() {
            let b = 4 * j;
            let k0: &[f64; 4] = r0[b..b + 4].try_into().expect("chunk is 4 wide");
            let k1: &[f64; 4] = r1[b..b + 4].try_into().expect("chunk is 4 wide");
            l0[0] += k0[0] * xc[0];
            l0[1] += k0[1] * xc[1];
            l0[2] += k0[2] * xc[2];
            l0[3] += k0[3] * xc[3];
            l1[0] += k1[0] * xc[0];
            l1[1] += k1[1] * xc[1];
            l1[2] += k1[2] * xc[2];
            l1[3] += k1[3] * xc[3];
        }
        for (k, o) in ob.iter_mut().enumerate() {
            let l = if k == 0 { l0 } else { l1 };
            let mut s = (l[0] + l[2]) + (l[1] + l[3]);
            let rk = if k == 0 { r0 } else { r1 };
            for jj in full..cols {
                s += rk[jj] * x[jj];
            }
            *o = s;
        }
        r += 2;
    }
    for o in blocks.into_remainder() {
        *o = vector::dot(&a[r * cols..(r + 1) * cols], x);
        r += 1;
    }
}

/// Scalar reference for [`matvec`]: one [`vector::dot`] per row.
pub fn matvec_ref(cols: usize, a: &[f64], x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), out.len() * cols, "matvec_ref: matrix/out mismatch");
    debug_assert_eq!(x.len(), cols, "matvec_ref: x mismatch");
    for (r, o) in out.iter_mut().enumerate() {
        *o = vector::dot(&a[r * cols..(r + 1) * cols], x);
    }
}

/// `out ← Aᵀ·y` for a row-major `y.len() × out.len()` matrix `a`.
///
/// Rows are folded into `out` four at a time — one read-modify-write pass
/// over `out` per row block instead of per row — with the per-element
/// fold in row order, bit-identical to [`matvec_t_ref`].
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn matvec_t(cols: usize, a: &[f64], y: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), y.len() * cols, "matvec_t: matrix/y mismatch");
    debug_assert_eq!(out.len(), cols, "matvec_t: out mismatch");
    out.iter_mut().for_each(|o| *o = 0.0);
    let mut blocks = y.chunks_exact(4);
    let mut r = 0usize;
    for yb in blocks.by_ref() {
        let rb = r;
        let row = move |k: usize| &a[(rb + k) * cols..(rb + k + 1) * cols];
        let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
        let (y0, y1, y2, y3) = (yb[0], yb[1], yb[2], yb[3]);
        for ((((o, &e0), &e1), &e2), &e3) in out.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
            let mut acc = *o;
            acc += y0 * e0;
            acc += y1 * e1;
            acc += y2 * e2;
            acc += y3 * e3;
            *o = acc;
        }
        r += 4;
    }
    for &yr in blocks.remainder() {
        vector::axpy(yr, &a[r * cols..(r + 1) * cols], out);
        r += 1;
    }
}

/// Scalar reference for [`matvec_t`]: zero then one [`vector::axpy`]
/// sweep per row.
pub fn matvec_t_ref(cols: usize, a: &[f64], y: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), y.len() * cols, "matvec_t_ref: matrix/y mismatch");
    debug_assert_eq!(out.len(), cols, "matvec_t_ref: out mismatch");
    out.iter_mut().for_each(|o| *o = 0.0);
    for (r, &yr) in y.iter().enumerate() {
        vector::axpy(yr, &a[r * cols..(r + 1) * cols], out);
    }
}

/// `out ← u·vᵀ` (row-major `u.len() × v.len()`), overwriting `out`.
///
/// Four rows per block so each chunk of `v` is reused from registers
/// across the block, falling back to the row-sequential sweep for rows
/// at or beyond `OUTER_BLOCK_MAX_COLS`. One multiply per entry —
/// elementwise, so trivially bit-identical to [`set_outer_ref`].
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn set_outer(u: &[f64], v: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), u.len() * v.len(), "set_outer: shape mismatch");
    let cols = v.len();
    if cols >= OUTER_BLOCK_MAX_COLS {
        set_outer_ref(u, v, out);
        return;
    }
    let mut blocks = u.chunks_exact(4);
    let mut r = 0usize;
    for ub in blocks.by_ref() {
        let (u0, u1, u2, u3) = (ub[0], ub[1], ub[2], ub[3]);
        let (head, rest) = out[r * cols..].split_at_mut(cols);
        let (row1, rest) = rest.split_at_mut(cols);
        let (row2, row3) = rest.split_at_mut(cols);
        let row3 = &mut row3[..cols];
        for ((((o0, o1), o2), o3), &vl) in
            head.iter_mut().zip(row1.iter_mut()).zip(row2.iter_mut()).zip(row3.iter_mut()).zip(v)
        {
            *o0 = u0 * vl;
            *o1 = u1 * vl;
            *o2 = u2 * vl;
            *o3 = u3 * vl;
        }
        r += 4;
    }
    for &ur in blocks.remainder() {
        vector::scaled_copy_into(ur, v, &mut out[r * cols..(r + 1) * cols]);
        r += 1;
    }
}

/// Scalar reference for [`set_outer`]: one [`vector::scaled_copy_into`]
/// per row.
pub fn set_outer_ref(u: &[f64], v: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), u.len() * v.len(), "set_outer_ref: shape mismatch");
    let cols = v.len();
    for (r, &ur) in u.iter().enumerate() {
        vector::scaled_copy_into(ur, v, &mut out[r * cols..(r + 1) * cols]);
    }
}

/// Rank-1 update `out ← out + alpha·u·vᵀ` (row-major
/// `u.len() × v.len()`), blocked like [`set_outer`] (including the
/// `OUTER_BLOCK_MAX_COLS` fallback). Per entry the update is the
/// single fused expression `out += (alpha·u_r)·v_c`, bit-identical to
/// [`add_scaled_outer_ref`].
///
/// # Panics
/// Panics in debug builds on shape mismatch.
pub fn add_scaled_outer(alpha: f64, u: &[f64], v: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), u.len() * v.len(), "add_scaled_outer: shape mismatch");
    let cols = v.len();
    if cols >= OUTER_BLOCK_MAX_COLS {
        add_scaled_outer_ref(alpha, u, v, out);
        return;
    }
    let mut blocks = u.chunks_exact(4);
    let mut r = 0usize;
    for ub in blocks.by_ref() {
        let (a0, a1, a2, a3) = (alpha * ub[0], alpha * ub[1], alpha * ub[2], alpha * ub[3]);
        let (row0, rest) = out[r * cols..].split_at_mut(cols);
        let (row1, rest) = rest.split_at_mut(cols);
        let (row2, row3) = rest.split_at_mut(cols);
        let row3 = &mut row3[..cols];
        for ((((o0, o1), o2), o3), &vl) in
            row0.iter_mut().zip(row1.iter_mut()).zip(row2.iter_mut()).zip(row3.iter_mut()).zip(v)
        {
            *o0 += a0 * vl;
            *o1 += a1 * vl;
            *o2 += a2 * vl;
            *o3 += a3 * vl;
        }
        r += 4;
    }
    for &ur in blocks.remainder() {
        vector::axpy(alpha * ur, v, &mut out[r * cols..(r + 1) * cols]);
        r += 1;
    }
}

/// Scalar reference for [`add_scaled_outer`]: one [`vector::axpy`] with
/// `alpha·u_r` per row.
pub fn add_scaled_outer_ref(alpha: f64, u: &[f64], v: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), u.len() * v.len(), "add_scaled_outer_ref: shape mismatch");
    let cols = v.len();
    for (r, &ur) in u.iter().enumerate() {
        vector::axpy(alpha * ur, v, &mut out[r * cols..(r + 1) * cols]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, phase: f64) -> Vec<f64> {
        (0..n).map(|i| (0.37 * i as f64 + phase).sin() * 1.5).collect()
    }

    #[test]
    fn blocked_kernels_match_references_at_awkward_shapes() {
        // Every row/column tail length 0–3 in one sweep; the proptest
        // suite in tests/kernel_identity.rs covers random contents.
        for rows in [1usize, 3, 4, 5, 7, 8, 11] {
            for cols in [1usize, 2, 4, 6, 8, 9, 13] {
                let a = data(rows * cols, 0.1);
                let x = data(cols, 0.7);
                let y = data(rows, 1.3);
                let mut got = vec![0.0; rows];
                let mut got_blocked = vec![1.0; rows];
                let mut want = vec![2.0; rows];
                matvec(cols, &a, &x, &mut got);
                matvec_blocked(cols, &a, &x, &mut got_blocked);
                matvec_ref(cols, &a, &x, &mut want);
                assert_eq!(got, want, "matvec {rows}x{cols}");
                assert_eq!(got_blocked, want, "matvec_blocked {rows}x{cols}");

                let mut got = vec![2.0; cols];
                let mut want = vec![3.0; cols];
                matvec_t(cols, &a, &y, &mut got);
                matvec_t_ref(cols, &a, &y, &mut want);
                assert_eq!(got, want, "matvec_t {rows}x{cols}");

                let mut got = vec![9.0; rows * cols];
                let mut want = vec![-9.0; rows * cols];
                set_outer(&y, &x, &mut got);
                set_outer_ref(&y, &x, &mut want);
                assert_eq!(got, want, "set_outer {rows}x{cols}");

                let mut got = a.clone();
                let mut want = a.clone();
                add_scaled_outer(-0.75, &y, &x, &mut got);
                add_scaled_outer_ref(-0.75, &y, &x, &mut want);
                assert_eq!(got, want, "add_scaled_outer {rows}x{cols}");
            }
        }
    }
}
