//! The thread-per-connection TCP front.
//!
//! [`serve_tcp`] turns a bound [`TcpListener`] into a serving fleet
//! front: an accept thread hands each incoming connection its own OS
//! thread, and every connection thread drives the shared engine through
//! its own cloned [`SubmitHandle`] — no lock between connections, no
//! cross-connection ordering, no shared mutable state beyond the
//! engine's own atomic queue reservations. Per-connection semantics are
//! exactly those of [`serve_connection`](crate::serve_connection):
//! pipelined, replies strictly in command order, engine errors in-band,
//! protocol errors aborting only the offending connection.
//!
//! Sessions are engine-scoped, not connection-scoped: a client may
//! disconnect and find its streams where it left them on reconnect, and
//! two connections may legally feed disjoint session sets concurrently.
//! (Two connections feeding the *same* session race for queue positions;
//! keep a session's traffic on one connection at a time.)
//!
//! A thread per connection is deliberate: connections here are few and
//! long-lived (ingestion firehoses, not request/response web traffic),
//! each one blocks on socket reads and on engine flow control, and the
//! deployment cap ([`TcpOptions::max_connections`]) bounds the thread
//! count. See `docs/OPERATIONS.md` for deployment guidance (ports,
//! connection limits, shutdown drill).
//!
//! # Examples
//!
//! ```
//! use pir_engine::{serve_tcp, EngineHandle, IngressConfig};
//! use std::net::{TcpListener, TcpStream};
//!
//! let handle = EngineHandle::new(IngressConfig {
//!     num_shards: 1,
//!     seed: 7,
//!     queue_depth: 64,
//! })
//! .unwrap();
//! // Port 0: the OS picks a free port; ask the front where it landed.
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! let front = serve_tcp(handle.submit_handle(), listener).unwrap();
//! let addr = front.local_addr();
//!
//! let client = TcpStream::connect(addr).unwrap();
//! // ... speak the wire protocol (see `pir_engine::wire`) ...
//! drop(client);
//!
//! front.shutdown();
//! handle.close();
//! ```

use crate::ingress::SubmitHandle;
use crate::server::serve_connection_counted;
use crate::sync::lock_or_recover;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Deployment knobs for [`serve_tcp_with`].
#[derive(Debug, Clone, Copy)]
pub struct TcpOptions {
    /// Hard cap on simultaneously served connections (= spawned
    /// connection threads). A connection accepted while the front is at
    /// the cap is closed immediately without reading a byte, and counted
    /// in [`TcpStats::refused`] — backpressure at the front door, before
    /// any queue space is spent on the newcomer.
    pub max_connections: usize,
    /// Reap connections that deliver no bytes for this long: the
    /// connection is ended exactly as if the peer had closed it (its
    /// in-flight replies drain, its sessions survive engine-side) and
    /// counted in [`TcpStats::idle_reaped`]. Each reaped connection
    /// frees a thread and a slot under [`max_connections`](Self::max_connections),
    /// so one dead-but-connected client fleet cannot brown-out the front
    /// door. `None` (the default) lets idle connections sit forever —
    /// the right call for trusted, long-lived ingestion firehoses.
    pub idle_timeout: Option<Duration>,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions { max_connections: 1024, idle_timeout: None }
    }
}

/// Cumulative tallies for one TCP front, aggregated over finished
/// connections (live connections report only once they end).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Connections served to completion — cleanly (`CLOSE`/EOF) or not.
    pub connections: u64,
    /// Connections refused at the [`TcpOptions::max_connections`] cap.
    pub refused: u64,
    /// Command frames decoded, summed over finished connections.
    pub commands: u64,
    /// Reply frames written, summed over finished connections.
    pub replies: u64,
    /// Connections that ended in a [`WireError`](crate::wire::WireError)
    /// — malformed frames, or sockets severed mid-conversation (which is
    /// how connections still live at [`TcpFront::shutdown`] are ended).
    pub protocol_errors: u64,
    /// Connections reaped by [`TcpOptions::idle_timeout`]. A reaped
    /// connection also counts in [`connections`](Self::connections); one
    /// reaped mid-frame (silence after a half-sent frame) additionally
    /// counts in [`protocol_errors`](Self::protocol_errors).
    pub idle_reaped: u64,
}

/// One live connection as the front tracks it: the thread serving it, a
/// duplicated stream handle through which `shutdown` can sever it, and
/// the thread's id so the connection can reap its own registry entry
/// (and the duplicated fd) the moment it finishes.
struct Conn {
    stream: TcpStream,
    thread: JoinHandle<()>,
    id: std::thread::ThreadId,
}

/// State shared between the accept thread, connection threads, and the
/// owner-facing [`TcpFront`].
struct Shared {
    conns: Mutex<Vec<Conn>>,
    stats: Mutex<TcpStats>,
}

/// A running TCP front, returned by [`serve_tcp`]. Dropping it shuts the
/// front down (best-effort, discarding stats); call
/// [`shutdown`](Self::shutdown) to stop deliberately and collect the
/// final [`TcpStats`]. The engine behind it is *not* stopped — that is
/// [`EngineHandle::close`](crate::EngineHandle::close)'s job, afterwards.
#[derive(Debug)]
pub struct TcpFront {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("stats", &lock_or_recover(&self.stats)).finish()
    }
}

/// Serve an engine over TCP with default [`TcpOptions`]; see
/// [`serve_tcp_with`].
///
/// # Errors
/// Propagates [`io::Error`] from inspecting the listener.
pub fn serve_tcp(submit: SubmitHandle, listener: TcpListener) -> io::Result<TcpFront> {
    serve_tcp_with(submit, listener, TcpOptions::default())
}

/// Spawn the accept loop on `listener`: a thread per connection, each
/// driving [`serve_connection`](crate::serve_connection) with its own
/// clone of `submit`. Returns immediately with the [`TcpFront`] handle;
/// accepting, serving, and shutdown all happen on background threads.
///
/// The caller binds the listener (and so picks the port, the interface,
/// and any socket options); bind to port 0 to let the OS choose and read
/// the result from [`TcpFront::local_addr`].
///
/// # Errors
/// Propagates [`io::Error`] from inspecting the listener.
pub fn serve_tcp_with(
    submit: SubmitHandle,
    listener: TcpListener,
    opts: TcpOptions,
) -> io::Result<TcpFront> {
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let shared =
        Arc::new(Shared { conns: Mutex::new(Vec::new()), stats: Mutex::new(TcpStats::default()) });
    let accept = {
        let stop = Arc::clone(&stop);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &submit, opts, &stop, &shared))
    };
    Ok(TcpFront { local_addr, stop, shared, accept: Some(accept) })
}

impl TcpFront {
    /// The address the front is accepting on (the bound port, resolved
    /// even when the listener was bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the cumulative stats so far (finished connections
    /// only; see [`TcpStats`]).
    pub fn stats(&self) -> TcpStats {
        *lock_or_recover(&self.shared.stats)
    }

    /// Stop the front: refuse new connections, sever the ones still
    /// live, join every thread, and return the final tallies.
    ///
    /// For a *drain* (zero-interruption) shutdown, stop clients first and
    /// wait until [`stats`](Self::stats) shows your connection count —
    /// anything still connected when `shutdown` runs is severed
    /// mid-conversation and lands in [`TcpStats::protocol_errors`].
    pub fn shutdown(mut self) -> TcpStats {
        self.stop_impl();
        let stats = *lock_or_recover(&self.shared.stats);
        stats
    }

    fn stop_impl(&mut self) {
        let Some(accept) = self.accept.take() else {
            return; // already stopped
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept thread is parked in `accept()`; a throwaway
        // connection wakes it so it can observe the stop flag. A wildcard
        // bind (0.0.0.0 / ::) may not be connectable directly — fall back
        // to loopback on the same port. If neither connect lands (host
        // firewall, exhausted ephemeral ports), do NOT join: the accept
        // thread is detached still parked, which leaks one thread but
        // never hangs the caller — it exits on the next connection.
        let woke = TcpStream::connect(self.local_addr).is_ok() || {
            let ip = self.local_addr.ip();
            ip.is_unspecified() && {
                let loopback: std::net::IpAddr = if ip.is_ipv4() {
                    std::net::Ipv4Addr::LOCALHOST.into()
                } else {
                    std::net::Ipv6Addr::LOCALHOST.into()
                };
                TcpStream::connect((loopback, self.local_addr.port())).is_ok()
            }
        };
        if woke {
            let _ = accept.join();
        }
        // Sever live connections so their threads unblock from socket
        // reads, then join them (each drains its in-flight replies as
        // far as its half-closed socket allows before exiting). Drain
        // first and join with the registry lock *released*: a finishing
        // connection blocks on that lock to self-reap, so joining while
        // holding it would deadlock.
        let drained: Vec<Conn> = lock_or_recover(&self.shared.conns).drain(..).collect();
        for c in &drained {
            let _ = c.stream.shutdown(Shutdown::Both);
        }
        for c in drained {
            let _ = c.thread.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

/// Reader adapter implementing [`TcpOptions::idle_timeout`]: a read
/// that trips the socket's read timeout is reported as EOF, so the
/// serve loop ends the connection exactly as if the peer had closed it
/// — between frames that is a clean goodbye, mid-frame it is the usual
/// truncation error. The flag lets the connection thread count the reap.
struct IdleReader<'a> {
    stream: &'a TcpStream,
    timed_out: bool,
}

impl Read for IdleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut stream = self.stream;
        match stream.read(buf) {
            // Unix reports a tripped read timeout as WouldBlock, Windows
            // as TimedOut; both mean "idle past the deadline" here.
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                self.timed_out = true;
                Ok(0)
            }
            r => r,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    submit: &SubmitHandle,
    opts: TcpOptions,
    stop: &AtomicBool,
    shared: &Arc<Shared>,
) {
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break; // the wake-up connection (or anything racing it)
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept failures (EMFILE under fd pressure,
                // most likely) must not busy-spin the accept thread —
                // least of all on a small-core box where it would starve
                // the shard workers.
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        let mut conns = lock_or_recover(&shared.conns);
        // Belt-and-braces reap: a connection normally removes itself on
        // exit (below), but one that finished before its registry entry
        // was pushed cannot; sweep those so the cap counts live
        // connections and every thread gets joined.
        let mut live = Vec::with_capacity(conns.len());
        for c in conns.drain(..) {
            if c.thread.is_finished() {
                let _ = c.thread.join();
            } else {
                live.push(c);
            }
        }
        *conns = live;
        if conns.len() >= opts.max_connections {
            lock_or_recover(&shared.stats).refused += 1;
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        // One duplicated handle stays in the registry (for shutdown to
        // sever); the thread owns the original. A failed dup (fd
        // pressure) turns the accepted connection away — visibly, so the
        // tallies still reconcile against client-side counts.
        let Ok(registry_stream) = stream.try_clone() else {
            lock_or_recover(&shared.stats).refused += 1;
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        };
        let submit = submit.clone();
        let shared_for_conn = Arc::clone(shared);
        let idle_timeout = opts.idle_timeout;
        let thread = std::thread::spawn(move || {
            if idle_timeout.is_some() {
                // Best-effort: a connection whose timeout cannot be set
                // is served unreaped rather than turned away.
                let _ = stream.set_read_timeout(idle_timeout);
            }
            let mut reader = IdleReader { stream: &stream, timed_out: false };
            let (served, error) = serve_connection_counted(&submit, &mut reader, &mut (&stream));
            {
                let mut stats = lock_or_recover(&shared_for_conn.stats);
                stats.connections += 1;
                // Frames served before a protocol error (or a severed
                // socket) still count — TcpStats must reconcile against
                // client-side tallies.
                stats.commands += served.commands as u64;
                stats.replies += served.replies as u64;
                if error.is_some() {
                    stats.protocol_errors += 1;
                }
                if reader.timed_out {
                    stats.idle_reaped += 1;
                }
            }
            // Self-reap: drop this connection's registry entry (and its
            // duplicated fd) now rather than holding both until the next
            // accept or shutdown. Dropping our own JoinHandle merely
            // detaches a thread that is already on its final statement.
            let me = std::thread::current().id();
            let mut conns = lock_or_recover(&shared_for_conn.conns);
            if let Some(pos) = conns.iter().position(|c| c.id == me) {
                conns.swap_remove(pos);
            }
        });
        let id = thread.thread().id();
        conns.push(Conn { stream: registry_stream, thread, id });
    }
}
