//! The sharded multi-stream engine.

use crate::error::EngineError;
use crate::ingress::{Command, Reply};
use crate::session::StreamSession;
use crate::spec::MechanismSpec;
use pir_dp::PrivacyParams;
use pir_erm::DataPoint;
use std::collections::HashMap;

/// SplitMix64 finalizer — the engine's stateless hash for shard routing
/// and per-session seed derivation.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The one shard-routing function: which of `num_shards` shards serves
/// `session_id`. Shared by the synchronous [`ShardedEngine`] and the
/// pipelined ingress layer so a session always lands on the same worker
/// no matter which front door it came through.
#[inline]
pub(crate) fn shard_of(session_id: u64, num_shards: usize) -> usize {
    (mix64(session_id) % num_shards as u64) as usize
}

/// The deterministic per-session noise seed: a function of the engine
/// seed and session id only — never of shard count, spawn order, or
/// scheduling — so release sequences survive resharding. Both spawn
/// paths (`spawn_session`, `spawn_sessions`) must go through this one
/// function.
#[inline]
pub(crate) fn session_seed(engine_seed: u64, session_id: u64) -> u64 {
    mix64(engine_seed ^ session_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A fleet seed drawn from OS entropy (via the std hasher's random
/// keys), for the privacy-safe default configuration.
pub(crate) fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    let a = std::collections::hash_map::RandomState::new().build_hasher().finish();
    let b = std::collections::hash_map::RandomState::new().build_hasher().finish();
    mix64(a ^ b.rotate_left(32))
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of shards sessions are hash-partitioned across. Defaults to
    /// the machine's available parallelism.
    pub num_shards: usize,
    /// Base seed: every session's noise stream is derived from
    /// `(seed, session id)`, so a whole fleet is reproducible from one
    /// number — and independent of `num_shards`, so resharding does not
    /// change any release sequence.
    ///
    /// **Privacy warning:** a known seed makes every release's noise
    /// recomputable, voiding the `(ε, δ)` guarantee against anyone who
    /// learns it. Fix the seed for experiments and tests only;
    /// [`EngineConfig::default`] draws it from OS entropy.
    pub seed: u64,
    /// Drive shards on worker threads (`true`) or inline (`false`; useful
    /// for single-threaded debugging and deterministic profiling).
    pub parallel: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            seed: entropy_seed(),
            parallel: true,
        }
    }
}

/// One shard: the sessions routed to it, keyed by session id.
#[derive(Debug, Default)]
struct Shard {
    sessions: HashMap<u64, StreamSession>,
}

/// One session's slice of an ingest batch: `(session id, original input
/// indices, points in arrival order)`.
type SessionRun = (u64, Vec<usize>, Vec<DataPoint>);

/// An ingest result tagged with the input index it answers.
type IndexedRelease = (usize, Result<Vec<f64>, EngineError>);

/// A sharded engine serving many concurrent private streams.
///
/// Sessions are hash-partitioned across `num_shards` shards by session id;
/// shard-parallel entry points ([`ingest`](ShardedEngine::ingest),
/// [`spawn_sessions`](ShardedEngine::spawn_sessions)) drive every shard on
/// its own worker thread. Because each session's noise stream is derived
/// from `(engine seed, session id)` alone, the released estimator
/// sequences are bit-for-bit reproducible regardless of shard count or
/// thread scheduling.
///
/// # Examples
///
/// ```
/// use pir_engine::{EngineConfig, MechanismSpec, ShardedEngine};
/// use pir_dp::PrivacyParams;
/// use pir_erm::DataPoint;
///
/// let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
/// let mut engine = ShardedEngine::new(EngineConfig {
///     num_shards: 2,
///     seed: 7,
///     parallel: true,
/// })
/// .unwrap();
///
/// // Four tenants, all running §4's PrivIncReg1 in dimension 3.
/// let spec = MechanismSpec::reg1_l2(3);
/// engine.spawn_sessions(0..4, &spec, 16, &params).unwrap();
///
/// // A mixed batch of arrivals across tenants: one estimator per point.
/// let batch: Vec<(u64, DataPoint)> = (0..8u64)
///     .map(|i| (i % 4, DataPoint::new(vec![0.5, 0.1, 0.0], 0.3)))
///     .collect();
/// let releases = engine.ingest(batch);
/// assert_eq!(releases.len(), 8);
/// assert!(releases.iter().all(|r| r.as_ref().unwrap().len() == 3));
/// assert_eq!(engine.total_points(), 8);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    config: EngineConfig,
    shards: Vec<Shard>,
}

impl ShardedEngine {
    /// New engine.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if `num_shards == 0`.
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        if config.num_shards == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "num_shards must be at least 1".to_string(),
            });
        }
        let shards = (0..config.num_shards).map(|_| Shard::default()).collect();
        Ok(ShardedEngine { config, shards })
    }

    /// New engine with `n` shards and default seed.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if `n == 0`.
    pub fn with_shards(n: usize) -> Result<Self, EngineError> {
        ShardedEngine::new(EngineConfig { num_shards: n, ..Default::default() })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total live sessions.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.sessions.len()).sum()
    }

    /// Sessions per shard (observability: hash-partition balance).
    pub fn shard_loads(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.sessions.len()).collect()
    }

    /// Total stream points consumed across all sessions.
    pub fn total_points(&self) -> usize {
        self.shards.iter().flat_map(|s| s.sessions.values()).map(StreamSession::t).sum()
    }

    #[inline]
    fn shard_index(&self, session_id: u64) -> usize {
        shard_of(session_id, self.shards.len())
    }

    /// Whether a session with this id exists.
    pub fn contains(&self, session_id: u64) -> bool {
        self.shards[self.shard_index(session_id)].sessions.contains_key(&session_id)
    }

    /// Read access to one session (accountant, mechanism name, `t`, …).
    pub fn with_session<R>(
        &self,
        session_id: u64,
        f: impl FnOnce(&StreamSession) -> R,
    ) -> Option<R> {
        self.shards[self.shard_index(session_id)].sessions.get(&session_id).map(f)
    }

    /// Remove a session; returns it if it existed.
    pub fn remove_session(&mut self, session_id: u64) -> Option<StreamSession> {
        let idx = self.shard_index(session_id);
        self.shards[idx].sessions.remove(&session_id)
    }

    /// Insert an already-built session — the import half of
    /// [`StreamSession::restore`]: rebuild a session from a `PIRS`
    /// snapshot (taken under this engine's seed), then adopt it here. The
    /// session lands on whatever shard its id hashes to, so adoption is
    /// reshard-safe like every other placement.
    ///
    /// # Errors
    /// [`EngineError::DuplicateSession`] if the id is taken.
    pub fn adopt_session(&mut self, session: StreamSession) -> Result<(), EngineError> {
        let id = session.id();
        if self.contains(id) {
            return Err(EngineError::DuplicateSession { id });
        }
        let idx = self.shard_index(id);
        self.shards[idx].sessions.insert(id, session);
        Ok(())
    }

    /// Iterate over every live session, in unspecified order (checkpoint
    /// capture walks this).
    pub(crate) fn sessions(&self) -> impl Iterator<Item = &StreamSession> {
        self.shards.iter().flat_map(|s| s.sessions.values())
    }

    /// Spawn one session running `spec` for streams of length up to
    /// `t_max` under the per-session budget `params`.
    ///
    /// # Errors
    /// [`EngineError::DuplicateSession`] if the id is taken, or the
    /// spec's build error.
    pub fn spawn_session(
        &mut self,
        session_id: u64,
        spec: &MechanismSpec,
        t_max: usize,
        params: &PrivacyParams,
    ) -> Result<(), EngineError> {
        if self.contains(session_id) {
            return Err(EngineError::DuplicateSession { id: session_id });
        }
        let session = StreamSession::spawn(session_id, spec, t_max, params, self.config.seed)?;
        let idx = self.shard_index(session_id);
        self.shards[idx].sessions.insert(session_id, session);
        Ok(())
    }

    /// Spawn many sessions of the same spec, building shard-parallel
    /// (mechanism construction is the expensive part — e.g. sampling the
    /// `m×d` sketch of `PrivIncReg2` — so fan it out). All-or-nothing: on
    /// any failure no session is inserted.
    ///
    /// # Errors
    /// [`EngineError::DuplicateSession`] for an id collision (within the
    /// batch or against live sessions), or the spec's build error.
    pub fn spawn_sessions(
        &mut self,
        session_ids: impl IntoIterator<Item = u64>,
        spec: &MechanismSpec,
        t_max: usize,
        params: &PrivacyParams,
    ) -> Result<usize, EngineError> {
        let mut per_shard: Vec<Vec<u64>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut seen = std::collections::HashSet::new();
        let mut count = 0usize;
        for id in session_ids {
            if self.contains(id) || !seen.insert(id) {
                return Err(EngineError::DuplicateSession { id });
            }
            per_shard[self.shard_index(id)].push(id);
            count += 1;
        }
        // Build every session before inserting any (all-or-nothing).
        let engine_seed = self.config.seed;
        let build_shard = |ids: &[u64]| -> Result<Vec<StreamSession>, EngineError> {
            ids.iter()
                .map(|&id| StreamSession::spawn(id, spec, t_max, params, engine_seed))
                .collect()
        };
        let build_shard = &build_shard;
        let built: Vec<Result<Vec<StreamSession>, EngineError>> = if self.run_parallel(&per_shard) {
            std::thread::scope(|scope| {
                let handles: Vec<_> =
                    per_shard.iter().map(|ids| scope.spawn(move || build_shard(ids))).collect();
                handles.into_iter().map(|h| h.join().expect("spawn worker panicked")).collect()
            })
        } else {
            per_shard.iter().map(|ids| build_shard(ids)).collect()
        };
        let mut all = Vec::with_capacity(self.shards.len());
        for r in built {
            all.push(r?);
        }
        for (shard, sessions) in self.shards.iter_mut().zip(all) {
            for s in sessions {
                shard.sessions.insert(s.id(), s);
            }
        }
        Ok(count)
    }

    /// Route one point to its session.
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`] or the mechanism's error.
    pub fn observe(&mut self, session_id: u64, z: &DataPoint) -> Result<Vec<f64>, EngineError> {
        let idx = self.shard_index(session_id);
        self.shards[idx]
            .sessions
            .get_mut(&session_id)
            .ok_or(EngineError::UnknownSession { id: session_id })?
            .observe(z)
    }

    /// [`observe`](ShardedEngine::observe) writing the release into a
    /// caller-provided buffer — release-for-release identical to it, and
    /// allocation-free in steady state for the paper mechanisms: routing
    /// is a hash and a map lookup, and the mechanism runs its whole step
    /// on preallocated scratch (see `docs/ARCHITECTURE.md`, "Buffer
    /// ownership"). Callers that poll one session at high rate should
    /// hold one release buffer per session and drive this entry point.
    ///
    /// On error, `out` contents are unspecified.
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`], the mechanism's error, or a
    /// wrong-length buffer.
    pub fn observe_into(
        &mut self,
        session_id: u64,
        z: &DataPoint,
        out: &mut [f64],
    ) -> Result<(), EngineError> {
        let idx = self.shard_index(session_id);
        self.shards[idx]
            .sessions
            .get_mut(&session_id)
            .ok_or(EngineError::UnknownSession { id: session_id })?
            .observe_into(z, out)
    }

    /// Route a run of consecutive points to one session's amortized batch
    /// path.
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`] or the mechanism's error (batches
    /// are rejected atomically on contract violations).
    pub fn observe_batch(
        &mut self,
        session_id: u64,
        batch: &[DataPoint],
    ) -> Result<Vec<Vec<f64>>, EngineError> {
        let idx = self.shard_index(session_id);
        self.shards[idx]
            .sessions
            .get_mut(&session_id)
            .ok_or(EngineError::UnknownSession { id: session_id })?
            .observe_batch(batch)
    }

    /// [`observe_batch`](ShardedEngine::observe_batch) writing the
    /// releases into one caller-provided flat buffer of length
    /// `batch.len() · dim` (point `i`'s estimator lands in
    /// `out[i·d..(i+1)·d]`) — release-for-release identical to it, and
    /// allocation-free in steady state for the paper mechanisms: routing
    /// is a hash and a map lookup, and the mechanism drives its whole
    /// amortized batch on preallocated scratch. Callers that feed one
    /// session in runs should hold one flat release buffer and drive this
    /// entry point.
    ///
    /// On error, `out` contents are unspecified.
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`], the mechanism's error (batches
    /// are rejected atomically), or a wrong-length buffer.
    pub fn observe_batch_into(
        &mut self,
        session_id: u64,
        batch: &[DataPoint],
        out: &mut [f64],
    ) -> Result<(), EngineError> {
        let idx = self.shard_index(session_id);
        self.shards[idx]
            .sessions
            .get_mut(&session_id)
            .ok_or(EngineError::UnknownSession { id: session_id })?
            .observe_batch_into(batch, out)
    }

    /// Drive a mixed batch of arrivals across many sessions, in parallel
    /// across shards — the engine's high-throughput entry point.
    ///
    /// Points are grouped per session (preserving each session's arrival
    /// order) and fed through the mechanism's amortized
    /// `observe_batch`; shards run concurrently on scoped worker threads.
    /// The result vector is index-aligned with the input: `out[i]` is the
    /// estimator released for `points[i]`. A batch-level failure (unknown
    /// session, contract violation, overflow) is reported on every index
    /// of the affected session's group, which is consistent with the
    /// atomic batch-rejection contract.
    pub fn ingest(&mut self, points: Vec<(u64, DataPoint)>) -> Vec<Result<Vec<f64>, EngineError>> {
        let n = points.len();
        // Group per shard, then per session, preserving arrival order.
        let num_shards = self.shards.len();
        let mut per_shard: Vec<Vec<SessionRun>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut slot: HashMap<u64, (usize, usize)> = HashMap::new();
        for (i, (sid, z)) in points.into_iter().enumerate() {
            let shard = self.shard_index(sid);
            let (s, g) = *slot.entry(sid).or_insert_with(|| {
                per_shard[shard].push((sid, Vec::new(), Vec::new()));
                (shard, per_shard[shard].len() - 1)
            });
            per_shard[s][g].1.push(i);
            per_shard[s][g].2.push(z);
        }

        let run_shard = |shard: &mut Shard, groups: &[SessionRun]| -> Vec<IndexedRelease> {
            let mut out = Vec::new();
            for (sid, indices, batch) in groups {
                match shard.sessions.get_mut(sid) {
                    None => {
                        for &i in indices {
                            out.push((i, Err(EngineError::UnknownSession { id: *sid })));
                        }
                    }
                    Some(session) => match session.observe_batch(batch) {
                        Ok(releases) => {
                            for (&i, theta) in indices.iter().zip(releases) {
                                out.push((i, Ok(theta)));
                            }
                        }
                        Err(e) => {
                            for &i in indices {
                                out.push((i, Err(e.clone())));
                            }
                        }
                    },
                }
            }
            out
        };

        let run_shard = &run_shard;
        let scattered: Vec<Vec<IndexedRelease>> = if self.run_parallel(&per_shard) {
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .zip(per_shard.iter())
                    .map(|(shard, groups)| scope.spawn(move || run_shard(shard, groups)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("ingest worker panicked")).collect()
            })
        } else {
            self.shards
                .iter_mut()
                .zip(per_shard.iter())
                .map(|(shard, groups)| run_shard(shard, groups))
                .collect()
        };

        let mut results: Vec<Option<Result<Vec<f64>, EngineError>>> =
            (0..n).map(|_| None).collect();
        for part in scattered {
            for (i, r) in part {
                results[i] = Some(r);
            }
        }
        results.into_iter().map(|r| r.expect("every input index receives a result")).collect()
    }

    /// Execute one wire-level [`Command`] against the engine, producing
    /// the same [`Reply`] the pipelined frontend would — the single
    /// dispatch point the write-ahead-log replay path
    /// ([`wal::recover`](crate::wal::recover)) drives, so a replayed
    /// command stream lands on exactly the semantics of the original run.
    ///
    /// Failures come back as [`Reply::Err`] rather than `Result::Err`:
    /// replay must be able to reproduce a run's deterministic failures
    /// (a duplicate open, an over-horizon observe) without aborting.
    /// [`Command::Close`] is connection-scoped and a no-op here.
    pub fn apply(&mut self, cmd: &Command) -> Reply {
        match cmd {
            Command::Open { session_id, spec, t_max, params } => {
                match self.spawn_session(*session_id, spec, *t_max, params) {
                    Ok(()) => Reply::Opened { session_id: *session_id },
                    Err(e) => Reply::Err(e),
                }
            }
            Command::Observe { session_id, point } => match self.observe(*session_id, point) {
                Ok(theta) => Reply::Releases { session_id: *session_id, thetas: vec![theta] },
                Err(e) => Reply::Err(e),
            },
            Command::ObserveBatch { session_id, points } => {
                match self.observe_batch(*session_id, points) {
                    Ok(thetas) => Reply::Releases { session_id: *session_id, thetas },
                    Err(e) => Reply::Err(e),
                }
            }
            Command::Release { session_id } => match self.remove_session(*session_id) {
                None => Reply::Err(EngineError::UnknownSession { id: *session_id }),
                Some(s) => {
                    let (epsilon_spent, delta_spent) = s.accountant().spent();
                    Reply::SessionReleased {
                        session_id: *session_id,
                        points: s.t() as u64,
                        epsilon_spent,
                        delta_spent,
                    }
                }
            },
            Command::Close => Reply::Closed,
        }
    }

    /// Parallel execution pays off only when more than one shard has work.
    fn run_parallel<T>(&self, per_shard: &[Vec<T>]) -> bool {
        self.config.parallel && per_shard.iter().filter(|v| !v.is_empty()).count() > 1
    }
}
