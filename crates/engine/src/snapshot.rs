//! Versioned, checksummed session snapshots — the `PIRS` format.
//!
//! A snapshot captures everything needed to resume a
//! [`StreamSession`](crate::session::StreamSession) bit-identically on
//! the same engine: the identity and static shape of the session (id,
//! spec, horizon, privacy budget) plus the mechanism's dynamic state
//! blob from [`IncrementalMechanism::save_state`](pir_core::IncrementalMechanism::save_state). Restore
//! respawns the mechanism deterministically from the engine seed (which
//! reproduces construction-time randomness such as Mechanism 2's sketch
//! matrix without serializing it) and then overlays the dynamic state, so
//! snapshots stay `O(d log T)` — never `O(m × d)`.
//!
//! ## Layout (version 2)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = "PIRS"
//! 4       1     version = 2
//! 5       3     reserved, must be zero
//! 8       4     body length N (LE u32, capped at MAX_SNAPSHOT_BODY)
//! 12      N     body
//! 12+N    4     CRC-32 (LE u32) over bytes 0..12+N
//! ```
//!
//! Body, in order (all integers little-endian, all floats IEEE-754 bit
//! patterns — decoding restores the exact bits, so restored sessions are
//! reproducible to the last ulp):
//!
//! ```text
//! 8   session id (u64)
//! 8   seed fingerprint (u64) — one-way digest of the per-session seed
//!     (see [`seed_fingerprint`]); restore recomputes it from the target
//!     engine's seed and refuses a mismatch, so resuming a snapshot on a
//!     wrong-seeded engine fails loudly instead of silently changing
//!     construction-time randomness such as Mechanism 2's sketch
//! 8   t_max      (u64)  — stream horizon the mechanism was built for
//! 8   t          (u64)  — points consumed so far
//! 8   budget epsilon (f64 bits)
//! 8   budget delta   (f64 bits)
//! 8   spent epsilon  (f64 bits)  — accountant ledger at snapshot time
//! 8   spent delta    (f64 bits)
//! 4   spec length S (u32), then S bytes: wire-encoded MechanismSpec
//!     (the same encoding an OPEN frame carries)
//! 4   state length M (u32), then M bytes: mechanism state blob
//!     (the pir-core state codec; opaque at this layer)
//! ```
//!
//! Decoding is strict, in the same discipline as the WAL codec: magic,
//! version, and reserved bytes are checked first, then the body length
//! against the cap and the available bytes, then the checksum, and only
//! then is the body parsed — so a flipped byte anywhere surfaces as
//! [`SnapshotError::ChecksumMismatch`], while a forged-but-checksummed
//! body surfaces as a typed structural error. Trailing bytes after the
//! checksum are rejected.
//!
//! Version-1 blobs (identical layout minus the seed fingerprint field)
//! are still decoded — readers grow backwards, writers stay current —
//! but their fingerprint is reported as absent, so restore cannot
//! verify the engine seed for them.

use crate::spec::MechanismSpec;
use crate::wal::crc32;
use crate::wire;

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"PIRS";

/// Current snapshot format version — what every encode writes. Version
/// 2 added the seed fingerprint field. Per the migration policy
/// (readers grow backwards, writers stay current), the decoder still
/// accepts [`SNAPSHOT_OLDEST_READABLE`] blobs: spilled sessions and
/// checkpoint manifests outlive process upgrades.
pub const SNAPSHOT_VERSION: u8 = 2;

/// Oldest snapshot version the decoder accepts. Version-1 blobs carry
/// no seed fingerprint, so restore cannot verify the engine seed for
/// them (the pre-fingerprint contract documented in
/// `docs/KNOWN_FAILURES.md` applies).
pub const SNAPSHOT_OLDEST_READABLE: u8 = 1;

/// One-way fingerprint of the per-session noise seed derived from
/// `engine_seed` and `session_id`. Stored in every version-2 snapshot
/// and recomputed by restore from the *target* engine's seed: a mismatch
/// means the snapshot is being resumed under a different engine seed,
/// which would silently regenerate construction-time randomness (e.g.
/// Mechanism 2's sketch matrix) and change every release thereafter.
///
/// The digest XOR-folds two independently-keyed bijective mixes of the
/// session seed, so the seed is not recoverable from the snapshot — an
/// operational tripwire, not a cryptographic commitment.
pub fn seed_fingerprint(engine_seed: u64, session_id: u64) -> u64 {
    use crate::engine::{mix64, session_seed};
    let s = session_seed(engine_seed, session_id);
    mix64(s ^ 0xA076_1D64_78BD_642F) ^ mix64(s.rotate_left(32) ^ 0xE703_7ED1_A0B4_28DB)
}

/// Fixed header length: magic (4) + version (1) + reserved (3) + body
/// length (4).
pub(crate) const SNAPSHOT_HEADER_LEN: usize = 12;

/// Trailing checksum length.
pub(crate) const SNAPSHOT_TRAILER_LEN: usize = 4;

/// Hard cap on the body length (64 MiB). Real snapshots are `O(d log T)`
/// — kilobytes — so anything near this cap is a forged or corrupt length
/// field, rejected before any allocation is sized from it.
pub const MAX_SNAPSHOT_BODY: u32 = 64 * 1024 * 1024;

/// Typed failures while encoding, decoding, or restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob does not start with the `PIRS` magic.
    BadMagic {
        /// The four bytes found where the magic belongs.
        got: [u8; 4],
    },
    /// The format version is not one this build can decode.
    UnsupportedVersion {
        /// The version byte found.
        got: u8,
    },
    /// The reserved header bytes are not zero.
    NonZeroReserved,
    /// The declared body length exceeds [`MAX_SNAPSHOT_BODY`].
    BodyTooLarge {
        /// The declared body length.
        len: u32,
    },
    /// The blob ends before the declared layout does.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Bytes the header demands.
        need: usize,
    },
    /// The trailing CRC-32 does not match the header + body bytes.
    ChecksumMismatch {
        /// Checksum recomputed over the bytes present.
        expected: u32,
        /// Checksum stored in the blob.
        got: u32,
    },
    /// The snapshot's recorded seed fingerprint disagrees with the one
    /// the restoring engine's seed implies for this session id — the
    /// blob was taken under a different engine seed.
    SeedMismatch {
        /// Fingerprint the restoring engine's seed implies.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        got: u64,
    },
    /// The checksummed body does not parse as a version-2 snapshot.
    Malformed {
        /// What was wrong.
        reason: String,
    },
    /// The session cannot be snapshotted (mechanism keeps no exportable
    /// state, or the spec carries a custom set factory the codec cannot
    /// serialize).
    Unsupported {
        /// What was unsupported.
        reason: String,
    },
    /// The snapshot decoded cleanly but the session could not be rebuilt
    /// from it (mechanism respawn or state overlay failed, or the rebuilt
    /// session disagrees with the snapshot's recorded `t` / ledger).
    Restore {
        /// What failed.
        reason: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic { got } => {
                write!(f, "snapshot magic mismatch: got {got:02x?}, want \"PIRS\"")
            }
            SnapshotError::UnsupportedVersion { got } => {
                write!(f, "unsupported snapshot version {got} (this build reads version {SNAPSHOT_VERSION})")
            }
            SnapshotError::NonZeroReserved => {
                write!(f, "snapshot reserved header bytes are not zero")
            }
            SnapshotError::BodyTooLarge { len } => {
                write!(f, "snapshot body length {len} exceeds the {MAX_SNAPSHOT_BODY}-byte cap")
            }
            SnapshotError::Truncated { have, need } => {
                write!(f, "snapshot truncated: have {have} bytes, need {need}")
            }
            SnapshotError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot checksum mismatch: computed {expected:#010x}, stored {got:#010x}"
                )
            }
            SnapshotError::SeedMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot seed fingerprint mismatch: snapshot recorded {got:#018x}, \
                     this engine's seed implies {expected:#018x} — restoring under a \
                     different engine seed would silently change construction-time \
                     randomness"
                )
            }
            SnapshotError::Malformed { reason } => write!(f, "malformed snapshot body: {reason}"),
            SnapshotError::Unsupported { reason } => {
                write!(f, "session not snapshot-capable: {reason}")
            }
            SnapshotError::Restore { reason } => write!(f, "snapshot restore failed: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The fields a version-2 snapshot serializes, borrowed for encoding.
pub(crate) struct SnapshotBody<'a> {
    pub session_id: u64,
    pub seed_fingerprint: u64,
    pub t_max: u64,
    pub t: u64,
    pub epsilon: f64,
    pub delta: f64,
    pub spent_epsilon: f64,
    pub spent_delta: f64,
    pub spec: &'a MechanismSpec,
    pub state: &'a [u8],
}

/// The fields recovered from a decoded snapshot, owned.
pub(crate) struct DecodedSnapshot {
    pub session_id: u64,
    /// `None` for legacy version-1 blobs, which predate the field and
    /// cannot prove what engine seed they were taken under.
    pub seed_fingerprint: Option<u64>,
    pub t_max: u64,
    pub t: u64,
    pub epsilon: f64,
    pub delta: f64,
    pub spent_epsilon: f64,
    pub spent_delta: f64,
    pub spec: MechanismSpec,
    pub state: Vec<u8>,
}

/// Append a complete snapshot (header + body + checksum) to `out`.
/// On error `out` is truncated back to its original length.
pub(crate) fn encode_into(out: &mut Vec<u8>, body: &SnapshotBody<'_>) -> Result<(), SnapshotError> {
    let start = out.len();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.push(SNAPSHOT_VERSION);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&[0u8; 4]); // body length, patched below

    out.extend_from_slice(&body.session_id.to_le_bytes());
    out.extend_from_slice(&body.seed_fingerprint.to_le_bytes());
    out.extend_from_slice(&body.t_max.to_le_bytes());
    out.extend_from_slice(&body.t.to_le_bytes());
    out.extend_from_slice(&body.epsilon.to_bits().to_le_bytes());
    out.extend_from_slice(&body.delta.to_bits().to_le_bytes());
    out.extend_from_slice(&body.spent_epsilon.to_bits().to_le_bytes());
    out.extend_from_slice(&body.spent_delta.to_bits().to_le_bytes());

    let spec_len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    if let Err(e) = wire::encode_spec_into(out, body.spec) {
        out.truncate(start);
        return Err(SnapshotError::Unsupported { reason: e.to_string() });
    }
    let spec_len = out.len() - spec_len_at - 4;
    let Ok(spec_len) = u32::try_from(spec_len) else {
        out.truncate(start);
        return Err(SnapshotError::Malformed {
            reason: format!("spec encoding is {spec_len} bytes"),
        });
    };
    out[spec_len_at..spec_len_at + 4].copy_from_slice(&spec_len.to_le_bytes());

    let Ok(state_len) = u32::try_from(body.state.len()) else {
        out.truncate(start);
        return Err(SnapshotError::Malformed {
            reason: format!("state blob is {} bytes", body.state.len()),
        });
    };
    out.extend_from_slice(&state_len.to_le_bytes());
    out.extend_from_slice(body.state);

    let body_len = out.len() - start - SNAPSHOT_HEADER_LEN;
    if body_len > MAX_SNAPSHOT_BODY as usize {
        out.truncate(start);
        return Err(SnapshotError::BodyTooLarge { len: body_len as u32 });
    }
    let body_len = body_len as u32;
    out[start + 8..start + 12].copy_from_slice(&body_len.to_le_bytes());
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// Strict cursor over the checksummed body. Any shortfall here means the
/// encoder was buggy or the length fields were forged with a fixed-up
/// checksum, so everything maps to [`SnapshotError::Malformed`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(SnapshotError::Malformed {
                reason: format!("body ends inside {what}: need {n} bytes, have {remaining}"),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn take_u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn take_f64(&mut self, what: &str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    fn finish(self) -> Result<(), SnapshotError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(SnapshotError::Malformed {
                reason: format!("{left} unparsed bytes after the state blob"),
            });
        }
        Ok(())
    }
}

/// Decode a complete snapshot blob, validating everything.
pub(crate) fn decode(bytes: &[u8]) -> Result<DecodedSnapshot, SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(SnapshotError::Truncated { have: bytes.len(), need: SNAPSHOT_HEADER_LEN });
    }
    if bytes[0..4] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic { got: [bytes[0], bytes[1], bytes[2], bytes[3]] });
    }
    let version = bytes[4];
    if !(SNAPSHOT_OLDEST_READABLE..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion { got: version });
    }
    if bytes[5..8] != [0u8; 3] {
        return Err(SnapshotError::NonZeroReserved);
    }
    let body_len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if body_len > MAX_SNAPSHOT_BODY {
        return Err(SnapshotError::BodyTooLarge { len: body_len });
    }
    let need = SNAPSHOT_HEADER_LEN + body_len as usize + SNAPSHOT_TRAILER_LEN;
    if bytes.len() < need {
        return Err(SnapshotError::Truncated { have: bytes.len(), need });
    }
    if bytes.len() > need {
        return Err(SnapshotError::Malformed {
            reason: format!("{} trailing bytes after the checksum", bytes.len() - need),
        });
    }
    let crc_at = need - SNAPSHOT_TRAILER_LEN;
    let stored = u32::from_le_bytes([
        bytes[crc_at],
        bytes[crc_at + 1],
        bytes[crc_at + 2],
        bytes[crc_at + 3],
    ]);
    let computed = crc32(&bytes[..crc_at]);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { expected: computed, got: stored });
    }

    let mut c = Cursor::new(&bytes[SNAPSHOT_HEADER_LEN..crc_at]);
    let session_id = c.take_u64("session id")?;
    let seed_fingerprint = if version >= 2 { Some(c.take_u64("seed fingerprint")?) } else { None };
    let t_max = c.take_u64("t_max")?;
    let t = c.take_u64("t")?;
    let epsilon = c.take_f64("budget epsilon")?;
    let delta = c.take_f64("budget delta")?;
    let spent_epsilon = c.take_f64("spent epsilon")?;
    let spent_delta = c.take_f64("spent delta")?;
    let spec_len = c.take_u32("spec length")? as usize;
    let spec_bytes = c.take(spec_len, "spec")?;
    let spec = wire::decode_spec_exact(spec_bytes)
        .map_err(|e| SnapshotError::Malformed { reason: format!("spec: {e}") })?;
    let state_len = c.take_u32("state length")? as usize;
    let state = c.take(state_len, "state blob")?.to_vec();
    c.finish()?;

    Ok(DecodedSnapshot {
        session_id,
        seed_fingerprint,
        t_max,
        t,
        epsilon,
        delta,
        spent_epsilon,
        spent_delta,
        spec,
        state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blob() -> Vec<u8> {
        let spec = MechanismSpec::reg1_l2(3);
        let mut out = Vec::new();
        encode_into(
            &mut out,
            &SnapshotBody {
                session_id: 0x1122_3344_5566_7788,
                seed_fingerprint: seed_fingerprint(7, 0x1122_3344_5566_7788),
                t_max: 1 << 20,
                t: 17,
                epsilon: 1.0,
                delta: 1e-6,
                spent_epsilon: 1.0,
                spent_delta: 1e-6,
                spec: &spec,
                state: &[0xAB, 0xCD, 0xEF],
            },
        )
        .unwrap();
        out
    }

    fn refix_crc(blob: &mut [u8]) {
        let crc_at = blob.len() - SNAPSHOT_TRAILER_LEN;
        let crc = crc32(&blob[..crc_at]);
        blob[crc_at..].copy_from_slice(&crc.to_le_bytes());
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let blob = sample_blob();
        let d = decode(&blob).unwrap();
        assert_eq!(d.session_id, 0x1122_3344_5566_7788);
        assert_eq!(d.seed_fingerprint, Some(seed_fingerprint(7, 0x1122_3344_5566_7788)));
        assert_eq!(d.t_max, 1 << 20);
        assert_eq!(d.t, 17);
        assert_eq!(d.epsilon.to_bits(), 1.0f64.to_bits());
        assert_eq!(d.delta.to_bits(), 1e-6f64.to_bits());
        assert_eq!(d.spent_epsilon.to_bits(), 1.0f64.to_bits());
        assert_eq!(d.spent_delta.to_bits(), 1e-6f64.to_bits());
        assert_eq!(d.spec.label(), "priv-inc-reg-1");
        assert_eq!(d.spec.dim(), 3);
        assert_eq!(d.state, vec![0xAB, 0xCD, 0xEF]);
        // Re-encoding the decoded snapshot reproduces the exact bytes.
        let mut again = Vec::new();
        encode_into(
            &mut again,
            &SnapshotBody {
                session_id: d.session_id,
                seed_fingerprint: d.seed_fingerprint.unwrap(),
                t_max: d.t_max,
                t: d.t,
                epsilon: d.epsilon,
                delta: d.delta,
                spent_epsilon: d.spent_epsilon,
                spent_delta: d.spent_delta,
                spec: &d.spec,
                state: &d.state,
            },
        )
        .unwrap();
        assert_eq!(again, blob);
    }

    #[test]
    fn header_faults_report_typed_errors() {
        let blob = sample_blob();

        let mut forged = blob.clone();
        forged[0] = b'Q';
        assert!(matches!(decode(&forged), Err(SnapshotError::BadMagic { .. })));

        let mut forged = blob.clone();
        forged[4] = 3;
        assert!(matches!(decode(&forged), Err(SnapshotError::UnsupportedVersion { got: 3 })));

        let mut forged = blob.clone();
        forged[4] = 0;
        assert!(matches!(decode(&forged), Err(SnapshotError::UnsupportedVersion { got: 0 })));

        let mut forged = blob.clone();
        forged[6] = 1;
        assert!(matches!(decode(&forged), Err(SnapshotError::NonZeroReserved)));

        let mut forged = blob.clone();
        forged[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&forged), Err(SnapshotError::BodyTooLarge { .. })));

        // An in-cap but overlong body length reads as truncation.
        let mut forged = blob.clone();
        let len = u32::from_le_bytes([forged[8], forged[9], forged[10], forged[11]]);
        forged[8..12].copy_from_slice(&(len + 1).to_le_bytes());
        assert!(matches!(decode(&forged), Err(SnapshotError::Truncated { .. })));
    }

    #[test]
    fn every_truncation_prefix_is_a_typed_error() {
        let blob = sample_blob();
        for cut in 0..blob.len() {
            assert!(decode(&blob[..cut]).is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let blob = sample_blob();
        for i in 0..blob.len() {
            let mut flipped = blob.clone();
            flipped[i] ^= 0x01;
            assert!(decode(&flipped).is_err(), "flip at byte {i} decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut blob = sample_blob();
        blob.push(0);
        assert!(matches!(decode(&blob), Err(SnapshotError::Malformed { .. })));
    }

    #[test]
    fn forged_checksummed_lengths_are_malformed() {
        // Forge the spec length to swallow the rest of the body, then fix
        // the checksum so decoding reaches the body parser.
        let mut blob = sample_blob();
        let spec_len_at = SNAPSHOT_HEADER_LEN + 8 * 8;
        blob[spec_len_at..spec_len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        refix_crc(&mut blob);
        assert!(matches!(decode(&blob), Err(SnapshotError::Malformed { .. })));
    }

    /// Strip the seed fingerprint out of a v2 blob, producing the exact
    /// layout a pre-fingerprint (version 1) build would have written.
    fn downgrade_to_v1(blob: &[u8]) -> Vec<u8> {
        let mut v1 = Vec::with_capacity(blob.len() - 8);
        v1.extend_from_slice(&blob[..SNAPSHOT_HEADER_LEN + 8]);
        v1.extend_from_slice(&blob[SNAPSHOT_HEADER_LEN + 16..]);
        v1[4] = 1;
        let body_len = u32::from_le_bytes([v1[8], v1[9], v1[10], v1[11]]) - 8;
        v1[8..12].copy_from_slice(&body_len.to_le_bytes());
        refix_crc(&mut v1);
        v1
    }

    #[test]
    fn legacy_version_1_blobs_still_decode() {
        // Readers grow backwards: spilled sessions and checkpoint
        // manifests written before the fingerprint existed must keep
        // decoding, with the fingerprint reported as absent.
        let v1 = downgrade_to_v1(&sample_blob());
        let d = decode(&v1).unwrap();
        assert_eq!(d.seed_fingerprint, None);
        assert_eq!(d.session_id, 0x1122_3344_5566_7788);
        assert_eq!(d.t_max, 1 << 20);
        assert_eq!(d.t, 17);
        assert_eq!(d.state, vec![0xAB, 0xCD, 0xEF]);
    }

    #[test]
    fn seed_fingerprint_separates_seeds_and_sessions() {
        // The tripwire only works if nearby seeds and ids map to
        // different fingerprints; and it must be a pure function.
        assert_eq!(seed_fingerprint(7, 1), seed_fingerprint(7, 1));
        assert_ne!(seed_fingerprint(7, 1), seed_fingerprint(8, 1));
        assert_ne!(seed_fingerprint(7, 1), seed_fingerprint(7, 2));
        assert_ne!(seed_fingerprint(0, 0), seed_fingerprint(1, 0));
    }

    #[test]
    fn custom_set_specs_are_unsupported() {
        use crate::spec::SetSpec;
        use std::sync::Arc;
        let spec = MechanismSpec::Trivial {
            set: SetSpec::Custom(Arc::new(|| {
                Box::new(pir_geometry::L2Ball::new(2, 1.0)) as Box<dyn pir_geometry::ConvexSet>
            })),
        };
        let mut out = vec![0xFE];
        let err = encode_into(
            &mut out,
            &SnapshotBody {
                session_id: 1,
                seed_fingerprint: seed_fingerprint(7, 1),
                t_max: 8,
                t: 0,
                epsilon: 1.0,
                delta: 1e-6,
                spent_epsilon: 0.0,
                spent_delta: 0.0,
                spec: &spec,
                state: &[],
            },
        )
        .unwrap_err();
        assert!(matches!(err, SnapshotError::Unsupported { .. }));
        // Failed encodes leave the output buffer untouched.
        assert_eq!(out, vec![0xFE]);
    }
}
