//! Engine error type.
//!
//! Cloneable (mechanism errors are carried as rendered strings) so one
//! batch-level failure can be fanned out to every affected request in an
//! [`ingest`](crate::ShardedEngine::ingest) report.

/// Errors surfaced by the multi-stream engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// No session with this id exists in the engine.
    UnknownSession {
        /// The offending session id.
        id: u64,
    },
    /// A session with this id already exists.
    DuplicateSession {
        /// The offending session id.
        id: u64,
    },
    /// Invalid engine configuration.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The underlying mechanism rejected a point, overflowed its horizon,
    /// or failed internally (rendered [`pir_core::CoreError`]).
    Mechanism {
        /// Rendered mechanism error.
        reason: String,
    },
    /// The session's privacy accountant refused a charge (rendered
    /// [`pir_dp::DpError`]).
    Budget {
        /// Rendered accounting error.
        reason: String,
    },
    /// A shard's ingress queue cannot accept the command without
    /// exceeding its configured depth **right now**. Nothing was
    /// enqueued — rejection is atomic, so no prefix of a batch is ever
    /// applied — and the rejection is *transient*: the same command can
    /// succeed once the shard drains (see
    /// [`is_retryable`](Self::is_retryable)).
    Backpressure {
        /// Shard whose queue was full.
        shard: usize,
        /// Points queued on that shard, as observed by the failed
        /// reservation itself (never a later re-read): the number the
        /// atomic compare-and-swap lost to, so operators can trust it
        /// even with many concurrent submitters.
        depth: usize,
        /// The shard's configured queue depth.
        capacity: usize,
        /// Queue cost (in points) of the rejected command.
        cost: usize,
    },
    /// The command's queue cost exceeds the shard queue's **total
    /// capacity** (`cost > capacity`), so it can never be accepted no
    /// matter how empty the queue gets — a *permanent* rejection that no
    /// retry can clear (see [`is_retryable`](Self::is_retryable)). Split
    /// the batch below `queue_depth`, or provision a deeper queue.
    /// Nothing was enqueued.
    CommandTooLarge {
        /// Shard the command routed to.
        shard: usize,
        /// Queue cost (in points) of the rejected command.
        cost: usize,
        /// The shard's configured queue depth, which `cost` exceeds.
        capacity: usize,
    },
    /// The pipelined engine has shut down (its worker threads are gone),
    /// so no further commands can be accepted or answered.
    Closed,
    /// The shard's write-ahead log refused or failed the append, so the
    /// command was **not executed** — log-before-execute means a command
    /// that cannot be made durable is never applied (rendered
    /// [`WalError`](crate::wal::WalError)). Permanent for the submitted
    /// command; the worker's log stays poisoned until restart.
    Wal {
        /// Rendered write-ahead-log error.
        reason: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownSession { id } => write!(f, "unknown session {id}"),
            EngineError::DuplicateSession { id } => write!(f, "session {id} already exists"),
            EngineError::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            EngineError::Mechanism { reason } => write!(f, "mechanism error: {reason}"),
            EngineError::Budget { reason } => write!(f, "privacy budget error: {reason}"),
            EngineError::Backpressure { shard, depth, capacity, cost } => write!(
                f,
                "backpressure on shard {shard}: queue depth {depth}/{capacity} cannot take {cost} more point(s)"
            ),
            EngineError::CommandTooLarge { shard, cost, capacity } => write!(
                f,
                "command of {cost} point(s) can never fit shard {shard}'s queue (capacity {capacity}): split the batch or raise queue_depth"
            ),
            EngineError::Closed => write!(f, "engine handle is closed"),
            EngineError::Wal { reason } => {
                write!(f, "write-ahead log error (command not executed): {reason}")
            }
        }
    }
}

impl EngineError {
    /// The retry contract, in one predicate: `true` iff the *same*
    /// command can succeed later without the caller changing anything.
    ///
    /// Only [`Backpressure`](Self::Backpressure) qualifies — the queue
    /// was full *at that moment* and drains continuously. Everything else
    /// is permanent as submitted: [`CommandTooLarge`](Self::CommandTooLarge)
    /// can never fit, [`Closed`](Self::Closed) engines do not come back,
    /// and the session/config/mechanism/budget errors describe the
    /// command, not the moment. (`docs/OPERATIONS.md` spells out the
    /// operator-facing contract.)
    pub fn is_retryable(&self) -> bool {
        matches!(self, EngineError::Backpressure { .. })
    }
}

impl std::error::Error for EngineError {}

impl From<pir_core::CoreError> for EngineError {
    fn from(e: pir_core::CoreError) -> Self {
        EngineError::Mechanism { reason: e.to_string() }
    }
}

impl From<pir_dp::DpError> for EngineError {
    fn from(e: pir_dp::DpError) -> Self {
        EngineError::Budget { reason: e.to_string() }
    }
}
