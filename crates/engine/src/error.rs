//! Engine error type.
//!
//! Cloneable (mechanism errors are carried as rendered strings) so one
//! batch-level failure can be fanned out to every affected request in an
//! [`ingest`](crate::ShardedEngine::ingest) report.

/// Errors surfaced by the multi-stream engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// No session with this id exists in the engine.
    UnknownSession {
        /// The offending session id.
        id: u64,
    },
    /// A session with this id already exists.
    DuplicateSession {
        /// The offending session id.
        id: u64,
    },
    /// Invalid engine configuration.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// The underlying mechanism rejected a point, overflowed its horizon,
    /// or failed internally (rendered [`pir_core::CoreError`]).
    Mechanism {
        /// Rendered mechanism error.
        reason: String,
    },
    /// The session's privacy accountant refused a charge (rendered
    /// [`pir_dp::DpError`]).
    Budget {
        /// Rendered accounting error.
        reason: String,
    },
    /// A shard's ingress queue cannot accept the command without
    /// exceeding its configured depth. Nothing was enqueued — rejection
    /// is atomic, so no prefix of a batch is ever applied.
    Backpressure {
        /// Shard whose queue was full.
        shard: usize,
        /// Points already queued on that shard when the command arrived.
        depth: usize,
        /// The shard's configured queue depth.
        capacity: usize,
        /// Queue cost (in points) of the rejected command.
        cost: usize,
    },
    /// The pipelined engine has shut down (its worker threads are gone),
    /// so no further commands can be accepted or answered.
    Closed,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownSession { id } => write!(f, "unknown session {id}"),
            EngineError::DuplicateSession { id } => write!(f, "session {id} already exists"),
            EngineError::InvalidConfig { reason } => write!(f, "invalid engine config: {reason}"),
            EngineError::Mechanism { reason } => write!(f, "mechanism error: {reason}"),
            EngineError::Budget { reason } => write!(f, "privacy budget error: {reason}"),
            EngineError::Backpressure { shard, depth, capacity, cost } => write!(
                f,
                "backpressure on shard {shard}: queue depth {depth}/{capacity} cannot take {cost} more point(s)"
            ),
            EngineError::Closed => write!(f, "engine handle is closed"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<pir_core::CoreError> for EngineError {
    fn from(e: pir_core::CoreError) -> Self {
        EngineError::Mechanism { reason: e.to_string() }
    }
}

impl From<pir_dp::DpError> for EngineError {
    fn from(e: pir_dp::DpError) -> Self {
        EngineError::Budget { reason: e.to_string() }
    }
}
