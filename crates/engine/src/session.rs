//! One user stream: a mechanism plus its privacy ledger.

use crate::error::EngineError;
use crate::spec::MechanismSpec;
use pir_core::IncrementalMechanism;
use pir_dp::{NoiseRng, PrivacyAccountant, PrivacyParams};
use pir_erm::DataPoint;

/// One independent private stream served by the engine: a paper mechanism
/// together with the [`PrivacyAccountant`] guarding its `(ε, δ)` budget.
///
/// The accountant is defense in depth: the mechanisms pre-split their
/// budgets analytically, so the session records a single up-front charge
/// covering the whole release sequence and the ledger makes any future
/// double-spend (e.g. respawning a mechanism on the same budget) an error
/// instead of a silent privacy failure.
pub struct StreamSession {
    id: u64,
    mech: Box<dyn IncrementalMechanism>,
    accountant: PrivacyAccountant,
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("id", &self.id)
            .field("mechanism", &self.mech.name())
            .field("t", &self.mech.t())
            .field("spent", &self.accountant.spent())
            .finish()
    }
}

impl StreamSession {
    /// Spawn a session: materialize the spec's mechanism for streams of
    /// length up to `t_max` under `params`, and charge the accountant for
    /// the whole release sequence (skipped for the non-private baselines,
    /// which spend nothing).
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] if the mechanism constructor rejects
    /// the configuration.
    pub fn spawn(
        id: u64,
        spec: &MechanismSpec,
        t_max: usize,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
    ) -> Result<Self, EngineError> {
        let mech = spec.build(t_max, params, rng)?;
        let mut accountant = PrivacyAccountant::new(*params);
        if spec.is_private() {
            accountant.charge(mech.name(), *params)?;
        }
        Ok(StreamSession { id, mech, accountant })
    }

    /// Session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Name of the mechanism serving this stream.
    pub fn mechanism_name(&self) -> String {
        self.mech.name()
    }

    /// Ambient dimension of the released estimators.
    pub fn dim(&self) -> usize {
        self.mech.dim()
    }

    /// Stream points consumed so far.
    pub fn t(&self) -> usize {
        self.mech.t()
    }

    /// The session's privacy ledger.
    pub fn accountant(&self) -> &PrivacyAccountant {
        &self.accountant
    }

    /// The underlying mechanism (for evaluation-harness access).
    pub fn mechanism(&self) -> &dyn IncrementalMechanism {
        self.mech.as_ref()
    }

    /// Consume one stream point, releasing the next private estimator.
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] on contract violations or overflow.
    pub fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>, EngineError> {
        Ok(self.mech.observe(z)?)
    }

    /// [`observe`](StreamSession::observe) writing the release into a
    /// caller-provided buffer of length [`dim`](StreamSession::dim) —
    /// release-for-release identical to it. With a paper mechanism behind
    /// it this is allocation-free in steady state: the mechanism runs the
    /// whole step on its own preallocated scratch, so a caller that reuses
    /// one release buffer per session observes points without any heap
    /// traffic (the invariant pinned by `tests/alloc_steady_state.rs`).
    ///
    /// On error, `out` contents are unspecified.
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] on contract violations, overflow, or a
    /// wrong-length buffer.
    pub fn observe_into(&mut self, z: &DataPoint, out: &mut [f64]) -> Result<(), EngineError> {
        Ok(self.mech.observe_into(z, out)?)
    }

    /// Consume a run of consecutive stream points through the mechanism's
    /// amortized batch path, releasing one estimator per point.
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] on contract violations anywhere in the
    /// batch (rejected atomically) or overflow.
    pub fn observe_batch(&mut self, batch: &[DataPoint]) -> Result<Vec<Vec<f64>>, EngineError> {
        Ok(self.mech.observe_batch(batch)?)
    }
}
