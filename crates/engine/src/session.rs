//! One user stream: a mechanism plus its privacy ledger.

use crate::error::EngineError;
use crate::snapshot::{self, SnapshotError};
use crate::spec::MechanismSpec;
use pir_core::IncrementalMechanism;
use pir_dp::{NoiseRng, PrivacyAccountant, PrivacyParams};
use pir_erm::DataPoint;

/// One independent private stream served by the engine: a paper mechanism
/// together with the [`PrivacyAccountant`] guarding its `(ε, δ)` budget.
///
/// The accountant is defense in depth: the mechanisms pre-split their
/// budgets analytically, so the session records a single up-front charge
/// covering the whole release sequence and the ledger makes any future
/// double-spend (e.g. respawning a mechanism on the same budget) an error
/// instead of a silent privacy failure.
pub struct StreamSession {
    id: u64,
    seed_fingerprint: u64,
    spec: MechanismSpec,
    t_max: usize,
    mech: Box<dyn IncrementalMechanism>,
    accountant: PrivacyAccountant,
}

impl std::fmt::Debug for StreamSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamSession")
            .field("id", &self.id)
            .field("mechanism", &self.mech.name())
            .field("t", &self.mech.t())
            .field("spent", &self.accountant.spent())
            .finish()
    }
}

impl StreamSession {
    /// Spawn a session: derive the per-session noise seed from
    /// `engine_seed` (via `session_seed` in `engine.rs` — never shard
    /// count or spawn order), materialize the spec's mechanism for
    /// streams of length up to `t_max` under `params`, and charge the
    /// accountant for the whole release sequence (skipped for the
    /// non-private baselines, which spend nothing). The session also
    /// records [`snapshot::seed_fingerprint`] so snapshots can prove
    /// which engine seed they were taken under.
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] if the mechanism constructor rejects
    /// the configuration.
    pub fn spawn(
        id: u64,
        spec: &MechanismSpec,
        t_max: usize,
        params: &PrivacyParams,
        engine_seed: u64,
    ) -> Result<Self, EngineError> {
        let mut rng = NoiseRng::seed_from_u64(crate::engine::session_seed(engine_seed, id));
        let mech = spec.build(t_max, params, &mut rng)?;
        let mut accountant = PrivacyAccountant::new(*params);
        if spec.is_private() {
            accountant.charge(mech.name(), *params)?;
        }
        Ok(StreamSession {
            id,
            seed_fingerprint: snapshot::seed_fingerprint(engine_seed, id),
            spec: spec.clone(),
            t_max,
            mech,
            accountant,
        })
    }

    /// Session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Name of the mechanism serving this stream.
    pub fn mechanism_name(&self) -> String {
        self.mech.name()
    }

    /// Ambient dimension of the released estimators.
    pub fn dim(&self) -> usize {
        self.mech.dim()
    }

    /// Stream points consumed so far.
    pub fn t(&self) -> usize {
        self.mech.t()
    }

    /// The session's privacy ledger.
    pub fn accountant(&self) -> &PrivacyAccountant {
        &self.accountant
    }

    /// The underlying mechanism (for evaluation-harness access).
    pub fn mechanism(&self) -> &dyn IncrementalMechanism {
        self.mech.as_ref()
    }

    /// Consume one stream point, releasing the next private estimator.
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] on contract violations or overflow.
    pub fn observe(&mut self, z: &DataPoint) -> Result<Vec<f64>, EngineError> {
        Ok(self.mech.observe(z)?)
    }

    /// [`observe`](StreamSession::observe) writing the release into a
    /// caller-provided buffer of length [`dim`](StreamSession::dim) —
    /// release-for-release identical to it. With a paper mechanism behind
    /// it this is allocation-free in steady state: the mechanism runs the
    /// whole step on its own preallocated scratch, so a caller that reuses
    /// one release buffer per session observes points without any heap
    /// traffic (the invariant pinned by `tests/alloc_steady_state.rs`).
    ///
    /// On error, `out` contents are unspecified.
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] on contract violations, overflow, or a
    /// wrong-length buffer.
    pub fn observe_into(&mut self, z: &DataPoint, out: &mut [f64]) -> Result<(), EngineError> {
        Ok(self.mech.observe_into(z, out)?)
    }

    /// Consume a run of consecutive stream points through the mechanism's
    /// amortized batch path, releasing one estimator per point.
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] on contract violations anywhere in the
    /// batch (rejected atomically) or overflow.
    pub fn observe_batch(&mut self, batch: &[DataPoint]) -> Result<Vec<Vec<f64>>, EngineError> {
        Ok(self.mech.observe_batch(batch)?)
    }

    /// [`observe_batch`](StreamSession::observe_batch) writing the
    /// releases into one caller-provided flat buffer of length
    /// `batch.len() · dim` — release-for-release identical to it. With a
    /// paper mechanism behind it this is the zero-allocation batch entry
    /// point: the mechanism hoists its per-batch constants and writes
    /// every release straight into the caller's buffer (the invariant
    /// pinned by `tests/alloc_steady_state.rs`).
    ///
    /// On error, `out` contents are unspecified.
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] on contract violations anywhere in the
    /// batch (rejected atomically), overflow, or a wrong-length buffer.
    pub fn observe_batch_into(
        &mut self,
        batch: &[DataPoint],
        out: &mut [f64],
    ) -> Result<(), EngineError> {
        Ok(self.mech.observe_batch_into(batch, out)?)
    }

    /// Whether this session can be captured by [`snapshot`]
    /// (StreamSession::snapshot): the mechanism exports resumable state
    /// and the spec is serializable. False for `PRIVINCERM` (its state is
    /// the full observed history) and for specs with custom set factories.
    pub fn supports_snapshot(&self) -> bool {
        self.mech.supports_state() && self.spec.is_codable()
    }

    /// Append a `PIRS` snapshot of this session to `out` — everything
    /// needed by [`restore`](StreamSession::restore) to resume the stream
    /// bit-identically on an engine with the same seed. `O(d log T)`
    /// bytes; the sketch matrix and other construction-time randomness
    /// are reproduced from the seed rather than serialized. On error
    /// `out` is left at its original length.
    ///
    /// # Errors
    /// [`SnapshotError::Unsupported`] when
    /// [`supports_snapshot`](StreamSession::supports_snapshot) is false.
    pub fn snapshot_into(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        let mut state = Vec::new();
        self.mech
            .save_state(&mut state)
            .map_err(|e| SnapshotError::Unsupported { reason: e.to_string() })?;
        let budget = self.accountant.budget();
        let (spent_epsilon, spent_delta) = self.accountant.spent();
        snapshot::encode_into(
            out,
            &snapshot::SnapshotBody {
                session_id: self.id,
                seed_fingerprint: self.seed_fingerprint,
                t_max: self.t_max as u64,
                t: self.mech.t() as u64,
                epsilon: budget.epsilon(),
                delta: budget.delta(),
                spent_epsilon,
                spent_delta,
                spec: &self.spec,
                state: &state,
            },
        )
    }

    /// [`snapshot_into`](StreamSession::snapshot_into) into a fresh
    /// buffer.
    ///
    /// # Errors
    /// As [`snapshot_into`](StreamSession::snapshot_into).
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut out = Vec::new();
        self.snapshot_into(&mut out)?;
        Ok(out)
    }

    /// Rebuild a session from a `PIRS` blob: decode and validate the
    /// snapshot, respawn the mechanism deterministically from
    /// `engine_seed` (the owning [`EngineConfig::seed`] — construction
    /// randomness such as Mechanism 2's sketch matrix is a pure function
    /// of it and the session id), overlay the dynamic state, and verify
    /// the rebuilt session agrees with the snapshot's recorded step count
    /// and privacy ledger bit-for-bit.
    ///
    /// The engine seed is part of the durability contract: restoring
    /// under a *different* seed would silently change construction-time
    /// randomness such as Mechanism 2's sketch even though the trees
    /// carry their own serialized RNG state. The snapshot's recorded
    /// [`seed_fingerprint`](snapshot::seed_fingerprint) is therefore
    /// checked against the one `engine_seed` implies before anything is
    /// rebuilt, and a mismatch fails loudly as
    /// [`SnapshotError::SeedMismatch`]. Legacy version-1 blobs predate
    /// the fingerprint and restore under the old trust-the-caller
    /// contract (see `docs/KNOWN_FAILURES.md`).
    ///
    /// # Errors
    /// Any [`SnapshotError`] from decoding;
    /// [`SnapshotError::SeedMismatch`] for a wrong-seeded engine;
    /// [`SnapshotError::Restore`] when the session cannot be rebuilt or
    /// disagrees with the recorded `t`/ledger.
    ///
    /// [`EngineConfig::seed`]: crate::engine::EngineConfig
    pub fn restore(bytes: &[u8], engine_seed: u64) -> Result<StreamSession, SnapshotError> {
        let snap = snapshot::decode(bytes)?;
        // Legacy version-1 blobs carry no fingerprint (`None`) and fall
        // back to the old trust-the-caller contract.
        if let Some(got) = snap.seed_fingerprint {
            let expected = snapshot::seed_fingerprint(engine_seed, snap.session_id);
            if got != expected {
                return Err(SnapshotError::SeedMismatch { expected, got });
            }
        }
        let t_max = usize::try_from(snap.t_max).map_err(|_| SnapshotError::Malformed {
            reason: format!("t_max {} overflows usize", snap.t_max),
        })?;
        if snap.t > snap.t_max {
            return Err(SnapshotError::Malformed {
                reason: format!("t {} exceeds t_max {}", snap.t, snap.t_max),
            });
        }
        let params = PrivacyParams::new(snap.epsilon, snap.delta)
            .map_err(|e| SnapshotError::Malformed { reason: format!("privacy params: {e}") })?;
        let mut session =
            StreamSession::spawn(snap.session_id, &snap.spec, t_max, &params, engine_seed)
                .map_err(|e| SnapshotError::Restore { reason: e.to_string() })?;
        session
            .mech
            .load_state(&snap.state)
            .map_err(|e| SnapshotError::Restore { reason: e.to_string() })?;
        if session.mech.t() as u64 != snap.t {
            return Err(SnapshotError::Restore {
                reason: format!(
                    "restored mechanism reports t = {}, snapshot recorded {}",
                    session.mech.t(),
                    snap.t
                ),
            });
        }
        let (spent_epsilon, spent_delta) = session.accountant.spent();
        if spent_epsilon.to_bits() != snap.spent_epsilon.to_bits()
            || spent_delta.to_bits() != snap.spent_delta.to_bits()
        {
            return Err(SnapshotError::Restore {
                reason: format!(
                    "privacy ledger diverged: respawn spent ({spent_epsilon}, {spent_delta}), \
                     snapshot recorded ({}, {})",
                    snap.spent_epsilon, snap.spent_delta
                ),
            });
        }
        Ok(session)
    }
}
