//! The engine's length-prefixed binary wire protocol.
//!
//! Every [`Command`] and [`Reply`] travels as one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"PIRW"
//! 4       1     version (currently 1)
//! 5       1     opcode  (command 0x01–0x05, reply 0x81–0xFF)
//! 6       2     reserved, must be 0
//! 8       4     payload length N, little-endian u32 (≤ 64 MiB)
//! 12      N     payload (opcode-specific, all integers/floats LE)
//! ```
//!
//! Integers are little-endian; floats are IEEE-754 `f64` bit patterns,
//! little-endian. Decoding is strict: wrong magic, unknown version or
//! opcode, oversized length, truncated payloads, and trailing payload
//! bytes are each a distinct [`WireError`] — a malformed frame can never
//! be half-applied. `docs/PROTOCOL.md` documents the format with a worked
//! byte-level example (which `tests/wire.rs` pins exactly).
//!
//! [`MechanismSpec`]s containing [`SetSpec::Custom`](crate::SetSpec)
//! factories are not wire-encodable (they carry arbitrary closures);
//! encoding one reports [`WireError::Unencodable`].

use crate::error::EngineError;
use crate::ingress::{Command, Reply};
use crate::spec::{LossSpec, MechanismSpec, SetSpec, SolverSpec};
use pir_core::{DescentStrategy, PrivIncReg1Config, PrivIncReg2Config, TauRule};
use pir_dp::PrivacyParams;
use pir_erm::DataPoint;
use std::io::{Read, Write};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"PIRW";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Hard cap on a frame's payload length (64 MiB): a corrupted length
/// field must not OOM the server.
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// Frame header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Frame opcodes (commands in 0x01–0x7F, replies in 0x80–0xFF).
pub mod opcode {
    /// [`Command::Open`](crate::Command::Open).
    pub const OPEN: u8 = 0x01;
    /// [`Command::Observe`](crate::Command::Observe).
    pub const OBSERVE: u8 = 0x02;
    /// [`Command::ObserveBatch`](crate::Command::ObserveBatch).
    pub const OBSERVE_BATCH: u8 = 0x03;
    /// [`Command::Release`](crate::Command::Release).
    pub const RELEASE: u8 = 0x04;
    /// [`Command::Close`](crate::Command::Close).
    pub const CLOSE: u8 = 0x05;
    /// [`Reply::Opened`](crate::Reply::Opened).
    pub const R_OPENED: u8 = 0x81;
    /// [`Reply::Releases`](crate::Reply::Releases).
    pub const R_RELEASES: u8 = 0x82;
    /// [`Reply::SessionReleased`](crate::Reply::SessionReleased).
    pub const R_SESSION_RELEASED: u8 = 0x84;
    /// [`Reply::Closed`](crate::Reply::Closed).
    pub const R_CLOSED: u8 = 0x85;
    /// [`Reply::Err`](crate::Reply::Err).
    pub const R_ERROR: u8 = 0xFF;
}

/// Decode/encode failures. Every variant is a *protocol* error — the
/// engine's own failures travel inside [`Reply::Err`] frames instead.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// A version this implementation does not speak.
    UnsupportedVersion(u8),
    /// An opcode outside the protocol (or a reply opcode where a command
    /// was expected, and vice versa).
    UnknownOpcode(u8),
    /// Reserved header bytes were not zero.
    NonZeroReserved(u16),
    /// The length field exceeds [`MAX_PAYLOAD`].
    FrameTooLarge {
        /// Claimed payload length.
        len: u32,
    },
    /// The stream or buffer ended mid-frame.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The payload was longer than its opcode's encoding consumes.
    TrailingBytes {
        /// Unconsumed payload bytes.
        extra: usize,
    },
    /// A structurally invalid payload (bad tag, bad UTF-8, invalid
    /// privacy parameters, …).
    Malformed(String),
    /// The value cannot be encoded (e.g. a custom constraint-set
    /// factory, which carries an arbitrary closure).
    Unencodable(String),
    /// An I/O failure on the underlying stream.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::NonZeroReserved(r) => write!(f, "reserved header bytes set: 0x{r:04x}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, got {got}")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing payload byte(s) after decoded value")
            }
            WireError::Malformed(reason) => write!(f, "malformed payload: {reason}"),
            WireError::Unencodable(reason) => write!(f, "value not wire-encodable: {reason}"),
            WireError::Io(reason) => write!(f, "wire i/o error: {reason}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Primitive encoders / decoders
// ---------------------------------------------------------------------------

/// Payload byte builder over a caller-owned buffer, so frames can be
/// encoded in place — straight into a batch or log staging buffer —
/// without an intermediate allocation per frame.
struct Enc<'a> {
    buf: &'a mut Vec<u8>,
}

impl Enc<'_> {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Strict payload cursor.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let Some(s) = self.buf.get(self.pos..).and_then(|rest| rest.get(..n)) else {
            return Err(WireError::Truncated {
                expected: self.pos.saturating_add(n),
                got: self.buf.len(),
            });
        };
        self.pos += n;
        Ok(s)
    }

    /// Fixed-size [`take`](Self::take): the array form makes the
    /// byte-order conversions below infallible.
    fn take_arr<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let Some(&arr) = self.buf.get(self.pos..).and_then(|rest| rest.first_chunk::<N>()) else {
            return Err(WireError::Truncated {
                expected: self.pos.saturating_add(N),
                got: self.buf.len(),
            });
        };
        self.pos += N;
        Ok(arr)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.take_arr()?;
        Ok(b)
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_arr()?))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_arr()?))
    }
    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take_arr()?))
    }
    fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed(format!("{v} overflows usize")))
    }
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".to_string()))
    }
    fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("boolean byte must be 0/1, got {b}"))),
        }
    }

    /// Pre-allocation capacity for a claimed element count: never more
    /// than the remaining payload could encode at `min_elem_size` bytes
    /// per element, so an untrusted count cannot allocate past the frame
    /// cap (the decode itself still errors `Truncated` on the shortfall).
    fn capacity(&self, claimed: usize, min_elem_size: usize) -> usize {
        claimed.min((self.buf.len() - self.pos) / min_elem_size.max(1))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos < self.buf.len() {
            return Err(WireError::TrailingBytes { extra: self.buf.len() - self.pos });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Domain encodings
// ---------------------------------------------------------------------------

fn enc_point(e: &mut Enc<'_>, p: &DataPoint) {
    e.u32(p.x.len() as u32);
    for v in &p.x {
        e.f64(*v);
    }
    e.f64(p.y);
}

fn dec_point(d: &mut Dec) -> Result<DataPoint, WireError> {
    let dim = d.u32()? as usize;
    let mut x = Vec::with_capacity(d.capacity(dim, 8));
    for _ in 0..dim {
        x.push(d.f64()?);
    }
    let y = d.f64()?;
    Ok(DataPoint::new(x, y))
}

fn enc_params(e: &mut Enc<'_>, p: &PrivacyParams) {
    e.f64(p.epsilon());
    e.f64(p.delta());
}

fn dec_params(d: &mut Dec) -> Result<PrivacyParams, WireError> {
    let (eps, delta) = (d.f64()?, d.f64()?);
    PrivacyParams::new(eps, delta).map_err(|err| WireError::Malformed(err.to_string()))
}

fn enc_set(e: &mut Enc<'_>, s: &SetSpec) -> Result<(), WireError> {
    match s {
        SetSpec::L2Ball { dim, radius } => {
            e.u8(0);
            e.u64(*dim as u64);
            e.f64(*radius);
        }
        SetSpec::L1Ball { dim, radius } => {
            e.u8(1);
            e.u64(*dim as u64);
            e.f64(*radius);
        }
        SetSpec::LinfBall { dim, radius } => {
            e.u8(2);
            e.u64(*dim as u64);
            e.f64(*radius);
        }
        SetSpec::Simplex { dim, scale } => {
            e.u8(3);
            e.u64(*dim as u64);
            e.f64(*scale);
        }
        SetSpec::Custom(_) => {
            return Err(WireError::Unencodable(
                "SetSpec::Custom carries an arbitrary factory closure".to_string(),
            ));
        }
    }
    Ok(())
}

fn dec_set(d: &mut Dec) -> Result<SetSpec, WireError> {
    let tag = d.u8()?;
    let dim = d.usize()?;
    let scalar = d.f64()?;
    Ok(match tag {
        0 => SetSpec::L2Ball { dim, radius: scalar },
        1 => SetSpec::L1Ball { dim, radius: scalar },
        2 => SetSpec::LinfBall { dim, radius: scalar },
        3 => SetSpec::Simplex { dim, scale: scalar },
        t => return Err(WireError::Malformed(format!("unknown SetSpec tag {t}"))),
    })
}

fn enc_loss(e: &mut Enc<'_>, l: &LossSpec) {
    match l {
        LossSpec::Squared => e.u8(0),
        LossSpec::Logistic => e.u8(1),
        LossSpec::RegularizedSquared { lambda } => {
            e.u8(2);
            e.f64(*lambda);
        }
    }
}

fn dec_loss(d: &mut Dec) -> Result<LossSpec, WireError> {
    Ok(match d.u8()? {
        0 => LossSpec::Squared,
        1 => LossSpec::Logistic,
        2 => LossSpec::RegularizedSquared { lambda: d.f64()? },
        t => return Err(WireError::Malformed(format!("unknown LossSpec tag {t}"))),
    })
}

fn enc_solver(e: &mut Enc<'_>, s: &SolverSpec) {
    match s {
        SolverSpec::NoisyGd { iters, beta } => {
            e.u8(0);
            e.u64(*iters as u64);
            e.f64(*beta);
        }
        SolverSpec::OutputPerturbation { exact_iters } => {
            e.u8(1);
            e.u64(*exact_iters as u64);
        }
        SolverSpec::FrankWolfe { iters } => {
            e.u8(2);
            e.u64(*iters as u64);
        }
    }
}

fn dec_solver(d: &mut Dec) -> Result<SolverSpec, WireError> {
    Ok(match d.u8()? {
        0 => SolverSpec::NoisyGd { iters: d.usize()?, beta: d.f64()? },
        1 => SolverSpec::OutputPerturbation { exact_iters: d.usize()? },
        2 => SolverSpec::FrankWolfe { iters: d.usize()? },
        t => return Err(WireError::Malformed(format!("unknown SolverSpec tag {t}"))),
    })
}

fn enc_tau(e: &mut Enc<'_>, t: &TauRule) {
    match t {
        TauRule::Fixed(tau) => {
            e.u8(0);
            e.u64(*tau as u64);
        }
        TauRule::Convex => e.u8(1),
        TauRule::StronglyConvex => e.u8(2),
        TauRule::LowWidth => e.u8(3),
    }
}

fn dec_tau(d: &mut Dec) -> Result<TauRule, WireError> {
    Ok(match d.u8()? {
        0 => TauRule::Fixed(d.usize()?),
        1 => TauRule::Convex,
        2 => TauRule::StronglyConvex,
        3 => TauRule::LowWidth,
        t => return Err(WireError::Malformed(format!("unknown TauRule tag {t}"))),
    })
}

fn enc_strategy(e: &mut Enc<'_>, s: &DescentStrategy) {
    e.u8(match s {
        DescentStrategy::RidgedQuadraticFista => 0,
        DescentStrategy::PaperNoisyPgd => 1,
    });
}

fn dec_strategy(d: &mut Dec) -> Result<DescentStrategy, WireError> {
    Ok(match d.u8()? {
        0 => DescentStrategy::RidgedQuadraticFista,
        1 => DescentStrategy::PaperNoisyPgd,
        t => return Err(WireError::Malformed(format!("unknown DescentStrategy tag {t}"))),
    })
}

fn enc_reg1(e: &mut Enc<'_>, c: &PrivIncReg1Config) {
    e.f64(c.beta);
    e.u64(c.max_pgd_iters as u64);
    e.u8(c.warm_start as u8);
    enc_strategy(e, &c.strategy);
}

fn dec_reg1(d: &mut Dec) -> Result<PrivIncReg1Config, WireError> {
    Ok(PrivIncReg1Config {
        beta: d.f64()?,
        max_pgd_iters: d.usize()?,
        warm_start: d.bool()?,
        strategy: dec_strategy(d)?,
    })
}

fn enc_reg2(e: &mut Enc<'_>, c: &PrivIncReg2Config) {
    e.f64(c.beta);
    match c.gamma {
        None => e.u8(0),
        Some(g) => {
            e.u8(1);
            e.f64(g);
        }
    }
    match c.m_override {
        None => e.u8(0),
        Some(m) => {
            e.u8(1);
            e.u64(m as u64);
        }
    }
    e.f64(c.gordon_constant);
    e.u64(c.max_pgd_iters as u64);
    e.u64(c.lift_iters as u64);
    enc_strategy(e, &c.strategy);
}

fn dec_reg2(d: &mut Dec) -> Result<PrivIncReg2Config, WireError> {
    let beta = d.f64()?;
    let gamma = if d.bool()? { Some(d.f64()?) } else { None };
    let m_override = if d.bool()? { Some(d.usize()?) } else { None };
    Ok(PrivIncReg2Config {
        beta,
        gamma,
        m_override,
        gordon_constant: d.f64()?,
        max_pgd_iters: d.usize()?,
        lift_iters: d.usize()?,
        strategy: dec_strategy(d)?,
    })
}

fn enc_spec(e: &mut Enc<'_>, spec: &MechanismSpec) -> Result<(), WireError> {
    match spec {
        MechanismSpec::Erm { set, loss, solver, tau } => {
            e.u8(0);
            enc_set(e, set)?;
            enc_loss(e, loss);
            enc_solver(e, solver);
            enc_tau(e, tau);
        }
        MechanismSpec::Reg1 { set, config } => {
            e.u8(1);
            enc_set(e, set)?;
            enc_reg1(e, config);
        }
        MechanismSpec::Reg2 { set, domain_width, config } => {
            e.u8(2);
            enc_set(e, set)?;
            e.f64(*domain_width);
            enc_reg2(e, config);
        }
        MechanismSpec::Trivial { set } => {
            e.u8(3);
            enc_set(e, set)?;
        }
        MechanismSpec::ExactOracle { set } => {
            e.u8(4);
            enc_set(e, set)?;
        }
    }
    Ok(())
}

fn dec_spec(d: &mut Dec) -> Result<MechanismSpec, WireError> {
    Ok(match d.u8()? {
        0 => MechanismSpec::Erm {
            set: dec_set(d)?,
            loss: dec_loss(d)?,
            solver: dec_solver(d)?,
            tau: dec_tau(d)?,
        },
        1 => MechanismSpec::Reg1 { set: dec_set(d)?, config: dec_reg1(d)? },
        2 => MechanismSpec::Reg2 { set: dec_set(d)?, domain_width: d.f64()?, config: dec_reg2(d)? },
        3 => MechanismSpec::Trivial { set: dec_set(d)? },
        4 => MechanismSpec::ExactOracle { set: dec_set(d)? },
        t => return Err(WireError::Malformed(format!("unknown MechanismSpec tag {t}"))),
    })
}

fn enc_engine_error(e: &mut Enc<'_>, err: &EngineError) {
    // kind, four u64 detail slots, message string.
    let (kind, a, b, c, dd, msg): (u8, u64, u64, u64, u64, &str) = match err {
        EngineError::UnknownSession { id } => (1, *id, 0, 0, 0, ""),
        EngineError::DuplicateSession { id } => (2, *id, 0, 0, 0, ""),
        EngineError::InvalidConfig { reason } => (3, 0, 0, 0, 0, reason.as_str()),
        EngineError::Mechanism { reason } => (4, 0, 0, 0, 0, reason.as_str()),
        EngineError::Budget { reason } => (5, 0, 0, 0, 0, reason.as_str()),
        EngineError::Backpressure { shard, depth, capacity, cost } => {
            (6, *shard as u64, *depth as u64, *capacity as u64, *cost as u64, "")
        }
        EngineError::Closed => (7, 0, 0, 0, 0, ""),
        EngineError::CommandTooLarge { shard, cost, capacity } => {
            (8, *shard as u64, *cost as u64, *capacity as u64, 0, "")
        }
        EngineError::Wal { reason } => (9, 0, 0, 0, 0, reason.as_str()),
    };
    e.u8(kind);
    e.u64(a);
    e.u64(b);
    e.u64(c);
    e.u64(dd);
    e.str(msg);
}

fn dec_engine_error(d: &mut Dec) -> Result<EngineError, WireError> {
    let kind = d.u8()?;
    let (a, b, c, dd) = (d.u64()?, d.u64()?, d.u64()?, d.u64()?);
    let msg = d.str()?;
    Ok(match kind {
        1 => EngineError::UnknownSession { id: a },
        2 => EngineError::DuplicateSession { id: a },
        3 => EngineError::InvalidConfig { reason: msg },
        4 => EngineError::Mechanism { reason: msg },
        5 => EngineError::Budget { reason: msg },
        6 => EngineError::Backpressure {
            shard: a as usize,
            depth: b as usize,
            capacity: c as usize,
            cost: dd as usize,
        },
        7 => EngineError::Closed,
        8 => EngineError::CommandTooLarge {
            shard: a as usize,
            cost: b as usize,
            capacity: c as usize,
        },
        9 => EngineError::Wal { reason: msg },
        t => return Err(WireError::Malformed(format!("unknown EngineError kind {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Shared codec surface (crate-internal)
// ---------------------------------------------------------------------------

/// Append a [`MechanismSpec`] in its wire encoding (no frame) — shared
/// with the snapshot codec so a spec has exactly one byte layout in the
/// repo.
///
/// # Errors
/// [`WireError::Unencodable`] for specs carrying custom set factories.
pub(crate) fn encode_spec_into(out: &mut Vec<u8>, spec: &MechanismSpec) -> Result<(), WireError> {
    let start = out.len();
    let mut e = Enc { buf: out };
    let result = enc_spec(&mut e, spec);
    if result.is_err() {
        out.truncate(start);
    }
    result
}

/// Decode a [`MechanismSpec`] from exactly `bytes` (trailing bytes are an
/// error) — the inverse of [`encode_spec_into`].
pub(crate) fn decode_spec_exact(bytes: &[u8]) -> Result<MechanismSpec, WireError> {
    let mut d = Dec::new(bytes);
    let spec = dec_spec(&mut d)?;
    d.finish()?;
    Ok(spec)
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Append one complete frame to `out`: the header is reserved up front,
/// `body` encodes the payload in place (returning the opcode), and the
/// opcode and length are backfilled. One pass, no intermediate payload
/// buffer. On error `out` is truncated back to its original length — a
/// rejected value never leaves a partial frame behind.
fn build_frame(
    out: &mut Vec<u8>,
    body: impl FnOnce(&mut Enc<'_>) -> Result<u8, WireError>,
) -> Result<(), WireError> {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(0); // opcode, backfilled below
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // length, backfilled below
    let payload_start = out.len();
    let encoded = {
        let mut e = Enc { buf: &mut *out };
        body(&mut e)
    };
    let result = encoded.and_then(|op| {
        let len = out.len() - payload_start;
        if len as u64 > u64::from(MAX_PAYLOAD) {
            return Err(WireError::FrameTooLarge { len: len as u32 });
        }
        // Backfill opcode and length into the header written above.
        // `get_mut` misses are impossible (the header bytes were pushed
        // at `start` in this very function) but degrade to a truncation
        // error rather than a panic.
        let truncated = WireError::Truncated { expected: start + HEADER_LEN, got: out.len() };
        let Some(op_slot) = out.get_mut(start + 5) else { return Err(truncated) };
        *op_slot = op;
        let Some(len_slot) = out.get_mut(start + 8..start + 12) else { return Err(truncated) };
        len_slot.copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    });
    if result.is_err() {
        out.truncate(start);
    }
    result
}

/// Parse a frame header, returning `(opcode, payload length)`.
fn parse_header(h: &[u8; HEADER_LEN]) -> Result<(u8, usize), WireError> {
    // Irrefutable array destructuring: every field access is infallible.
    let [m0, m1, m2, m3, version, op, r0, r1, l0, l1, l2, l3] = *h;
    let magic = [m0, m1, m2, m3];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let reserved = u16::from_le_bytes([r0, r1]);
    if reserved != 0 {
        return Err(WireError::NonZeroReserved(reserved));
    }
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_PAYLOAD {
        return Err(WireError::FrameTooLarge { len });
    }
    Ok((op, len as usize))
}

/// Encode one command as a complete frame.
///
/// # Errors
/// [`WireError::Unencodable`] for specs carrying custom set factories,
/// or [`WireError::FrameTooLarge`] past the payload cap.
pub fn encode_command(cmd: &Command) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(128);
    encode_command_into(&mut out, cmd)?;
    Ok(out)
}

/// Append one command frame to `out` — [`encode_command`] without the
/// per-frame allocation, for callers batching many frames into one
/// buffer (the write-ahead log's append path). On error `out` is left
/// exactly as it was.
///
/// # Errors
/// As [`encode_command`].
pub fn encode_command_into(out: &mut Vec<u8>, cmd: &Command) -> Result<(), WireError> {
    build_frame(out, |e| {
        Ok(match cmd {
            Command::Open { session_id, spec, t_max, params } => {
                e.u64(*session_id);
                e.u64(*t_max as u64);
                enc_params(e, params);
                enc_spec(e, spec)?;
                opcode::OPEN
            }
            Command::Observe { session_id, point } => {
                e.u64(*session_id);
                enc_point(e, point);
                opcode::OBSERVE
            }
            Command::ObserveBatch { session_id, points } => {
                e.u64(*session_id);
                e.u32(points.len() as u32);
                for p in points {
                    enc_point(e, p);
                }
                opcode::OBSERVE_BATCH
            }
            Command::Release { session_id } => {
                e.u64(*session_id);
                opcode::RELEASE
            }
            Command::Close => opcode::CLOSE,
        })
    })
}

/// Decode exactly one command frame from `bytes` (the whole slice must be
/// the frame — trailing bytes are an error; use [`read_command`] on
/// streams).
///
/// # Errors
/// Any [`WireError`] the frame or payload violates.
pub fn decode_command(bytes: &[u8]) -> Result<Command, WireError> {
    let (op, payload) = split_frame(bytes)?;
    decode_command_payload(op, payload)
}

/// Encode one reply as a complete frame.
///
/// # Errors
/// [`WireError::FrameTooLarge`] past the payload cap.
pub fn encode_reply(reply: &Reply) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(128);
    encode_reply_into(&mut out, reply)?;
    Ok(out)
}

/// Append one reply frame to `out` — [`encode_reply`] without the
/// per-frame allocation. On error `out` is left exactly as it was.
///
/// # Errors
/// As [`encode_reply`].
pub fn encode_reply_into(out: &mut Vec<u8>, reply: &Reply) -> Result<(), WireError> {
    build_frame(out, |e| {
        Ok(match reply {
            Reply::Opened { session_id } => {
                e.u64(*session_id);
                opcode::R_OPENED
            }
            Reply::Releases { session_id, thetas } => {
                e.u64(*session_id);
                e.u32(thetas.len() as u32);
                for theta in thetas {
                    e.u32(theta.len() as u32);
                    for v in theta {
                        e.f64(*v);
                    }
                }
                opcode::R_RELEASES
            }
            Reply::SessionReleased { session_id, points, epsilon_spent, delta_spent } => {
                e.u64(*session_id);
                e.u64(*points);
                e.f64(*epsilon_spent);
                e.f64(*delta_spent);
                opcode::R_SESSION_RELEASED
            }
            Reply::Closed => opcode::R_CLOSED,
            Reply::Err(err) => {
                enc_engine_error(e, err);
                opcode::R_ERROR
            }
        })
    })
}

/// Decode exactly one reply frame from `bytes`.
///
/// # Errors
/// Any [`WireError`] the frame or payload violates.
pub fn decode_reply(bytes: &[u8]) -> Result<Reply, WireError> {
    let (op, payload) = split_frame(bytes)?;
    decode_reply_payload(op, payload)
}

/// Validate a frame's header against its buffer and return
/// `(opcode, payload)`.
fn split_frame(bytes: &[u8]) -> Result<(u8, &[u8]), WireError> {
    let Some((header, rest)) = bytes.split_first_chunk::<HEADER_LEN>() else {
        return Err(WireError::Truncated { expected: HEADER_LEN, got: bytes.len() });
    };
    let (op, len) = parse_header(header)?;
    if rest.len() < len {
        return Err(WireError::Truncated { expected: HEADER_LEN + len, got: bytes.len() });
    }
    if rest.len() > len {
        return Err(WireError::TrailingBytes { extra: rest.len() - len });
    }
    Ok((op, rest))
}

fn decode_command_payload(op: u8, payload: &[u8]) -> Result<Command, WireError> {
    let mut d = Dec::new(payload);
    let cmd = match op {
        opcode::OPEN => {
            let session_id = d.u64()?;
            let t_max = d.usize()?;
            let params = dec_params(&mut d)?;
            let spec = dec_spec(&mut d)?;
            Command::Open { session_id, spec, t_max, params }
        }
        opcode::OBSERVE => Command::Observe { session_id: d.u64()?, point: dec_point(&mut d)? },
        opcode::OBSERVE_BATCH => {
            let session_id = d.u64()?;
            let n = d.u32()? as usize;
            // Min encoded point: u32 dim + f64 response = 12 bytes.
            let mut points = Vec::with_capacity(d.capacity(n, 12));
            for _ in 0..n {
                points.push(dec_point(&mut d)?);
            }
            Command::ObserveBatch { session_id, points }
        }
        opcode::RELEASE => Command::Release { session_id: d.u64()? },
        opcode::CLOSE => Command::Close,
        other => return Err(WireError::UnknownOpcode(other)),
    };
    d.finish()?;
    Ok(cmd)
}

fn decode_reply_payload(op: u8, payload: &[u8]) -> Result<Reply, WireError> {
    let mut d = Dec::new(payload);
    let reply = match op {
        opcode::R_OPENED => Reply::Opened { session_id: d.u64()? },
        opcode::R_RELEASES => {
            let session_id = d.u64()?;
            let n = d.u32()? as usize;
            let mut thetas = Vec::with_capacity(d.capacity(n, 4));
            for _ in 0..n {
                let dim = d.u32()? as usize;
                let mut theta = Vec::with_capacity(d.capacity(dim, 8));
                for _ in 0..dim {
                    theta.push(d.f64()?);
                }
                thetas.push(theta);
            }
            Reply::Releases { session_id, thetas }
        }
        opcode::R_SESSION_RELEASED => Reply::SessionReleased {
            session_id: d.u64()?,
            points: d.u64()?,
            epsilon_spent: d.f64()?,
            delta_spent: d.f64()?,
        },
        opcode::R_CLOSED => Reply::Closed,
        opcode::R_ERROR => Reply::Err(dec_engine_error(&mut d)?),
        other => return Err(WireError::UnknownOpcode(other)),
    };
    d.finish()?;
    Ok(reply)
}

// ---------------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------------

/// Read exactly `buf.len()` bytes; `Ok(false)` on clean EOF at byte 0,
/// [`WireError::Truncated`] on EOF mid-buffer.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    // `get_mut(filled..)` always hits while `filled < buf.len()`; the
    // guard keeps the loop panic-free without an indexing operation.
    while let Some(rest) = buf.get_mut(filled..).filter(|rest| !rest.is_empty()) {
        match r.read(rest) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(WireError::Truncated { expected: buf.len(), got: filled });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// Read one command frame from a stream. `Ok(None)` on clean EOF between
/// frames; mid-frame EOF is [`WireError::Truncated`].
///
/// # Errors
/// Any [`WireError`] the header, payload, or stream violates.
pub fn read_command<R: Read>(r: &mut R) -> Result<Option<Command>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((op, payload)) => decode_command_payload(op, &payload).map(Some),
    }
}

/// Read one reply frame from a stream. `Ok(None)` on clean EOF between
/// frames.
///
/// # Errors
/// Any [`WireError`] the header, payload, or stream violates.
pub fn read_reply<R: Read>(r: &mut R) -> Result<Option<Reply>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((op, payload)) => decode_reply_payload(op, &payload).map(Some),
    }
}

fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    let (op, len) = parse_header(&header)?;
    let mut payload = vec![0u8; len];
    if len > 0 && !read_exact_or_eof(r, &mut payload)? {
        return Err(WireError::Truncated { expected: len, got: 0 });
    }
    Ok(Some((op, payload)))
}

/// Write one command frame to a stream.
///
/// # Errors
/// Encoding errors ([`WireError::Unencodable`]) or stream I/O failures.
pub fn write_command<W: Write>(w: &mut W, cmd: &Command) -> Result<(), WireError> {
    let bytes = encode_command(cmd)?;
    w.write_all(&bytes)?;
    Ok(())
}

/// Write one reply frame to a stream.
///
/// # Errors
/// Encoding errors or stream I/O failures.
pub fn write_reply<W: Write>(w: &mut W, reply: &Reply) -> Result<(), WireError> {
    let bytes = encode_reply(reply)?;
    w.write_all(&bytes)?;
    Ok(())
}
