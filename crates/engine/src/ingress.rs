//! Pipelined ingestion in front of the sharded engine.
//!
//! [`ShardedEngine`](crate::ShardedEngine) is a synchronous object: every
//! call blocks the caller until the mechanisms have finished their
//! per-point compute, so one slow tenant stalls whoever is feeding the
//! fleet. This module puts a queue between the caller and the compute:
//!
//! - an [`EngineHandle`] owns one worker thread per shard, each with a
//!   **bounded** command queue (depth measured in *points*, not
//!   commands);
//! - callers [`submit`](EngineHandle::submit) [`Command`]s — open a
//!   session, observe points, release a session — and get back a
//!   [`Ticket`] immediately, without waiting for mechanism compute;
//! - a full queue rejects the command **atomically** with
//!   [`EngineError::Backpressure`]: nothing is enqueued, no prefix of a
//!   batch is applied, and the caller decides whether to retry, shed, or
//!   spill;
//! - [`flush`](EngineHandle::flush) is a barrier (every command enqueued
//!   before it has been fully processed when it returns), and
//!   [`close`](EngineHandle::close) drains and joins the fleet.
//!
//! Determinism survives the pipeline: commands for one session always
//! route to the same shard queue (FIFO), so a session's points are
//! consumed in submission order, and its noise stream still derives from
//! `(engine seed, session id)` alone. The release sequences are therefore
//! bit-for-bit identical to driving [`ShardedEngine`](crate::ShardedEngine)
//! directly — under any shard count — which is property-tested in
//! `tests/ingress.rs`.
//!
//! # Examples
//!
//! ```
//! use pir_engine::{Command, EngineHandle, IngressConfig, MechanismSpec, Reply};
//! use pir_dp::PrivacyParams;
//! use pir_erm::DataPoint;
//!
//! let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
//! let handle = EngineHandle::new(IngressConfig {
//!     num_shards: 2,
//!     seed: 7,
//!     queue_depth: 64,
//! })
//! .unwrap();
//!
//! // Pipelined: open and observe are submitted back-to-back; per-shard
//! // FIFO ordering makes waiting for the open unnecessary.
//! let opened = handle.open(1, &MechanismSpec::reg1_l2(3), 16, &params).unwrap();
//! let release = handle.observe(1, DataPoint::new(vec![0.5, 0.1, 0.0], 0.3)).unwrap();
//! assert_eq!(opened.wait(), Reply::Opened { session_id: 1 });
//! let thetas = release.wait().into_releases().unwrap();
//! assert_eq!(thetas[0].len(), 3);
//! let stats = handle.close();
//! assert_eq!(stats.points, 1);
//! ```

use crate::engine::{entropy_seed, mix64, session_seed};
use crate::error::EngineError;
use crate::session::StreamSession;
use crate::spec::MechanismSpec;
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::DataPoint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Tuning knobs for the pipelined ingestion layer.
#[derive(Debug, Clone, Copy)]
pub struct IngressConfig {
    /// Number of shards (= worker threads) sessions are hash-partitioned
    /// across. Defaults to the machine's available parallelism.
    pub num_shards: usize,
    /// Base seed; identical in meaning to
    /// [`EngineConfig::seed`](crate::EngineConfig::seed) — a session's
    /// noise stream derives from `(seed, session id)` alone, so releases
    /// are invariant under resharding. The same privacy warning applies:
    /// fix it for experiments only, the default draws from OS entropy.
    pub seed: u64,
    /// Per-shard queue depth, measured in **points** (an
    /// [`Command::ObserveBatch`] of `k` points costs `k`; every other
    /// command costs 1). A command that would push a queue past this
    /// depth is rejected whole with [`EngineError::Backpressure`].
    pub queue_depth: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            num_shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            seed: entropy_seed(),
            queue_depth: 1024,
        }
    }
}

/// A command accepted by the pipelined frontend — the unit of the wire
/// protocol (see [`wire`](crate::wire)) and of [`EngineHandle::submit`].
#[derive(Debug, Clone)]
pub enum Command {
    /// Spawn a session (mechanism + privacy accountant) for streams of
    /// length up to `t_max` under the per-session budget `params`.
    Open {
        /// Session id (also the routing key).
        session_id: u64,
        /// Which paper mechanism to run, with all knobs.
        spec: MechanismSpec,
        /// Stream-length horizon `T`.
        t_max: usize,
        /// Per-session privacy budget `(ε, δ)`.
        params: PrivacyParams,
    },
    /// Feed one stream point; the reply carries the released estimator.
    Observe {
        /// Target session.
        session_id: u64,
        /// The arriving covariate–response pair.
        point: DataPoint,
    },
    /// Feed a run of consecutive points through the mechanism's amortized
    /// batch path; the reply carries one released estimator per point.
    /// Rejected atomically (by the mechanism *and* by the queue).
    ObserveBatch {
        /// Target session.
        session_id: u64,
        /// The arriving points, in stream order.
        points: Vec<DataPoint>,
    },
    /// Release (terminate) a session: its mechanism state is dropped and
    /// the reply reports the final stream position and budget spent.
    Release {
        /// Target session.
        session_id: u64,
    },
    /// Connection-scoped barrier and goodbye: the reply
    /// ([`Reply::Closed`]) is sent only after every command submitted
    /// before it has been fully processed. The engine itself stays up —
    /// sessions survive for other connections.
    Close,
}

impl Command {
    /// Queue cost of this command, in points.
    pub fn cost(&self) -> usize {
        match self {
            Command::ObserveBatch { points, .. } => points.len().max(1),
            _ => 1,
        }
    }

    /// The session this command routes by (`None` for [`Command::Close`],
    /// which is a barrier across every shard).
    pub fn session_id(&self) -> Option<u64> {
        match self {
            Command::Open { session_id, .. }
            | Command::Observe { session_id, .. }
            | Command::ObserveBatch { session_id, .. }
            | Command::Release { session_id } => Some(*session_id),
            Command::Close => None,
        }
    }
}

/// The engine's answer to one [`Command`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The session was spawned.
    Opened {
        /// The spawned session's id.
        session_id: u64,
    },
    /// Estimators released for an observe / observe-batch command, one
    /// per point, in stream order.
    Releases {
        /// The serving session's id.
        session_id: u64,
        /// The released estimators `θ_t`.
        thetas: Vec<Vec<f64>>,
    },
    /// The session was released; its final ledger.
    SessionReleased {
        /// The released session's id.
        session_id: u64,
        /// Stream points the session consumed over its lifetime.
        points: u64,
        /// Privacy budget `ε` the session's accountant recorded as spent.
        epsilon_spent: f64,
        /// Privacy budget `δ` the session's accountant recorded as spent.
        delta_spent: f64,
    },
    /// Barrier acknowledged ([`Command::Close`]).
    Closed,
    /// The command failed; nothing about the session changed beyond what
    /// the error names.
    Err(EngineError),
}

impl Reply {
    /// Extract the released estimators, turning every non-release reply
    /// into an error (convenience for observe-style commands).
    pub fn into_releases(self) -> Result<Vec<Vec<f64>>, EngineError> {
        match self {
            Reply::Releases { thetas, .. } => Ok(thetas),
            Reply::Err(e) => Err(e),
            other => Err(EngineError::Mechanism {
                reason: format!("expected a release reply, got {other:?}"),
            }),
        }
    }
}

/// A claim on one command's eventual [`Reply`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Reply>,
}

impl Ticket {
    /// A ticket that is already resolved to `reply`.
    fn resolved(reply: Reply) -> Self {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(reply);
        Ticket { rx }
    }

    /// Block until the reply arrives. If the engine shut down before
    /// answering, the reply is [`Reply::Err`]\([`EngineError::Closed`]).
    pub fn wait(self) -> Reply {
        self.rx.recv().unwrap_or(Reply::Err(EngineError::Closed))
    }

    /// Non-blocking poll: `Some(reply)` once the reply is in, `None`
    /// while the command is still queued or computing.
    pub fn try_wait(&self) -> Option<Reply> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Reply::Err(EngineError::Closed)),
        }
    }
}

/// One session's slice of an ingest batch: `(session id, original input
/// indices, points in arrival order)` — same grouping as
/// [`ShardedEngine::ingest`](crate::ShardedEngine::ingest).
type SessionRun = (u64, Vec<usize>, Vec<DataPoint>);

/// An ingest result tagged with the input index it answers.
type IndexedRelease = (usize, Result<Vec<f64>, EngineError>);

/// What travels down a shard's queue.
enum Job {
    /// One wire-level command with its reply channel.
    Cmd { cmd: Command, cost: usize, reply: Sender<Reply> },
    /// The bulk fast path behind [`EngineHandle::ingest`]: a whole
    /// shard's slice of a mixed-tenant batch in one message.
    Ingest { runs: Vec<SessionRun>, cost: usize, reply: Sender<Vec<IndexedRelease>> },
    /// Barrier: acknowledge once everything before this job is done.
    Flush { ack: Sender<()> },
    /// Drain, report `(live sessions, live points)`, and exit.
    Shutdown { ack: Sender<(usize, usize)> },
}

/// One shard's ingress lane: its queue plus the shared depth gauge.
struct Lane {
    tx: Sender<Job>,
    depth: Arc<AtomicUsize>,
}

/// Final tallies returned by [`EngineHandle::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressStats {
    /// Sessions still live (never released) at close.
    pub sessions: usize,
    /// Stream points those live sessions had consumed.
    pub points: usize,
}

/// The pipelined frontend to a sharded fleet of private streams.
///
/// Owns one worker thread per shard; each worker holds its shard's
/// sessions and drains a bounded command queue. See the
/// [module docs](self) for the full contract; the headline invariants:
///
/// - **Non-blocking**: [`submit`](Self::submit) returns as soon as the
///   command is enqueued (or rejected), never waiting on mechanism
///   compute.
/// - **Atomic backpressure**: a command that does not fit its shard's
///   queue whole is rejected whole.
/// - **Deterministic**: per-session FIFO + seed-per-`(engine seed, id)`
///   make release sequences identical to the direct
///   [`ShardedEngine`](crate::ShardedEngine) path, under any shard count.
#[derive(Debug)]
pub struct EngineHandle {
    lanes: Vec<LaneHandle>,
    workers: Vec<JoinHandle<()>>,
    capacity: usize,
    seed: u64,
}

/// `Lane` without the non-Debug `Sender` hidden — split so the struct can
/// derive Debug for diagnostics without printing channel internals.
struct LaneHandle {
    lane: Lane,
}

impl std::fmt::Debug for LaneHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane").field("depth", &self.lane.depth.load(Ordering::Relaxed)).finish()
    }
}

impl EngineHandle {
    /// Spawn the shard workers.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if `num_shards == 0` or
    /// `queue_depth == 0`.
    pub fn new(config: IngressConfig) -> Result<Self, EngineError> {
        if config.num_shards == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "num_shards must be at least 1".to_string(),
            });
        }
        if config.queue_depth == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "queue_depth must be at least 1".to_string(),
            });
        }
        let mut lanes = Vec::with_capacity(config.num_shards);
        let mut workers = Vec::with_capacity(config.num_shards);
        for _ in 0..config.num_shards {
            let (tx, rx) = mpsc::channel::<Job>();
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            let seed = config.seed;
            workers.push(std::thread::spawn(move || worker_loop(rx, worker_depth, seed)));
            lanes.push(LaneHandle { lane: Lane { tx, depth } });
        }
        Ok(EngineHandle { lanes, workers, capacity: config.queue_depth, seed: config.seed })
    }

    /// Number of shards (= worker threads).
    pub fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// The configured per-shard queue depth, in points.
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Instantaneous queued-point count per shard (observability: a shard
    /// pinned at capacity is the backpressure signal to scale or shed).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.lane.depth.load(Ordering::Relaxed)).collect()
    }

    #[inline]
    fn shard_index(&self, session_id: u64) -> usize {
        (mix64(session_id) % self.lanes.len() as u64) as usize
    }

    /// Try to reserve `cost` points of queue space on `shard`.
    fn reserve(&self, shard: usize, cost: usize) -> Result<(), EngineError> {
        let depth = &self.lanes[shard].lane.depth;
        depth
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur + cost <= self.capacity).then_some(cur + cost)
            })
            .map(|_| ())
            .map_err(|cur| EngineError::Backpressure {
                shard,
                depth: cur,
                capacity: self.capacity,
                cost,
            })
    }

    /// Enqueue one command without waiting for its compute.
    ///
    /// Commands for the same session are processed in submission order
    /// (per-shard FIFO), so `open → observe → release` pipelines without
    /// waiting on intermediate tickets. [`Command::Close`] is a barrier:
    /// it blocks until every shard has drained, then resolves to
    /// [`Reply::Closed`].
    ///
    /// # Errors
    /// [`EngineError::Backpressure`] if the target shard's queue cannot
    /// take the command whole (nothing is enqueued), or
    /// [`EngineError::Closed`] if the engine has shut down.
    pub fn submit(&self, cmd: Command) -> Result<Ticket, EngineError> {
        let Some(session_id) = cmd.session_id() else {
            // Close: a barrier across every shard, then a resolved ticket.
            self.flush();
            return Ok(Ticket::resolved(Reply::Closed));
        };
        let shard = self.shard_index(session_id);
        let cost = cmd.cost();
        self.reserve(shard, cost)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.lanes[shard].lane.tx.send(Job::Cmd { cmd, cost, reply: reply_tx }).is_err() {
            // Worker gone (only possible after a panic): roll the
            // reservation back and surface the shutdown.
            self.lanes[shard].lane.depth.fetch_sub(cost, Ordering::SeqCst);
            return Err(EngineError::Closed);
        }
        Ok(Ticket { rx: reply_rx })
    }

    /// [`Command::Open`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn open(
        &self,
        session_id: u64,
        spec: &MechanismSpec,
        t_max: usize,
        params: &PrivacyParams,
    ) -> Result<Ticket, EngineError> {
        self.submit(Command::Open { session_id, spec: spec.clone(), t_max, params: *params })
    }

    /// [`Command::Observe`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn observe(&self, session_id: u64, point: DataPoint) -> Result<Ticket, EngineError> {
        self.submit(Command::Observe { session_id, point })
    }

    /// [`Command::ObserveBatch`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn observe_batch(
        &self,
        session_id: u64,
        points: Vec<DataPoint>,
    ) -> Result<Ticket, EngineError> {
        self.submit(Command::ObserveBatch { session_id, points })
    }

    /// [`Command::Release`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn release_session(&self, session_id: u64) -> Result<Ticket, EngineError> {
        self.submit(Command::Release { session_id })
    }

    /// Drive a mixed batch of arrivals across many sessions — the bulk
    /// fast path, drop-in equivalent to
    /// [`ShardedEngine::ingest`](crate::ShardedEngine::ingest) (the
    /// release sequences are identical; see `tests/ingress.rs`).
    ///
    /// Points are grouped per session (preserving each session's arrival
    /// order) and each shard's slice travels as **one** queue message, so
    /// channel overhead is `O(num_shards)` per call, not `O(points)`.
    /// `out[i]` answers `points[i]`. Backpressure handling: a shard slice
    /// larger than the whole queue reports
    /// [`EngineError::Backpressure`] on its indices; otherwise `ingest`
    /// waits for the shard to drain (it is the *blocking* entry point —
    /// use [`submit`](Self::submit) for fire-and-forget). Note the
    /// resulting granularity: each *shard slice* is applied or rejected
    /// as a unit, so one fleet-level call can mix applied and
    /// backpressured indices — consult the per-index results before
    /// replaying anything.
    pub fn ingest(&self, points: Vec<(u64, DataPoint)>) -> Vec<Result<Vec<f64>, EngineError>> {
        let n = points.len();
        let num_shards = self.lanes.len();
        // Group per shard, then per session, preserving arrival order —
        // the exact grouping of `ShardedEngine::ingest`.
        let mut per_shard: Vec<Vec<SessionRun>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut slot: HashMap<u64, (usize, usize)> = HashMap::new();
        for (i, (sid, z)) in points.into_iter().enumerate() {
            let shard = self.shard_index(sid);
            let (s, g) = *slot.entry(sid).or_insert_with(|| {
                per_shard[shard].push((sid, Vec::new(), Vec::new()));
                (shard, per_shard[shard].len() - 1)
            });
            per_shard[s][g].1.push(i);
            per_shard[s][g].2.push(z);
        }

        let mut results: Vec<Option<Result<Vec<f64>, EngineError>>> =
            (0..n).map(|_| None).collect();
        let mut pending: Vec<(Vec<usize>, Receiver<Vec<IndexedRelease>>)> = Vec::new();
        for (shard, runs) in per_shard.into_iter().enumerate() {
            if runs.is_empty() {
                continue;
            }
            let cost: usize = runs.iter().map(|(_, _, b)| b.len()).sum::<usize>().max(1);
            let all_indices: Vec<usize> =
                runs.iter().flat_map(|(_, idx, _)| idx.iter().copied()).collect();
            if cost > self.capacity {
                // Can never fit: report backpressure on every affected
                // index rather than deadlocking.
                let depth = self.lanes[shard].lane.depth.load(Ordering::Relaxed);
                for i in all_indices {
                    results[i] = Some(Err(EngineError::Backpressure {
                        shard,
                        depth,
                        capacity: self.capacity,
                        cost,
                    }));
                }
                continue;
            }
            // Blocking reservation: wait out a full queue by riding a
            // Flush barrier, which doubles as a liveness probe — if the
            // worker died (its queue depth can then be stuck above
            // capacity forever), surface Closed instead of spinning.
            let mut worker_dead = false;
            while self.reserve(shard, cost).is_err() {
                let (tx, rx) = mpsc::channel();
                if self.lanes[shard].lane.tx.send(Job::Flush { ack: tx }).is_err()
                    || rx.recv().is_err()
                {
                    worker_dead = true;
                    break;
                }
            }
            if worker_dead {
                for i in all_indices {
                    results[i] = Some(Err(EngineError::Closed));
                }
                continue;
            }
            let (tx, rx) = mpsc::channel();
            if self.lanes[shard].lane.tx.send(Job::Ingest { runs, cost, reply: tx }).is_err() {
                self.lanes[shard].lane.depth.fetch_sub(cost, Ordering::SeqCst);
                for i in all_indices {
                    results[i] = Some(Err(EngineError::Closed));
                }
                continue;
            }
            pending.push((all_indices, rx));
        }
        for (all_indices, rx) in pending {
            match rx.recv() {
                Ok(parts) => {
                    for (i, r) in parts {
                        results[i] = Some(r);
                    }
                }
                Err(_) => {
                    for i in all_indices {
                        results[i] = Some(Err(EngineError::Closed));
                    }
                }
            }
        }
        results.into_iter().map(|r| r.expect("every input index receives a result")).collect()
    }

    /// Barrier: returns once every command submitted before the call has
    /// been fully processed (its reply sent). Releases stay deterministic
    /// across flushes — this orders *completion*, never *noise*.
    pub fn flush(&self) {
        let acks: Vec<Receiver<()>> = self
            .lanes
            .iter()
            .filter_map(|l| {
                let (tx, rx) = mpsc::channel();
                l.lane.tx.send(Job::Flush { ack: tx }).ok().map(|()| rx)
            })
            .collect();
        for rx in acks {
            let _ = rx.recv();
        }
    }

    /// Drain every queue, shut the workers down, and join them.
    pub fn close(mut self) -> IngressStats {
        let mut stats = IngressStats { sessions: 0, points: 0 };
        let acks: Vec<Receiver<(usize, usize)>> = self
            .lanes
            .iter()
            .filter_map(|l| {
                let (tx, rx) = mpsc::channel();
                l.lane.tx.send(Job::Shutdown { ack: tx }).ok().map(|()| rx)
            })
            .collect();
        for rx in acks {
            if let Ok((sessions, points)) = rx.recv() {
                stats.sessions += sessions;
                stats.points += points;
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        stats
    }

    /// The engine seed (for spawning a mirrored
    /// [`ShardedEngine`](crate::ShardedEngine)
    /// in tests; treat as secret in production — see
    /// [`IngressConfig::seed`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // already closed
        }
        for l in &self.lanes {
            let (tx, _rx) = mpsc::channel();
            let _ = l.lane.tx.send(Job::Shutdown { ack: tx });
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// One shard's worker: owns the shard's sessions, drains its queue.
fn worker_loop(rx: Receiver<Job>, depth: Arc<AtomicUsize>, engine_seed: u64) {
    let mut sessions: HashMap<u64, StreamSession> = HashMap::new();
    while let Ok(job) = rx.recv() {
        match job {
            Job::Cmd { cmd, cost, reply } => {
                let r = exec_command(&mut sessions, engine_seed, cmd);
                depth.fetch_sub(cost, Ordering::SeqCst);
                let _ = reply.send(r);
            }
            Job::Ingest { runs, cost, reply } => {
                let out = run_ingest(&mut sessions, runs);
                depth.fetch_sub(cost, Ordering::SeqCst);
                let _ = reply.send(out);
            }
            Job::Flush { ack } => {
                let _ = ack.send(());
            }
            Job::Shutdown { ack } => {
                let points = sessions.values().map(StreamSession::t).sum();
                let _ = ack.send((sessions.len(), points));
                break;
            }
        }
    }
}

/// Execute one command against a shard's session table.
fn exec_command(
    sessions: &mut HashMap<u64, StreamSession>,
    engine_seed: u64,
    cmd: Command,
) -> Reply {
    match cmd {
        Command::Open { session_id, spec, t_max, params } => {
            if sessions.contains_key(&session_id) {
                return Reply::Err(EngineError::DuplicateSession { id: session_id });
            }
            let mut rng = NoiseRng::seed_from_u64(session_seed(engine_seed, session_id));
            match StreamSession::spawn(session_id, &spec, t_max, &params, &mut rng) {
                Ok(s) => {
                    sessions.insert(session_id, s);
                    Reply::Opened { session_id }
                }
                Err(e) => Reply::Err(e),
            }
        }
        Command::Observe { session_id, point } => match sessions.get_mut(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => match s.observe(&point) {
                Ok(theta) => Reply::Releases { session_id, thetas: vec![theta] },
                Err(e) => Reply::Err(e),
            },
        },
        Command::ObserveBatch { session_id, points } => match sessions.get_mut(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => match s.observe_batch(&points) {
                Ok(thetas) => Reply::Releases { session_id, thetas },
                Err(e) => Reply::Err(e),
            },
        },
        Command::Release { session_id } => match sessions.remove(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => {
                let (epsilon_spent, delta_spent) = s.accountant().spent();
                Reply::SessionReleased {
                    session_id,
                    points: s.t() as u64,
                    epsilon_spent,
                    delta_spent,
                }
            }
        },
        // `Close` is resolved at the handle (barrier across shards); a
        // worker only sees it if routed here explicitly in the future.
        Command::Close => Reply::Closed,
    }
}

/// Drive one shard's slice of a mixed-tenant batch — the same semantics
/// as the closure inside `ShardedEngine::ingest` (a batch-level failure
/// is reported on every index of the affected session's group).
fn run_ingest(
    sessions: &mut HashMap<u64, StreamSession>,
    runs: Vec<SessionRun>,
) -> Vec<IndexedRelease> {
    let mut out = Vec::new();
    for (sid, indices, batch) in runs {
        match sessions.get_mut(&sid) {
            None => {
                for i in indices {
                    out.push((i, Err(EngineError::UnknownSession { id: sid })));
                }
            }
            Some(session) => match session.observe_batch(&batch) {
                Ok(releases) => {
                    for (i, theta) in indices.into_iter().zip(releases) {
                        out.push((i, Ok(theta)));
                    }
                }
                Err(e) => {
                    for i in indices {
                        out.push((i, Err(e.clone())));
                    }
                }
            },
        }
    }
    out
}
