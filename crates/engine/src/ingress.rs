//! Pipelined ingestion in front of the sharded engine.
//!
//! [`ShardedEngine`](crate::ShardedEngine) is a synchronous object: every
//! call blocks the caller until the mechanisms have finished their
//! per-point compute, so one slow tenant stalls whoever is feeding the
//! fleet. This module puts a queue between the caller and the compute:
//!
//! - an [`EngineHandle`] owns one worker thread per shard, each with a
//!   **bounded** command queue (depth measured in *points*, not
//!   commands);
//! - a [`SubmitHandle`] — `Clone + Send + Sync`, handed out by
//!   [`EngineHandle::submit_handle`] — is the cheap, shareable front
//!   door: any number of threads (one per TCP connection, say) can
//!   [`submit`](SubmitHandle::submit) [`Command`]s concurrently with no
//!   external lock, each getting back a [`Ticket`] immediately, without
//!   waiting for mechanism compute;
//! - a full queue rejects the command **atomically** with
//!   [`EngineError::Backpressure`] (transient — retry after the shard
//!   drains) or [`EngineError::CommandTooLarge`] (permanent — the
//!   command can *never* fit; split it): nothing is enqueued, no prefix
//!   of a batch is applied, and the caller decides whether to retry,
//!   shed, or spill;
//! - [`flush`](SubmitHandle::flush) is a fleet-wide barrier (every
//!   command enqueued before it has been fully processed when it
//!   returns), and [`close`](EngineHandle::close) drains and joins the
//!   fleet. [`Command::Close`] is *not* a fleet barrier: it is a
//!   connection-scoped goodbye (see [`Command::Close`]).
//!
//! Determinism survives the pipeline — and survives concurrent
//! submitters, provided they drive **disjoint sessions**: commands for
//! one session always route to the same shard queue (FIFO), so a
//! session's points are consumed in submission order, and its noise
//! stream still derives from `(engine seed, session id)` alone. The
//! release sequences are therefore bit-for-bit identical to driving
//! [`ShardedEngine`](crate::ShardedEngine) directly — under any shard
//! count and any thread interleaving of other sessions' traffic — which
//! is property-tested in `tests/ingress.rs` and, over real sockets, in
//! `tests/tcp.rs`. (Two threads feeding the *same* session race for
//! queue positions; the engine stays coherent, but which interleaving
//! they get is scheduling-dependent — give concurrent feeders disjoint
//! sessions.)
//!
//! # Examples
//!
//! ```
//! use pir_engine::{Command, EngineHandle, IngressConfig, MechanismSpec, Reply};
//! use pir_dp::PrivacyParams;
//! use pir_erm::DataPoint;
//!
//! let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
//! let handle = EngineHandle::new(IngressConfig {
//!     num_shards: 2,
//!     seed: 7,
//!     queue_depth: 64,
//! })
//! .unwrap();
//!
//! // Pipelined: open and observe are submitted back-to-back; per-shard
//! // FIFO ordering makes waiting for the open unnecessary.
//! let opened = handle.open(1, &MechanismSpec::reg1_l2(3), 16, &params).unwrap();
//! let release = handle.observe(1, DataPoint::new(vec![0.5, 0.1, 0.0], 0.3)).unwrap();
//! assert_eq!(opened.wait(), Reply::Opened { session_id: 1 });
//! let thetas = release.wait().into_releases().unwrap();
//! assert_eq!(thetas[0].len(), 3);
//! let stats = handle.close();
//! assert_eq!(stats.points, 1);
//! ```
//!
//! Many threads feeding one engine through cloned [`SubmitHandle`]s:
//!
//! ```
//! use pir_engine::{EngineHandle, IngressConfig, MechanismSpec};
//! use pir_dp::PrivacyParams;
//! use pir_erm::DataPoint;
//!
//! let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
//! let handle = EngineHandle::new(IngressConfig {
//!     num_shards: 2,
//!     seed: 7,
//!     queue_depth: 64,
//! })
//! .unwrap();
//! std::thread::scope(|s| {
//!     for sid in 0..4u64 {
//!         let submit = handle.submit_handle(); // Clone + Send + Sync
//!         s.spawn(move || {
//!             submit.open(sid, &MechanismSpec::reg1_l2(2), 8, &params).unwrap();
//!             let t = submit.observe(sid, DataPoint::new(vec![0.5, 0.0], 0.1)).unwrap();
//!             t.wait().into_releases().unwrap();
//!         });
//!     }
//! });
//! assert_eq!(handle.close().sessions, 4);
//! ```

use crate::engine::{entropy_seed, session_seed, shard_of};
use crate::error::EngineError;
use crate::session::StreamSession;
use crate::spec::MechanismSpec;
use crate::wal::{self, RecoveryReport, WalOptions, WalWriter};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::DataPoint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Tuning knobs for the pipelined ingestion layer.
#[derive(Debug, Clone, Copy)]
pub struct IngressConfig {
    /// Number of shards (= worker threads) sessions are hash-partitioned
    /// across. Defaults to the machine's available parallelism.
    pub num_shards: usize,
    /// Base seed; identical in meaning to
    /// [`EngineConfig::seed`](crate::EngineConfig::seed) — a session's
    /// noise stream derives from `(seed, session id)` alone, so releases
    /// are invariant under resharding. The same privacy warning applies:
    /// fix it for experiments only, the default draws from OS entropy.
    pub seed: u64,
    /// Per-shard queue depth, measured in **points** (an
    /// [`Command::ObserveBatch`] of `k` points costs `k`; every other
    /// command costs 1). A command that would push a queue past this
    /// depth is rejected whole with [`EngineError::Backpressure`]; a
    /// command whose cost exceeds the depth itself can never be accepted
    /// and is rejected with [`EngineError::CommandTooLarge`].
    pub queue_depth: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            num_shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            seed: entropy_seed(),
            queue_depth: 1024,
        }
    }
}

/// A command accepted by the pipelined frontend — the unit of the wire
/// protocol (see [`wire`](crate::wire)) and of [`SubmitHandle::submit`].
#[derive(Debug, Clone)]
pub enum Command {
    /// Spawn a session (mechanism + privacy accountant) for streams of
    /// length up to `t_max` under the per-session budget `params`.
    Open {
        /// Session id (also the routing key).
        session_id: u64,
        /// Which paper mechanism to run, with all knobs.
        spec: MechanismSpec,
        /// Stream-length horizon `T`.
        t_max: usize,
        /// Per-session privacy budget `(ε, δ)`.
        params: PrivacyParams,
    },
    /// Feed one stream point; the reply carries the released estimator.
    Observe {
        /// Target session.
        session_id: u64,
        /// The arriving covariate–response pair.
        point: DataPoint,
    },
    /// Feed a run of consecutive points through the mechanism's amortized
    /// batch path; the reply carries one released estimator per point.
    /// Rejected atomically (by the mechanism *and* by the queue).
    ObserveBatch {
        /// Target session.
        session_id: u64,
        /// The arriving points, in stream order.
        points: Vec<DataPoint>,
    },
    /// Release (terminate) a session: its mechanism state is dropped and
    /// the reply reports the final stream position and budget spent.
    Release {
        /// Target session.
        session_id: u64,
    },
    /// Connection-scoped goodbye. Submitting it never blocks and never
    /// touches the shard queues: the ticket resolves to [`Reply::Closed`]
    /// immediately. The *barrier* a remote client observes — "every
    /// command I sent before `CLOSE` has been answered" — comes from the
    /// reply discipline of
    /// [`serve_connection`](crate::serve_connection), which writes
    /// replies strictly in command order, so the `CLOSED` frame is
    /// necessarily the last thing on the wire. Crucially this orders only
    /// *that connection's* in-flight commands: one tenant's goodbye never
    /// waits on another tenant's queued compute. The engine itself stays
    /// up — sessions survive for other connections.
    Close,
}

impl Command {
    /// Queue cost of this command, in points.
    pub fn cost(&self) -> usize {
        match self {
            Command::ObserveBatch { points, .. } => points.len().max(1),
            _ => 1,
        }
    }

    /// The session this command routes by (`None` for [`Command::Close`],
    /// which never enters a queue).
    pub fn session_id(&self) -> Option<u64> {
        match self {
            Command::Open { session_id, .. }
            | Command::Observe { session_id, .. }
            | Command::ObserveBatch { session_id, .. }
            | Command::Release { session_id } => Some(*session_id),
            Command::Close => None,
        }
    }
}

/// The engine's answer to one [`Command`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The session was spawned.
    Opened {
        /// The spawned session's id.
        session_id: u64,
    },
    /// Estimators released for an observe / observe-batch command, one
    /// per point, in stream order.
    Releases {
        /// The serving session's id.
        session_id: u64,
        /// The released estimators `θ_t`.
        thetas: Vec<Vec<f64>>,
    },
    /// The session was released; its final ledger.
    SessionReleased {
        /// The released session's id.
        session_id: u64,
        /// Stream points the session consumed over its lifetime.
        points: u64,
        /// Privacy budget `ε` the session's accountant recorded as spent.
        epsilon_spent: f64,
        /// Privacy budget `δ` the session's accountant recorded as spent.
        delta_spent: f64,
    },
    /// Goodbye acknowledged ([`Command::Close`]).
    Closed,
    /// The command failed; nothing about the session changed beyond what
    /// the error names.
    Err(EngineError),
}

impl Reply {
    /// Extract the released estimators, turning every non-release reply
    /// into an error (convenience for observe-style commands).
    pub fn into_releases(self) -> Result<Vec<Vec<f64>>, EngineError> {
        match self {
            Reply::Releases { thetas, .. } => Ok(thetas),
            Reply::Err(e) => Err(e),
            other => Err(EngineError::Mechanism {
                reason: format!("expected a release reply, got {other:?}"),
            }),
        }
    }
}

/// A claim on one command's eventual [`Reply`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Reply>,
}

impl Ticket {
    /// A ticket that is already resolved to `reply`.
    fn resolved(reply: Reply) -> Self {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(reply);
        Ticket { rx }
    }

    /// Block until the reply arrives. If the engine shut down before
    /// answering, the reply is [`Reply::Err`]\([`EngineError::Closed`]).
    pub fn wait(self) -> Reply {
        self.rx.recv().unwrap_or(Reply::Err(EngineError::Closed))
    }

    /// Non-blocking poll: `Some(reply)` once the reply is in, `None`
    /// while the command is still queued or computing.
    pub fn try_wait(&self) -> Option<Reply> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Reply::Err(EngineError::Closed)),
        }
    }
}

/// One session's slice of an ingest batch: `(session id, original input
/// indices, points in arrival order)` — same grouping as
/// [`ShardedEngine::ingest`](crate::ShardedEngine::ingest).
type SessionRun = (u64, Vec<usize>, Vec<DataPoint>);

/// An ingest result tagged with the input index it answers.
type IndexedRelease = (usize, Result<Vec<f64>, EngineError>);

/// What travels down a shard's queue.
enum Job {
    /// One wire-level command with its reply channel.
    Cmd { cmd: Command, cost: usize, reply: Sender<Reply> },
    /// The bulk fast path behind [`SubmitHandle::ingest`]: a whole
    /// shard's slice of a mixed-tenant batch in one message.
    Ingest { runs: Vec<SessionRun>, cost: usize, reply: Sender<Vec<IndexedRelease>> },
    /// Barrier: acknowledge once everything before this job is done.
    Flush { ack: Sender<()> },
    /// Drain, report `(live sessions, live points)`, and exit.
    Shutdown { ack: Sender<(usize, usize)> },
}

/// One shard's ingress lane: its queue plus the shared depth gauge.
struct Lane {
    tx: Sender<Job>,
    depth: Arc<AtomicUsize>,
}

/// Final tallies returned by [`EngineHandle::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressStats {
    /// Sessions still live (never released) at close.
    pub sessions: usize,
    /// Stream points those live sessions had consumed.
    pub points: usize,
}

/// The cheap, shareable front door to a pipelined engine.
///
/// `SubmitHandle` is `Clone + Send + Sync`: clone one per thread (or per
/// TCP connection — see [`serve_tcp`](crate::serve_tcp)) and feed the
/// same fleet concurrently with **no external lock**. Clones share the
/// per-shard queues, the atomic depth gauges, and the capacity; a clone
/// costs one `Arc` bump.
///
/// Obtained from [`EngineHandle::submit_handle`]; `EngineHandle` also
/// derefs to `SubmitHandle`, so every submission method below is
/// callable on the owning handle directly. Clones do not keep the engine
/// alive: after [`EngineHandle::close`] (or drop) every submission
/// through a surviving clone fails with [`EngineError::Closed`].
///
/// The headline invariants:
///
/// - **Non-blocking**: [`submit`](Self::submit) returns as soon as the
///   command is enqueued (or rejected), never waiting on mechanism
///   compute. ([`Command::Close`] never even enqueues — its ticket is
///   resolved on the spot.)
/// - **Atomic backpressure**: a command that does not fit its shard's
///   queue whole is rejected whole — transiently
///   ([`EngineError::Backpressure`], reported with the depth observed at
///   the failed reservation) or permanently
///   ([`EngineError::CommandTooLarge`], when `cost > capacity`).
/// - **Deterministic**: per-session FIFO + seed-per-`(engine seed, id)`
///   make release sequences identical to the direct
///   [`ShardedEngine`](crate::ShardedEngine) path, under any shard count,
///   for any set of concurrent submitters driving disjoint sessions.
#[derive(Clone)]
pub struct SubmitHandle {
    lanes: Arc<[Lane]>,
    capacity: usize,
    seed: u64,
    /// Raised by [`EngineHandle::close`] / drop so surviving clones fail
    /// fast with [`EngineError::Closed`] — before any size or capacity
    /// verdict, which would otherwise mislead (a `CommandTooLarge` from
    /// a dead engine invites a pointless split-and-retry).
    closed: Arc<std::sync::atomic::AtomicBool>,
}

impl std::fmt::Debug for SubmitHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitHandle")
            .field("num_shards", &self.lanes.len())
            .field("capacity", &self.capacity)
            .field("depths", &self.queue_depths())
            .finish()
    }
}

impl SubmitHandle {
    /// Number of shards (= worker threads).
    pub fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// The configured per-shard queue depth, in points.
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Instantaneous queued-point count per shard (observability: a shard
    /// pinned at capacity is the backpressure signal to scale or shed).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.depth.load(Ordering::Relaxed)).collect()
    }

    /// The engine seed (for spawning a mirrored
    /// [`ShardedEngine`](crate::ShardedEngine)
    /// in tests; treat as secret in production — see
    /// [`IngressConfig::seed`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn shard_index(&self, session_id: u64) -> usize {
        shard_of(session_id, self.lanes.len())
    }

    /// Try to reserve `cost` points of queue space on `shard`.
    ///
    /// On failure the `depth` carried by [`EngineError::Backpressure`] is
    /// the value observed by the failed compare-and-swap itself — the
    /// reservation-time truth, not a post-hoc re-read — so concurrent
    /// submitters cannot skew the reported signal.
    fn reserve(&self, shard: usize, cost: usize) -> Result<(), EngineError> {
        // A shut-down engine outranks every other verdict: after close()
        // the only truthful answer is Closed, not a size critique.
        if self.closed.load(Ordering::SeqCst) {
            return Err(EngineError::Closed);
        }
        if cost > self.capacity {
            return Err(EngineError::CommandTooLarge { shard, cost, capacity: self.capacity });
        }
        let depth = &self.lanes[shard].depth;
        depth
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur + cost <= self.capacity).then_some(cur + cost)
            })
            .map(|_| ())
            .map_err(|cur| EngineError::Backpressure {
                shard,
                depth: cur,
                capacity: self.capacity,
                cost,
            })
    }

    /// Wait out transient backpressure on `shard` by riding its flush
    /// barrier once; the caller retries its reservation afterwards.
    ///
    /// Multi-submitter-safe: the flush job does not itself consume queue
    /// space, its ack guarantees the worker made progress (everything
    /// ahead of it drained), and the reservation being retried is a
    /// single compare-and-swap — so when several blocked submitters race
    /// for freed space, at least one always wins and the rest re-ride
    /// the barrier. No livelock; fairness is best-effort (a large cost
    /// can be outpaced by a stream of small ones — see
    /// `docs/OPERATIONS.md`). The barrier doubles as a liveness probe: a
    /// dead worker (post-panic) surfaces as [`EngineError::Closed`]
    /// instead of a spin.
    fn ride_flush_barrier(&self, shard: usize) -> Result<(), EngineError> {
        let (tx, rx) = mpsc::channel();
        if self.lanes[shard].tx.send(Job::Flush { ack: tx }).is_err() || rx.recv().is_err() {
            return Err(EngineError::Closed);
        }
        std::thread::yield_now();
        Ok(())
    }

    /// Reserve `cost` points on `shard`, waiting out transient
    /// backpressure (see [`ride_flush_barrier`](Self::ride_flush_barrier)
    /// for the contention story).
    fn reserve_blocking(&self, shard: usize, cost: usize) -> Result<(), EngineError> {
        loop {
            match self.reserve(shard, cost) {
                Ok(()) => return Ok(()),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(_) => self.ride_flush_barrier(shard)?,
            }
        }
    }

    /// Enqueue one command without waiting for its compute.
    ///
    /// Commands for the same session are processed in submission order
    /// (per-shard FIFO), so `open → observe → release` pipelines without
    /// waiting on intermediate tickets. [`Command::Close`] is
    /// connection-scoped and never blocks: its ticket is already resolved
    /// to [`Reply::Closed`] (see [`Command::Close`] for where the
    /// client-visible barrier comes from).
    ///
    /// # Errors
    /// [`EngineError::Backpressure`] if the target shard's queue cannot
    /// take the command whole right now (transient — nothing was
    /// enqueued; retry after the shard drains),
    /// [`EngineError::CommandTooLarge`] if it can *never* take it
    /// (permanent — split the command), or [`EngineError::Closed`] if the
    /// engine has shut down.
    pub fn submit(&self, cmd: Command) -> Result<Ticket, EngineError> {
        self.try_submit(cmd).map_err(|(_, e)| e)
    }

    /// [`submit`](Self::submit), but a rejected command is handed back to
    /// the caller alongside the error — so retry loops (the server's
    /// flow-control path, most prominently) need not clone a potentially
    /// large batch per attempt.
    ///
    /// # Errors
    /// As [`submit`](Self::submit), with the unconsumed [`Command`]
    /// attached.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, cmd: Command) -> Result<Ticket, (Command, EngineError)> {
        let Some(session_id) = cmd.session_id() else {
            // Close: connection-scoped, resolved on the spot — never a
            // fleet-wide barrier (one tenant's goodbye must not wait on
            // another tenant's queued compute).
            return Ok(Ticket::resolved(Reply::Closed));
        };
        let shard = self.shard_index(session_id);
        let cost = cmd.cost();
        if let Err(e) = self.reserve(shard, cost) {
            return Err((cmd, e));
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        match self.lanes[shard].tx.send(Job::Cmd { cmd, cost, reply: reply_tx }) {
            Ok(()) => Ok(Ticket { rx: reply_rx }),
            // Worker gone (only possible after a panic or close): roll
            // the reservation back and surface the shutdown, handing the
            // command (recovered from the undeliverable job) back.
            Err(mpsc::SendError(Job::Cmd { cmd, .. })) => {
                self.lanes[shard].depth.fetch_sub(cost, Ordering::SeqCst);
                Err((cmd, EngineError::Closed))
            }
            Err(_) => unreachable!("send hands back the job it was given"),
        }
    }

    /// [`submit`](Self::submit) that waits out *transient* backpressure
    /// (by riding the target shard's flush barrier) instead of returning
    /// it. The blocking entry point for callers with nothing better to do
    /// than wait — e.g. a connection thread whose own in-flight replies
    /// are all drained.
    ///
    /// # Errors
    /// [`EngineError::CommandTooLarge`] (permanent rejections are *not*
    /// waited out) or [`EngineError::Closed`].
    pub fn submit_blocking(&self, mut cmd: Command) -> Result<Ticket, EngineError> {
        loop {
            match self.try_submit(cmd) {
                Ok(ticket) => return Ok(ticket),
                Err((_, e)) if !e.is_retryable() => return Err(e),
                Err((rejected, _)) => {
                    // Transient: wait for the shard to drain, then retry
                    // with the handed-back command (no clone per attempt).
                    let shard =
                        self.shard_index(rejected.session_id().expect("retryable implies routed"));
                    self.ride_flush_barrier(shard)?;
                    cmd = rejected;
                }
            }
        }
    }

    /// [`Command::Open`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn open(
        &self,
        session_id: u64,
        spec: &MechanismSpec,
        t_max: usize,
        params: &PrivacyParams,
    ) -> Result<Ticket, EngineError> {
        self.submit(Command::Open { session_id, spec: spec.clone(), t_max, params: *params })
    }

    /// [`Command::Observe`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn observe(&self, session_id: u64, point: DataPoint) -> Result<Ticket, EngineError> {
        self.submit(Command::Observe { session_id, point })
    }

    /// [`Command::ObserveBatch`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn observe_batch(
        &self,
        session_id: u64,
        points: Vec<DataPoint>,
    ) -> Result<Ticket, EngineError> {
        self.submit(Command::ObserveBatch { session_id, points })
    }

    /// [`Command::Release`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn release_session(&self, session_id: u64) -> Result<Ticket, EngineError> {
        self.submit(Command::Release { session_id })
    }

    /// Drive a mixed batch of arrivals across many sessions — the bulk
    /// fast path, drop-in equivalent to
    /// [`ShardedEngine::ingest`](crate::ShardedEngine::ingest) (the
    /// release sequences are identical; see `tests/ingress.rs`).
    ///
    /// Points are grouped per session (preserving each session's arrival
    /// order) and each shard's slice travels as **one** queue message, so
    /// channel overhead is `O(num_shards)` per call, not `O(points)`.
    /// `out[i]` answers `points[i]`. Backpressure handling: a shard slice
    /// larger than the whole queue reports
    /// [`EngineError::CommandTooLarge`] on its indices (no amount of
    /// waiting would admit it); otherwise `ingest` waits for the shard to
    /// drain (it is the *blocking* entry point — use
    /// [`submit`](Self::submit) for fire-and-forget). Several `ingest`
    /// calls may run concurrently on clones of one handle; they contend
    /// for queue space via the same atomic reservation and cannot livelock
    /// each other (see `reserve_blocking`). Note the resulting
    /// granularity: each *shard slice* is applied or rejected as a unit,
    /// so one fleet-level call can mix applied and rejected indices —
    /// consult the per-index results before replaying anything.
    pub fn ingest(&self, points: Vec<(u64, DataPoint)>) -> Vec<Result<Vec<f64>, EngineError>> {
        let n = points.len();
        let num_shards = self.lanes.len();
        // Group per shard, then per session, preserving arrival order —
        // the exact grouping of `ShardedEngine::ingest`.
        let mut per_shard: Vec<Vec<SessionRun>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut slot: HashMap<u64, (usize, usize)> = HashMap::new();
        for (i, (sid, z)) in points.into_iter().enumerate() {
            let shard = self.shard_index(sid);
            let (s, g) = *slot.entry(sid).or_insert_with(|| {
                per_shard[shard].push((sid, Vec::new(), Vec::new()));
                (shard, per_shard[shard].len() - 1)
            });
            per_shard[s][g].1.push(i);
            per_shard[s][g].2.push(z);
        }

        let mut results: Vec<Option<Result<Vec<f64>, EngineError>>> =
            (0..n).map(|_| None).collect();
        let mut pending: Vec<(Vec<usize>, Receiver<Vec<IndexedRelease>>)> = Vec::new();
        for (shard, runs) in per_shard.into_iter().enumerate() {
            if runs.is_empty() {
                continue;
            }
            let cost: usize = runs.iter().map(|(_, _, b)| b.len()).sum::<usize>().max(1);
            let all_indices: Vec<usize> =
                runs.iter().flat_map(|(_, idx, _)| idx.iter().copied()).collect();
            if let Err(e) = self.reserve_blocking(shard, cost) {
                // Permanent rejection (slice can never fit) or a dead
                // worker: report it on every affected index.
                for i in all_indices {
                    results[i] = Some(Err(e.clone()));
                }
                continue;
            }
            let (tx, rx) = mpsc::channel();
            if self.lanes[shard].tx.send(Job::Ingest { runs, cost, reply: tx }).is_err() {
                self.lanes[shard].depth.fetch_sub(cost, Ordering::SeqCst);
                for i in all_indices {
                    results[i] = Some(Err(EngineError::Closed));
                }
                continue;
            }
            pending.push((all_indices, rx));
        }
        for (all_indices, rx) in pending {
            match rx.recv() {
                Ok(parts) => {
                    for (i, r) in parts {
                        results[i] = Some(r);
                    }
                }
                Err(_) => {
                    for i in all_indices {
                        results[i] = Some(Err(EngineError::Closed));
                    }
                }
            }
        }
        results.into_iter().map(|r| r.expect("every input index receives a result")).collect()
    }

    /// Fleet-wide barrier: returns once every command submitted (by *any*
    /// submitter) before the call has been fully processed — its reply
    /// sent. Releases stay deterministic across flushes — this orders
    /// *completion*, never *noise*. For a connection-scoped goodbye use
    /// [`Command::Close`] instead; `flush` is the operator's tool (drain
    /// before snapshotting gauges, quiesce before reconfiguring).
    pub fn flush(&self) {
        let acks: Vec<Receiver<()>> = self
            .lanes
            .iter()
            .filter_map(|l| {
                let (tx, rx) = mpsc::channel();
                l.tx.send(Job::Flush { ack: tx }).ok().map(|()| rx)
            })
            .collect();
        for rx in acks {
            let _ = rx.recv();
        }
    }
}

/// The worker-owning side of the pipelined frontend.
///
/// Owns one worker thread per shard; each worker holds its shard's
/// sessions and drains a bounded command queue. All submission goes
/// through [`SubmitHandle`] — `EngineHandle` [derefs](std::ops::Deref) to
/// one, and [`submit_handle`](Self::submit_handle) clones out shareable
/// handles for other threads — while lifecycle (owning the workers,
/// [`close`](Self::close)) stays here, on the uniquely-owned type. See
/// the [module docs](self) for the full contract.
#[derive(Debug)]
pub struct EngineHandle {
    submit: SubmitHandle,
    workers: Vec<JoinHandle<()>>,
}

impl std::ops::Deref for EngineHandle {
    type Target = SubmitHandle;

    fn deref(&self) -> &SubmitHandle {
        &self.submit
    }
}

impl EngineHandle {
    /// Spawn the shard workers.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if `num_shards == 0` or
    /// `queue_depth == 0`.
    pub fn new(config: IngressConfig) -> Result<Self, EngineError> {
        validate_config(&config)?;
        let states = (0..config.num_shards).map(|_| (HashMap::new(), None)).collect();
        Ok(EngineHandle::spawn_workers(config, states))
    }

    /// Spawn a **write-ahead-logged** engine: replay whatever command
    /// log survives under `options.dir` (an empty or missing directory
    /// replays nothing), then bring up the shard workers with every
    /// subsequent command logged **before** it executes.
    ///
    /// Replay rebuilds each session from `(seed, session id)` exactly as
    /// the original run did, so the recovered engine's future releases —
    /// and the replayed ones — are bit-identical to an uninterrupted
    /// run's (`tests/recovery.rs`). The shard count may differ from the
    /// logging run's: releases are invariant under resharding, and each
    /// restart stamps a fresh log epoch so replay order stays correct
    /// across generations. A torn final record in any shard's log is
    /// accepted as the expected crash artifact; **any other** corruption
    /// fails this constructor loudly — no workers are spawned and
    /// nothing is replayed into a live engine.
    ///
    /// Commands that re-fail deterministically during replay (a
    /// duplicate open, an over-horizon observe) are counted in
    /// [`RecoveryReport::failed`], exactly mirroring the error replies
    /// the original run sent.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] as [`new`](Self::new), or
    /// [`EngineError::Wal`] wrapping any
    /// [`WalError`](crate::wal::WalError) the existing log violates (or
    /// invalid `options`).
    pub fn with_wal(
        config: IngressConfig,
        options: &WalOptions,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        validate_config(&config)?;
        options.validate().map_err(wal_engine_err)?;
        let log = wal::load_log(&options.dir).map_err(wal_engine_err)?;

        // Replay into per-shard session tables under the *current* shard
        // count, through the same executor the workers run.
        let n = config.num_shards;
        let mut maps: Vec<HashMap<u64, StreamSession>> = (0..n).map(|_| HashMap::new()).collect();
        let mut failed = 0u64;
        for cmd in &log.commands {
            let Some(sid) = cmd.session_id() else { continue };
            let r = exec_command(&mut maps[shard_of(sid, n)], config.seed, cmd.clone());
            if matches!(r, Reply::Err(_)) {
                failed += 1;
            }
        }
        let report = log.report(failed);

        // One writer per (current) shard, all at the next epoch, each
        // continuing its shard's chain where the log left off.
        let epoch = wal::next_epoch(log.max_epoch).map_err(wal_engine_err)?;
        let mut states = Vec::with_capacity(n);
        for (shard, sessions) in maps.into_iter().enumerate() {
            let (seg_seq, rec_seq) = log.resume_for(shard as u32);
            let writer = WalWriter::resume(options, shard as u32, epoch, seg_seq, rec_seq)
                .map_err(wal_engine_err)?;
            states.push((sessions, Some(writer)));
        }
        Ok((EngineHandle::spawn_workers(config, states), report))
    }

    /// Bring up one worker per entry of `states`, each owning its
    /// prebuilt session table and optional log writer.
    fn spawn_workers(
        config: IngressConfig,
        states: Vec<(HashMap<u64, StreamSession>, Option<WalWriter>)>,
    ) -> Self {
        let mut lanes = Vec::with_capacity(states.len());
        let mut workers = Vec::with_capacity(states.len());
        for (sessions, wal) in states {
            let (tx, rx) = mpsc::channel::<Job>();
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            let seed = config.seed;
            workers.push(std::thread::spawn(move || {
                worker_loop(rx, worker_depth, seed, sessions, wal)
            }));
            lanes.push(Lane { tx, depth });
        }
        let submit = SubmitHandle {
            lanes: lanes.into(),
            capacity: config.queue_depth,
            seed: config.seed,
            closed: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        };
        EngineHandle { submit, workers }
    }

    /// Clone out a shareable [`SubmitHandle`] — `Clone + Send + Sync` —
    /// for another thread to feed this engine (one per TCP connection in
    /// [`serve_tcp`](crate::serve_tcp)). Clones do not keep the engine
    /// alive: after [`close`](Self::close) they fail with
    /// [`EngineError::Closed`].
    pub fn submit_handle(&self) -> SubmitHandle {
        self.submit.clone()
    }

    /// Drain every queue, shut the workers down, and join them. Any
    /// [`SubmitHandle`] clones still outstanding remain safe to use —
    /// their submissions simply fail with [`EngineError::Closed`].
    pub fn close(mut self) -> IngressStats {
        self.submit.closed.store(true, Ordering::SeqCst);
        let mut stats = IngressStats { sessions: 0, points: 0 };
        let acks: Vec<Receiver<(usize, usize)>> = self
            .submit
            .lanes
            .iter()
            .filter_map(|l| {
                let (tx, rx) = mpsc::channel();
                l.tx.send(Job::Shutdown { ack: tx }).ok().map(|()| rx)
            })
            .collect();
        for rx in acks {
            if let Ok((sessions, points)) = rx.recv() {
                stats.sessions += sessions;
                stats.points += points;
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        stats
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // already closed
        }
        self.submit.closed.store(true, Ordering::SeqCst);
        for l in self.submit.lanes.iter() {
            let (tx, _rx) = mpsc::channel();
            let _ = l.tx.send(Job::Shutdown { ack: tx });
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Shared constructor validation for [`EngineHandle::new`] and
/// [`EngineHandle::with_wal`].
fn validate_config(config: &IngressConfig) -> Result<(), EngineError> {
    if config.num_shards == 0 {
        return Err(EngineError::InvalidConfig {
            reason: "num_shards must be at least 1".to_string(),
        });
    }
    if config.queue_depth == 0 {
        return Err(EngineError::InvalidConfig {
            reason: "queue_depth must be at least 1".to_string(),
        });
    }
    Ok(())
}

/// Lift a log-layer failure into the engine's error vocabulary.
fn wal_engine_err(e: wal::WalError) -> EngineError {
    EngineError::Wal { reason: e.to_string() }
}

/// One shard's worker: owns the shard's sessions (and, in a WAL-enabled
/// engine, the shard's log writer), drains its queue. The durability
/// discipline is **log before execute**: a command that cannot be made
/// durable is never applied, so the log is always a superset of what the
/// engine executed and replay can never silently drop a committed
/// command.
fn worker_loop(
    rx: Receiver<Job>,
    depth: Arc<AtomicUsize>,
    engine_seed: u64,
    mut sessions: HashMap<u64, StreamSession>,
    mut wal: Option<WalWriter>,
) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Cmd { cmd, cost, reply } => {
                let r = match log_command(&mut wal, &cmd) {
                    Ok(()) => exec_command(&mut sessions, engine_seed, cmd),
                    Err(e) => Reply::Err(e),
                };
                depth.fetch_sub(cost, Ordering::SeqCst);
                let _ = reply.send(r);
            }
            Job::Ingest { runs, cost, reply } => {
                let out = match wal.as_mut() {
                    None => run_ingest(&mut sessions, runs),
                    Some(w) => run_ingest_logged(&mut sessions, w, runs),
                };
                depth.fetch_sub(cost, Ordering::SeqCst);
                let _ = reply.send(out);
            }
            Job::Flush { ack } => {
                let _ = ack.send(());
            }
            Job::Shutdown { ack } => {
                // Clean shutdown: force the log to stable storage
                // regardless of fsync policy, so a post-close purge (or
                // replica copy) sees everything.
                if let Some(w) = wal.take() {
                    let _ = w.finish();
                }
                let points = sessions.values().map(StreamSession::t).sum();
                let _ = ack.send((sessions.len(), points));
                break;
            }
        }
    }
}

/// Append `cmd` to the shard's log, if it has one. An append failure
/// becomes [`EngineError::Wal`] and the caller must **not** execute the
/// command.
fn log_command(wal: &mut Option<WalWriter>, cmd: &Command) -> Result<(), EngineError> {
    match wal {
        None => Ok(()),
        Some(w) => w.append(cmd).map_err(|e| EngineError::Wal { reason: e.to_string() }),
    }
}

/// Execute one command against a shard's session table.
fn exec_command(
    sessions: &mut HashMap<u64, StreamSession>,
    engine_seed: u64,
    cmd: Command,
) -> Reply {
    match cmd {
        Command::Open { session_id, spec, t_max, params } => {
            if sessions.contains_key(&session_id) {
                return Reply::Err(EngineError::DuplicateSession { id: session_id });
            }
            let mut rng = NoiseRng::seed_from_u64(session_seed(engine_seed, session_id));
            match StreamSession::spawn(session_id, &spec, t_max, &params, &mut rng) {
                Ok(s) => {
                    sessions.insert(session_id, s);
                    Reply::Opened { session_id }
                }
                Err(e) => Reply::Err(e),
            }
        }
        Command::Observe { session_id, point } => match sessions.get_mut(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => match s.observe(&point) {
                Ok(theta) => Reply::Releases { session_id, thetas: vec![theta] },
                Err(e) => Reply::Err(e),
            },
        },
        Command::ObserveBatch { session_id, points } => match sessions.get_mut(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => match s.observe_batch(&points) {
                Ok(thetas) => Reply::Releases { session_id, thetas },
                Err(e) => Reply::Err(e),
            },
        },
        Command::Release { session_id } => match sessions.remove(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => {
                let (epsilon_spent, delta_spent) = s.accountant().spent();
                Reply::SessionReleased {
                    session_id,
                    points: s.t() as u64,
                    epsilon_spent,
                    delta_spent,
                }
            }
        },
        // `Close` is resolved at the handle (connection-scoped, never
        // enqueued); a worker only sees it if routed here explicitly in
        // the future.
        Command::Close => Reply::Closed,
    }
}

/// Drive one shard's slice of a mixed-tenant batch — the same semantics
/// as the closure inside `ShardedEngine::ingest` (a batch-level failure
/// is reported on every index of the affected session's group).
fn run_ingest(
    sessions: &mut HashMap<u64, StreamSession>,
    runs: Vec<SessionRun>,
) -> Vec<IndexedRelease> {
    let mut out = Vec::new();
    for (sid, indices, batch) in runs {
        ingest_run(sessions, sid, indices, &batch, &mut out);
    }
    out
}

/// [`run_ingest`] with log-before-execute: each session run is logged as
/// one [`Command::ObserveBatch`] record (matching the atomic batch
/// contract — the unit of queue admission is the unit of durability),
/// and a run whose append fails is reported as [`EngineError::Wal`] on
/// every affected index without touching the session.
fn run_ingest_logged(
    sessions: &mut HashMap<u64, StreamSession>,
    wal: &mut WalWriter,
    runs: Vec<SessionRun>,
) -> Vec<IndexedRelease> {
    // Wrap every run by move (no point is cloned) and log the whole job
    // with one coalesced append — one write syscall per segment stretch
    // instead of one per session run; this is what keeps the logged
    // ingest path inside its throughput budget.
    let mut cmds = Vec::with_capacity(runs.len());
    let mut run_indices = Vec::with_capacity(runs.len());
    for (sid, indices, batch) in runs {
        cmds.push(Command::ObserveBatch { session_id: sid, points: batch });
        run_indices.push(indices);
    }
    let mut out = Vec::new();
    if let Err(e) = wal.append_batch(&cmds) {
        // Nothing (or a poisoned prefix) reached the log: the whole job
        // is un-executed, reported on every affected index.
        let err = EngineError::Wal { reason: e.to_string() };
        for indices in run_indices {
            for i in indices {
                out.push((i, Err(err.clone())));
            }
        }
        return out;
    }
    for (cmd, indices) in cmds.into_iter().zip(run_indices) {
        let Command::ObserveBatch { session_id: sid, points: batch } = cmd else {
            unreachable!("constructed as ObserveBatch above")
        };
        ingest_run(sessions, sid, indices, &batch, &mut out);
    }
    out
}

/// Execute one session's run of an ingest batch against a shard's
/// session table, appending index-tagged results to `out`.
fn ingest_run(
    sessions: &mut HashMap<u64, StreamSession>,
    sid: u64,
    indices: Vec<usize>,
    batch: &[DataPoint],
    out: &mut Vec<IndexedRelease>,
) {
    match sessions.get_mut(&sid) {
        None => {
            for i in indices {
                out.push((i, Err(EngineError::UnknownSession { id: sid })));
            }
        }
        Some(session) => match session.observe_batch(batch) {
            Ok(releases) => {
                for (i, theta) in indices.into_iter().zip(releases) {
                    out.push((i, Ok(theta)));
                }
            }
            Err(e) => {
                for i in indices {
                    out.push((i, Err(e.clone())));
                }
            }
        },
    }
}
