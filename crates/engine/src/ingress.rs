//! Pipelined ingestion in front of the sharded engine.
//!
//! [`ShardedEngine`](crate::ShardedEngine) is a synchronous object: every
//! call blocks the caller until the mechanisms have finished their
//! per-point compute, so one slow tenant stalls whoever is feeding the
//! fleet. This module puts a queue between the caller and the compute:
//!
//! - an [`EngineHandle`] owns one worker thread per shard, each with a
//!   **bounded** command queue (depth measured in *points*, not
//!   commands);
//! - a [`SubmitHandle`] — `Clone + Send + Sync`, handed out by
//!   [`EngineHandle::submit_handle`] — is the cheap, shareable front
//!   door: any number of threads (one per TCP connection, say) can
//!   [`submit`](SubmitHandle::submit) [`Command`]s concurrently with no
//!   external lock, each getting back a [`Ticket`] immediately, without
//!   waiting for mechanism compute;
//! - a full queue rejects the command **atomically** with
//!   [`EngineError::Backpressure`] (transient — retry after the shard
//!   drains) or [`EngineError::CommandTooLarge`] (permanent — the
//!   command can *never* fit; split it): nothing is enqueued, no prefix
//!   of a batch is applied, and the caller decides whether to retry,
//!   shed, or spill;
//! - [`flush`](SubmitHandle::flush) is a fleet-wide barrier (every
//!   command enqueued before it has been fully processed when it
//!   returns), and [`close`](EngineHandle::close) drains and joins the
//!   fleet. [`Command::Close`] is *not* a fleet barrier: it is a
//!   connection-scoped goodbye (see [`Command::Close`]);
//! - an optional **spill tier** ([`EngineHandle::with_spill`]) bounds
//!   resident memory: each shard keeps an LRU over its idle sessions,
//!   spills the coldest to disk as `PIRS` snapshots once the shard
//!   exceeds [`SpillOptions::resident_cap`], and restores them
//!   transparently — in command order — on their next command;
//! - on a write-ahead-logged engine, [`EngineHandle::checkpoint`]
//!   compacts the log **under live traffic**: every shard snapshots its
//!   sessions and cuts its log chain at a job boundary, the cuts merge
//!   into one `PIRC` manifest, and covered segment files are deleted, so
//!   recovery replays only the post-checkpoint tail.
//!
//! Determinism survives the pipeline — and survives concurrent
//! submitters, provided they drive **disjoint sessions**: commands for
//! one session always route to the same shard queue (FIFO), so a
//! session's points are consumed in submission order, and its noise
//! stream still derives from `(engine seed, session id)` alone. The
//! release sequences are therefore bit-for-bit identical to driving
//! [`ShardedEngine`](crate::ShardedEngine) directly — under any shard
//! count and any thread interleaving of other sessions' traffic — which
//! is property-tested in `tests/ingress.rs` and, over real sockets, in
//! `tests/tcp.rs`. (Two threads feeding the *same* session race for
//! queue positions; the engine stays coherent, but which interleaving
//! they get is scheduling-dependent — give concurrent feeders disjoint
//! sessions.)
//!
//! # Examples
//!
//! ```
//! use pir_engine::{Command, EngineHandle, IngressConfig, MechanismSpec, Reply};
//! use pir_dp::PrivacyParams;
//! use pir_erm::DataPoint;
//!
//! let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
//! let handle = EngineHandle::new(IngressConfig {
//!     num_shards: 2,
//!     seed: 7,
//!     queue_depth: 64,
//! })
//! .unwrap();
//!
//! // Pipelined: open and observe are submitted back-to-back; per-shard
//! // FIFO ordering makes waiting for the open unnecessary.
//! let opened = handle.open(1, &MechanismSpec::reg1_l2(3), 16, &params).unwrap();
//! let release = handle.observe(1, DataPoint::new(vec![0.5, 0.1, 0.0], 0.3)).unwrap();
//! assert_eq!(opened.wait(), Reply::Opened { session_id: 1 });
//! let thetas = release.wait().into_releases().unwrap();
//! assert_eq!(thetas[0].len(), 3);
//! let stats = handle.close();
//! assert_eq!(stats.points, 1);
//! ```
//!
//! Many threads feeding one engine through cloned [`SubmitHandle`]s:
//!
//! ```
//! use pir_engine::{EngineHandle, IngressConfig, MechanismSpec};
//! use pir_dp::PrivacyParams;
//! use pir_erm::DataPoint;
//!
//! let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
//! let handle = EngineHandle::new(IngressConfig {
//!     num_shards: 2,
//!     seed: 7,
//!     queue_depth: 64,
//! })
//! .unwrap();
//! std::thread::scope(|s| {
//!     for sid in 0..4u64 {
//!         let submit = handle.submit_handle(); // Clone + Send + Sync
//!         s.spawn(move || {
//!             submit.open(sid, &MechanismSpec::reg1_l2(2), 8, &params).unwrap();
//!             let t = submit.observe(sid, DataPoint::new(vec![0.5, 0.0], 0.1)).unwrap();
//!             t.wait().into_releases().unwrap();
//!         });
//!     }
//! });
//! assert_eq!(handle.close().sessions, 4);
//! ```

use crate::engine::{entropy_seed, shard_of};
use crate::error::EngineError;
use crate::session::StreamSession;
use crate::spec::MechanismSpec;
use crate::storage::StorageHandle;
use crate::sync::lock_or_recover;
use crate::wal::{self, CheckpointPolicy, CheckpointReport, RecoveryReport, WalOptions, WalWriter};
use pir_dp::PrivacyParams;
use pir_erm::DataPoint;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for the pipelined ingestion layer.
#[derive(Debug, Clone, Copy)]
pub struct IngressConfig {
    /// Number of shards (= worker threads) sessions are hash-partitioned
    /// across. Defaults to the machine's available parallelism.
    pub num_shards: usize,
    /// Base seed; identical in meaning to
    /// [`EngineConfig::seed`](crate::EngineConfig::seed) — a session's
    /// noise stream derives from `(seed, session id)` alone, so releases
    /// are invariant under resharding. The same privacy warning applies:
    /// fix it for experiments only, the default draws from OS entropy.
    pub seed: u64,
    /// Per-shard queue depth, measured in **points** (an
    /// [`Command::ObserveBatch`] of `k` points costs `k`; every other
    /// command costs 1). A command that would push a queue past this
    /// depth is rejected whole with [`EngineError::Backpressure`]; a
    /// command whose cost exceeds the depth itself can never be accepted
    /// and is rejected with [`EngineError::CommandTooLarge`].
    pub queue_depth: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            num_shards: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            seed: entropy_seed(),
            queue_depth: 1024,
        }
    }
}

/// Configuration for the optional session **spill tier** (see
/// [`EngineHandle::with_spill`]): a per-shard LRU over idle sessions
/// that bounds resident memory by writing cold sessions to disk as
/// `PIRS` snapshots and transparently restoring them on their next
/// command.
#[derive(Debug, Clone)]
pub struct SpillOptions {
    /// Directory spilled sessions are written to (created if missing).
    /// The directory is an extension of *this process's* memory, not a
    /// durability layer: stale spill files from a previous process are
    /// deleted at startup (crash recovery is the write-ahead log's job)
    /// and spill writes are never fsynced.
    pub dir: PathBuf,
    /// Maximum sessions resident in memory **per shard** before the LRU
    /// starts spilling. Eviction is best-effort: sessions with
    /// queued-but-unexecuted commands, sessions whose mechanism cannot
    /// snapshot (`PRIVINCERM`, custom-set specs), and sessions whose
    /// spill write fails are all skipped, so a shard can transiently
    /// exceed the cap.
    pub resident_cap: usize,
    /// The storage backend spill files go through. Defaults to the real
    /// filesystem ([`crate::OsStorage`]); tests swap in a
    /// [`crate::SimDisk`] to script crashes and I/O faults.
    pub storage: StorageHandle,
}

impl SpillOptions {
    /// Spill into `dir` with the default per-shard resident cap (4096).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillOptions { dir: dir.into(), resident_cap: 4096, storage: StorageHandle::os() }
    }

    fn validate(&self) -> Result<(), EngineError> {
        if self.resident_cap == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "spill resident_cap must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Spill-tier counters, read through [`SubmitHandle::spill_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Sessions written to disk by LRU eviction (cumulative).
    pub spills: u64,
    /// Spilled sessions restored in-band for a later command (cumulative).
    pub restores: u64,
    /// Evictions abandoned because snapshotting or the disk write failed
    /// (cumulative). The victim stays resident; nothing is lost.
    pub spill_failures: u64,
    /// Spill-file removals that failed (cumulative): a consumed restore
    /// or an abandoned eviction left its file behind. Startup cleanup
    /// reclaims the space; a climbing counter means the spill volume is
    /// unhealthy.
    pub remove_failures: u64,
    /// Sessions currently resident in memory, summed across shards.
    pub resident: usize,
    /// Sessions currently spilled to disk, summed across shards.
    pub spilled: usize,
}

/// State shared between submitters and shard workers when the spill tier
/// is enabled: the counters behind [`SubmitHandle::spill_stats`] and the
/// per-shard pending-command maps that keep eviction away from sessions
/// with queued work.
#[derive(Debug)]
struct SpillShared {
    spills: AtomicU64,
    restores: AtomicU64,
    spill_failures: AtomicU64,
    remove_failures: AtomicU64,
    resident: AtomicUsize,
    spilled: AtomicUsize,
    /// Per-shard `session id → queued-command count`. Incremented by the
    /// submitter *before* the job is sent and decremented by the worker
    /// only *after* the job executes, so when a worker between jobs
    /// considers evicting a session, either the entry is visible (and
    /// the victim is skipped) or the command has not been enqueued yet —
    /// in which case its arrival restores the session in-band. This
    /// happens-before edge is what closes the stale-depth window where a
    /// session could be spilled between a command's enqueue and its
    /// execution.
    pending: Box<[Mutex<HashMap<u64, usize>>]>,
}

impl SpillShared {
    fn new(num_shards: usize) -> Self {
        SpillShared {
            spills: AtomicU64::new(0),
            restores: AtomicU64::new(0),
            spill_failures: AtomicU64::new(0),
            remove_failures: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
            spilled: AtomicUsize::new(0),
            pending: (0..num_shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn stats(&self) -> SpillStats {
        SpillStats {
            spills: self.spills.load(Ordering::Relaxed),
            restores: self.restores.load(Ordering::Relaxed),
            spill_failures: self.spill_failures.load(Ordering::Relaxed),
            remove_failures: self.remove_failures.load(Ordering::Relaxed),
            resident: self.resident.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
        }
    }

    fn pending_add(&self, shard: usize, session_id: u64) {
        *lock_or_recover(&self.pending[shard]).entry(session_id).or_insert(0) += 1;
    }

    fn pending_sub(&self, shard: usize, session_id: u64) {
        let mut map = lock_or_recover(&self.pending[shard]);
        if let Some(n) = map.get_mut(&session_id) {
            if *n <= 1 {
                map.remove(&session_id);
            } else {
                *n -= 1;
            }
        }
    }

    fn has_pending(&self, shard: usize, session_id: u64) -> bool {
        lock_or_recover(&self.pending[shard]).contains_key(&session_id)
    }
}

/// Name of the spill file holding `session_id`'s `PIRS` snapshot.
fn spill_file_name(session_id: u64) -> String {
    format!("session-{session_id:016x}.pirs")
}

/// Whether `name` is a spill file (for startup cleanup).
fn is_spill_file(name: &str) -> bool {
    name.strip_prefix("session-")
        .and_then(|rest| rest.strip_suffix(".pirs"))
        .is_some_and(|mid| mid.len() == 16 && mid.bytes().all(|b| b.is_ascii_hexdigit()))
}

/// Write-ahead-log health counters, read through
/// [`SubmitHandle::wal_stats`]. All zeros on an engine built without a
/// WAL.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Transient append/sync attempts retried under
    /// [`WalFailurePolicy::Retry`](crate::WalFailurePolicy::Retry) or
    /// [`WalFailurePolicy::DegradeToUnlogged`](crate::WalFailurePolicy::DegradeToUnlogged)
    /// (cumulative). A climbing count with zero degradations means the
    /// policy is absorbing a flaky disk.
    pub retries: u64,
    /// Shards that exhausted their retry envelope and dropped their log
    /// writer under `DegradeToUnlogged`. **Non-zero means part of the
    /// fleet is serving without durability** — page the operator.
    pub degraded_shards: u64,
    /// Commands executed without logging by degraded shards
    /// (cumulative). These commands will not replay after a crash.
    pub unlogged_commands: u64,
    /// Checkpoints triggered by a
    /// [`CheckpointPolicy`] that completed
    /// (cumulative).
    pub auto_checkpoints: u64,
    /// Auto-checkpoint attempts that failed (cumulative). The
    /// coordinator backs off exponentially and retries; a failed attempt
    /// never purges segments.
    pub auto_checkpoint_failures: u64,
}

/// State shared between the shard workers, the auto-checkpoint
/// coordinator, and submitters on a write-ahead-logged engine: the
/// counters behind [`SubmitHandle::wal_stats`], the fleet-wide log-tail
/// gauges, and the coordinator's doorbell.
#[derive(Debug)]
struct WalShared {
    retries: AtomicU64,
    degraded_shards: AtomicU64,
    unlogged_commands: AtomicU64,
    auto_checkpoints: AtomicU64,
    auto_checkpoint_failures: AtomicU64,
    /// Record bytes appended fleet-wide since the last auto checkpoint
    /// consumed the gauge.
    tail_bytes: AtomicU64,
    /// Commands logged fleet-wide since the last auto checkpoint
    /// consumed the gauge.
    tail_commands: AtomicU64,
    /// Auto-checkpoint trigger thresholds; `None` disables the
    /// coordinator (tail gauges still accumulate, harmlessly).
    policy: Option<CheckpointPolicy>,
    /// Coordinator doorbell: workers set `due` and notify when `policy`
    /// trips; [`EngineHandle::close`] (and drop) set `stop`.
    signal: (Mutex<CoordState>, Condvar),
}

/// The doorbell state the auto-checkpoint coordinator parks on.
#[derive(Debug, Default)]
struct CoordState {
    due: bool,
    stop: bool,
}

impl WalShared {
    fn new(policy: Option<CheckpointPolicy>) -> Self {
        WalShared {
            retries: AtomicU64::new(0),
            degraded_shards: AtomicU64::new(0),
            unlogged_commands: AtomicU64::new(0),
            auto_checkpoints: AtomicU64::new(0),
            auto_checkpoint_failures: AtomicU64::new(0),
            tail_bytes: AtomicU64::new(0),
            tail_commands: AtomicU64::new(0),
            policy,
            signal: (Mutex::new(CoordState::default()), Condvar::new()),
        }
    }

    fn stats(&self) -> WalStats {
        WalStats {
            retries: self.retries.load(Ordering::Relaxed),
            degraded_shards: self.degraded_shards.load(Ordering::Relaxed),
            unlogged_commands: self.unlogged_commands.load(Ordering::Relaxed),
            auto_checkpoints: self.auto_checkpoints.load(Ordering::Relaxed),
            auto_checkpoint_failures: self.auto_checkpoint_failures.load(Ordering::Relaxed),
        }
    }

    /// Worker-side: account freshly logged tail and ring the coordinator
    /// if the policy trips.
    fn note_appended(&self, bytes: u64, commands: u64) {
        let b = self.tail_bytes.fetch_add(bytes, Ordering::Relaxed).saturating_add(bytes);
        let c = self.tail_commands.fetch_add(commands, Ordering::Relaxed).saturating_add(commands);
        if self.policy.is_some_and(|p| p.due(b, c)) {
            self.ring(false);
        }
    }

    /// Ring the coordinator's doorbell: `stop = false` marks a
    /// checkpoint due, `stop = true` asks the coordinator to exit.
    fn ring(&self, stop: bool) {
        let (lock, cvar) = &self.signal;
        let mut state = lock_or_recover(lock);
        if stop {
            state.stop = true;
        } else {
            state.due = true;
        }
        drop(state);
        cvar.notify_all();
    }
}

/// One shard worker's spill tier: an LRU over the shard's resident
/// sessions plus the ledger of what it has written to disk. Owned by the
/// worker thread; only the counters and pending maps are shared.
struct SpillTier {
    dir: PathBuf,
    storage: StorageHandle,
    cap: usize,
    shard: usize,
    shared: Arc<SpillShared>,
    /// Monotonic use counter ordering the LRU.
    clock: u64,
    /// `use tick → session id`, oldest first (the eviction scan order).
    lru: BTreeMap<u64, u64>,
    /// `session id → its current use tick` (for O(log n) touches).
    ticks: HashMap<u64, u64>,
    /// `session id → t at spill` for every session currently on disk
    /// (the `t` lets shutdown stats count spilled points without disk
    /// reads).
    spilled: HashMap<u64, usize>,
    /// Resident count this tier last pushed into the shared gauge.
    last_resident: usize,
    scratch: Vec<u8>,
}

impl SpillTier {
    fn new(options: &SpillOptions, shard: usize, shared: Arc<SpillShared>) -> Self {
        SpillTier {
            dir: options.dir.clone(),
            storage: options.storage.clone(),
            cap: options.resident_cap,
            shard,
            shared,
            clock: 0,
            lru: BTreeMap::new(),
            ticks: HashMap::new(),
            spilled: HashMap::new(),
            last_resident: 0,
            scratch: Vec::new(),
        }
    }

    fn file(&self, session_id: u64) -> PathBuf {
        self.dir.join(spill_file_name(session_id))
    }

    /// Remove a spill file, counting (never surfacing) a failure: a
    /// leftover file is re-swept at the next startup, but an uncounted
    /// one would hide a sick disk from the stats snapshot.
    fn remove_spill_file(&self, path: &Path) {
        if self.storage.remove_file(path).is_err() {
            self.shared.remove_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Mark `session_id` most-recently-used.
    fn touch(&mut self, session_id: u64) {
        if let Some(old) = self.ticks.get(&session_id) {
            self.lru.remove(old);
        }
        self.clock += 1;
        self.lru.insert(self.clock, session_id);
        self.ticks.insert(session_id, self.clock);
    }

    /// Drop `session_id` from the LRU (released or spilled).
    fn forget(&mut self, session_id: u64) {
        if let Some(old) = self.ticks.remove(&session_id) {
            self.lru.remove(&old);
        }
    }

    /// If `session_id` is spilled, read it back, rebuild the session, and
    /// reinsert it — the transparent cold start on a spilled session's
    /// next command. Runs *before* the command is logged or executed, so
    /// a restore failure leaves both the log and the session table
    /// untouched (and the command unlogged: a logged-but-unexecuted
    /// command would replay into state the original run never had).
    fn restore_if_spilled(
        &mut self,
        sessions: &mut HashMap<u64, StreamSession>,
        engine_seed: u64,
        session_id: u64,
    ) -> Result<(), EngineError> {
        if !self.spilled.contains_key(&session_id) {
            return Ok(());
        }
        let path = self.file(session_id);
        let bytes = self.storage.read(&path).map_err(|e| EngineError::Wal {
            reason: format!("spill restore {}: {e}", path.display()),
        })?;
        let session = StreamSession::restore(&bytes, engine_seed).map_err(|e| {
            EngineError::Wal { reason: format!("spill restore {}: {e}", path.display()) }
        })?;
        self.remove_spill_file(&path);
        self.spilled.remove(&session_id);
        self.shared.spilled.fetch_sub(1, Ordering::Relaxed);
        self.shared.restores.fetch_add(1, Ordering::Relaxed);
        sessions.insert(session_id, session);
        self.touch(session_id);
        Ok(())
    }

    /// Evict least-recently-used sessions until the shard is back under
    /// its resident cap. A victim is skipped — leaving the shard
    /// transiently over cap — when it has queued-but-unexecuted commands
    /// (see [`SpillShared`]'s pending maps), when its mechanism cannot
    /// snapshot, or when the spill write fails (counted, never fatal).
    fn enforce_cap(&mut self, sessions: &mut HashMap<u64, StreamSession>) {
        if sessions.len() <= self.cap {
            return;
        }
        let scan: Vec<(u64, u64)> = self.lru.iter().map(|(&tick, &sid)| (tick, sid)).collect();
        for (tick, sid) in scan {
            if sessions.len() <= self.cap {
                break;
            }
            let Some(session) = sessions.get(&sid) else {
                // LRU entry with no session: already released.
                self.lru.remove(&tick);
                self.ticks.remove(&sid);
                continue;
            };
            if self.shared.has_pending(self.shard, sid) || !session.supports_snapshot() {
                continue;
            }
            self.scratch.clear();
            if session.snapshot_into(&mut self.scratch).is_err() {
                self.shared.spill_failures.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let path = self.file(sid);
            // Not fsynced on purpose: the spill dir extends RAM and the
            // WAL owns durability. A torn spill file after a crash is
            // removed by the next startup's cleanup.
            if self.storage.write(&path, &self.scratch).is_err() {
                self.remove_spill_file(&path);
                self.shared.spill_failures.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let Some(session) = sessions.remove(&sid) else {
                // Unreachable in practice (the id was fetched from this
                // map above); treat as a failed spill rather than panic.
                self.remove_spill_file(&path);
                self.shared.spill_failures.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            self.spilled.insert(sid, session.t());
            self.forget(sid);
            self.shared.spills.fetch_add(1, Ordering::Relaxed);
            self.shared.spilled.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Push this shard's resident count into the shared gauge as a delta
    /// (shards share one counter, so absolute stores would clobber each
    /// other).
    fn sync_resident(&mut self, sessions: &HashMap<u64, StreamSession>) {
        let now = sessions.len();
        match now.cmp(&self.last_resident) {
            std::cmp::Ordering::Greater => {
                self.shared.resident.fetch_add(now - self.last_resident, Ordering::Relaxed);
            }
            std::cmp::Ordering::Less => {
                self.shared.resident.fetch_sub(self.last_resident - now, Ordering::Relaxed);
            }
            std::cmp::Ordering::Equal => {}
        }
        self.last_resident = now;
    }
}

/// A command accepted by the pipelined frontend — the unit of the wire
/// protocol (see [`wire`](crate::wire)) and of [`SubmitHandle::submit`].
#[derive(Debug, Clone)]
pub enum Command {
    /// Spawn a session (mechanism + privacy accountant) for streams of
    /// length up to `t_max` under the per-session budget `params`.
    Open {
        /// Session id (also the routing key).
        session_id: u64,
        /// Which paper mechanism to run, with all knobs.
        spec: MechanismSpec,
        /// Stream-length horizon `T`.
        t_max: usize,
        /// Per-session privacy budget `(ε, δ)`.
        params: PrivacyParams,
    },
    /// Feed one stream point; the reply carries the released estimator.
    Observe {
        /// Target session.
        session_id: u64,
        /// The arriving covariate–response pair.
        point: DataPoint,
    },
    /// Feed a run of consecutive points through the mechanism's amortized
    /// batch path; the reply carries one released estimator per point.
    /// Rejected atomically (by the mechanism *and* by the queue).
    ObserveBatch {
        /// Target session.
        session_id: u64,
        /// The arriving points, in stream order.
        points: Vec<DataPoint>,
    },
    /// Release (terminate) a session: its mechanism state is dropped and
    /// the reply reports the final stream position and budget spent.
    Release {
        /// Target session.
        session_id: u64,
    },
    /// Connection-scoped goodbye. Submitting it never blocks and never
    /// touches the shard queues: the ticket resolves to [`Reply::Closed`]
    /// immediately. The *barrier* a remote client observes — "every
    /// command I sent before `CLOSE` has been answered" — comes from the
    /// reply discipline of
    /// [`serve_connection`](crate::serve_connection), which writes
    /// replies strictly in command order, so the `CLOSED` frame is
    /// necessarily the last thing on the wire. Crucially this orders only
    /// *that connection's* in-flight commands: one tenant's goodbye never
    /// waits on another tenant's queued compute. The engine itself stays
    /// up — sessions survive for other connections.
    Close,
}

impl Command {
    /// Queue cost of this command, in points.
    pub fn cost(&self) -> usize {
        match self {
            Command::ObserveBatch { points, .. } => points.len().max(1),
            _ => 1,
        }
    }

    /// The session this command routes by (`None` for [`Command::Close`],
    /// which never enters a queue).
    pub fn session_id(&self) -> Option<u64> {
        match self {
            Command::Open { session_id, .. }
            | Command::Observe { session_id, .. }
            | Command::ObserveBatch { session_id, .. }
            | Command::Release { session_id } => Some(*session_id),
            Command::Close => None,
        }
    }
}

/// The engine's answer to one [`Command`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The session was spawned.
    Opened {
        /// The spawned session's id.
        session_id: u64,
    },
    /// Estimators released for an observe / observe-batch command, one
    /// per point, in stream order.
    Releases {
        /// The serving session's id.
        session_id: u64,
        /// The released estimators `θ_t`.
        thetas: Vec<Vec<f64>>,
    },
    /// The session was released; its final ledger.
    SessionReleased {
        /// The released session's id.
        session_id: u64,
        /// Stream points the session consumed over its lifetime.
        points: u64,
        /// Privacy budget `ε` the session's accountant recorded as spent.
        epsilon_spent: f64,
        /// Privacy budget `δ` the session's accountant recorded as spent.
        delta_spent: f64,
    },
    /// Goodbye acknowledged ([`Command::Close`]).
    Closed,
    /// The command failed; nothing about the session changed beyond what
    /// the error names.
    Err(EngineError),
}

impl Reply {
    /// Extract the released estimators, turning every non-release reply
    /// into an error (convenience for observe-style commands).
    pub fn into_releases(self) -> Result<Vec<Vec<f64>>, EngineError> {
        match self {
            Reply::Releases { thetas, .. } => Ok(thetas),
            Reply::Err(e) => Err(e),
            other => Err(EngineError::Mechanism {
                reason: format!("expected a release reply, got {other:?}"),
            }),
        }
    }
}

/// A claim on one command's eventual [`Reply`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Reply>,
}

impl Ticket {
    /// A ticket that is already resolved to `reply`.
    fn resolved(reply: Reply) -> Self {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(reply);
        Ticket { rx }
    }

    /// Block until the reply arrives. If the engine shut down before
    /// answering, the reply is [`Reply::Err`]\([`EngineError::Closed`]).
    pub fn wait(self) -> Reply {
        self.rx.recv().unwrap_or(Reply::Err(EngineError::Closed))
    }

    /// Non-blocking poll: `Some(reply)` once the reply is in, `None`
    /// while the command is still queued or computing.
    pub fn try_wait(&self) -> Option<Reply> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Reply::Err(EngineError::Closed)),
        }
    }
}

/// One session's slice of an ingest batch: `(session id, original input
/// indices, points in arrival order)` — same grouping as
/// [`ShardedEngine::ingest`](crate::ShardedEngine::ingest).
type SessionRun = (u64, Vec<usize>, Vec<DataPoint>);

/// An ingest result tagged with the input index it answers.
type IndexedRelease = (usize, Result<Vec<f64>, EngineError>);

/// What travels down a shard's queue.
enum Job {
    /// One wire-level command with its reply channel.
    Cmd { cmd: Command, cost: usize, reply: Sender<Reply> },
    /// The bulk fast path behind [`SubmitHandle::ingest`]: a whole
    /// shard's slice of a mixed-tenant batch in one message.
    Ingest { runs: Vec<SessionRun>, cost: usize, reply: Sender<Vec<IndexedRelease>> },
    /// Barrier: acknowledge once everything before this job is done.
    Flush { ack: Sender<()> },
    /// Live checkpoint: snapshot every session this shard owns and cut
    /// the shard's log chain at the current job boundary (see
    /// [`EngineHandle::checkpoint`]). Never reserves queue depth.
    Checkpoint { ack: Sender<Result<ShardCut, EngineError>> },
    /// Drain, report `(live sessions, live points)`, and exit.
    Shutdown { ack: Sender<(usize, usize)> },
}

/// One shard's contribution to a live checkpoint: a consistent cut of
/// its log chain plus a snapshot of every session it owns, taken at a
/// job boundary so the snapshots agree exactly with the cut's log
/// position.
struct ShardCut {
    shard: u32,
    epoch: u32,
    next_seg_seq: u32,
    next_record_seq: u32,
    snapshots: Vec<Vec<u8>>,
}

/// One shard's ingress lane: its queue plus the shared depth gauge.
struct Lane {
    tx: Sender<Job>,
    depth: Arc<AtomicUsize>,
}

/// Final tallies returned by [`EngineHandle::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngressStats {
    /// Sessions still live (never released) at close, whether resident
    /// in memory or spilled to disk.
    pub sessions: usize,
    /// Stream points those live sessions had consumed.
    pub points: usize,
}

/// The cheap, shareable front door to a pipelined engine.
///
/// `SubmitHandle` is `Clone + Send + Sync`: clone one per thread (or per
/// TCP connection — see [`serve_tcp`](crate::serve_tcp)) and feed the
/// same fleet concurrently with **no external lock**. Clones share the
/// per-shard queues, the atomic depth gauges, and the capacity; a clone
/// costs one `Arc` bump.
///
/// Obtained from [`EngineHandle::submit_handle`]; `EngineHandle` also
/// derefs to `SubmitHandle`, so every submission method below is
/// callable on the owning handle directly. Clones do not keep the engine
/// alive: after [`EngineHandle::close`] (or drop) every submission
/// through a surviving clone fails with [`EngineError::Closed`].
///
/// The headline invariants:
///
/// - **Non-blocking**: [`submit`](Self::submit) returns as soon as the
///   command is enqueued (or rejected), never waiting on mechanism
///   compute. ([`Command::Close`] never even enqueues — its ticket is
///   resolved on the spot.)
/// - **Atomic backpressure**: a command that does not fit its shard's
///   queue whole is rejected whole — transiently
///   ([`EngineError::Backpressure`], reported with the depth observed at
///   the failed reservation) or permanently
///   ([`EngineError::CommandTooLarge`], when `cost > capacity`).
/// - **Deterministic**: per-session FIFO + seed-per-`(engine seed, id)`
///   make release sequences identical to the direct
///   [`ShardedEngine`](crate::ShardedEngine) path, under any shard count,
///   for any set of concurrent submitters driving disjoint sessions.
#[derive(Clone)]
pub struct SubmitHandle {
    lanes: Arc<[Lane]>,
    capacity: usize,
    seed: u64,
    /// Present iff the engine was built with a spill tier: counters plus
    /// the pending-command maps that gate eviction.
    spill: Option<Arc<SpillShared>>,
    /// Present iff the engine is write-ahead logged: health counters,
    /// tail gauges, and the auto-checkpoint doorbell.
    wal: Option<Arc<WalShared>>,
    /// Raised by [`EngineHandle::close`] / drop so surviving clones fail
    /// fast with [`EngineError::Closed`] — before any size or capacity
    /// verdict, which would otherwise mislead (a `CommandTooLarge` from
    /// a dead engine invites a pointless split-and-retry).
    closed: Arc<std::sync::atomic::AtomicBool>,
}

impl std::fmt::Debug for SubmitHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitHandle")
            .field("num_shards", &self.lanes.len())
            .field("capacity", &self.capacity)
            .field("depths", &self.queue_depths())
            .finish()
    }
}

impl SubmitHandle {
    /// Number of shards (= worker threads).
    pub fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// The configured per-shard queue depth, in points.
    pub fn queue_capacity(&self) -> usize {
        self.capacity
    }

    /// Instantaneous queued-point count per shard (observability: a shard
    /// pinned at capacity is the backpressure signal to scale or shed).
    pub fn queue_depths(&self) -> Vec<usize> {
        self.lanes.iter().map(|l| l.depth.load(Ordering::Relaxed)).collect()
    }

    /// Spill-tier counters (observability: `spilled` climbing while
    /// `restores` stays flat means the resident cap is sized right; a
    /// high restore rate means the working set exceeds the cap and every
    /// cold command pays a disk round-trip). All zeros on an engine built
    /// without a spill tier.
    pub fn spill_stats(&self) -> SpillStats {
        self.spill.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// Write-ahead-log health counters (observability:
    /// `degraded_shards` non-zero means part of the fleet is serving
    /// **without durability** under
    /// [`WalFailurePolicy::DegradeToUnlogged`](crate::WalFailurePolicy::DegradeToUnlogged)
    /// — page the operator). All zeros on an engine built without a WAL.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.as_ref().map(|w| w.stats()).unwrap_or_default()
    }

    /// The engine seed (for spawning a mirrored
    /// [`ShardedEngine`](crate::ShardedEngine)
    /// in tests; treat as secret in production — see
    /// [`IngressConfig::seed`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn shard_index(&self, session_id: u64) -> usize {
        shard_of(session_id, self.lanes.len())
    }

    /// Try to reserve `cost` points of queue space on `shard`.
    ///
    /// On failure the `depth` carried by [`EngineError::Backpressure`] is
    /// the value observed by the failed compare-and-swap itself — the
    /// reservation-time truth, not a post-hoc re-read — so concurrent
    /// submitters cannot skew the reported signal.
    fn reserve(&self, shard: usize, cost: usize) -> Result<(), EngineError> {
        // A shut-down engine outranks every other verdict: after close()
        // the only truthful answer is Closed, not a size critique.
        if self.closed.load(Ordering::SeqCst) {
            return Err(EngineError::Closed);
        }
        if cost > self.capacity {
            return Err(EngineError::CommandTooLarge { shard, cost, capacity: self.capacity });
        }
        let depth = &self.lanes[shard].depth;
        depth
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                (cur + cost <= self.capacity).then_some(cur + cost)
            })
            .map(|_| ())
            .map_err(|cur| EngineError::Backpressure {
                shard,
                depth: cur,
                capacity: self.capacity,
                cost,
            })
    }

    /// Wait out transient backpressure on `shard` by riding its flush
    /// barrier once; the caller retries its reservation afterwards.
    ///
    /// Multi-submitter-safe: the flush job does not itself consume queue
    /// space, its ack guarantees the worker made progress (everything
    /// ahead of it drained), and the reservation being retried is a
    /// single compare-and-swap — so when several blocked submitters race
    /// for freed space, at least one always wins and the rest re-ride
    /// the barrier. No livelock; fairness is best-effort (a large cost
    /// can be outpaced by a stream of small ones — see
    /// `docs/OPERATIONS.md`). The barrier doubles as a liveness probe: a
    /// dead worker (post-panic) surfaces as [`EngineError::Closed`]
    /// instead of a spin.
    fn ride_flush_barrier(&self, shard: usize) -> Result<(), EngineError> {
        let (tx, rx) = mpsc::channel();
        if self.lanes[shard].tx.send(Job::Flush { ack: tx }).is_err() || rx.recv().is_err() {
            return Err(EngineError::Closed);
        }
        std::thread::yield_now();
        Ok(())
    }

    /// Reserve `cost` points on `shard`, waiting out transient
    /// backpressure (see [`ride_flush_barrier`](Self::ride_flush_barrier)
    /// for the contention story).
    fn reserve_blocking(&self, shard: usize, cost: usize) -> Result<(), EngineError> {
        loop {
            match self.reserve(shard, cost) {
                Ok(()) => return Ok(()),
                Err(e) if !e.is_retryable() => return Err(e),
                Err(_) => self.ride_flush_barrier(shard)?,
            }
        }
    }

    /// Enqueue one command without waiting for its compute.
    ///
    /// Commands for the same session are processed in submission order
    /// (per-shard FIFO), so `open → observe → release` pipelines without
    /// waiting on intermediate tickets. [`Command::Close`] is
    /// connection-scoped and never blocks: its ticket is already resolved
    /// to [`Reply::Closed`] (see [`Command::Close`] for where the
    /// client-visible barrier comes from).
    ///
    /// # Errors
    /// [`EngineError::Backpressure`] if the target shard's queue cannot
    /// take the command whole right now (transient — nothing was
    /// enqueued; retry after the shard drains),
    /// [`EngineError::CommandTooLarge`] if it can *never* take it
    /// (permanent — split the command), or [`EngineError::Closed`] if the
    /// engine has shut down.
    pub fn submit(&self, cmd: Command) -> Result<Ticket, EngineError> {
        self.try_submit(cmd).map_err(|(_, e)| e)
    }

    /// [`submit`](Self::submit), but a rejected command is handed back to
    /// the caller alongside the error — so retry loops (the server's
    /// flow-control path, most prominently) need not clone a potentially
    /// large batch per attempt.
    ///
    /// # Errors
    /// As [`submit`](Self::submit), with the unconsumed [`Command`]
    /// attached.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, cmd: Command) -> Result<Ticket, (Command, EngineError)> {
        let Some(session_id) = cmd.session_id() else {
            // Close: connection-scoped, resolved on the spot — never a
            // fleet-wide barrier (one tenant's goodbye must not wait on
            // another tenant's queued compute).
            return Ok(Ticket::resolved(Reply::Closed));
        };
        let shard = self.shard_index(session_id);
        let cost = cmd.cost();
        if let Err(e) = self.reserve(shard, cost) {
            return Err((cmd, e));
        }
        // Publish the queued command to the spill tier *before* sending
        // the job: a worker weighing eviction of this session either
        // sees the entry (and skips the victim) or has not received the
        // job yet — in which case its arrival restores the session
        // in-band. Incrementing after the send would reopen the window.
        if let Some(spill) = &self.spill {
            spill.pending_add(shard, session_id);
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        match self.lanes[shard].tx.send(Job::Cmd { cmd, cost, reply: reply_tx }) {
            Ok(()) => Ok(Ticket { rx: reply_rx }),
            // Worker gone (only possible after a panic or close): roll
            // the reservation back and surface the shutdown, handing the
            // command (recovered from the undeliverable job) back.
            Err(mpsc::SendError(job)) => {
                self.lanes[shard].depth.fetch_sub(cost, Ordering::SeqCst);
                if let Some(spill) = &self.spill {
                    spill.pending_sub(shard, session_id);
                }
                let cmd = match job {
                    Job::Cmd { cmd, .. } => cmd,
                    // send() hands back the exact value it was given (a
                    // Job::Cmd, two lines up); if that contract ever
                    // broke, surface an equivalent rejection instead of
                    // panicking the submitting connection thread.
                    _ => Command::Release { session_id },
                };
                Err((cmd, EngineError::Closed))
            }
        }
    }

    /// [`submit`](Self::submit) that waits out *transient* backpressure
    /// (by riding the target shard's flush barrier) instead of returning
    /// it. The blocking entry point for callers with nothing better to do
    /// than wait — e.g. a connection thread whose own in-flight replies
    /// are all drained.
    ///
    /// # Errors
    /// [`EngineError::CommandTooLarge`] (permanent rejections are *not*
    /// waited out) or [`EngineError::Closed`].
    pub fn submit_blocking(&self, mut cmd: Command) -> Result<Ticket, EngineError> {
        loop {
            match self.try_submit(cmd) {
                Ok(ticket) => return Ok(ticket),
                Err((_, e)) if !e.is_retryable() => return Err(e),
                Err((rejected, e)) => {
                    // Transient: wait for the shard to drain, then retry
                    // with the handed-back command (no clone per attempt).
                    // Retryable rejections only come from shard queues,
                    // and only routed commands reach a queue (`Close`
                    // resolves before queueing) — but if that invariant
                    // ever broke, fail the submit rather than panic.
                    let Some(session_id) = rejected.session_id() else {
                        return Err(e);
                    };
                    self.ride_flush_barrier(self.shard_index(session_id))?;
                    cmd = rejected;
                }
            }
        }
    }

    /// [`Command::Open`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn open(
        &self,
        session_id: u64,
        spec: &MechanismSpec,
        t_max: usize,
        params: &PrivacyParams,
    ) -> Result<Ticket, EngineError> {
        self.submit(Command::Open { session_id, spec: spec.clone(), t_max, params: *params })
    }

    /// [`Command::Observe`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn observe(&self, session_id: u64, point: DataPoint) -> Result<Ticket, EngineError> {
        self.submit(Command::Observe { session_id, point })
    }

    /// [`Command::ObserveBatch`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn observe_batch(
        &self,
        session_id: u64,
        points: Vec<DataPoint>,
    ) -> Result<Ticket, EngineError> {
        self.submit(Command::ObserveBatch { session_id, points })
    }

    /// [`Command::Release`] convenience.
    ///
    /// # Errors
    /// See [`submit`](Self::submit).
    pub fn release_session(&self, session_id: u64) -> Result<Ticket, EngineError> {
        self.submit(Command::Release { session_id })
    }

    /// Drive a mixed batch of arrivals across many sessions — the bulk
    /// fast path, drop-in equivalent to
    /// [`ShardedEngine::ingest`](crate::ShardedEngine::ingest) (the
    /// release sequences are identical; see `tests/ingress.rs`).
    ///
    /// Points are grouped per session (preserving each session's arrival
    /// order) and each shard's slice travels as **one** queue message, so
    /// channel overhead is `O(num_shards)` per call, not `O(points)`.
    /// `out[i]` answers `points[i]`. Backpressure handling: a shard slice
    /// larger than the whole queue reports
    /// [`EngineError::CommandTooLarge`] on its indices (no amount of
    /// waiting would admit it); otherwise `ingest` waits for the shard to
    /// drain (it is the *blocking* entry point — use
    /// [`submit`](Self::submit) for fire-and-forget). Several `ingest`
    /// calls may run concurrently on clones of one handle; they contend
    /// for queue space via the same atomic reservation and cannot livelock
    /// each other (see `reserve_blocking`). Note the resulting
    /// granularity: each *shard slice* is applied or rejected as a unit,
    /// so one fleet-level call can mix applied and rejected indices —
    /// consult the per-index results before replaying anything.
    pub fn ingest(&self, points: Vec<(u64, DataPoint)>) -> Vec<Result<Vec<f64>, EngineError>> {
        let n = points.len();
        let num_shards = self.lanes.len();
        // Group per shard, then per session, preserving arrival order —
        // the exact grouping of `ShardedEngine::ingest`.
        let mut per_shard: Vec<Vec<SessionRun>> = (0..num_shards).map(|_| Vec::new()).collect();
        let mut slot: HashMap<u64, (usize, usize)> = HashMap::new();
        for (i, (sid, z)) in points.into_iter().enumerate() {
            let shard = self.shard_index(sid);
            let (s, g) = *slot.entry(sid).or_insert_with(|| {
                per_shard[shard].push((sid, Vec::new(), Vec::new()));
                (shard, per_shard[shard].len() - 1)
            });
            per_shard[s][g].1.push(i);
            per_shard[s][g].2.push(z);
        }

        let mut results: Vec<Option<Result<Vec<f64>, EngineError>>> =
            (0..n).map(|_| None).collect();
        let mut pending: Vec<(Vec<usize>, Receiver<Vec<IndexedRelease>>)> = Vec::new();
        for (shard, runs) in per_shard.into_iter().enumerate() {
            if runs.is_empty() {
                continue;
            }
            let cost: usize = runs.iter().map(|(_, _, b)| b.len()).sum::<usize>().max(1);
            let all_indices: Vec<usize> =
                runs.iter().flat_map(|(_, idx, _)| idx.iter().copied()).collect();
            if let Err(e) = self.reserve_blocking(shard, cost) {
                // Permanent rejection (slice can never fit) or a dead
                // worker: report it on every affected index.
                for i in all_indices {
                    results[i] = Some(Err(e.clone()));
                }
                continue;
            }
            // Same pre-send publication as `try_submit`: every session
            // this slice touches is pinned resident until its run
            // executes.
            if let Some(spill) = &self.spill {
                let mut map = lock_or_recover(&spill.pending[shard]);
                for (sid, _, _) in &runs {
                    *map.entry(*sid).or_insert(0) += 1;
                }
            }
            let run_sids: Vec<u64> =
                if self.spill.is_some() { runs.iter().map(|r| r.0).collect() } else { Vec::new() };
            let (tx, rx) = mpsc::channel();
            if self.lanes[shard].tx.send(Job::Ingest { runs, cost, reply: tx }).is_err() {
                self.lanes[shard].depth.fetch_sub(cost, Ordering::SeqCst);
                if let Some(spill) = &self.spill {
                    for sid in run_sids {
                        spill.pending_sub(shard, sid);
                    }
                }
                for i in all_indices {
                    results[i] = Some(Err(EngineError::Closed));
                }
                continue;
            }
            pending.push((all_indices, rx));
        }
        for (all_indices, rx) in pending {
            match rx.recv() {
                Ok(parts) => {
                    for (i, r) in parts {
                        results[i] = Some(r);
                    }
                }
                Err(_) => {
                    for i in all_indices {
                        results[i] = Some(Err(EngineError::Closed));
                    }
                }
            }
        }
        // Every index was filled by exactly one of the arms above; a
        // hole would mean the routing bookkeeping dropped an input, and
        // the honest answer for that input is a closed-engine error, not
        // a panic on the submitting thread.
        results.into_iter().map(|r| r.unwrap_or(Err(EngineError::Closed))).collect()
    }

    /// Fleet-wide barrier: returns once every command submitted (by *any*
    /// submitter) before the call has been fully processed — its reply
    /// sent. Releases stay deterministic across flushes — this orders
    /// *completion*, never *noise*. For a connection-scoped goodbye use
    /// [`Command::Close`] instead; `flush` is the operator's tool (drain
    /// before snapshotting gauges, quiesce before reconfiguring).
    pub fn flush(&self) {
        let acks: Vec<Receiver<()>> = self
            .lanes
            .iter()
            .filter_map(|l| {
                let (tx, rx) = mpsc::channel();
                l.tx.send(Job::Flush { ack: tx }).ok().map(|()| rx)
            })
            .collect();
        for rx in acks {
            let _ = rx.recv();
        }
    }
}

/// The worker-owning side of the pipelined frontend.
///
/// Owns one worker thread per shard; each worker holds its shard's
/// sessions and drains a bounded command queue. All submission goes
/// through [`SubmitHandle`] — `EngineHandle` [derefs](std::ops::Deref) to
/// one, and [`submit_handle`](Self::submit_handle) clones out shareable
/// handles for other threads — while lifecycle (owning the workers,
/// [`close`](Self::close)) stays here, on the uniquely-owned type. See
/// the [module docs](self) for the full contract.
#[derive(Debug)]
pub struct EngineHandle {
    submit: SubmitHandle,
    workers: Vec<JoinHandle<()>>,
    /// Checkpoint coordinator state; present iff the engine is
    /// write-ahead logged. Shared with the auto-checkpoint coordinator
    /// thread when a [`CheckpointPolicy`](crate::CheckpointPolicy) is
    /// configured.
    ckpt: Option<Arc<Mutex<CheckpointCtx>>>,
    /// The auto-checkpoint coordinator thread; present iff
    /// [`WalOptions::auto_checkpoint`](crate::WalOptions) is set.
    coordinator: Option<JoinHandle<()>>,
}

/// Coordinator-side bookkeeping for [`EngineHandle::checkpoint`]: where
/// every log chain ends — including *historic* shards from runs with a
/// different shard count, whose chains a manifest must keep covering —
/// and which manifest generation is current.
#[derive(Debug)]
struct CheckpointCtx {
    dir: PathBuf,
    /// The storage backend manifests are written through (the same one
    /// the shard writers log through).
    storage: StorageHandle,
    /// `shard → (next_seg_seq, next_record_seq)` for every chain the
    /// next manifest must cover. Live shards are refreshed by their cut
    /// on every checkpoint; historic shards carry forward unchanged.
    chains: HashMap<u32, (u32, u32)>,
    generation: Option<u32>,
    max_epoch: Option<u32>,
}

impl std::ops::Deref for EngineHandle {
    type Target = SubmitHandle;

    fn deref(&self) -> &SubmitHandle {
        &self.submit
    }
}

impl EngineHandle {
    /// Spawn the shard workers.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] if `num_shards == 0` or
    /// `queue_depth == 0`.
    pub fn new(config: IngressConfig) -> Result<Self, EngineError> {
        validate_config(&config)?;
        let states = (0..config.num_shards).map(|_| (HashMap::new(), None)).collect();
        Ok(EngineHandle::spawn_workers(config, states, None, None, None))
    }

    /// [`new`](Self::new) with a session **spill tier**: each shard
    /// keeps at most [`SpillOptions::resident_cap`] sessions in memory,
    /// spilling the least-recently-used idle ones to
    /// [`SpillOptions::dir`] as `PIRS` snapshots and restoring them
    /// transparently on their next command. Sessions keep their exact
    /// noise stream across a spill/restore cycle, so releases stay
    /// bit-identical to an unbounded engine's
    /// (`crates/engine/tests/spill.rs`).
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] as [`new`](Self::new), for a zero
    /// `resident_cap`, or when the spill directory cannot be prepared.
    pub fn with_spill(config: IngressConfig, spill: &SpillOptions) -> Result<Self, EngineError> {
        validate_config(&config)?;
        let shared = prepare_spill(&config, spill)?;
        let states = (0..config.num_shards).map(|_| (HashMap::new(), None)).collect();
        Ok(EngineHandle::spawn_workers(config, states, Some((spill.clone(), shared)), None, None))
    }

    /// Spawn a **write-ahead-logged** engine: replay whatever command
    /// log survives under `options.dir` (an empty or missing directory
    /// replays nothing), then bring up the shard workers with every
    /// subsequent command logged **before** it executes.
    ///
    /// Replay rebuilds each session from `(seed, session id)` exactly as
    /// the original run did, so the recovered engine's future releases —
    /// and the replayed ones — are bit-identical to an uninterrupted
    /// run's (`tests/recovery.rs`). The shard count may differ from the
    /// logging run's: releases are invariant under resharding, and each
    /// restart stamps a fresh log epoch so replay order stays correct
    /// across generations. A torn final record in any shard's log is
    /// accepted as the expected crash artifact; **any other** corruption
    /// fails this constructor loudly — no workers are spawned and
    /// nothing is replayed into a live engine.
    ///
    /// Commands that re-fail deterministically during replay (a
    /// duplicate open, an over-horizon observe) are counted in
    /// [`RecoveryReport::failed`], exactly mirroring the error replies
    /// the original run sent.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] as [`new`](Self::new), or
    /// [`EngineError::Wal`] wrapping any
    /// [`WalError`](crate::wal::WalError) the existing log violates (or
    /// invalid `options`).
    pub fn with_wal(
        config: IngressConfig,
        options: &WalOptions,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        EngineHandle::with_wal_inner(config, options, None)
    }

    /// [`with_wal`](Self::with_wal) combined with
    /// [`with_spill`](Self::with_spill): the durable engine with bounded
    /// resident memory. Recovery restores checkpointed sessions and
    /// replays the log tail first, then each shard spills down to its
    /// resident cap before serving.
    ///
    /// # Errors
    /// The union of [`with_wal`](Self::with_wal)'s and
    /// [`with_spill`](Self::with_spill)'s.
    pub fn with_wal_and_spill(
        config: IngressConfig,
        options: &WalOptions,
        spill: &SpillOptions,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        EngineHandle::with_wal_inner(config, options, Some(spill))
    }

    fn with_wal_inner(
        config: IngressConfig,
        options: &WalOptions,
        spill: Option<&SpillOptions>,
    ) -> Result<(Self, RecoveryReport), EngineError> {
        validate_config(&config)?;
        options.validate().map_err(wal_engine_err)?;
        let spill = match spill {
            None => None,
            Some(opts) => Some((opts.clone(), prepare_spill(&config, opts)?)),
        };
        let log = wal::load_log(&options.storage, &options.dir).map_err(wal_engine_err)?;

        // Replay into per-shard session tables under the *current* shard
        // count, through the same executor the workers run. Checkpointed
        // sessions come back first — the manifest's snapshots are the
        // log's compacted prefix, the surviving segments its tail.
        let n = config.num_shards;
        let mut maps: Vec<HashMap<u64, StreamSession>> = (0..n).map(|_| HashMap::new()).collect();
        for blob in &log.snapshots {
            let session = StreamSession::restore(blob, config.seed)
                .map_err(|e| EngineError::Wal { reason: format!("checkpoint snapshot: {e}") })?;
            let sid = session.id();
            if maps[shard_of(sid, n)].insert(sid, session).is_some() {
                return Err(EngineError::Wal {
                    reason: format!("checkpoint manifest restores session {sid:#018x} twice"),
                });
            }
        }
        let mut failed = 0u64;
        for cmd in &log.commands {
            let Some(sid) = cmd.session_id() else { continue };
            let r = exec_command(&mut maps[shard_of(sid, n)], config.seed, cmd.clone());
            if matches!(r, Reply::Err(_)) {
                failed += 1;
            }
        }
        let report = log.report(failed);

        // One writer per (current) shard, all at the next epoch, each
        // continuing its shard's chain where the log left off.
        let epoch = wal::next_epoch(log.max_epoch).map_err(wal_engine_err)?;
        let ckpt = CheckpointCtx {
            dir: options.dir.clone(),
            storage: options.storage.clone(),
            chains: log
                .chains
                .iter()
                .map(|c| (c.shard, (c.next_seg_seq, c.next_record_seq)))
                .collect(),
            generation: log.manifest_generation,
            max_epoch: Some(epoch),
        };
        let mut states = Vec::with_capacity(n);
        for (shard, sessions) in maps.into_iter().enumerate() {
            let (seg_seq, rec_seq) = log.resume_for(shard as u32);
            let writer = WalWriter::resume(options, shard as u32, epoch, seg_seq, rec_seq)
                .map_err(wal_engine_err)?;
            states.push((sessions, Some(writer)));
        }
        let wal_shared =
            (Arc::new(WalShared::new(options.auto_checkpoint)), options.failure_policy.degrades());
        Ok((
            EngineHandle::spawn_workers(config, states, spill, Some(wal_shared), Some(ckpt)),
            report,
        ))
    }

    /// Bring up one worker per entry of `states`, each owning its
    /// prebuilt session table, optional log writer, and optional spill
    /// tier — plus, when a [`CheckpointPolicy`](crate::CheckpointPolicy)
    /// is configured, the auto-checkpoint coordinator thread.
    fn spawn_workers(
        config: IngressConfig,
        states: Vec<(HashMap<u64, StreamSession>, Option<WalWriter>)>,
        spill: Option<(SpillOptions, Arc<SpillShared>)>,
        wal_shared: Option<(Arc<WalShared>, bool)>,
        ckpt: Option<CheckpointCtx>,
    ) -> Self {
        let mut lanes = Vec::with_capacity(states.len());
        let mut workers = Vec::with_capacity(states.len());
        for (shard, (sessions, wal)) in states.into_iter().enumerate() {
            let (tx, rx) = mpsc::channel::<Job>();
            let depth = Arc::new(AtomicUsize::new(0));
            let worker_depth = Arc::clone(&depth);
            let seed = config.seed;
            let tier = spill
                .as_ref()
                .map(|(options, shared)| SpillTier::new(options, shard, Arc::clone(shared)));
            let shard_wal = match (wal, wal_shared.as_ref()) {
                (Some(writer), Some((shared, degrades))) => Some(ShardWal {
                    writer: Some(writer),
                    shared: Arc::clone(shared),
                    degrades: *degrades,
                }),
                _ => None,
            };
            workers.push(std::thread::spawn(move || {
                worker_loop(rx, worker_depth, seed, sessions, shard_wal, tier)
            }));
            lanes.push(Lane { tx, depth });
        }
        let submit = SubmitHandle {
            lanes: lanes.into(),
            capacity: config.queue_depth,
            seed: config.seed,
            spill: spill.map(|(_, shared)| shared),
            wal: wal_shared.as_ref().map(|(shared, _)| Arc::clone(shared)),
            closed: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        };
        let ckpt = ckpt.map(|c| Arc::new(Mutex::new(c)));
        let coordinator = match (&ckpt, &wal_shared) {
            (Some(ctx), Some((shared, _))) if shared.policy.is_some() => {
                let submit = submit.clone();
                let ctx = Arc::clone(ctx);
                let shared = Arc::clone(shared);
                Some(std::thread::spawn(move || coordinator_loop(&submit, &ctx, &shared)))
            }
            _ => None,
        };
        EngineHandle { submit, workers, ckpt, coordinator }
    }

    /// Compact the write-ahead log **while the engine serves traffic**:
    /// every shard snapshots its sessions and cuts its log chain at a
    /// job boundary, the cuts merge into one checkpoint manifest
    /// (`PIRC`), and every covered segment file is deleted. Recovery
    /// afterwards restores the snapshots and replays only the surviving
    /// tail — `O(commands since checkpoint)` instead of `O(history)` —
    /// with future releases bit-identical to an uninterrupted run's
    /// (`tests/compaction.rs`).
    ///
    /// Commands submitted concurrently are never lost: each shard's cut
    /// is taken in-band between jobs, so any given command is either
    /// executed before the cut (captured by its session's snapshot) or
    /// logged in the surviving tail (replayed). Shards cut at different
    /// wall-clock moments; that is sound because sessions are disjoint
    /// across shards and replay orders by `(epoch, shard, segment)`.
    ///
    /// # Errors
    /// [`EngineError::InvalidConfig`] on an engine without a WAL;
    /// [`EngineError::Wal`] when a session cannot be snapshotted (a
    /// `PRIVINCERM` session, say — keep those out of compacted fleets)
    /// or the manifest cannot be written; [`EngineError::Closed`] if the
    /// engine shut down mid-checkpoint. A failed checkpoint leaves the
    /// previous manifest and every segment in place — recovery is
    /// unaffected.
    pub fn checkpoint(&self) -> Result<CheckpointReport, EngineError> {
        let Some(ctx) = &self.ckpt else {
            return Err(EngineError::InvalidConfig {
                reason: "checkpoint requires a write-ahead-logged engine (with_wal)".to_string(),
            });
        };
        run_checkpoint(&self.submit, ctx)
    }

    /// Clone out a shareable [`SubmitHandle`] — `Clone + Send + Sync` —
    /// for another thread to feed this engine (one per TCP connection in
    /// [`serve_tcp`](crate::serve_tcp)). Clones do not keep the engine
    /// alive: after [`close`](Self::close) they fail with
    /// [`EngineError::Closed`].
    pub fn submit_handle(&self) -> SubmitHandle {
        self.submit.clone()
    }

    /// Drain every queue, shut the workers down, and join them. Any
    /// [`SubmitHandle`] clones still outstanding remain safe to use —
    /// their submissions simply fail with [`EngineError::Closed`].
    pub fn close(mut self) -> IngressStats {
        self.submit.closed.store(true, Ordering::SeqCst);
        self.stop_coordinator();
        let mut stats = IngressStats { sessions: 0, points: 0 };
        let acks: Vec<Receiver<(usize, usize)>> = self
            .submit
            .lanes
            .iter()
            .filter_map(|l| {
                let (tx, rx) = mpsc::channel();
                l.tx.send(Job::Shutdown { ack: tx }).ok().map(|()| rx)
            })
            .collect();
        for rx in acks {
            if let Ok((sessions, points)) = rx.recv() {
                stats.sessions += sessions;
                stats.points += points;
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        stats
    }

    /// Stop and join the auto-checkpoint coordinator (if any). Must run
    /// **before** worker shutdown: a checkpoint in flight needs live
    /// shards to answer its cuts.
    fn stop_coordinator(&mut self) {
        let Some(handle) = self.coordinator.take() else { return };
        if let Some(shared) = &self.submit.wal {
            shared.ring(true);
        }
        let _ = handle.join();
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // already closed
        }
        self.submit.closed.store(true, Ordering::SeqCst);
        self.stop_coordinator();
        for l in self.submit.lanes.iter() {
            let (tx, _rx) = mpsc::channel();
            let _ = l.tx.send(Job::Shutdown { ack: tx });
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Shared constructor validation for [`EngineHandle::new`] and
/// [`EngineHandle::with_wal`].
fn validate_config(config: &IngressConfig) -> Result<(), EngineError> {
    if config.num_shards == 0 {
        return Err(EngineError::InvalidConfig {
            reason: "num_shards must be at least 1".to_string(),
        });
    }
    if config.queue_depth == 0 {
        return Err(EngineError::InvalidConfig {
            reason: "queue_depth must be at least 1".to_string(),
        });
    }
    Ok(())
}

/// Lift a log-layer failure into the engine's error vocabulary.
fn wal_engine_err(e: wal::WalError) -> EngineError {
    EngineError::Wal { reason: e.to_string() }
}

/// The checkpoint protocol behind [`EngineHandle::checkpoint`] and the
/// auto-checkpoint coordinator: cut every shard at a job boundary, merge
/// the cuts into one `PIRC` manifest, write it durably, purge covered
/// segments. Serialized by the [`CheckpointCtx`] lock, so a manual call
/// and the coordinator can never interleave.
fn run_checkpoint(
    submit: &SubmitHandle,
    ctx: &Mutex<CheckpointCtx>,
) -> Result<CheckpointReport, EngineError> {
    let mut ctx = lock_or_recover(ctx);
    let mut acks = Vec::with_capacity(submit.lanes.len());
    for lane in submit.lanes.iter() {
        let (tx, rx) = mpsc::channel();
        if lane.tx.send(Job::Checkpoint { ack: tx }).is_err() {
            return Err(EngineError::Closed);
        }
        acks.push(rx);
    }
    let mut snapshots = Vec::new();
    let mut first_err = None;
    // Drain every ack even after an error: the cuts already taken are
    // harmless (a rotation plus chain entries the next checkpoint
    // refreshes), and leaving acks unconsumed would be untidy.
    for rx in acks {
        match rx.recv() {
            Err(_) => first_err = first_err.or(Some(EngineError::Closed)),
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Ok(Ok(cut)) => {
                ctx.chains.insert(cut.shard, (cut.next_seg_seq, cut.next_record_seq));
                ctx.max_epoch = Some(ctx.max_epoch.map_or(cut.epoch, |m| m.max(cut.epoch)));
                snapshots.extend(cut.snapshots);
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let generation = wal::next_generation(ctx.generation).map_err(wal_engine_err)?;
    let manifest = wal::Manifest {
        generation,
        max_epoch: ctx.max_epoch,
        chains: ctx
            .chains
            .iter()
            .map(|(&shard, &(next_seg_seq, next_record_seq))| wal::ShardChain {
                shard,
                next_seg_seq,
                next_record_seq,
            })
            .collect(),
        snapshots,
    };
    wal::write_manifest(&ctx.storage, &ctx.dir, &manifest).map_err(wal_engine_err)?;
    let (segments_purged, manifests_removed) =
        wal::purge_covered(&ctx.storage, &ctx.dir, &manifest).map_err(wal_engine_err)?;
    ctx.generation = Some(generation);
    Ok(CheckpointReport {
        generation,
        sessions: manifest.snapshots.len(),
        segments_purged,
        manifests_removed,
    })
}

/// The auto-checkpoint coordinator thread: parked on the [`WalShared`]
/// doorbell, it runs [`run_checkpoint`] whenever the configured
/// [`CheckpointPolicy`](crate::CheckpointPolicy) trips, consumes the
/// tail it observed on success, and backs off exponentially on failure.
/// A failed attempt never purges segments — purge only ever follows a
/// durably written manifest, by construction of [`run_checkpoint`].
fn coordinator_loop(submit: &SubmitHandle, ctx: &Mutex<CheckpointCtx>, shared: &WalShared) {
    const BACKOFF_FLOOR: Duration = Duration::from_millis(50);
    const BACKOFF_CEIL: Duration = Duration::from_secs(5);
    let Some(policy) = shared.policy else { return };
    let (lock, cvar) = &shared.signal;
    let mut backoff = BACKOFF_FLOOR;
    loop {
        // Park until a worker rings the doorbell (or close() stops us).
        {
            let mut state = lock_or_recover(lock);
            loop {
                if state.stop {
                    return;
                }
                if state.due {
                    state.due = false;
                    break;
                }
                state = match cvar.wait(state) {
                    Ok(s) => s,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
        // Double-check against the live gauges: the doorbell may be
        // stale if a manual checkpoint already compacted the tail.
        let tail_bytes = shared.tail_bytes.load(Ordering::Relaxed);
        let tail_commands = shared.tail_commands.load(Ordering::Relaxed);
        if !policy.due(tail_bytes, tail_commands) {
            continue;
        }
        match run_checkpoint(submit, ctx) {
            Ok(_) => {
                shared.auto_checkpoints.fetch_add(1, Ordering::Relaxed);
                // Consume only the tail this checkpoint observed; bytes
                // logged while it ran stay in the gauges.
                shared.tail_bytes.fetch_sub(tail_bytes, Ordering::Relaxed);
                shared.tail_commands.fetch_sub(tail_commands, Ordering::Relaxed);
                backoff = BACKOFF_FLOOR;
            }
            Err(EngineError::Closed) => return,
            Err(_) => {
                shared.auto_checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                // Wait out the backoff (interruptible by stop), then
                // re-arm: the tail is still over threshold.
                let state = lock_or_recover(lock);
                let (mut state, _) = match cvar.wait_timeout(state, backoff) {
                    Ok(r) => r,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if state.stop {
                    return;
                }
                state.due = true;
                backoff = backoff.saturating_mul(2).min(BACKOFF_CEIL);
            }
        }
    }
}

/// Validate spill options, create the spill directory, and clear stale
/// spill files from a previous process. The spill dir extends *this*
/// process's memory: a session a previous run spilled is rebuilt from
/// the write-ahead log (if any), never from its stale blob.
fn prepare_spill(
    config: &IngressConfig,
    options: &SpillOptions,
) -> Result<Arc<SpillShared>, EngineError> {
    options.validate()?;
    let dir_err = |e: &std::io::Error| EngineError::InvalidConfig {
        reason: format!("spill dir {}: {e}", options.dir.display()),
    };
    options.storage.create_dir_all(&options.dir).map_err(|e| dir_err(&e))?;
    for path in options.storage.read_dir(&options.dir).map_err(|e| dir_err(&e))? {
        if path.file_name().and_then(|n| n.to_str()).is_some_and(is_spill_file) {
            options.storage.remove_file(&path).map_err(|e| dir_err(&e))?;
        }
    }
    Ok(Arc::new(SpillShared::new(config.num_shards)))
}

/// Pre-execution cold-start hook: restore `session_id` if this shard had
/// spilled it, before the command is logged or executed.
fn ensure_resident(
    spill: &mut Option<SpillTier>,
    sessions: &mut HashMap<u64, StreamSession>,
    engine_seed: u64,
    session_id: Option<u64>,
) -> Result<(), EngineError> {
    match (spill.as_mut(), session_id) {
        (Some(tier), Some(sid)) => tier.restore_if_spilled(sessions, engine_seed, sid),
        _ => Ok(()),
    }
}

/// Post-job bookkeeping for a spill-enabled worker: retire the pending
/// entries the submitter published for this job, refresh the LRU,
/// enforce the resident cap, and update the shared gauges. Runs *after*
/// the job executed, which is exactly what makes the pending gate sound.
fn settle_spill(
    spill: &mut Option<SpillTier>,
    sessions: &mut HashMap<u64, StreamSession>,
    touched: &[u64],
) {
    let Some(tier) = spill.as_mut() else { return };
    for &sid in touched {
        tier.shared.pending_sub(tier.shard, sid);
        if sessions.contains_key(&sid) {
            tier.touch(sid);
        } else {
            tier.forget(sid);
        }
    }
    tier.enforce_cap(sessions);
    tier.sync_resident(sessions);
}

/// Take one shard's checkpoint cut: snapshot every session this shard
/// owns — resident ones directly, spilled ones by reading their spill
/// files (valid because eviction requires an idle session, and any
/// later command would have restored it in-band first) — then cut the
/// log chain. Runs between jobs, so the snapshots agree exactly with
/// the log position the cut reports.
fn shard_cut(
    sessions: &HashMap<u64, StreamSession>,
    spill: &Option<SpillTier>,
    wal: &mut Option<ShardWal>,
) -> Result<ShardCut, EngineError> {
    let Some(sw) = wal.as_mut() else {
        return Err(EngineError::InvalidConfig {
            reason: "checkpoint requires a write-ahead-logged engine (with_wal)".to_string(),
        });
    };
    let Some(w) = sw.writer.as_mut() else {
        // The writer was dropped by DegradeToUnlogged: this shard's
        // chain can no longer be cut, and a manifest claiming to cover
        // its unlogged commands would be a lie.
        return Err(EngineError::Wal {
            reason: "checkpoint unavailable: shard degraded to unlogged ingestion".to_string(),
        });
    };
    let mut snapshots = Vec::with_capacity(sessions.len());
    for session in sessions.values() {
        let blob = session.snapshot().map_err(|e| EngineError::Wal {
            reason: format!("session {:#018x}: {e}", session.id()),
        })?;
        snapshots.push(blob);
    }
    if let Some(tier) = spill {
        for &sid in tier.spilled.keys() {
            let path = tier.file(sid);
            let blob = tier.storage.read(&path).map_err(|e| EngineError::Wal {
                reason: format!("spilled session {}: {e}", path.display()),
            })?;
            snapshots.push(blob);
        }
    }
    let (epoch, next_seg_seq, next_record_seq) = w.cut().map_err(wal_engine_err)?;
    Ok(ShardCut { shard: w.shard(), epoch, next_seg_seq, next_record_seq, snapshots })
}

/// One shard's worker: owns the shard's sessions (and, in a WAL-enabled
/// engine, the shard's log writer), drains its queue. The durability
/// discipline is **log before execute**: a command that cannot be made
/// durable is never applied, so the log is always a superset of what the
/// engine executed and replay can never silently drop a committed
/// command.
fn worker_loop(
    rx: Receiver<Job>,
    depth: Arc<AtomicUsize>,
    engine_seed: u64,
    mut sessions: HashMap<u64, StreamSession>,
    mut wal: Option<ShardWal>,
    mut spill: Option<SpillTier>,
) {
    // A recovered shard can come up over its resident cap: seed the LRU
    // in session-id order (deterministic) and spill down to cap before
    // serving the first command.
    if let Some(tier) = spill.as_mut() {
        let mut ids: Vec<u64> = sessions.keys().copied().collect();
        ids.sort_unstable();
        for sid in ids {
            tier.touch(sid);
        }
        tier.enforce_cap(&mut sessions);
        tier.sync_resident(&sessions);
    }
    while let Ok(job) = rx.recv() {
        match job {
            Job::Cmd { cmd, cost, reply } => {
                let sid = cmd.session_id();
                // Cold-start before logging: a command whose session
                // cannot be restored must not reach the log, or replay
                // would execute it into state the original run refused.
                let r = match ensure_resident(&mut spill, &mut sessions, engine_seed, sid) {
                    Ok(()) => match log_command(&mut wal, &cmd) {
                        Ok(()) => exec_command(&mut sessions, engine_seed, cmd),
                        Err(e) => Reply::Err(e),
                    },
                    Err(e) => Reply::Err(e),
                };
                settle_spill(&mut spill, &mut sessions, sid.as_slice());
                depth.fetch_sub(cost, Ordering::SeqCst);
                let _ = reply.send(r);
            }
            Job::Ingest { runs, cost, reply } => {
                let touched: Vec<u64> =
                    if spill.is_some() { runs.iter().map(|r| r.0).collect() } else { Vec::new() };
                // Cold-start every target first; a run whose session
                // cannot be restored is answered here and excluded from
                // the logged batch (same reason as the `Cmd` arm).
                let mut out = Vec::new();
                let runs = match spill.as_mut() {
                    None => runs,
                    Some(tier) => {
                        let mut keep = Vec::with_capacity(runs.len());
                        for (sid, indices, batch) in runs {
                            match tier.restore_if_spilled(&mut sessions, engine_seed, sid) {
                                Ok(()) => keep.push((sid, indices, batch)),
                                Err(e) => {
                                    for i in indices {
                                        out.push((i, Err(e.clone())));
                                    }
                                }
                            }
                        }
                        keep
                    }
                };
                let mut executed = match wal.as_mut() {
                    None => run_ingest(&mut sessions, runs),
                    Some(sw) => run_ingest_logged(&mut sessions, sw, runs),
                };
                out.append(&mut executed);
                settle_spill(&mut spill, &mut sessions, &touched);
                depth.fetch_sub(cost, Ordering::SeqCst);
                let _ = reply.send(out);
            }
            Job::Flush { ack } => {
                let _ = ack.send(());
            }
            Job::Checkpoint { ack } => {
                let _ = ack.send(shard_cut(&sessions, &spill, &mut wal));
            }
            Job::Shutdown { ack } => {
                // Clean shutdown: force the log to stable storage
                // regardless of fsync policy, so a post-close purge (or
                // replica copy) sees everything.
                if let Some(w) = wal.take().and_then(|sw| sw.writer) {
                    let _ = w.finish();
                }
                let (spilled_sessions, spilled_points) = spill
                    .as_ref()
                    .map_or((0, 0), |t| (t.spilled.len(), t.spilled.values().sum::<usize>()));
                let points =
                    sessions.values().map(StreamSession::t).sum::<usize>() + spilled_points;
                let _ = ack.send((sessions.len() + spilled_sessions, points));
                break;
            }
        }
    }
}

/// A shard worker's log writer plus its failure-policy state: whether
/// an exhausted retry envelope degrades the shard to unlogged ingestion
/// (the writer is dropped, `writer = None`), and the shared counters
/// that make either outcome observable through
/// [`SubmitHandle::wal_stats`]. Retry itself lives inside
/// [`WalWriter`]; this wrapper owns what happens *after* the envelope
/// is exhausted.
struct ShardWal {
    /// `None` once the shard has degraded to unlogged ingestion.
    writer: Option<WalWriter>,
    shared: Arc<WalShared>,
    /// Whether exhaustion degrades (drop the writer, keep serving)
    /// instead of poisoning (every later append repeats the error).
    degrades: bool,
}

impl ShardWal {
    /// Log one command (log-before-execute). On a degraded shard this
    /// counts the command as unlogged and succeeds — the engine keeps
    /// serving, loudly.
    fn log(&mut self, cmd: &Command) -> Result<(), EngineError> {
        let Some(w) = self.writer.as_mut() else {
            self.shared.unlogged_commands.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        };
        let before = w.appended_bytes();
        let outcome = w.append(cmd);
        let retries = w.take_retries();
        let logged = w.appended_bytes() - before;
        self.shared.retries.fetch_add(retries, Ordering::Relaxed);
        match outcome {
            Ok(()) => {
                self.shared.note_appended(logged, 1);
                Ok(())
            }
            Err(e) => Err(self.exhausted(e)),
        }
    }

    /// [`log`](Self::log) for a coalesced ingest batch: one
    /// [`WalWriter::append_batch`], `cmds.len()` commands accounted.
    fn log_batch(&mut self, cmds: &[Command]) -> Result<(), EngineError> {
        let Some(w) = self.writer.as_mut() else {
            self.shared.unlogged_commands.fetch_add(cmds.len() as u64, Ordering::Relaxed);
            return Ok(());
        };
        let before = w.appended_bytes();
        let outcome = w.append_batch(cmds);
        let retries = w.take_retries();
        let logged = w.appended_bytes() - before;
        self.shared.retries.fetch_add(retries, Ordering::Relaxed);
        match outcome {
            Ok(()) => {
                self.shared.note_appended(logged, cmds.len() as u64);
                Ok(())
            }
            Err(e) => Err(self.exhausted(e)),
        }
    }

    /// The retry envelope is exhausted. Under `DegradeToUnlogged` the
    /// writer is dropped and the shard serves on without durability;
    /// otherwise the poisoned writer stays, repeating the error. Either
    /// way the triggering command is **not** executed — the caller
    /// returns this error in-band, and log-before-execute holds.
    fn exhausted(&mut self, e: wal::WalError) -> EngineError {
        if self.degrades {
            self.writer = None;
            self.shared.degraded_shards.fetch_add(1, Ordering::Relaxed);
            EngineError::Wal { reason: format!("wal degraded to unlogged ingestion: {e}") }
        } else {
            EngineError::Wal { reason: e.to_string() }
        }
    }
}

/// Append `cmd` to the shard's log, if it has one. An append failure
/// becomes [`EngineError::Wal`] and the caller must **not** execute the
/// command.
fn log_command(wal: &mut Option<ShardWal>, cmd: &Command) -> Result<(), EngineError> {
    match wal {
        None => Ok(()),
        Some(sw) => sw.log(cmd),
    }
}

/// Execute one command against a shard's session table.
fn exec_command(
    sessions: &mut HashMap<u64, StreamSession>,
    engine_seed: u64,
    cmd: Command,
) -> Reply {
    match cmd {
        Command::Open { session_id, spec, t_max, params } => {
            if sessions.contains_key(&session_id) {
                return Reply::Err(EngineError::DuplicateSession { id: session_id });
            }
            match StreamSession::spawn(session_id, &spec, t_max, &params, engine_seed) {
                Ok(s) => {
                    sessions.insert(session_id, s);
                    Reply::Opened { session_id }
                }
                Err(e) => Reply::Err(e),
            }
        }
        Command::Observe { session_id, point } => match sessions.get_mut(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => match s.observe(&point) {
                Ok(theta) => Reply::Releases { session_id, thetas: vec![theta] },
                Err(e) => Reply::Err(e),
            },
        },
        Command::ObserveBatch { session_id, points } => match sessions.get_mut(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => match s.observe_batch(&points) {
                Ok(thetas) => Reply::Releases { session_id, thetas },
                Err(e) => Reply::Err(e),
            },
        },
        Command::Release { session_id } => match sessions.remove(&session_id) {
            None => Reply::Err(EngineError::UnknownSession { id: session_id }),
            Some(s) => {
                let (epsilon_spent, delta_spent) = s.accountant().spent();
                Reply::SessionReleased {
                    session_id,
                    points: s.t() as u64,
                    epsilon_spent,
                    delta_spent,
                }
            }
        },
        // `Close` is resolved at the handle (connection-scoped, never
        // enqueued); a worker only sees it if routed here explicitly in
        // the future.
        Command::Close => Reply::Closed,
    }
}

/// Drive one shard's slice of a mixed-tenant batch — the same semantics
/// as the closure inside `ShardedEngine::ingest` (a batch-level failure
/// is reported on every index of the affected session's group).
fn run_ingest(
    sessions: &mut HashMap<u64, StreamSession>,
    runs: Vec<SessionRun>,
) -> Vec<IndexedRelease> {
    let mut out = Vec::new();
    for (sid, indices, batch) in runs {
        ingest_run(sessions, sid, indices, &batch, &mut out);
    }
    out
}

/// [`run_ingest`] with log-before-execute: each session run is logged as
/// one [`Command::ObserveBatch`] record (matching the atomic batch
/// contract — the unit of queue admission is the unit of durability),
/// and a run whose append fails is reported as [`EngineError::Wal`] on
/// every affected index without touching the session.
fn run_ingest_logged(
    sessions: &mut HashMap<u64, StreamSession>,
    wal: &mut ShardWal,
    runs: Vec<SessionRun>,
) -> Vec<IndexedRelease> {
    // Wrap every run by move (no point is cloned) and log the whole job
    // with one coalesced append — one write syscall per segment stretch
    // instead of one per session run; this is what keeps the logged
    // ingest path inside its throughput budget.
    let mut cmds = Vec::with_capacity(runs.len());
    let mut run_indices = Vec::with_capacity(runs.len());
    for (sid, indices, batch) in runs {
        cmds.push(Command::ObserveBatch { session_id: sid, points: batch });
        run_indices.push(indices);
    }
    let mut out = Vec::new();
    if let Err(err) = wal.log_batch(&cmds) {
        // Nothing (or a poisoned prefix) reached the log: the whole job
        // is un-executed, reported on every affected index.
        for indices in run_indices {
            for i in indices {
                out.push((i, Err(err.clone())));
            }
        }
        return out;
    }
    for (cmd, indices) in cmds.into_iter().zip(run_indices) {
        let Command::ObserveBatch { session_id: sid, points: batch } = cmd else {
            // Every element of `cmds` was built as ObserveBatch in the
            // loop above; if that ever changed, fail the affected
            // indices instead of killing the shard worker.
            let err = EngineError::Mechanism {
                reason: "internal: ingest staged a non-batch command".to_string(),
            };
            for i in indices {
                out.push((i, Err(err.clone())));
            }
            continue;
        };
        ingest_run(sessions, sid, indices, &batch, &mut out);
    }
    out
}

/// Execute one session's run of an ingest batch against a shard's
/// session table, appending index-tagged results to `out`.
fn ingest_run(
    sessions: &mut HashMap<u64, StreamSession>,
    sid: u64,
    indices: Vec<usize>,
    batch: &[DataPoint],
    out: &mut Vec<IndexedRelease>,
) {
    match sessions.get_mut(&sid) {
        None => {
            for i in indices {
                out.push((i, Err(EngineError::UnknownSession { id: sid })));
            }
        }
        Some(session) => match session.observe_batch(batch) {
            Ok(releases) => {
                for (i, theta) in indices.into_iter().zip(releases) {
                    out.push((i, Ok(theta)));
                }
            }
            Err(e) => {
                for i in indices {
                    out.push((i, Err(e.clone())));
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos();
            let dir = std::env::temp_dir()
                .join(format!("pir-spill-{tag}-{}-{nanos}", std::process::id()));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn session(engine_seed: u64, sid: u64) -> StreamSession {
        let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
        StreamSession::spawn(sid, &MechanismSpec::reg1_l2(2), 64, &params, engine_seed).unwrap()
    }

    /// The stale-depth regression, pinned deterministically: a session
    /// with a queued-but-unexecuted command (a pending entry) must never
    /// be spilled, no matter how cold its LRU slot is — before the
    /// pending gate existed, an `ObserveBatch` could sit in the queue
    /// while its session was evicted underneath it.
    #[test]
    fn eviction_skips_sessions_with_pending_commands() {
        let dir = TempDir::new("pending-guard");
        let options =
            SpillOptions { dir: dir.0.clone(), resident_cap: 1, storage: StorageHandle::os() };
        let shared = Arc::new(SpillShared::new(1));
        let mut tier = SpillTier::new(&options, 0, Arc::clone(&shared));
        let mut sessions = HashMap::new();
        for sid in [1u64, 2, 3] {
            sessions.insert(sid, session(7, sid));
            tier.touch(sid);
        }
        // Session 1 is the coldest, but a submitter published a command
        // for it: the pass must skip it and spill 2 and 3 instead.
        shared.pending_add(0, 1);
        tier.enforce_cap(&mut sessions);
        assert!(sessions.contains_key(&1), "session with a queued command was spilled");
        assert!(!sessions.contains_key(&2) && !sessions.contains_key(&3));
        assert_eq!(tier.spilled.len(), 2);
        assert_eq!(shared.stats().spills, 2);
        // Retire the pending command: the next pass may spill it.
        shared.pending_sub(0, 1);
        tier.touch(99); // no such session — stale entries are skipped
        sessions.insert(4, session(7, 4));
        tier.touch(4);
        tier.enforce_cap(&mut sessions);
        assert!(!sessions.contains_key(&1), "idle coldest session must spill");
        assert!(sessions.contains_key(&4), "most-recently-used session stays resident");
    }

    /// A spilled session comes back exactly as it left: same stream
    /// position, file removed, counters advanced.
    #[test]
    fn spill_then_restore_round_trips_in_band() {
        let dir = TempDir::new("restore");
        let options =
            SpillOptions { dir: dir.0.clone(), resident_cap: 1, storage: StorageHandle::os() };
        let shared = Arc::new(SpillShared::new(1));
        let mut tier = SpillTier::new(&options, 0, Arc::clone(&shared));
        let mut sessions = HashMap::new();
        let mut cold = session(7, 5);
        cold.observe(&DataPoint::new(vec![0.4, 0.2], 0.3)).unwrap();
        let t_before = cold.t();
        sessions.insert(5, cold);
        tier.touch(5);
        sessions.insert(6, session(7, 6));
        tier.touch(6);
        tier.enforce_cap(&mut sessions);
        assert!(!sessions.contains_key(&5), "coldest session spills");
        assert!(tier.file(5).exists());
        tier.restore_if_spilled(&mut sessions, 7, 5).unwrap();
        assert_eq!(sessions[&5].t(), t_before);
        assert!(!tier.file(5).exists(), "restore consumes the spill file");
        let stats = shared.stats();
        assert_eq!((stats.spills, stats.restores, stats.spilled), (1, 1, 0));
    }

    /// A corrupted spill file surfaces as a typed error and leaves the
    /// session table untouched — never a panic, never a silently-wrong
    /// session.
    #[test]
    fn corrupt_spill_file_is_a_typed_error() {
        let dir = TempDir::new("corrupt");
        let options =
            SpillOptions { dir: dir.0.clone(), resident_cap: 1, storage: StorageHandle::os() };
        let shared = Arc::new(SpillShared::new(1));
        let mut tier = SpillTier::new(&options, 0, Arc::clone(&shared));
        let mut sessions = HashMap::new();
        sessions.insert(8, session(7, 8));
        tier.touch(8);
        sessions.insert(9, session(7, 9));
        tier.touch(9);
        tier.enforce_cap(&mut sessions);
        assert!(!sessions.contains_key(&8));
        let path = tier.file(8);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = tier.restore_if_spilled(&mut sessions, 7, 8).unwrap_err();
        assert!(matches!(err, EngineError::Wal { .. }), "got {err:?}");
        assert!(!sessions.contains_key(&8), "failed restore must not insert a session");
    }
}
