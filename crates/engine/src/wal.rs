//! Per-shard write-ahead command log: segmented, length-prefixed,
//! checksummed — the durability layer under the pipelined engine.
//!
//! Every [`Command`] accepted by a WAL-enabled engine
//! ([`EngineHandle::with_wal`](crate::EngineHandle::with_wal)) is
//! appended to its shard's log **before** it executes. Because every
//! release is a pure function of `(engine seed, session id, observed
//! points)` — never of shard count, scheduling, or wall clock — a
//! crashed process can be restarted and replayed from its log to the
//! *exact* same state, bit-identical releases included (the property
//! pinned by `tests/recovery.rs`). The on-disk format follows the
//! [`wire`] codec discipline: versioned headers, strict
//! decoding, and a distinct typed error for every way bytes can lie.
//!
//! # On-disk format
//!
//! A shard's log is a chain of **segment** files named
//! `shardSSSS-segNNNNNNNN.wal` (both fields zero-padded decimal). Each
//! segment opens with a 28-byte header and then carries zero or more
//! records back to back:
//!
//! ```text
//! segment header (28 bytes)
//! offset  size  field
//! 0       4     magic  = b"PIRL"
//! 4       1     version (currently 1)
//! 5       1     reserved, must be 0
//! 6       2     reserved, must be 0
//! 8       4     epoch (writer generation), little-endian u32
//! 12      4     shard index, little-endian u32
//! 16      4     segment sequence within the shard, little-endian u32
//! 20      4     first record sequence in this segment, little-endian u32
//! 24      4     CRC-32 (IEEE) of bytes 0..24, little-endian u32
//!
//! record (16 + N bytes)
//! 0       4     payload length N, little-endian u32
//! 4       4     record sequence within the shard's chain, LE u32
//! 8       4     CRC-32 of bytes 0..8 (the record header), LE u32
//! 12      N     payload: one complete wire command frame
//! 12+N    4     CRC-32 of the payload, little-endian u32
//! ```
//!
//! The payload of a record is a full [`wire`] frame
//! ([`encode_command`](crate::wire::encode_command) output), so the WAL
//! inherits the wire protocol's strict payload validation for free.
//! Record sequence numbers run across the whole shard chain — segment
//! `k+1` continues where segment `k`'s complete records stopped, and the
//! header pins where each segment starts.
//!
//! # Crash artifacts vs. corruption
//!
//! Records are appended with a single sequential write, so a process
//! killed mid-append leaves a *prefix* of the final record — a **torn
//! tail**. Torn tails are the expected crash artifact and are tolerated
//! at the end of a segment: recovery lands exactly on the last complete
//! record. Everything else is rejected loudly:
//!
//! - fewer than 12 record-header bytes at the end of a segment, or a
//!   complete record header whose payload extends past end-of-file →
//!   torn tail (tolerated, counted in [`RecoveryReport::torn_tails`]);
//! - 12 record-header bytes present but the header CRC does not match →
//!   a corrupted length/sequence field, [`WalError::ChecksumMismatch`]
//!   (this is why the record header carries its own CRC: a bit-flipped
//!   length field must not masquerade as a torn tail and silently
//!   swallow the committed records behind it);
//! - payload present in full but its CRC does not match →
//!   [`WalError::ChecksumMismatch`];
//! - record sequence numbers that do not continue the shard's chain →
//!   [`WalError::OutOfOrder`] (catches segment splices, and truncation
//!   at an exact record boundary anywhere except the true end of the
//!   chain);
//! - a segment file missing from the middle of a chain →
//!   [`WalError::MissingSegment`].
//!
//! Recovery validates **everything before applying anything**: on any
//! error the engine is untouched, so a committed command is either
//! replayed or reported — never silently dropped.
//!
//! # Epochs and resharding
//!
//! Each [`WalWriter`] stamps its segments with an **epoch** — one more
//! than the largest epoch found in the directory at creation time — and
//! replay orders commands by `(epoch, shard, segment)`. Within one
//! epoch a session's commands live in exactly one shard's chain, and
//! across epochs (restarts) later writers always carry later epochs, so
//! replay respects arrival order even when the shard count changes
//! between runs. Release sequences are invariant under resharding by
//! construction, so recovering a 2-shard log into an 8-shard engine
//! reproduces the same bits.
//!
//! # Checkpoints and compaction
//!
//! Replaying every command since the beginning of time makes recovery
//! `O(history)`. A **checkpoint** bounds it: [`checkpoint`] (quiesced)
//! or [`EngineHandle::checkpoint`](crate::EngineHandle::checkpoint)
//! (live) writes a `PIRC` **manifest** — a `PIRS` snapshot of every live
//! session plus each shard's resume point at the cut — fsyncs it, and
//! only then deletes the covered segment files. Manifests are named
//! `checkpoint-GGGGGGGG.ckpt` with a monotonically increasing
//! generation; they are written to a temporary name and renamed into
//! place, so a crash mid-checkpoint leaves either the previous
//! generation (covered segments still present — nothing lost) or the
//! new one. Recovery reads the newest manifest first, restores its
//! sessions, and replays only the segments past the recorded resume
//! points — `O(since-checkpoint)`, bit-identical to a full-history
//! replay (the law pinned by `tests/compaction.rs`).
//!
//! # Examples
//!
//! ```
//! use pir_engine::wal::{recover, WalOptions, WalWriter};
//! use pir_engine::{Command, EngineConfig, MechanismSpec, ShardedEngine};
//! use pir_dp::PrivacyParams;
//! use pir_erm::DataPoint;
//!
//! let dir = std::env::temp_dir().join(format!("pir-wal-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let params = PrivacyParams::approx(1.0, 1e-6).unwrap();
//!
//! // Log a tiny command stream, then "crash" (drop the writer).
//! let mut w = WalWriter::create(&WalOptions::new(&dir), 0).unwrap();
//! w.append(&Command::Open {
//!     session_id: 1,
//!     spec: MechanismSpec::reg1_l2(2),
//!     t_max: 8,
//!     params,
//! })
//! .unwrap();
//! w.append(&Command::Observe {
//!     session_id: 1,
//!     point: DataPoint::new(vec![0.5, 0.1], 0.2),
//! })
//! .unwrap();
//! drop(w);
//!
//! // Replay the survivors into a fresh engine.
//! let mut engine =
//!     ShardedEngine::new(EngineConfig { num_shards: 1, seed: 7, parallel: false }).unwrap();
//! let report = recover(&dir, &mut engine).unwrap();
//! assert_eq!(report.commands, 2);
//! assert_eq!(engine.total_points(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::engine::ShardedEngine;
use crate::ingress::{Command, Reply};
use crate::session::StreamSession;
use crate::storage::{StorageFile, StorageHandle};
use crate::wire::{self, WireError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The four magic bytes opening every segment file.
pub const WAL_MAGIC: [u8; 4] = *b"PIRL";
/// Current log format version.
pub const WAL_VERSION: u8 = 1;
/// Segment header length in bytes.
pub const SEGMENT_HEADER_LEN: usize = 28;
/// Record header length in bytes (payload length + sequence + CRC).
pub const RECORD_HEADER_LEN: usize = 12;
/// Fixed per-record overhead: the record header plus the payload CRC.
pub const RECORD_OVERHEAD: usize = RECORD_HEADER_LEN + 4;
/// Hard cap on a record's payload: a wire frame header plus the wire
/// payload cap. A corrupted length field must not OOM recovery (the
/// record-header CRC catches flips first; this is defense in depth).
pub const MAX_RECORD_PAYLOAD: u32 = wire::MAX_PAYLOAD + wire::HEADER_LEN as u32;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table built at compile time
// ---------------------------------------------------------------------------

/// Slicing-by-8 tables: `CRC_TABLES[0]` is the classic byte-at-a-time
/// table; `CRC_TABLES[k][b]` folds a byte that sits `k` positions ahead
/// of the running CRC, so eight input bytes fold with eight independent
/// lookups per iteration instead of a serial chain of eight.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

const CRC_TABLES: [[u32; 256]; 8] = crc32_tables();

/// CRC-32 (IEEE) of `bytes` — the checksum guarding every segment
/// header, record header, and record payload. Slicing-by-8: the hot
/// append path checksums every payload, so the byte-serial dependency
/// chain matters.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong reading or writing a write-ahead log.
///
/// Mirrors the [`WireError`] discipline: one
/// distinct variant per failure mode, so the fault-injection suite can
/// assert *which* lie the bytes told. Cloneable so one failure can fan
/// out across a batch's indices.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// A segment did not start with [`WAL_MAGIC`].
    BadMagic {
        /// Offending file.
        file: String,
        /// The four bytes found instead.
        got: [u8; 4],
    },
    /// A log format version this implementation does not speak.
    UnsupportedVersion {
        /// Offending file.
        file: String,
        /// The version byte found.
        got: u8,
    },
    /// A structurally invalid segment header (reserved bytes set, or
    /// shard/sequence fields disagreeing with the file name).
    CorruptHeader {
        /// Offending file.
        file: String,
        /// What was wrong.
        reason: String,
    },
    /// A partial record (or partial segment header) at the end of a
    /// segment — the expected crash artifact. Only the *strict*
    /// [`decode_segment`] surfaces this as an error; the tolerant
    /// [`scan_segment`] and the recovery paths accept and count it.
    TornTail {
        /// Offending file.
        file: String,
        /// Byte offset where the partial record starts.
        offset: u64,
        /// Bytes of it actually present.
        have: usize,
        /// Bytes a complete record (or header) would need.
        need: usize,
    },
    /// A stored CRC-32 disagrees with the bytes it covers — mid-log
    /// corruption, never a crash artifact, always rejected loudly.
    ChecksumMismatch {
        /// Offending file.
        file: String,
        /// Byte offset of the stored CRC.
        offset: u64,
        /// The CRC stored on disk.
        expected: u32,
        /// The CRC computed from the bytes it covers.
        got: u32,
    },
    /// A record's length field exceeds [`MAX_RECORD_PAYLOAD`].
    RecordTooLarge {
        /// Offending file.
        file: String,
        /// Byte offset of the record.
        offset: u64,
        /// The claimed payload length.
        len: u32,
    },
    /// A record or segment-start sequence number does not continue its
    /// shard's chain — a splice, a reordered copy, or a truncation at
    /// an exact record boundary anywhere except the chain's true end.
    OutOfOrder {
        /// Offending file.
        file: String,
        /// The sequence number the chain required next.
        expected: u32,
        /// The sequence number found.
        got: u32,
    },
    /// A segment file is missing from the middle of a shard's chain.
    MissingSegment {
        /// The shard whose chain has the gap.
        shard: u32,
        /// The segment sequence the chain required next.
        expected: u32,
        /// The segment sequence found instead.
        got: u32,
    },
    /// A `.wal` file whose name does not parse as
    /// `shardSSSS-segNNNNNNNN.wal`. Non-`.wal` files are ignored;
    /// a `.wal` file we cannot place in a chain is rejected loudly.
    UnrecognizedSegment {
        /// Offending file.
        file: String,
    },
    /// A record payload failed wire-protocol validation.
    Wire {
        /// Offending file.
        file: String,
        /// Byte offset of the record.
        offset: u64,
        /// The wire-level failure.
        error: WireError,
    },
    /// A checkpoint manifest that does not decode as a valid `PIRC`
    /// file. Unlike torn segment tails this is never an expected crash
    /// artifact (manifests are written to a temporary name, fsynced, and
    /// renamed into place), so it is always rejected loudly.
    CorruptManifest {
        /// Offending file.
        file: String,
        /// What was wrong.
        reason: String,
    },
    /// A session snapshot inside a checkpoint could not be taken or
    /// restored (e.g. a live session whose mechanism keeps no exportable
    /// state, or a manifest snapshot that fails validation on reboot).
    Snapshot {
        /// What failed.
        reason: String,
    },
    /// Invalid [`WalOptions`].
    InvalidOptions {
        /// What was wrong.
        reason: String,
    },
    /// The writer refused an append because an earlier append failed
    /// mid-write: whatever bytes that failure left behind must stay a
    /// recoverable *tail*, never be buried under later records (which
    /// would turn a crash artifact into mid-log corruption).
    Poisoned {
        /// The segment the writer was on.
        file: String,
    },
    /// An I/O failure (rendered `std::io::Error`).
    Io {
        /// The file or directory involved.
        file: String,
        /// Rendered error.
        reason: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::BadMagic { file, got } => write!(f, "{file}: bad segment magic {got:02x?}"),
            WalError::UnsupportedVersion { file, got } => {
                write!(f, "{file}: unsupported wal version {got}")
            }
            WalError::CorruptHeader { file, reason } => {
                write!(f, "{file}: corrupt segment header: {reason}")
            }
            WalError::TornTail { file, offset, have, need } => {
                write!(f, "{file}: torn record at offset {offset}: {have} of {need} bytes present")
            }
            WalError::ChecksumMismatch { file, offset, expected, got } => write!(
                f,
                "{file}: checksum mismatch at offset {offset}: stored {expected:#010x}, computed {got:#010x}"
            ),
            WalError::RecordTooLarge { file, offset, len } => write!(
                f,
                "{file}: record at offset {offset} claims {len} payload bytes (cap {MAX_RECORD_PAYLOAD})"
            ),
            WalError::OutOfOrder { file, expected, got } => write!(
                f,
                "{file}: record sequence {got} where the chain requires {expected}"
            ),
            WalError::MissingSegment { shard, expected, got } => write!(
                f,
                "shard {shard}: segment {expected} missing from the chain (found {got} next)"
            ),
            WalError::UnrecognizedSegment { file } => {
                write!(f, "{file}: .wal file name does not parse as shardSSSS-segNNNNNNNN.wal")
            }
            WalError::Wire { file, offset, error } => {
                write!(f, "{file}: record payload at offset {offset} invalid: {error}")
            }
            WalError::CorruptManifest { file, reason } => {
                write!(f, "{file}: corrupt checkpoint manifest: {reason}")
            }
            WalError::Snapshot { reason } => {
                write!(f, "checkpoint session snapshot failed: {reason}")
            }
            WalError::InvalidOptions { reason } => write!(f, "invalid wal options: {reason}"),
            WalError::Poisoned { file } => write!(
                f,
                "{file}: wal writer poisoned by an earlier failed append; the segment tail must stay recoverable"
            ),
            WalError::Io { file, reason } => write!(f, "{file}: wal i/o error: {reason}"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, e: &std::io::Error) -> WalError {
    WalError::Io { file: path.display().to_string(), reason: e.to_string() }
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

/// When appended records reach the disk platter, not just the kernel.
///
/// Every append issues its `write` syscall before the command executes,
/// so **all** policies survive a killed process (the kernel keeps
/// written pages). The policies differ only in *power-loss* durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: a committed command survives
    /// power loss. The slowest option; latency is one device flush per
    /// command.
    PerRecord,
    /// `fdatasync` every `every` records (and on rotation and
    /// [`WalWriter::finish`]): bounds power-loss exposure to the last
    /// `every − 1` commands while amortizing the flush. The default,
    /// with `every = 256`.
    Interval {
        /// Records between forced syncs; must be at least 1.
        every: usize,
    },
    /// Never `fdatasync` (except on [`WalWriter::finish`]): power-loss
    /// durability is surrendered entirely; killed processes still
    /// recover fully. For benchmarking and tests.
    Off,
}

/// What a [`WalWriter`] does when the disk says no.
///
/// Appends and syncs can fail transiently (a saturated device queue, a
/// momentary `EINTR`/`EAGAIN` from a network filesystem) or permanently
/// (a dead disk, a full volume). The policy decides how hard the writer
/// fights before giving up, and what "giving up" means. Whatever the
/// policy, the log itself is never left torn mid-chain: a failed append
/// truncates the segment back to its last good byte before any retry,
/// and exhaustion poisons the writer so later appends cannot bury the
/// failure site under new records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalFailurePolicy {
    /// First failure poisons the writer; every later append returns
    /// [`WalError::Poisoned`]. Today's behavior, and the default:
    /// loudest, simplest, never serves a command it could not log.
    #[default]
    Poison,
    /// Retry the failed append/sync up to `attempts` times with linear
    /// backoff (`backoff`, `2·backoff`, …) between tries; exhaustion
    /// poisons the writer. Rides out transient device hiccups without
    /// losing a single record.
    Retry {
        /// Extra tries after the initial failure (0 = same as `Poison`).
        attempts: u32,
        /// Base sleep between tries, scaled linearly per attempt.
        backoff: Duration,
    },
    /// Retry like [`WalFailurePolicy::Retry`], but on exhaustion the
    /// engine **drops logging and keeps serving**: the shard continues
    /// unlogged, every affected command is counted in
    /// [`WalStats`](crate::ingress::WalStats), and the command that
    /// triggered the degradation is answered with an in-band
    /// [`EngineError::Wal`](crate::EngineError::Wal) warning so clients
    /// learn durability was surrendered. For deployments that prefer
    /// availability over durability.
    DegradeToUnlogged {
        /// Extra tries after the initial failure before degrading.
        attempts: u32,
        /// Base sleep between tries, scaled linearly per attempt.
        backoff: Duration,
    },
}

impl WalFailurePolicy {
    /// The retry envelope: (extra attempts, base backoff).
    pub(crate) fn envelope(&self) -> (u32, Duration) {
        match *self {
            WalFailurePolicy::Poison => (0, Duration::ZERO),
            WalFailurePolicy::Retry { attempts, backoff }
            | WalFailurePolicy::DegradeToUnlogged { attempts, backoff } => (attempts, backoff),
        }
    }

    /// Whether exhaustion degrades to unlogged ingestion instead of
    /// poisoning the shard.
    pub fn degrades(&self) -> bool {
        matches!(self, WalFailurePolicy::DegradeToUnlogged { .. })
    }
}

/// When the engine checkpoints itself, instead of waiting for an
/// operator to call
/// [`EngineHandle::checkpoint`](crate::EngineHandle::checkpoint).
///
/// The engine tracks the log tail (bytes and commands appended since
/// the last successful checkpoint, summed across shards) and triggers a
/// live checkpoint when **either** threshold is crossed. A failed
/// auto-checkpoint backs off exponentially and never purges segments —
/// the purge step only ever runs after the manifest is durably in
/// place, so a flaky disk can delay compaction but cannot lose the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint once this many bytes of WAL tail have accumulated
    /// since the last checkpoint. `u64::MAX` disables the byte axis.
    pub tail_bytes: u64,
    /// Checkpoint once this many commands have been logged since the
    /// last checkpoint. `u64::MAX` disables the count axis.
    pub command_count: u64,
}

impl CheckpointPolicy {
    /// A policy triggering on tail bytes alone.
    pub fn by_tail_bytes(tail_bytes: u64) -> Self {
        CheckpointPolicy { tail_bytes, command_count: u64::MAX }
    }

    /// A policy triggering on command count alone.
    pub fn by_command_count(command_count: u64) -> Self {
        CheckpointPolicy { tail_bytes: u64::MAX, command_count }
    }

    /// Whether `tail_bytes`/`commands` since the last checkpoint cross
    /// either threshold.
    pub(crate) fn due(&self, tail_bytes: u64, commands: u64) -> bool {
        tail_bytes >= self.tail_bytes || commands >= self.command_count
    }
}

/// Configuration for a write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub struct WalOptions {
    /// Directory holding the segment files (created if absent). One
    /// engine per directory: segment names embed only shard and
    /// sequence.
    pub dir: PathBuf,
    /// Durability policy; see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one reaches this many
    /// bytes (checked before each append; a segment always accepts at
    /// least one record, so an oversized command cannot wedge rotation).
    pub segment_bytes: u64,
    /// The storage backend every file operation goes through. Defaults
    /// to the real filesystem ([`crate::OsStorage`]); tests swap in a
    /// [`crate::SimDisk`] to script crashes and I/O faults.
    pub storage: StorageHandle,
    /// What the writer does when an append or sync fails; see
    /// [`WalFailurePolicy`].
    pub failure_policy: WalFailurePolicy,
    /// Auto-checkpoint thresholds, honored by the pipelined engine
    /// ([`EngineHandle::with_wal`](crate::EngineHandle::with_wal));
    /// `None` (the default) keeps checkpointing operator-driven. The
    /// quiesced [`WalWriter`] path ignores this field.
    pub auto_checkpoint: Option<CheckpointPolicy>,
}

impl WalOptions {
    /// Options with the defaults: interval fsync every 4096 records,
    /// 64 MiB segments, real-filesystem storage, poison-on-failure,
    /// operator-driven checkpoints. (An `fdatasync` costs ~100–300 µs on
    /// commodity disks; at 4096 records (≈40 ms of arrivals at 100k
    /// cmd/s) the sync tax stays in single-digit
    /// percent of engine throughput while bounding *power-loss* exposure
    /// — process crashes lose nothing at any interval, because every
    /// record's `write` is issued before its command executes.)
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalOptions {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval { every: 4096 },
            segment_bytes: 64 << 20,
            storage: StorageHandle::os(),
            failure_policy: WalFailurePolicy::Poison,
            auto_checkpoint: None,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), WalError> {
        if let FsyncPolicy::Interval { every: 0 } = self.fsync {
            return Err(WalError::InvalidOptions {
                reason: "fsync interval must be at least 1 record".to_string(),
            });
        }
        if self.segment_bytes == 0 {
            return Err(WalError::InvalidOptions {
                reason: "segment_bytes must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Segment naming
// ---------------------------------------------------------------------------

/// The file name of segment `seg_seq` in shard `shard`'s chain.
pub fn segment_file_name(shard: u32, seg_seq: u32) -> String {
    format!("shard{shard:04}-seg{seg_seq:08}.wal")
}

/// Parse `shardSSSS-segNNNNNNNN.wal`; `None` for anything else.
fn parse_segment_name(name: &str) -> Option<(u32, u32)> {
    let body = name.strip_prefix("shard")?.strip_suffix(".wal")?;
    let (shard_s, seg_s) = body.split_once("-seg")?;
    if shard_s.len() != 4 || seg_s.len() != 8 {
        return None;
    }
    if !shard_s.bytes().all(|b| b.is_ascii_digit()) || !seg_s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((shard_s.parse().ok()?, seg_s.parse().ok()?))
}

// ---------------------------------------------------------------------------
// Checkpoint manifests
// ---------------------------------------------------------------------------

/// The four magic bytes opening every checkpoint manifest.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"PIRC";
/// Current manifest format version.
pub const CHECKPOINT_VERSION: u8 = 1;
/// Hard cap on a manifest body (256 MiB): a corrupted length field must
/// not size an allocation.
pub const MAX_MANIFEST_BODY: u32 = 256 * 1024 * 1024;
const MANIFEST_HEADER_LEN: usize = 12;

/// The file name of checkpoint generation `generation`.
pub fn checkpoint_file_name(generation: u32) -> String {
    format!("checkpoint-{generation:08}.ckpt")
}

/// Parse `checkpoint-GGGGGGGG.ckpt`; `None` for anything else.
fn parse_checkpoint_name(name: &str) -> Option<u32> {
    let body = name.strip_prefix("checkpoint-")?.strip_suffix(".ckpt")?;
    if body.len() != 8 || !body.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    body.parse().ok()
}

/// A decoded checkpoint manifest: where each shard's log was cut, and
/// every session alive at the cut as a `PIRS` snapshot blob.
///
/// On-disk layout mirrors the snapshot format: a 12-byte header (magic
/// `PIRC`, version, 3 reserved zero bytes, body length LE u32), the
/// body, and a trailing CRC-32 over header + body. Body, in order:
/// generation (u32), epoch-present flag (u8) + max epoch (u32), chain
/// count (u32) then per chain `shard, next_seg_seq, next_record_seq`
/// (u32 each, sorted by shard), snapshot count (u32) then per snapshot a
/// u32 length prefix and the `PIRS` blob.
#[derive(Debug, Clone)]
pub(crate) struct Manifest {
    pub(crate) generation: u32,
    pub(crate) max_epoch: Option<u32>,
    pub(crate) chains: Vec<ShardChain>,
    pub(crate) snapshots: Vec<Vec<u8>>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.push(CHECKPOINT_VERSION);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&[0u8; 4]); // body length, patched below
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.push(u8::from(self.max_epoch.is_some()));
        out.extend_from_slice(&self.max_epoch.unwrap_or(0).to_le_bytes());
        let mut chains = self.chains.clone();
        chains.sort_by_key(|c| c.shard);
        out.extend_from_slice(&(chains.len() as u32).to_le_bytes());
        for c in &chains {
            out.extend_from_slice(&c.shard.to_le_bytes());
            out.extend_from_slice(&c.next_seg_seq.to_le_bytes());
            out.extend_from_slice(&c.next_record_seq.to_le_bytes());
        }
        out.extend_from_slice(&(self.snapshots.len() as u32).to_le_bytes());
        for s in &self.snapshots {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s);
        }
        let body_len = (out.len() - MANIFEST_HEADER_LEN) as u32;
        out[8..12].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Strict decode; any lie is a `reason` string the caller wraps in
    /// [`WalError::CorruptManifest`] with the file name attached.
    fn decode(bytes: &[u8]) -> Result<Manifest, String> {
        if bytes.len() < MANIFEST_HEADER_LEN {
            return Err(format!("{} bytes is shorter than a manifest header", bytes.len()));
        }
        if bytes[0..4] != CHECKPOINT_MAGIC {
            return Err(format!("bad magic {:02x?}", &bytes[0..4]));
        }
        if bytes[4] != CHECKPOINT_VERSION {
            return Err(format!("unsupported manifest version {}", bytes[4]));
        }
        if bytes[5..8] != [0u8; 3] {
            return Err("reserved header bytes set".to_string());
        }
        let body_len = le_u32(bytes, 8);
        if body_len > MAX_MANIFEST_BODY {
            return Err(format!("body length {body_len} exceeds the {MAX_MANIFEST_BODY}-byte cap"));
        }
        let need = MANIFEST_HEADER_LEN + body_len as usize + 4;
        if bytes.len() != need {
            return Err(format!("file is {} bytes, layout demands {need}", bytes.len()));
        }
        let crc_at = need - 4;
        let stored = le_u32(bytes, crc_at);
        let computed = crc32(&bytes[..crc_at]);
        if stored != computed {
            return Err(format!(
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ));
        }

        let body = &bytes[MANIFEST_HEADER_LEN..crc_at];
        let mut pos = 0usize;
        let mut take = |n: usize, what: &str| -> Result<&[u8], String> {
            if body.len() - pos < n {
                return Err(format!("body ends inside {what}"));
            }
            let s = &body[pos..pos + n];
            pos += n;
            Ok(s)
        };
        let generation = le_u32(take(4, "generation")?, 0);
        let has_epoch = take(1, "epoch flag")?[0];
        if has_epoch > 1 {
            return Err(format!("epoch flag is {has_epoch}, want 0 or 1"));
        }
        let epoch = le_u32(take(4, "max epoch")?, 0);
        let max_epoch = (has_epoch == 1).then_some(epoch);
        let chain_count = le_u32(take(4, "chain count")?, 0) as usize;
        let mut chains = Vec::new();
        let mut last_shard: Option<u32> = None;
        for _ in 0..chain_count {
            let c = take(12, "a chain entry")?;
            let shard = le_u32(c, 0);
            if last_shard.is_some_and(|p| shard <= p) {
                return Err(format!("chain for shard {shard} out of order or duplicated"));
            }
            last_shard = Some(shard);
            chains.push(ShardChain {
                shard,
                next_seg_seq: le_u32(c, 4),
                next_record_seq: le_u32(c, 8),
            });
        }
        let snap_count = le_u32(take(4, "snapshot count")?, 0) as usize;
        let mut snapshots = Vec::new();
        for _ in 0..snap_count {
            let len = le_u32(take(4, "a snapshot length")?, 0) as usize;
            snapshots.push(take(len, "a snapshot blob")?.to_vec());
        }
        if pos != body.len() {
            return Err(format!("{} unparsed bytes after the snapshots", body.len() - pos));
        }
        Ok(Manifest { generation, max_epoch, chains, snapshots })
    }
}

/// Find and decode the newest checkpoint manifest under `dir`, if any.
/// Older generations are ignored (they are leftovers the next checkpoint
/// removes); a corrupt newest manifest is a loud error — segments it
/// covered may already be purged, so guessing would lose data.
pub(crate) fn load_manifest(
    storage: &StorageHandle,
    dir: &Path,
) -> Result<Option<Manifest>, WalError> {
    if !storage.exists(dir) {
        return Ok(None);
    }
    let mut newest: Option<(u32, PathBuf)> = None;
    for path in storage.read_dir(dir).map_err(|e| io_err(dir, &e))? {
        let Some(generation) =
            path.file_name().and_then(|n| n.to_str()).and_then(parse_checkpoint_name)
        else {
            continue;
        };
        if newest.as_ref().is_none_or(|(g, _)| generation > *g) {
            newest = Some((generation, path));
        }
    }
    let Some((generation, path)) = newest else {
        return Ok(None);
    };
    let bytes = storage.read(&path).map_err(|e| io_err(&path, &e))?;
    let manifest = Manifest::decode(&bytes)
        .map_err(|reason| WalError::CorruptManifest { file: path.display().to_string(), reason })?;
    if manifest.generation != generation {
        return Err(WalError::CorruptManifest {
            file: path.display().to_string(),
            reason: format!(
                "body says generation {}, file name says {generation}",
                manifest.generation
            ),
        });
    }
    Ok(Some(manifest))
}

/// Durably publish a manifest: write to a temporary name, fsync, rename
/// into place, fsync the directory. A crash at any point leaves either
/// the previous generation or the new one — never a torn manifest under
/// the final name.
pub(crate) fn write_manifest(
    storage: &StorageHandle,
    dir: &Path,
    manifest: &Manifest,
) -> Result<(), WalError> {
    storage.create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
    let final_path = dir.join(checkpoint_file_name(manifest.generation));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(manifest.generation)));
    let bytes = manifest.encode();
    let mut file = storage.create(&tmp_path).map_err(|e| io_err(&tmp_path, &e))?;
    file.append(&bytes).map_err(|e| io_err(&tmp_path, &e))?;
    // Always durable, regardless of the engine's fsync policy: segment
    // files are about to be deleted on the strength of this manifest.
    file.sync_all().map_err(|e| io_err(&tmp_path, &e))?;
    drop(file);
    storage.rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, &e))?;
    storage.sync_dir(dir).map_err(|e| io_err(dir, &e))?;
    Ok(())
}

/// Delete everything `manifest` supersedes: segment files below each
/// chain's resume point, manifests of older generations, and stale
/// temporary manifest files. Returns `(segments_purged,
/// manifests_removed)`.
pub(crate) fn purge_covered(
    storage: &StorageHandle,
    dir: &Path,
    manifest: &Manifest,
) -> Result<(usize, usize), WalError> {
    let mut segments_purged = 0usize;
    let mut manifests_removed = 0usize;
    if !storage.exists(dir) {
        return Ok((0, 0));
    }
    for path in storage.read_dir(dir).map_err(|e| io_err(dir, &e))? {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let covered_segment = parse_segment_name(name).is_some_and(|(shard, seg_seq)| {
            manifest.chains.iter().any(|c| c.shard == shard && seg_seq < c.next_seg_seq)
        });
        let older_manifest = parse_checkpoint_name(name).is_some_and(|g| g < manifest.generation);
        let stale_tmp = name.starts_with("checkpoint-") && name.ends_with(".ckpt.tmp");
        if covered_segment {
            storage.remove_file(&path).map_err(|e| io_err(&path, &e))?;
            segments_purged += 1;
        } else if older_manifest {
            storage.remove_file(&path).map_err(|e| io_err(&path, &e))?;
            manifests_removed += 1;
        } else if stale_tmp
            && path != dir.join(format!("{}.tmp", checkpoint_file_name(manifest.generation)))
        {
            storage.remove_file(&path).map_err(|e| io_err(&path, &e))?;
        }
    }
    Ok((segments_purged, manifests_removed))
}

pub(crate) fn next_generation(current: Option<u32>) -> Result<u32, WalError> {
    match current {
        None => Ok(0),
        Some(g) => g.checked_add(1).ok_or_else(|| WalError::Io {
            file: String::new(),
            reason: "checkpoint generation overflow".to_string(),
        }),
    }
}

/// What a checkpoint pass captured and reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointReport {
    /// The generation number of the manifest written.
    pub generation: u32,
    /// Live sessions captured as snapshots.
    pub sessions: usize,
    /// Covered segment files deleted.
    pub segments_purged: usize,
    /// Superseded manifest files deleted.
    pub manifests_removed: usize,
}

/// Checkpoint a **quiesced** engine against its log directory: snapshot
/// every live session, write a manifest covering the entire current log,
/// and purge the covered segments. The caller guarantees `engine` is
/// exactly the state a full replay of `dir` produces (e.g. the engine a
/// [`recover`] pass just filled, or one whose traffic is stopped) — for
/// a running pipelined engine use
/// [`EngineHandle::checkpoint`](crate::EngineHandle::checkpoint), which
/// cuts each shard in-band instead.
///
/// # Errors
/// Any [`WalError`] the existing log violates;
/// [`WalError::Snapshot`] if a live session cannot be snapshotted (its
/// mechanism keeps no exportable state — such sessions cannot ride a
/// checkpoint, by design `PRIVINCERM`'s full-history state stays in the
/// log); I/O failures. On error no segment is deleted.
pub fn checkpoint(
    dir: impl AsRef<Path>,
    engine: &ShardedEngine,
) -> Result<CheckpointReport, WalError> {
    checkpoint_with_storage(&StorageHandle::os(), dir.as_ref(), engine)
}

/// [`checkpoint`] against an explicit storage backend. See
/// [`checkpoint`] for semantics and errors.
pub fn checkpoint_with_storage(
    storage: &StorageHandle,
    dir: &Path,
    engine: &ShardedEngine,
) -> Result<CheckpointReport, WalError> {
    let log = load_log(storage, dir)?;
    let mut snapshots = Vec::new();
    for session in engine.sessions() {
        snapshots.push(session.snapshot().map_err(|e| WalError::Snapshot {
            reason: format!("session {:#018x}: {e}", session.id()),
        })?);
    }
    let generation = next_generation(log.manifest_generation)?;
    let manifest =
        Manifest { generation, max_epoch: log.max_epoch, chains: log.chains.clone(), snapshots };
    write_manifest(storage, dir, &manifest)?;
    let (segments_purged, manifests_removed) = purge_covered(storage, dir, &manifest)?;
    Ok(CheckpointReport {
        generation,
        sessions: manifest.snapshots.len(),
        segments_purged,
        manifests_removed,
    })
}

// ---------------------------------------------------------------------------
// Scanning and strict decoding
// ---------------------------------------------------------------------------

/// A validated segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Writer generation that produced the segment.
    pub epoch: u32,
    /// Shard index (always matches the file name).
    pub shard: u32,
    /// Segment sequence within the shard's chain (matches the file name).
    pub seg_seq: u32,
    /// Sequence number of the first record in this segment — equal to
    /// the count of complete records in the chain before it.
    pub first_record_seq: u32,
}

impl SegmentHeader {
    /// Serialize to the on-disk 28-byte header.
    pub fn to_bytes(&self) -> [u8; SEGMENT_HEADER_LEN] {
        let mut h = [0u8; SEGMENT_HEADER_LEN];
        h[0..4].copy_from_slice(&WAL_MAGIC);
        h[4] = WAL_VERSION;
        h[8..12].copy_from_slice(&self.epoch.to_le_bytes());
        h[12..16].copy_from_slice(&self.shard.to_le_bytes());
        h[16..20].copy_from_slice(&self.seg_seq.to_le_bytes());
        h[20..24].copy_from_slice(&self.first_record_seq.to_le_bytes());
        let crc = crc32(&h[0..24]);
        h[24..28].copy_from_slice(&crc.to_le_bytes());
        h
    }
}

/// A torn partial record (or torn segment header): the expected
/// artifact of a crash mid-append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornInfo {
    /// Byte offset where the partial record starts.
    pub offset: u64,
    /// Bytes of it actually present.
    pub have: usize,
    /// Bytes a complete record (or segment header) would need. For a
    /// record whose header is itself partial this is the header length;
    /// once the header is readable it is the full record length.
    pub need: usize,
}

/// The result of tolerantly scanning one segment file.
#[derive(Debug, Clone)]
pub struct ScannedSegment {
    /// The scanned file.
    pub path: PathBuf,
    /// Shard index, from the file name.
    pub shard: u32,
    /// Segment sequence, from the file name.
    pub seg_seq: u32,
    /// The validated header, or `None` if the file is shorter than a
    /// header — a crash during segment creation (tolerated; such a
    /// segment carries no records and is reported as a torn tail).
    pub header: Option<SegmentHeader>,
    /// Every complete, checksum-valid record's command, in order.
    pub commands: Vec<Command>,
    /// The torn partial record at the end, if any.
    pub torn_tail: Option<TornInfo>,
}

fn le_u32(buf: &[u8], at: usize) -> u32 {
    // Callers bounds-check `at + 4` against the scanned span before
    // calling; if one ever did not, a zero comes back and the record
    // fails its length/CRC validation instead of panicking the scan.
    match buf.get(at..).and_then(|rest| rest.first_chunk::<4>()) {
        Some(&bytes) => u32::from_le_bytes(bytes),
        None => 0,
    }
}

/// Tolerantly scan one segment: validate the header, decode every
/// complete record, accept a torn tail, and reject everything else
/// loudly. See the [module docs](self) for the artifact-vs-corruption
/// taxonomy.
///
/// # Errors
/// [`WalError::UnrecognizedSegment`] for an unparseable file name, any
/// checksum / ordering / size / wire validation failure, or I/O errors.
/// A torn tail is **not** an error here; [`decode_segment`] is the
/// strict variant.
pub fn scan_segment(path: &Path) -> Result<ScannedSegment, WalError> {
    scan_segment_on(&StorageHandle::os(), path)
}

/// [`scan_segment`] against an explicit storage backend.
pub(crate) fn scan_segment_on(
    storage: &StorageHandle,
    path: &Path,
) -> Result<ScannedSegment, WalError> {
    let file = path.display().to_string();
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| WalError::UnrecognizedSegment { file: file.clone() })?;
    let (shard, seg_seq) = parse_segment_name(name)
        .ok_or_else(|| WalError::UnrecognizedSegment { file: file.clone() })?;
    let buf = storage.read(path).map_err(|e| io_err(path, &e))?;

    // Shorter than a header: the segment's creation itself was torn.
    if buf.len() < SEGMENT_HEADER_LEN {
        return Ok(ScannedSegment {
            path: path.to_path_buf(),
            shard,
            seg_seq,
            header: None,
            commands: Vec::new(),
            torn_tail: Some(TornInfo { offset: 0, have: buf.len(), need: SEGMENT_HEADER_LEN }),
        });
    }

    // Header validation, most specific lie first.
    if buf[0..4] != WAL_MAGIC {
        return Err(WalError::BadMagic { file, got: [buf[0], buf[1], buf[2], buf[3]] });
    }
    if buf[4] != WAL_VERSION {
        return Err(WalError::UnsupportedVersion { file, got: buf[4] });
    }
    if buf[5] != 0 || buf[6] != 0 || buf[7] != 0 {
        return Err(WalError::CorruptHeader {
            file,
            reason: "reserved header bytes set".to_string(),
        });
    }
    let stored_crc = le_u32(&buf, 24);
    let computed = crc32(&buf[0..24]);
    if stored_crc != computed {
        return Err(WalError::ChecksumMismatch {
            file,
            offset: 24,
            expected: stored_crc,
            got: computed,
        });
    }
    let header = SegmentHeader {
        epoch: le_u32(&buf, 8),
        shard: le_u32(&buf, 12),
        seg_seq: le_u32(&buf, 16),
        first_record_seq: le_u32(&buf, 20),
    };
    if header.shard != shard || header.seg_seq != seg_seq {
        return Err(WalError::CorruptHeader {
            file,
            reason: format!(
                "header says shard {} segment {}, file name says shard {shard} segment {seg_seq}",
                header.shard, header.seg_seq
            ),
        });
    }

    // Records.
    let mut commands: Vec<Command> = Vec::new();
    let mut torn_tail = None;
    let mut pos = SEGMENT_HEADER_LEN;
    loop {
        let remaining = buf.len() - pos;
        if remaining == 0 {
            break; // clean end
        }
        if remaining < RECORD_HEADER_LEN {
            torn_tail =
                Some(TornInfo { offset: pos as u64, have: remaining, need: RECORD_HEADER_LEN });
            break;
        }
        let len = le_u32(&buf, pos);
        let seq = le_u32(&buf, pos + 4);
        let stored_head_crc = le_u32(&buf, pos + 8);
        let computed_head_crc = crc32(&buf[pos..pos + 8]);
        // The record-header CRC comes first: a complete 12-byte header
        // was written in one piece, so a mismatch is corruption — and
        // without this check a flipped length field could fake a torn
        // tail and silently swallow every record behind it.
        if stored_head_crc != computed_head_crc {
            return Err(WalError::ChecksumMismatch {
                file,
                offset: (pos + 8) as u64,
                expected: stored_head_crc,
                got: computed_head_crc,
            });
        }
        if len > MAX_RECORD_PAYLOAD {
            return Err(WalError::RecordTooLarge { file, offset: pos as u64, len });
        }
        let expected_seq = header.first_record_seq.wrapping_add(commands.len() as u32);
        if seq != expected_seq {
            return Err(WalError::OutOfOrder { file, expected: expected_seq, got: seq });
        }
        let need = RECORD_HEADER_LEN + len as usize + 4;
        if remaining < need {
            torn_tail = Some(TornInfo { offset: pos as u64, have: remaining, need });
            break;
        }
        let payload = &buf[pos + RECORD_HEADER_LEN..pos + RECORD_HEADER_LEN + len as usize];
        let stored_payload_crc = le_u32(&buf, pos + RECORD_HEADER_LEN + len as usize);
        let computed_payload_crc = crc32(payload);
        if stored_payload_crc != computed_payload_crc {
            return Err(WalError::ChecksumMismatch {
                file,
                offset: (pos + RECORD_HEADER_LEN + len as usize) as u64,
                expected: stored_payload_crc,
                got: computed_payload_crc,
            });
        }
        let cmd = wire::decode_command(payload).map_err(|error| WalError::Wire {
            file: file.clone(),
            offset: pos as u64,
            error,
        })?;
        commands.push(cmd);
        pos += need;
    }

    Ok(ScannedSegment {
        path: path.to_path_buf(),
        shard,
        seg_seq,
        header: Some(header),
        commands,
        torn_tail,
    })
}

/// Strictly decode one segment: like [`scan_segment`] but a torn tail
/// (or torn header) is an error too.
///
/// # Errors
/// Everything [`scan_segment`] rejects, plus [`WalError::TornTail`].
pub fn decode_segment(path: &Path) -> Result<(SegmentHeader, Vec<Command>), WalError> {
    let s = scan_segment(path)?;
    if let Some(t) = s.torn_tail {
        return Err(WalError::TornTail {
            file: s.path.display().to_string(),
            offset: t.offset,
            have: t.have,
            need: t.need,
        });
    }
    // A headerless segment always reports a torn tail, so this branch is
    // unreachable after the check above — but strict decoding should
    // answer a missing header with the torn-header error, not a panic.
    let Some(header) = s.header else {
        return Err(WalError::TornTail {
            file: s.path.display().to_string(),
            offset: 0,
            have: 0,
            need: SEGMENT_HEADER_LEN,
        });
    };
    Ok((header, s.commands))
}

// ---------------------------------------------------------------------------
// Whole-log loading
// ---------------------------------------------------------------------------

/// Per-shard resume point for a new writer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardChain {
    pub(crate) shard: u32,
    /// Sequence the next segment file should carry (last + 1).
    pub(crate) next_seg_seq: u32,
    /// Sequence the next record should carry (complete records so far).
    pub(crate) next_record_seq: u32,
}

/// A fully validated log, decoded into replay order.
pub(crate) struct LoadedLog {
    /// Every committed command past the newest checkpoint, in replay
    /// order (`(epoch, shard, segment)`-sorted, records in file order).
    pub(crate) commands: Vec<Command>,
    pub(crate) chains: Vec<ShardChain>,
    pub(crate) max_epoch: Option<u32>,
    pub(crate) segments: usize,
    pub(crate) torn_tails: usize,
    /// `PIRS` session blobs from the newest checkpoint manifest (empty
    /// when no checkpoint exists). Restored **before** `commands` replay.
    pub(crate) snapshots: Vec<Vec<u8>>,
    /// Generation of the manifest the log was loaded against, if any.
    pub(crate) manifest_generation: Option<u32>,
}

impl LoadedLog {
    pub(crate) fn resume_for(&self, shard: u32) -> (u32, u32) {
        self.chains
            .iter()
            .find(|c| c.shard == shard)
            .map_or((0, 0), |c| (c.next_seg_seq, c.next_record_seq))
    }

    pub(crate) fn report(&self, failed: u64) -> RecoveryReport {
        RecoveryReport {
            shards: self.chains.len(),
            segments: self.segments,
            commands: self.commands.len() as u64,
            failed,
            torn_tails: self.torn_tails,
            snapshot_sessions: self.snapshots.len(),
        }
    }
}

/// Load and fully validate everything under `dir`: the newest checkpoint
/// manifest (if any) and every segment chain **past** its resume points
/// — segments the manifest covers are skipped without even being read,
/// which is what makes recovery `O(since-checkpoint)`. Nothing is
/// applied anywhere: callers get either the complete committed state
/// (snapshots + tail commands) or an error describing the first
/// corruption found.
pub(crate) fn load_log(storage: &StorageHandle, dir: &Path) -> Result<LoadedLog, WalError> {
    let manifest = load_manifest(storage, dir)?;
    let covered = |shard: u32| -> (u32, u32) {
        manifest
            .as_ref()
            .and_then(|m| m.chains.iter().find(|c| c.shard == shard))
            .map_or((0, 0), |c| (c.next_seg_seq, c.next_record_seq))
    };

    let mut per_shard: BTreeMap<u32, Vec<ScannedSegment>> = BTreeMap::new();
    let mut segments = 0usize;
    let mut torn_tails = 0usize;
    if storage.exists(dir) {
        let mut paths: Vec<PathBuf> = Vec::new();
        for path in storage.read_dir(dir).map_err(|e| io_err(dir, &e))? {
            match path.extension().and_then(|e| e.to_str()) {
                Some("wal") => {
                    // A checkpointed-but-not-yet-purged segment (the
                    // crash window between manifest publish and purge)
                    // is logically deleted: skip it unread.
                    let covered_by_manifest = path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .and_then(parse_segment_name)
                        .is_some_and(|(shard, seg_seq)| seg_seq < covered(shard).0);
                    if !covered_by_manifest {
                        paths.push(path);
                    }
                }
                // Foreign files (editor droppings, operator notes) are
                // ignored; only .wal files must parse.
                _ => continue,
            }
        }
        paths.sort();
        for path in paths {
            let s = scan_segment_on(storage, &path)?;
            segments += 1;
            if s.torn_tail.is_some() {
                torn_tails += 1;
            }
            per_shard.entry(s.shard).or_default().push(s);
        }
    }

    // Per-shard chain validation: contiguous segment sequences from the
    // manifest's resume point (0 without a checkpoint), record sequences
    // continuing across segment boundaries, epochs non-decreasing along
    // the chain.
    let mut chains = Vec::new();
    let mut max_epoch: Option<u32> = manifest.as_ref().and_then(|m| m.max_epoch);
    let mut ordered: Vec<&ScannedSegment> = Vec::new();
    for (&shard, segs) in per_shard.iter_mut() {
        segs.sort_by_key(|s| s.seg_seq);
        let (base_seg, base_record) = covered(shard);
        let mut next_record_seq = base_record;
        let mut last_epoch: Option<u32> = None;
        for (i, s) in segs.iter().enumerate() {
            let expected_seg = base_seg.wrapping_add(i as u32);
            if s.seg_seq != expected_seg {
                return Err(WalError::MissingSegment {
                    shard,
                    expected: expected_seg,
                    got: s.seg_seq,
                });
            }
            if let Some(h) = s.header {
                if h.first_record_seq != next_record_seq {
                    return Err(WalError::OutOfOrder {
                        file: s.path.display().to_string(),
                        expected: next_record_seq,
                        got: h.first_record_seq,
                    });
                }
                if last_epoch.is_some_and(|e| h.epoch < e) {
                    return Err(WalError::CorruptHeader {
                        file: s.path.display().to_string(),
                        reason: format!(
                            "epoch {} decreases along the chain (previous segment had {})",
                            h.epoch,
                            last_epoch.unwrap_or(0)
                        ),
                    });
                }
                last_epoch = Some(h.epoch);
                max_epoch = Some(max_epoch.map_or(h.epoch, |m| m.max(h.epoch)));
                next_record_seq = next_record_seq.wrapping_add(s.commands.len() as u32);
            }
            // A torn-header segment carries no records and no epoch; it
            // still occupies its slot in the segment numbering.
        }
        chains.push(ShardChain {
            shard,
            next_seg_seq: base_seg.wrapping_add(segs.len() as u32),
            next_record_seq,
        });
        ordered.extend(segs.iter());
    }

    // Shards the manifest knows but the tail has no segments for (fully
    // purged chains) still need their resume points carried forward, or
    // a new writer would restart them at segment 0.
    if let Some(m) = &manifest {
        for c in &m.chains {
            if !chains.iter().any(|have| have.shard == c.shard) {
                chains.push(*c);
            }
        }
        chains.sort_by_key(|c| c.shard);
    }

    // Replay order: (epoch, shard, segment). Within one epoch sessions
    // are disjoint across shards, and across epochs later segments were
    // written by later processes, so this respects per-session arrival
    // order even when the shard count changed between runs.
    ordered.sort_by_key(|s| (s.header.map_or(0, |h| h.epoch), s.shard, s.seg_seq));
    let commands: Vec<Command> = ordered.iter().flat_map(|s| s.commands.iter().cloned()).collect();

    let (snapshots, manifest_generation) = match manifest {
        Some(m) => (m.snapshots, Some(m.generation)),
        None => (Vec::new(), None),
    };
    Ok(LoadedLog {
        commands,
        chains,
        max_epoch,
        segments,
        torn_tails,
        snapshots,
        manifest_generation,
    })
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What a recovery pass found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shard chains found in the directory.
    pub shards: usize,
    /// Segment files scanned.
    pub segments: usize,
    /// Committed commands replayed.
    pub commands: u64,
    /// Replayed commands whose execution returned an error reply —
    /// deterministic re-failures of commands that failed identically in
    /// the original run (a duplicate open, an over-horizon observe).
    pub failed: u64,
    /// Torn partial records dropped as expected crash artifacts.
    pub torn_tails: usize,
    /// Sessions restored from the newest checkpoint manifest (zero when
    /// no checkpoint exists).
    pub snapshot_sessions: usize,
}

/// Replay a directory's committed command stream into `engine`.
///
/// Validates **every** segment of **every** shard before applying
/// anything: on error the engine is untouched. A missing directory is
/// an empty log. Torn tails are dropped and counted; everything else
/// suspicious is a typed error.
///
/// # Errors
/// Any [`WalError`] the log violates.
pub fn recover(
    dir: impl AsRef<Path>,
    engine: &mut ShardedEngine,
) -> Result<RecoveryReport, WalError> {
    recover_with(dir, engine, |_, _| {})
}

/// [`recover`], invoking `on_reply` with every replayed command and the
/// reply its re-execution produced — the hook the determinism receipts
/// use to compare a replay's releases bit-for-bit against the original
/// run's.
///
/// # Errors
/// Any [`WalError`] the log violates; nothing is applied on error.
pub fn recover_with(
    dir: impl AsRef<Path>,
    engine: &mut ShardedEngine,
    on_reply: impl FnMut(&Command, &Reply),
) -> Result<RecoveryReport, WalError> {
    recover_with_storage(&StorageHandle::os(), dir.as_ref(), engine, on_reply)
}

/// [`recover_with`] against an explicit storage backend — the entry
/// point the crash-consistency harness uses to recover from a
/// [`SimDisk`](crate::SimDisk) after a scripted crash.
///
/// # Errors
/// Any [`WalError`] the log violates; nothing is applied on error.
pub fn recover_with_storage(
    storage: &StorageHandle,
    dir: &Path,
    engine: &mut ShardedEngine,
    mut on_reply: impl FnMut(&Command, &Reply),
) -> Result<RecoveryReport, WalError> {
    let log = load_log(storage, dir)?;

    // Checkpointed sessions come back first — they are the state every
    // tail command assumes. Restore and cross-check *all* of them before
    // adopting any, preserving the nothing-applied-on-error contract.
    let seed = engine.config().seed;
    let mut restored = Vec::with_capacity(log.snapshots.len());
    let mut ids = std::collections::HashSet::new();
    for blob in &log.snapshots {
        let session = StreamSession::restore(blob, seed)
            .map_err(|e| WalError::Snapshot { reason: e.to_string() })?;
        if engine.contains(session.id()) || !ids.insert(session.id()) {
            return Err(WalError::Snapshot {
                reason: format!("manifest restores session {:#018x} twice", session.id()),
            });
        }
        restored.push(session);
    }
    for session in restored {
        engine.adopt_session(session).map_err(|e| WalError::Snapshot { reason: e.to_string() })?;
    }

    let mut failed = 0u64;
    for cmd in &log.commands {
        let reply = engine.apply(cmd);
        if matches!(reply, Reply::Err(_)) {
            failed += 1;
        }
        on_reply(cmd, &reply);
    }
    Ok(log.report(failed))
}

/// Delete every segment file under `dir` — log retention after a clean
/// shutdown, once the final state has been released or snapshotted
/// elsewhere. Returns the number of files removed; a missing directory
/// removes zero. Non-segment files are left alone.
///
/// # Errors
/// [`WalError::Io`] if listing or removal fails.
pub fn purge(dir: impl AsRef<Path>) -> Result<usize, WalError> {
    purge_with_storage(&StorageHandle::os(), dir.as_ref())
}

/// [`purge`] against an explicit storage backend.
///
/// # Errors
/// [`WalError::Io`] if listing or removal fails.
pub fn purge_with_storage(storage: &StorageHandle, dir: &Path) -> Result<usize, WalError> {
    if !storage.exists(dir) {
        return Ok(0);
    }
    let mut removed = 0usize;
    for path in storage.read_dir(dir).map_err(|e| io_err(dir, &e))? {
        let is_segment = path.extension().and_then(|e| e.to_str()) == Some("wal")
            && path.file_name().and_then(|n| n.to_str()).and_then(parse_segment_name).is_some();
        if is_segment {
            storage.remove_file(&path).map_err(|e| io_err(&path, &e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The appending side of one shard's log.
///
/// Owned by the shard's worker thread in a WAL-enabled engine; also
/// usable standalone (tests, tooling). Each writer starts a **new**
/// segment — it never appends into an existing file, so a previous
/// process's torn tail stays exactly where recovery expects it — and
/// stamps its segments with a fresh epoch.
///
/// A failed append **poisons** the writer: every later append fails
/// fast with [`WalError::Poisoned`] instead of burying the partial
/// record under new ones (which would turn a recoverable tail into
/// mid-log corruption).
pub struct WalWriter {
    options: WalOptions,
    shard: u32,
    epoch: u32,
    file: Box<dyn StorageFile>,
    path: PathBuf,
    seg_seq: u32,
    next_record_seq: u32,
    /// Bytes written to the current segment (header included).
    written: u64,
    /// Bytes *physically* accepted by the current segment's file —
    /// trails `written` inside a batch (whose counters advance before
    /// the stretch write) and is the truncation point a failed append
    /// rolls back to before a policy retry.
    file_len: u64,
    /// Record bytes appended over the writer's whole life (headers
    /// excluded) — the tail-size signal auto-checkpointing watches.
    appended_bytes: u64,
    /// Complete records in the current segment.
    records_in_segment: u64,
    appends_since_sync: usize,
    poisoned: bool,
    /// Transient failures ridden out by the failure policy, not yet
    /// drained by [`take_retries`](Self::take_retries).
    retries: u64,
    scratch: Vec<u8>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("shard", &self.shard)
            .field("epoch", &self.epoch)
            .field("segment", &self.path)
            .field("next_record_seq", &self.next_record_seq)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl WalWriter {
    /// Open a writer for `shard`, continuing any existing chain in
    /// `options.dir` (validated first — a writer refuses to extend a
    /// corrupt log) and starting a fresh segment at a fresh epoch. The
    /// directory is created if absent.
    ///
    /// # Errors
    /// Invalid options, any [`WalError`] the existing log violates, or
    /// I/O failures.
    pub fn create(options: &WalOptions, shard: u32) -> Result<Self, WalError> {
        let log = load_log(&options.storage, &options.dir)?;
        let (next_seg_seq, next_record_seq) = log.resume_for(shard);
        let epoch = next_epoch(log.max_epoch)?;
        Self::resume(options, shard, epoch, next_seg_seq, next_record_seq)
    }

    /// Open a writer at an explicit resume point (the chain state a
    /// recovery pass already computed, so `create`'s validation scan is
    /// not repeated).
    pub(crate) fn resume(
        options: &WalOptions,
        shard: u32,
        epoch: u32,
        seg_seq: u32,
        next_record_seq: u32,
    ) -> Result<Self, WalError> {
        options.validate()?;
        options.storage.create_dir_all(&options.dir).map_err(|e| io_err(&options.dir, &e))?;
        let (file, path) = create_segment(options, shard, epoch, seg_seq, next_record_seq)?;
        Ok(WalWriter {
            options: options.clone(),
            shard,
            epoch,
            file,
            path,
            seg_seq,
            next_record_seq,
            written: SEGMENT_HEADER_LEN as u64,
            file_len: SEGMENT_HEADER_LEN as u64,
            appended_bytes: 0,
            records_in_segment: 0,
            appends_since_sync: 0,
            poisoned: false,
            retries: 0,
            scratch: Vec::new(),
        })
    }

    /// Create and header-stamp the segment file for the current
    /// `seg_seq`, replacing `self.file`.
    fn open_segment(&mut self) -> Result<(), WalError> {
        let (file, path) = create_segment(
            &self.options,
            self.shard,
            self.epoch,
            self.seg_seq,
            self.next_record_seq,
        )?;
        self.file = file;
        self.path = path;
        self.written = SEGMENT_HEADER_LEN as u64;
        self.file_len = SEGMENT_HEADER_LEN as u64;
        self.records_in_segment = 0;
        self.appends_since_sync = 0;
        Ok(())
    }

    /// The shard this writer logs for.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The epoch stamped into this writer's segments.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The segment file currently being appended to.
    pub fn current_segment(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next appended record will carry — also
    /// the total number of complete records in the shard's chain.
    pub fn next_record_seq(&self) -> u32 {
        self.next_record_seq
    }

    /// Append one command: encode it as a wire frame, wrap it in a
    /// checksummed record, write it in one piece, and apply the fsync
    /// policy. In a WAL-enabled engine this runs **before** the command
    /// executes.
    ///
    /// # Errors
    /// [`WalError::Poisoned`] after any earlier failed append,
    /// [`WalError::Wire`] for unencodable commands (custom set
    /// factories), or I/O failures (which poison the writer).
    pub fn append(&mut self, cmd: &Command) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned { file: self.path.display().to_string() });
        }
        let frame = wire::encode_command(cmd).map_err(|error| WalError::Wire {
            file: self.path.display().to_string(),
            offset: self.written,
            error,
        })?;
        self.append_frame(&frame)
    }

    /// Append many commands as consecutive records, coalescing the
    /// writes: records are staged in memory and hit the file with one
    /// syscall per segment stretch, rotating exactly where the
    /// one-at-a-time path would. All-or-nothing on encoding — a single
    /// unencodable command leaves the log untouched. An I/O failure
    /// mid-batch poisons the writer (the staged prefix the kernel took
    /// is a recoverable tail) and the **whole batch** must be treated as
    /// not logged, hence not executed.
    ///
    /// Under [`FsyncPolicy::PerRecord`] this degrades to per-record
    /// writes (coalescing would void the policy's guarantee). Under
    /// [`FsyncPolicy::Interval`] the durability check runs once at batch
    /// end, so the sync lag can transiently exceed `every` within a
    /// batch — never across batches.
    ///
    /// # Errors
    /// As [`append`](Self::append).
    pub fn append_batch(&mut self, cmds: &[Command]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned { file: self.path.display().to_string() });
        }
        if self.options.fsync == FsyncPolicy::PerRecord {
            // Per-record durability forbids coalescing. Encode every
            // frame first so the all-or-nothing contract still holds.
            let mut frames = Vec::with_capacity(cmds.len());
            for cmd in cmds {
                frames.push(wire::encode_command(cmd).map_err(|error| WalError::Wire {
                    file: self.path.display().to_string(),
                    offset: self.written,
                    error,
                })?);
            }
            for frame in &frames {
                self.append_frame(frame)?;
            }
            return Ok(());
        }

        // Pass 1 — pure staging, no I/O: every record is built straight
        // in the reusable staging buffer (frames encoded in place via
        // `encode_command_into`, headers backfilled). Any failure here
        // leaves both the log and the writer untouched.
        if u32::try_from(cmds.len())
            .ok()
            .and_then(|n| self.next_record_seq.checked_add(n))
            .is_none()
        {
            return Err(WalError::Io {
                file: self.path.display().to_string(),
                reason: "record sequence overflow".to_string(),
            });
        }
        let mut pending = std::mem::take(&mut self.scratch);
        pending.clear();
        let mut record_lens: Vec<usize> = Vec::with_capacity(cmds.len());
        for (i, cmd) in cmds.iter().enumerate() {
            let seq = self.next_record_seq + i as u32;
            let rec_start = pending.len();
            pending.resize(rec_start + RECORD_HEADER_LEN, 0);
            if let Err(error) = wire::encode_command_into(&mut pending, cmd) {
                pending.clear();
                self.scratch = pending;
                return Err(WalError::Wire {
                    file: self.path.display().to_string(),
                    offset: self.written,
                    error,
                });
            }
            let frame_len = pending.len() - rec_start - RECORD_HEADER_LEN;
            pending[rec_start..rec_start + 4].copy_from_slice(&(frame_len as u32).to_le_bytes());
            pending[rec_start + 4..rec_start + 8].copy_from_slice(&seq.to_le_bytes());
            let head_crc = crc32(&pending[rec_start..rec_start + 8]);
            pending[rec_start + 8..rec_start + 12].copy_from_slice(&head_crc.to_le_bytes());
            let payload_crc = crc32(&pending[rec_start + RECORD_HEADER_LEN..]);
            pending.extend_from_slice(&payload_crc.to_le_bytes());
            record_lens.push(RECORD_OVERHEAD + frame_len);
        }

        // Pass 2 — emit: one `write` per contiguous segment stretch,
        // rotating exactly where the one-at-a-time path would.
        let mut flushed = 0usize;
        let mut cursor = 0usize;
        for &len in &record_lens {
            let record_len = len as u64;
            if self.records_in_segment > 0 && self.written + record_len > self.options.segment_bytes
            {
                self.write_stretch(&pending[flushed..cursor])?;
                flushed = cursor;
                self.rotate()?;
            }
            cursor += len;
            self.next_record_seq += 1;
            self.written += record_len;
            self.appended_bytes += record_len;
            self.records_in_segment += 1;
            if let FsyncPolicy::Interval { .. } = self.options.fsync {
                self.appends_since_sync += 1;
            }
        }
        self.write_stretch(&pending[flushed..cursor])?;
        self.scratch = pending;
        if let FsyncPolicy::Interval { every } = self.options.fsync {
            if self.appends_since_sync >= every {
                self.sync()?;
            }
        }
        Ok(())
    }

    /// Write one staged stretch to the current segment in one piece,
    /// riding out transient failures per the failure policy. Each
    /// failed attempt first truncates the segment back to its last
    /// known-good length, so a retry can never bury a partial record
    /// mid-log; exhaustion poisons the writer (the truncated — or, if
    /// truncation itself failed, torn — tail stays recoverable).
    fn write_stretch(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        if bytes.is_empty() {
            return Ok(());
        }
        let (attempts, backoff) = self.options.failure_policy.envelope();
        let mut attempt = 0u32;
        loop {
            match self.file.append(bytes) {
                Ok(()) => {
                    self.file_len += bytes.len() as u64;
                    return Ok(());
                }
                Err(e) => {
                    // The backend may have taken a prefix: roll it back
                    // before deciding whether to try again.
                    if let Err(t) = self.file.truncate(self.file_len) {
                        self.poisoned = true;
                        return Err(io_err(&self.path, &t));
                    }
                    if attempt >= attempts {
                        self.poisoned = true;
                        return Err(io_err(&self.path, &e));
                    }
                    attempt += 1;
                    self.retries += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff.saturating_mul(attempt));
                    }
                }
            }
        }
    }

    /// Wrap one pre-encoded wire frame in a record and write it.
    fn append_frame(&mut self, frame: &[u8]) -> Result<(), WalError> {
        let record_len = (RECORD_OVERHEAD + frame.len()) as u64;
        if self.records_in_segment > 0 && self.written + record_len > self.options.segment_bytes {
            self.rotate()?;
        }
        let seq = self.next_record_seq;
        self.next_record_seq = self.next_record_seq.checked_add(1).ok_or_else(|| WalError::Io {
            file: self.path.display().to_string(),
            reason: "record sequence overflow".to_string(),
        })?;

        self.scratch.clear();
        self.scratch.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.scratch.extend_from_slice(&seq.to_le_bytes());
        let head_crc = crc32(&self.scratch[0..8]);
        self.scratch.extend_from_slice(&head_crc.to_le_bytes());
        self.scratch.extend_from_slice(frame);
        let payload_crc = crc32(frame);
        self.scratch.extend_from_slice(&payload_crc.to_le_bytes());

        let record = std::mem::take(&mut self.scratch);
        let outcome = self.write_stretch(&record);
        self.scratch = record;
        if let Err(e) = outcome {
            self.next_record_seq = seq;
            return Err(e);
        }
        self.written += record_len;
        self.appended_bytes += record_len;
        self.records_in_segment += 1;

        match self.options.fsync {
            FsyncPolicy::PerRecord => self.sync()?,
            FsyncPolicy::Interval { every } => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= every {
                    self.sync()?;
                }
            }
            FsyncPolicy::Off => {}
        }
        Ok(())
    }

    /// Force the current segment to stable storage (`fdatasync`)
    /// regardless of policy, riding out transient failures per the
    /// failure policy.
    ///
    /// # Errors
    /// I/O failures outlasting the retry envelope (which poison the
    /// writer).
    pub fn sync(&mut self) -> Result<(), WalError> {
        let (attempts, backoff) = self.options.failure_policy.envelope();
        let mut attempt = 0u32;
        loop {
            match self.file.sync_data() {
                Ok(()) => {
                    self.appends_since_sync = 0;
                    return Ok(());
                }
                Err(e) => {
                    if attempt >= attempts {
                        self.poisoned = true;
                        return Err(io_err(&self.path, &e));
                    }
                    attempt += 1;
                    self.retries += 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff.saturating_mul(attempt));
                    }
                }
            }
        }
    }

    /// Transient append/sync failures the failure policy rode out since
    /// the last call — drained by the engine's workers into
    /// [`WalStats`](crate::ingress::WalStats).
    pub fn take_retries(&mut self) -> u64 {
        std::mem::take(&mut self.retries)
    }

    /// Record bytes appended over the writer's whole life — the
    /// tail-size signal [`CheckpointPolicy`] watches.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Close out the current segment and start the next one.
    fn rotate(&mut self) -> Result<(), WalError> {
        if self.options.fsync != FsyncPolicy::Off {
            self.sync()?;
        }
        self.seg_seq = self.seg_seq.checked_add(1).ok_or_else(|| WalError::Io {
            file: self.path.display().to_string(),
            reason: "segment sequence overflow".to_string(),
        })?;
        if let Err(e) = self.open_segment() {
            self.poisoned = true;
            return Err(e);
        }
        Ok(())
    }

    /// Cut the chain for a checkpoint: rotate to a fresh segment (so
    /// every record logged so far lives in a covered segment and every
    /// future record lives past the cut) and return the resume point
    /// `(epoch, next_seg_seq, next_record_seq)` a manifest should
    /// record. A current segment with no records is already a valid cut,
    /// so no empty segment is stacked on top of it.
    ///
    /// # Errors
    /// [`WalError::Poisoned`] after any earlier failed append, or I/O
    /// failures.
    pub(crate) fn cut(&mut self) -> Result<(u32, u32, u32), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned { file: self.path.display().to_string() });
        }
        if self.records_in_segment > 0 {
            self.rotate()?;
        }
        Ok((self.epoch, self.seg_seq, self.next_record_seq))
    }

    /// Clean shutdown: force everything to stable storage regardless of
    /// policy and consume the writer. (Dropping a writer without
    /// `finish` models a crash — written records survive, the fsync
    /// guarantee reverts to the policy's.)
    ///
    /// # Errors
    /// I/O failures.
    pub fn finish(mut self) -> Result<(), WalError> {
        self.sync()
    }
}

/// Create and header-stamp one segment file, returning the open handle
/// and its path. Used for the writer's first segment and every
/// rotation.
fn create_segment(
    options: &WalOptions,
    shard: u32,
    epoch: u32,
    seg_seq: u32,
    first_record_seq: u32,
) -> Result<(Box<dyn StorageFile>, PathBuf), WalError> {
    let path = options.dir.join(segment_file_name(shard, seg_seq));
    let mut file = options.storage.create_new(&path).map_err(|e| io_err(&path, &e))?;
    let header = SegmentHeader { epoch, shard, seg_seq, first_record_seq };
    file.append(&header.to_bytes()).map_err(|e| io_err(&path, &e))?;
    if options.fsync != FsyncPolicy::Off {
        file.sync_data().map_err(|e| io_err(&path, &e))?;
        // Make the new directory entry itself durable.
        options.storage.sync_dir(&options.dir).map_err(|e| io_err(&options.dir, &e))?;
    }
    Ok((file, path))
}

pub(crate) fn next_epoch(max_epoch: Option<u32>) -> Result<u32, WalError> {
    match max_epoch {
        None => Ok(0),
        Some(e) => e.checked_add(1).ok_or_else(|| WalError::Io {
            file: String::new(),
            reason: "epoch counter overflow".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical check vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn segment_names_round_trip_and_reject_noise() {
        assert_eq!(segment_file_name(3, 17), "shard0003-seg00000017.wal");
        assert_eq!(parse_segment_name("shard0003-seg00000017.wal"), Some((3, 17)));
        for bad in [
            "shard3-seg17.wal",
            "shard0003-seg00000017.log",
            "shard0003_seg00000017.wal",
            "shardAAAA-seg00000017.wal",
            "shard0003-seg00000017x.wal",
            "notes.wal",
        ] {
            assert_eq!(parse_segment_name(bad), None, "{bad} must not parse");
        }
    }

    #[test]
    fn header_bytes_are_self_checking() {
        let h = SegmentHeader { epoch: 2, shard: 1, seg_seq: 5, first_record_seq: 40 };
        let bytes = h.to_bytes();
        assert_eq!(&bytes[0..4], b"PIRL");
        assert_eq!(bytes[4], WAL_VERSION);
        assert_eq!(le_u32(&bytes, 24), crc32(&bytes[0..24]));
    }
}
