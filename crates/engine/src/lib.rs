//! # pir-engine
//!
//! The multi-stream serving layer: everything below this crate speaks
//! *one* stream at a time (the paper's setting), while production traffic
//! is *millions* of concurrent user streams. `pir-engine` closes that gap
//! with three pieces:
//!
//! - [`MechanismSpec`] — a cloneable, declarative description of which
//!   paper mechanism to run (`PrivIncErm` §3, `PrivIncReg1` §4,
//!   `PrivIncReg2` §5, or a baseline) and with what knobs, so callers
//!   spawn any of them uniformly;
//! - [`StreamSession`] — one user stream: a
//!   [`pir_core::IncrementalMechanism`] plus the
//!   [`pir_dp::PrivacyAccountant`] guarding its per-stream `(ε, δ)`
//!   budget;
//! - [`ShardedEngine`] — hash-partitions sessions across shards, drives
//!   the shards on scoped worker threads, and feeds each session's
//!   arrivals through the mechanisms' amortized
//!   [`observe_batch`](pir_core::IncrementalMechanism::observe_batch)
//!   paths.
//!
//! On top of the synchronous engine sit the scale-out pieces:
//!
//! - [`EngineHandle`] ([`ingress`]) — the pipelined frontend: per-shard
//!   bounded queues, non-blocking [`Command`] submission with
//!   [`Ticket`]ed replies, atomic backpressure, and flush/close drain
//!   semantics;
//! - [`SubmitHandle`] ([`ingress`]) — the shareable front door:
//!   `Clone + Send + Sync`, so any number of threads feed one engine
//!   concurrently with no external lock;
//! - [`wire`] — the length-prefixed binary protocol for commands and
//!   replies (documented byte-for-byte in `docs/PROTOCOL.md`);
//! - [`server`] — the connection loop driving a [`SubmitHandle`] from
//!   decoded frames, replies strictly in command order, flow-controlling
//!   on transient backpressure;
//! - [`tcp`] — the thread-per-connection TCP front ([`serve_tcp`]):
//!   accept loop, per-connection threads with cloned submit handles,
//!   connection caps, graceful shutdown.
//!
//! Determinism is a design invariant: a session's noise stream is derived
//! from `(engine seed, session id)` alone, so a fleet's entire release
//! history is reproducible from one number and is unchanged by resharding
//! or thread scheduling. The batched paths are release-for-release
//! identical to sequential observation (the law checked by the
//! `batch_equivalence` test suite), so batching is purely a throughput
//! optimization — never a semantic one.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod engine;
mod error;
pub mod ingress;
pub mod server;
mod session;
pub mod snapshot;
mod spec;
pub mod storage;
mod sync;
pub mod tcp;
pub mod wal;
pub mod wire;

pub use engine::{EngineConfig, ShardedEngine};
pub use error::EngineError;
pub use ingress::{
    Command, EngineHandle, IngressConfig, IngressStats, Reply, SpillOptions, SpillStats,
    SubmitHandle, Ticket, WalStats,
};
pub use server::{serve_connection, ServeStats};
pub use session::StreamSession;
pub use snapshot::SnapshotError;
pub use spec::{LossSpec, MechanismSpec, SetSpec, SolverSpec};
pub use storage::{CrashProfile, OsStorage, SimDisk, Storage, StorageFile, StorageHandle};
pub use tcp::{serve_tcp, serve_tcp_with, TcpFront, TcpOptions, TcpStats};
pub use wal::{
    checkpoint, checkpoint_with_storage, recover, recover_with_storage, CheckpointPolicy,
    CheckpointReport, FsyncPolicy, RecoveryReport, WalError, WalFailurePolicy, WalOptions,
    WalWriter,
};
