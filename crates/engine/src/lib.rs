//! # pir-engine
//!
//! The multi-stream serving layer: everything below this crate speaks
//! *one* stream at a time (the paper's setting), while production traffic
//! is *millions* of concurrent user streams. `pir-engine` closes that gap
//! with three pieces:
//!
//! - [`MechanismSpec`] — a cloneable, declarative description of which
//!   paper mechanism to run (`PrivIncErm` §3, `PrivIncReg1` §4,
//!   `PrivIncReg2` §5, or a baseline) and with what knobs, so callers
//!   spawn any of them uniformly;
//! - [`StreamSession`] — one user stream: a
//!   [`pir_core::IncrementalMechanism`] plus the
//!   [`pir_dp::PrivacyAccountant`] guarding its per-stream `(ε, δ)`
//!   budget;
//! - [`ShardedEngine`] — hash-partitions sessions across shards, drives
//!   the shards on scoped worker threads, and feeds each session's
//!   arrivals through the mechanisms' amortized
//!   [`observe_batch`](pir_core::IncrementalMechanism::observe_batch)
//!   paths.
//!
//! Determinism is a design invariant: a session's noise stream is derived
//! from `(engine seed, session id)` alone, so a fleet's entire release
//! history is reproducible from one number and is unchanged by resharding
//! or thread scheduling. The batched paths are release-for-release
//! identical to sequential observation (the law checked by the
//! `batch_equivalence` test suite), so batching is purely a throughput
//! optimization — never a semantic one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod session;
mod spec;

pub use engine::{EngineConfig, ShardedEngine};
pub use error::EngineError;
pub use session::StreamSession;
pub use spec::{LossSpec, MechanismSpec, SetSpec, SolverSpec};
