//! Declarative mechanism specifications.
//!
//! A [`MechanismSpec`] is a cheap, cloneable description of *which* paper
//! mechanism to run and with what knobs; the engine materializes one fresh
//! mechanism per session from it ([`MechanismSpec::build`]). This is what
//! lets a single spec drive thousands of independent user streams: every
//! session gets its own constraint set, its own forked noise stream, and
//! its own privacy budget.

use crate::error::EngineError;
use pir_core::{
    ExactIncremental, IncrementalMechanism, PrivIncErm, PrivIncReg1, PrivIncReg1Config,
    PrivIncReg2, PrivIncReg2Config, TauRule, TrivialMechanism,
};
use pir_dp::{NoiseRng, PrivacyParams};
use pir_erm::{
    LogisticLoss, Loss, NoisyGdSolver, OutputPerturbationSolver, PrivateBatchSolver,
    PrivateFrankWolfeSolver, Regularized, SquaredLoss,
};
use pir_geometry::{ConvexSet, L1Ball, L2Ball, LinfBall, Simplex};
use std::sync::Arc;

/// Description of a constraint set `C`, materialized per session.
#[derive(Clone)]
pub enum SetSpec {
    /// Euclidean ball `B₂^d(radius)`.
    L2Ball {
        /// Ambient dimension.
        dim: usize,
        /// Ball radius.
        radius: f64,
    },
    /// Cross-polytope `B₁^d(radius)` (the Lasso constraint).
    L1Ball {
        /// Ambient dimension.
        dim: usize,
        /// Ball radius.
        radius: f64,
    },
    /// Hypercube `B∞^d(radius)`.
    LinfBall {
        /// Ambient dimension.
        dim: usize,
        /// Ball radius.
        radius: f64,
    },
    /// Probability simplex scaled by `scale`.
    Simplex {
        /// Ambient dimension.
        dim: usize,
        /// Simplex scale (1 = the probability simplex).
        scale: f64,
    },
    /// Arbitrary user-provided factory (e.g. polytope hulls, group-lasso
    /// balls). Must produce a fresh set per call.
    Custom(Arc<dyn Fn() -> Box<dyn ConvexSet> + Send + Sync>),
}

impl std::fmt::Debug for SetSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetSpec::L2Ball { dim, radius } => write!(f, "L2Ball(d={dim}, r={radius})"),
            SetSpec::L1Ball { dim, radius } => write!(f, "L1Ball(d={dim}, r={radius})"),
            SetSpec::LinfBall { dim, radius } => write!(f, "LinfBall(d={dim}, r={radius})"),
            SetSpec::Simplex { dim, scale } => write!(f, "Simplex(d={dim}, s={scale})"),
            SetSpec::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl SetSpec {
    /// Unit Euclidean ball in dimension `dim`.
    pub fn unit_l2(dim: usize) -> Self {
        SetSpec::L2Ball { dim, radius: 1.0 }
    }

    /// Unit cross-polytope in dimension `dim`.
    pub fn unit_l1(dim: usize) -> Self {
        SetSpec::L1Ball { dim, radius: 1.0 }
    }

    /// Materialize a fresh constraint set.
    pub fn build(&self) -> Box<dyn ConvexSet> {
        match self {
            SetSpec::L2Ball { dim, radius } => Box::new(L2Ball::new(*dim, *radius)),
            SetSpec::L1Ball { dim, radius } => Box::new(L1Ball::new(*dim, *radius)),
            SetSpec::LinfBall { dim, radius } => Box::new(LinfBall::new(*dim, *radius)),
            SetSpec::Simplex { dim, scale } => Box::new(Simplex::new(*dim, *scale)),
            SetSpec::Custom(factory) => factory(),
        }
    }

    /// Ambient dimension of the sets this spec produces.
    pub fn dim(&self) -> usize {
        match self {
            SetSpec::L2Ball { dim, .. }
            | SetSpec::L1Ball { dim, .. }
            | SetSpec::LinfBall { dim, .. }
            | SetSpec::Simplex { dim, .. } => *dim,
            SetSpec::Custom(factory) => factory().dim(),
        }
    }
}

/// Loss function for the generic ERM mechanism.
#[derive(Debug, Clone, Copy)]
pub enum LossSpec {
    /// Squared loss `(⟨θ, x⟩ − y)²`.
    Squared,
    /// Logistic loss.
    Logistic,
    /// `λ/2·‖θ‖²`-regularized squared loss (strongly convex).
    RegularizedSquared {
        /// Regularization strength `λ`.
        lambda: f64,
    },
}

impl LossSpec {
    /// Materialize the loss.
    pub fn build(&self) -> Box<dyn Loss> {
        match self {
            LossSpec::Squared => Box::new(SquaredLoss),
            LossSpec::Logistic => Box::new(LogisticLoss),
            LossSpec::RegularizedSquared { lambda } => {
                Box::new(Regularized::new(SquaredLoss, *lambda))
            }
        }
    }
}

/// Private batch solver for the generic ERM mechanism.
#[derive(Debug, Clone, Copy)]
pub enum SolverSpec {
    /// `NOISYPROJGRAD`-style noisy gradient descent (Theorem 3.1(1)).
    NoisyGd {
        /// Full-gradient iterations per invocation.
        iters: usize,
        /// Confidence split for the noise-to-`α` conversion.
        beta: f64,
    },
    /// Output perturbation for strongly convex losses (Theorem 3.1(2)).
    OutputPerturbation {
        /// Iterations of the inner exact solve.
        exact_iters: usize,
    },
    /// Private Frank–Wolfe for low-width sets (Theorem 3.1(3)).
    FrankWolfe {
        /// Frank–Wolfe iterations per invocation.
        iters: usize,
    },
}

impl Default for SolverSpec {
    fn default() -> Self {
        let NoisyGdSolver { iters, beta } = NoisyGdSolver::default();
        SolverSpec::NoisyGd { iters, beta }
    }
}

impl SolverSpec {
    /// Materialize the solver.
    pub fn build(&self) -> Box<dyn PrivateBatchSolver> {
        match self {
            SolverSpec::NoisyGd { iters, beta } => {
                Box::new(NoisyGdSolver { iters: *iters, beta: *beta })
            }
            SolverSpec::OutputPerturbation { exact_iters } => {
                Box::new(OutputPerturbationSolver { exact_iters: *exact_iters })
            }
            SolverSpec::FrankWolfe { iters } => Box::new(PrivateFrankWolfeSolver { iters: *iters }),
        }
    }
}

/// Which paper mechanism a session runs, with all tuning knobs — the one
/// uniform handle callers use to spawn any of the three mechanisms (or
/// the baselines) inside the engine.
#[derive(Debug, Clone)]
pub enum MechanismSpec {
    /// `PRIVINCERM` — the generic batch-to-incremental transformation
    /// (§3, Mechanism 1).
    Erm {
        /// Constraint set `C`.
        set: SetSpec,
        /// Loss function.
        loss: LossSpec,
        /// Private batch solver invoked every `τ` steps.
        solver: SolverSpec,
        /// Recomputation-interval rule.
        tau: TauRule,
    },
    /// `PRIVINCREG1` — tree-mechanism regression (§4, Algorithm 2).
    Reg1 {
        /// Constraint set `C`.
        set: SetSpec,
        /// Mechanism knobs.
        config: PrivIncReg1Config,
    },
    /// `PRIVINCREG2` — sketched regression (§5, Algorithm 3).
    Reg2 {
        /// Constraint set `C`.
        set: SetSpec,
        /// Bound on the Gaussian width `w(X)` of the covariate domain.
        domain_width: f64,
        /// Mechanism knobs.
        config: PrivIncReg2Config,
    },
    /// The data-independent baseline (always releases `P_C(0)`).
    Trivial {
        /// Constraint set `C`.
        set: SetSpec,
    },
    /// The exact (⚠ **non-private**) incremental least-squares oracle —
    /// the Definition-1 reference trajectory, for evaluation only.
    ExactOracle {
        /// Constraint set `C`.
        set: SetSpec,
    },
}

impl MechanismSpec {
    /// `PRIVINCREG1` over the unit Euclidean ball with default knobs.
    pub fn reg1_l2(dim: usize) -> Self {
        MechanismSpec::Reg1 { set: SetSpec::unit_l2(dim), config: PrivIncReg1Config::default() }
    }

    /// `PRIVINCREG2` over the unit `ℓ₁` ball (the sparse-regression
    /// setting of §5) with default knobs.
    pub fn reg2_l1(dim: usize, domain_width: f64) -> Self {
        MechanismSpec::Reg2 {
            set: SetSpec::unit_l1(dim),
            domain_width,
            config: PrivIncReg2Config::default(),
        }
    }

    /// `PRIVINCERM` with squared loss and the noisy-GD solver over the
    /// unit Euclidean ball.
    pub fn erm_squared(dim: usize, tau: TauRule) -> Self {
        MechanismSpec::Erm {
            set: SetSpec::unit_l2(dim),
            loss: LossSpec::Squared,
            solver: SolverSpec::default(),
            tau,
        }
    }

    /// Ambient dimension of the mechanisms this spec produces.
    pub fn dim(&self) -> usize {
        match self {
            MechanismSpec::Erm { set, .. }
            | MechanismSpec::Reg1 { set, .. }
            | MechanismSpec::Reg2 { set, .. }
            | MechanismSpec::Trivial { set }
            | MechanismSpec::ExactOracle { set } => set.dim(),
        }
    }

    /// Whether the spec round-trips through the wire and snapshot codecs
    /// — everything except specs carrying a [`SetSpec::Custom`] factory
    /// closure, which has no serializable form.
    pub(crate) fn is_codable(&self) -> bool {
        let set = match self {
            MechanismSpec::Erm { set, .. }
            | MechanismSpec::Reg1 { set, .. }
            | MechanismSpec::Reg2 { set, .. }
            | MechanismSpec::Trivial { set }
            | MechanismSpec::ExactOracle { set } => set,
        };
        !matches!(set, SetSpec::Custom(_))
    }

    /// Short label for logs and reports.
    pub fn label(&self) -> &'static str {
        match self {
            MechanismSpec::Erm { .. } => "priv-inc-erm",
            MechanismSpec::Reg1 { .. } => "priv-inc-reg-1",
            MechanismSpec::Reg2 { .. } => "priv-inc-reg-2",
            MechanismSpec::Trivial { .. } => "trivial",
            MechanismSpec::ExactOracle { .. } => "exact-oracle",
        }
    }

    /// Whether the produced mechanism consumes privacy budget (`false`
    /// only for the evaluation-only baselines).
    pub fn is_private(&self) -> bool {
        !matches!(self, MechanismSpec::ExactOracle { .. })
    }

    /// Materialize a fresh mechanism for a stream of length up to `t_max`
    /// under the budget `params`. Noise flows through `rng` (fork it per
    /// session for decorrelated, reproducible streams).
    ///
    /// # Errors
    /// [`EngineError::Mechanism`] when the underlying constructor rejects
    /// the configuration (invalid privacy parameters, bad `γ`/`m`
    /// overrides, zero horizon, …).
    pub fn build(
        &self,
        t_max: usize,
        params: &PrivacyParams,
        rng: &mut NoiseRng,
    ) -> Result<Box<dyn IncrementalMechanism>, EngineError> {
        Ok(match self {
            MechanismSpec::Erm { set, loss, solver, tau } => Box::new(PrivIncErm::new(
                loss.build(),
                solver.build(),
                set.build(),
                t_max,
                params,
                *tau,
                rng.fork(),
            )?),
            MechanismSpec::Reg1 { set, config } => {
                Box::new(PrivIncReg1::new(set.build(), t_max, params, rng, *config)?)
            }
            MechanismSpec::Reg2 { set, domain_width, config } => {
                Box::new(PrivIncReg2::new(set.build(), *domain_width, t_max, params, rng, *config)?)
            }
            MechanismSpec::Trivial { set } => Box::new(TrivialMechanism::new(set.build().as_ref())),
            MechanismSpec::ExactOracle { set } => Box::new(ExactIncremental::new(set.build())),
        })
    }
}
