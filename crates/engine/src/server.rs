//! The `pir-engine` server loop: decoded frames in, reply frames out.
//!
//! [`serve_connection`] drives a [`SubmitHandle`] from any
//! [`Read`]/[`Write`] pair — a TCP stream (see
//! [`serve_tcp`](crate::serve_tcp) for the thread-per-connection
//! listener built on this loop), a Unix socket, an in-memory buffer in
//! tests. The loop is **pipelined and full-duplex**: the calling thread
//! decodes and submits commands without waiting for their compute, while
//! a scoped writer thread streams the replies back strictly in command
//! order as they resolve. A client may therefore keep many commands in
//! flight over one connection — or send one command and block on its
//! answer — and still match the `n`-th reply to the `n`-th command.
//!
//! Backpressure is **flow control, not failure**: when a shard queue is
//! transiently full ([`Backpressure`](crate::EngineError::Backpressure)),
//! the loop stops reading frames until space frees — the pushback
//! reaches a TCP client as a stalled socket, never as a spurious error
//! reply. The reply backlog is likewise bounded, so a client that writes
//! without reading is eventually stalled rather than buffered without
//! limit. *Permanent* rejections
//! ([`CommandTooLarge`](crate::EngineError::CommandTooLarge), which no
//! retry can clear) become in-order [`Reply::Err`] frames. The flip side
//! of in-order replies plus flow control: a client that pipelines
//! deeply must read replies concurrently with its writes (or cap its
//! in-flight points) — see the pipelining note in `docs/PROTOCOL.md`.
//!
//! Engine-level failures (unknown session, too-large command, budget)
//! travel as [`Reply::Err`] frames and the connection keeps going; only
//! *protocol* violations (bad magic, truncated frame, unknown opcode)
//! abort the connection with a [`WireError`], since after one of those
//! the byte stream can no longer be trusted.

use crate::ingress::{Command, Reply, SubmitHandle, Ticket};
use crate::wire::{read_command, write_reply, WireError};
use std::io::{Read, Write};
use std::sync::mpsc::{self, TryRecvError};

/// Cap on replies resolved-or-in-flight between the reader and writer
/// sides of one connection. When a client writes commands without
/// reading replies, the backlog fills and the server stops reading the
/// socket — bounding per-connection memory at roughly this many replies
/// plus the shard queues' own caps.
///
/// Part of the client contract: a client that does not read replies
/// concurrently with its writes must cap what it keeps in flight at
/// `min(queue_depth points, REPLY_BACKLOG replies)` — the reply backlog
/// binds even when `queue_depth` is provisioned larger (see the
/// pipelining note in `docs/PROTOCOL.md`).
pub const REPLY_BACKLOG: usize = 1024;

/// Tallies for one served connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Command frames decoded.
    pub commands: usize,
    /// Reply frames written (one per command).
    pub replies: usize,
}

/// A reply slot: either still in flight or already known.
enum Pending {
    Ticket(Ticket),
    Now(Reply),
}

impl Pending {
    fn resolve(self) -> Reply {
        match self {
            Pending::Ticket(t) => t.wait(),
            Pending::Now(r) => r,
        }
    }
}

/// Serve one connection until [`Command::Close`] or clean EOF.
///
/// On `Close`, every reply this connection is still owed is drained and
/// written in order, the final [`Reply::Closed`] frame goes out last, and
/// the loop returns — a barrier over **this connection's** in-flight
/// commands only. Other connections' queued compute is never waited on:
/// one tenant's goodbye cannot stall another tenant's stream. On EOF,
/// outstanding replies are likewise drained and written before returning
/// (so short-lived clients lose nothing). The engine itself stays up
/// either way — sessions outlive connections.
///
/// Call it with `&EngineHandle` (which derefs to its [`SubmitHandle`])
/// for single-connection embedding, or with a cloned handle from
/// [`EngineHandle::submit_handle`](crate::EngineHandle::submit_handle)
/// when each connection gets its own thread. The loop occupies the
/// calling thread and one scoped writer thread until the connection
/// ends.
///
/// # Errors
/// A [`WireError`] for protocol violations on either direction (replies
/// already owed are still flushed first); the engine's own errors are
/// *replies*, not `Err` returns.
pub fn serve_connection<R: Read, W: Write + Send>(
    handle: &SubmitHandle,
    reader: &mut R,
    writer: &mut W,
) -> Result<ServeStats, WireError> {
    match serve_connection_counted(handle, reader, writer) {
        (_, Some(e)) => Err(e),
        (stats, None) => Ok(stats),
    }
}

/// [`serve_connection`], but the tallies survive an error: frames served
/// before a protocol violation (or a severed socket) still count. The
/// TCP front aggregates through this so `TcpStats` reconciles against
/// client-side counts even for connections that ended badly.
pub(crate) fn serve_connection_counted<R: Read, W: Write + Send>(
    handle: &SubmitHandle,
    reader: &mut R,
    writer: &mut W,
) -> (ServeStats, Option<WireError>) {
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::sync_channel::<Pending>(REPLY_BACKLOG);
        let writer_thread = s.spawn(move || -> (usize, Option<WireError>) {
            let mut replies = 0usize;
            loop {
                // Batch while busy, flush before idling: bytes never sit
                // in a buffered writer while the connection waits.
                let slot = match rx.try_recv() {
                    Ok(slot) => slot,
                    Err(TryRecvError::Empty) => {
                        if let Err(e) = writer.flush() {
                            return (replies, Some(e.into()));
                        }
                        match rx.recv() {
                            Ok(slot) => slot,
                            Err(_) => break,
                        }
                    }
                    Err(TryRecvError::Disconnected) => break,
                };
                if let Err(e) = write_reply(writer, &slot.resolve()) {
                    return (replies, Some(e));
                }
                replies += 1;
            }
            match writer.flush() {
                Err(e) => (replies, Some(e.into())),
                Ok(()) => (replies, None),
            }
        });

        let mut commands = 0usize;
        let mut read_error = None;
        loop {
            let cmd = match read_command(reader) {
                Ok(Some(cmd)) => cmd,
                Ok(None) => break, // clean EOF between frames
                Err(e) => {
                    read_error = Some(e);
                    break;
                }
            };
            commands += 1;
            let closing = matches!(cmd, Command::Close);
            // Submit without waiting on compute. Transient backpressure
            // is waited out (the writer thread keeps replies flowing in
            // the meantime); permanent rejections become in-order error
            // replies rather than a torn connection.
            let slot = match handle.submit_blocking(cmd) {
                Ok(ticket) => Pending::Ticket(ticket),
                Err(e) => Pending::Now(Reply::Err(e)),
            };
            if tx.send(slot).is_err() {
                break; // writer side failed; its error is joined below
            }
            if closing {
                break;
            }
        }

        // Hang up the reply channel: the writer drains everything still
        // in flight, in order (after a Close the resolved Closed slot is
        // last, so the CLOSED frame goes out only after every earlier
        // reply — the connection-scoped barrier the client observes).
        drop(tx);
        let (replies, write_error) = writer_thread.join().unwrap_or_else(|_| {
            // A panicked writer tore the connection; report it as a
            // write-side failure instead of propagating the panic into
            // the accept loop.
            (0, Some(WireError::Malformed("reply writer thread panicked".to_string())))
        });
        // A protocol violation on the read side outranks write-side
        // trouble: after it the inbound stream is untrusted.
        (ServeStats { commands, replies }, read_error.or(write_error))
    })
}
