//! The `pir-engine` server loop: decoded frames in, reply frames out.
//!
//! [`serve_connection`] drives an [`EngineHandle`] from any
//! [`Read`]/[`Write`] pair — a TCP stream, a Unix socket, an in-memory
//! buffer in tests. The loop is **pipelined**: each decoded command is
//! submitted to the handle immediately (without waiting for its compute)
//! and replies are written back strictly in command order as they
//! resolve, so a client can keep many commands in flight over one
//! connection while still matching the `n`-th reply to the `n`-th
//! command.
//!
//! Engine-level failures (unknown session, backpressure, budget) travel
//! as [`Reply::Err`] frames and the connection keeps going; only
//! *protocol* violations (bad magic, truncated frame, unknown opcode)
//! abort the connection with a [`WireError`], since after one of those
//! the byte stream can no longer be trusted.

use crate::ingress::{Command, EngineHandle, Reply, Ticket};
use crate::wire::{read_command, write_reply, WireError};
use std::collections::VecDeque;
use std::io::{Read, Write};

/// Tallies for one served connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Command frames decoded.
    pub commands: usize,
    /// Reply frames written (one per command).
    pub replies: usize,
}

/// A reply slot: either still in flight or already known.
enum Pending {
    Ticket(Ticket),
    Now(Reply),
}

impl Pending {
    fn try_resolve(&self) -> Option<Reply> {
        match self {
            Pending::Ticket(t) => t.try_wait(),
            Pending::Now(r) => Some(r.clone()),
        }
    }

    fn resolve(self) -> Reply {
        match self {
            Pending::Ticket(t) => t.wait(),
            Pending::Now(r) => r,
        }
    }
}

/// Serve one connection until [`Command::Close`] or clean EOF.
///
/// On `Close`, every outstanding reply is drained, the handle's queues
/// are flushed, the final [`Reply::Closed`] is written, and the loop
/// returns. On EOF, outstanding replies are drained and written before
/// returning (so short-lived clients lose nothing). The engine itself
/// stays up either way — sessions outlive connections.
///
/// # Errors
/// A [`WireError`] for protocol violations on either direction; the
/// engine's own errors are *replies*, not `Err` returns.
pub fn serve_connection<R: Read, W: Write>(
    handle: &EngineHandle,
    reader: &mut R,
    writer: &mut W,
) -> Result<ServeStats, WireError> {
    let mut stats = ServeStats::default();
    let mut pending: VecDeque<Pending> = VecDeque::new();

    while let Some(cmd) = read_command(reader)? {
        stats.commands += 1;
        let closing = matches!(cmd, Command::Close);
        // Submit without waiting; a rejected submit becomes an in-order
        // error reply rather than a torn connection.
        let slot = match handle.submit(cmd) {
            Ok(ticket) => Pending::Ticket(ticket),
            Err(e) => Pending::Now(Reply::Err(e)),
        };
        pending.push_back(slot);
        if closing {
            break;
        }
        // Opportunistically drain replies that have already resolved,
        // preserving command order.
        while let Some(front) = pending.front() {
            match front.try_resolve() {
                Some(reply) => {
                    pending.pop_front();
                    write_reply(writer, &reply)?;
                    stats.replies += 1;
                }
                None => break,
            }
        }
    }

    // Drain everything still in flight, in order.
    for slot in pending {
        let reply = slot.resolve();
        write_reply(writer, &reply)?;
        stats.replies += 1;
    }
    writer.flush()?;
    Ok(stats)
}
