//! Pluggable storage backend for the durability layer.
//!
//! Everything the WAL, checkpoint, and spill code does to a disk goes
//! through the [`Storage`] trait: create/append/read/rename/remove,
//! plus the three flavors of durability barrier (`sync_data`,
//! `sync_all`, directory sync). Two implementations ship:
//!
//! - [`OsStorage`] — a thin passthrough to `std::fs`, the default
//!   everywhere. Zero behavior change relative to calling `std::fs`
//!   directly; the indirection costs one vtable hop per operation,
//!   which is noise next to the syscall it wraps.
//! - [`SimDisk`] — a deterministic in-memory disk for the
//!   crash-consistency rig. It models the *buffered vs durable*
//!   distinction a real kernel + platter pair has: written bytes are
//!   visible to readers immediately but only survive [`SimDisk::crash`]
//!   if a sync barrier covered them. Crash semantics are scripted by a
//!   [`CrashProfile`] and a seed, so every torn/reordered/dropped-write
//!   outcome is reproducible bit-for-bit. Typed transient or permanent
//!   I/O faults can be injected at any operation index
//!   ([`SimDisk::fail_op`], [`SimDisk::fail_from`]).
//!
//! The in-tree lint rule R6 (`pir-lint`) forbids direct `std::fs` /
//! `File::` calls in `wal.rs`, `snapshot.rs`, and `ingress.rs` — this
//! module is the only sanctioned doorway, so the fault rig sees every
//! operation the durability stack performs.
//!
//! # Durability model (what `SimDisk` promises)
//!
//! - A byte written through [`StorageFile::append`] is *buffered*:
//!   reads see it, a crash may drop, tear, or scramble it.
//! - [`StorageFile::sync_data`] / [`StorageFile::sync_all`] make the
//!   file's current bytes durable.
//! - Creating, renaming, or removing a file updates the live directory
//!   immediately, but the *entry* only survives a crash once the
//!   containing directory has been synced ([`Storage::sync_dir`]) —
//!   exactly the POSIX discipline the WAL's tmp+fsync+rename dance is
//!   built around. Removed/renamed-away entries may be resurrected by
//!   a crash until the directory sync lands.
//! - Directories themselves are durable once created (losing the WAL
//!   directory wholesale is indistinguishable from a pre-start disk).

use crate::sync::lock_or_recover;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io::{self, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open, append-only file handle obtained from a [`Storage`].
///
/// The durability layer only ever appends to open files (segment
/// records, manifest bodies) and truncates back to a known-good length
/// when undoing a failed append — random-access writes are deliberately
/// not in the vocabulary.
pub trait StorageFile: Send {
    /// Append `buf` at the end of the file.
    ///
    /// # Errors
    /// Backend I/O failure; on error the on-disk suffix is unspecified
    /// (a real `write` may land a prefix), which is why callers undo
    /// with [`truncate`](Self::truncate) before retrying.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Make the file's data durable (`fdatasync`).
    ///
    /// # Errors
    /// Backend I/O failure; durability of recent appends is then unknown.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Make the file's data and metadata durable (`fsync`).
    ///
    /// # Errors
    /// Backend I/O failure; durability of recent appends is then unknown.
    fn sync_all(&mut self) -> io::Result<()>;

    /// Cut the file back to `len` bytes — the undo step for a failed
    /// append before a retry.
    ///
    /// # Errors
    /// Backend I/O failure; the file length is then unspecified.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// Every filesystem operation the durability layer performs.
///
/// Object-safe so a backend travels as one [`StorageHandle`] through
/// [`WalOptions`](crate::WalOptions) and
/// [`SpillOptions`](crate::SpillOptions). Method names deliberately
/// mirror `std::fs` so call sites read the same as before the trait
/// existed (and so the R3 fsync-before-rename lint keeps seeing its
/// token patterns).
pub trait Storage: Send + Sync {
    /// Short backend name for diagnostics (`"os"`, `"simdisk"`).
    fn name(&self) -> &'static str;

    /// Create a new file for appending; fails if the path exists.
    ///
    /// # Errors
    /// `AlreadyExists` when the path is taken, plus backend I/O failures.
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Create (or truncate) a file for appending.
    ///
    /// # Errors
    /// Backend I/O failure.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;

    /// Read a whole file.
    ///
    /// # Errors
    /// `NotFound` or backend I/O failure.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Write a whole file in one shot (create or truncate). No
    /// durability barrier is implied — callers that need one follow up
    /// with a handle sync or use it only for rebuildable scratch (the
    /// spill tier).
    ///
    /// # Errors
    /// Backend I/O failure.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` to `to` (replacing `to` if present).
    ///
    /// # Errors
    /// `NotFound` or backend I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file.
    ///
    /// # Errors
    /// `NotFound` or backend I/O failure.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// The files directly inside `dir`, sorted by path for
    /// deterministic iteration. Subdirectories are not listed.
    ///
    /// # Errors
    /// `NotFound` when `dir` does not exist, plus backend I/O failures.
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Create `dir` and any missing ancestors.
    ///
    /// # Errors
    /// Backend I/O failure.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Make `dir`'s entries durable — the barrier that commits
    /// creations, renames, and removals inside it.
    ///
    /// # Errors
    /// Backend I/O failure; entry durability is then unknown.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;
}

/// A cloneable, comparable handle to a [`Storage`] backend.
///
/// Lives inside [`WalOptions`](crate::WalOptions) and
/// [`SpillOptions`](crate::SpillOptions); the default is [`OsStorage`].
/// Equality is identity (two handles are equal when they point at the
/// *same* backend instance), which is what options comparison wants —
/// two engines sharing one `SimDisk` have equal storage, two separate
/// `SimDisk`s never do.
#[derive(Clone)]
pub struct StorageHandle(Arc<dyn Storage>);

impl StorageHandle {
    /// A handle to the real filesystem ([`OsStorage`]) — the default.
    pub fn os() -> Self {
        StorageHandle(Arc::new(OsStorage))
    }

    /// Wrap any backend.
    pub fn new(storage: Arc<dyn Storage>) -> Self {
        StorageHandle(storage)
    }
}

impl std::ops::Deref for StorageHandle {
    type Target = dyn Storage;
    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl Default for StorageHandle {
    fn default() -> Self {
        StorageHandle::os()
    }
}

impl fmt::Debug for StorageHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StorageHandle({})", self.0.name())
    }
}

impl PartialEq for StorageHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl From<SimDisk> for StorageHandle {
    fn from(disk: SimDisk) -> Self {
        StorageHandle(Arc::new(disk))
    }
}

// ---------------------------------------------------------------------------
// OsStorage — the std::fs passthrough
// ---------------------------------------------------------------------------

/// The real filesystem: every call forwards to `std::fs` unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct OsStorage;

/// [`std::fs::File`] behind the [`StorageFile`] vocabulary.
struct OsFile(fs::File);

impl StorageFile for OsFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)?;
        // The handle is cursor-positioned, not O_APPEND: without the
        // seek a later `append` would leave a zero-filled gap.
        self.0.seek(SeekFrom::Start(len))?;
        Ok(())
    }
}

impl Storage for OsStorage {
    fn name(&self) -> &'static str {
        "os"
    }
    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let f = fs::File::options().write(true).create_new(true).open(path)?;
        Ok(Box::new(OsFile(f)))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(OsFile(fs::File::create(path)?)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_file() {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        fs::File::open(dir)?.sync_all()
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ---------------------------------------------------------------------------
// SimDisk — the deterministic fault rig
// ---------------------------------------------------------------------------

/// Page granularity of simulated torn/reordered writes, mirroring a
/// small disk sector.
pub const SIM_PAGE: usize = 512;

/// What happens to *unsynced* bytes and *unsynced directory entries*
/// when the power goes out ([`SimDisk::crash`]). Synced state always
/// survives, under every profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashProfile {
    /// Strict revert to the durable image: unsynced bytes vanish,
    /// unsynced creations vanish, unsynced removals/renames are
    /// resurrected. The pessimal-but-clean power cut; recovery must
    /// reproduce exactly the durable prefix.
    #[default]
    DropUnsynced,
    /// Everything buffered survives — kill-crash semantics (the kernel
    /// kept the pages). Recovery must reproduce the full history.
    KeepAll,
    /// Unsynced appended bytes survive up to a seeded cut; the torn
    /// page at the cut may be partially filled with garbage, as a
    /// half-written sector would be. Unsynced entries survive or vanish
    /// by seeded coin.
    TornTail,
    /// Unsynced appended pages survive as a seeded *subset* — later
    /// pages may land while earlier ones are lost (write reordering in
    /// the device queue), the lost ones reading back as zeros.
    ScramblePages,
}

/// One scripted fault: operations with index in `start..end` fail with
/// an [`io::Error`] of `kind`.
#[derive(Debug, Clone, Copy)]
struct Fault {
    start: u64,
    end: u64,
    kind: io::ErrorKind,
}

/// One simulated file: live (buffered) content plus the durable image
/// a crash falls back to.
#[derive(Debug, Clone, Default)]
struct FileNode {
    /// What readers see now.
    data: Vec<u8>,
    /// Content guaranteed to survive a crash — set by file syncs (and,
    /// for a create over an existing durable file, inherited from it
    /// until the first sync).
    durable_data: Vec<u8>,
    /// Whether the directory entry pointing at this node survives a
    /// crash (set by [`Storage::sync_dir`] on the parent).
    entry_durable: bool,
}

/// Interior state behind the `SimDisk` handle.
#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<PathBuf, FileNode>,
    /// Durable entries whose live-view removal/rename-away has not been
    /// committed by a directory sync: a crash may resurrect them with
    /// this content.
    ghosts: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
    faults: Vec<Fault>,
    ops: u64,
    rng: u64,
    profile: CrashProfile,
}

/// A deterministic in-memory disk with scripted faults and power-cut
/// semantics. Cloning yields another handle to the *same* disk, so a
/// test can hold one side while an engine's [`StorageHandle`] holds the
/// other.
#[derive(Clone, Debug)]
pub struct SimDisk {
    inner: Arc<Mutex<SimState>>,
}

impl SimDisk {
    /// A fresh empty disk. `seed` drives every random choice a crash
    /// resolution makes; the same seed and operation history produce
    /// the same post-crash disk, byte for byte.
    pub fn new(seed: u64, profile: CrashProfile) -> Self {
        let state = SimState { rng: seed ^ 0x9e37_79b9_7f4a_7c15, profile, ..SimState::default() };
        SimDisk { inner: Arc::new(Mutex::new(state)) }
    }

    /// The handle form most constructors want.
    pub fn handle(&self) -> StorageHandle {
        StorageHandle::new(Arc::new(self.clone()))
    }

    /// Operations performed so far (each trait call on the disk or on
    /// one of its file handles counts one).
    pub fn op_count(&self) -> u64 {
        lock_or_recover(&self.inner).ops
    }

    /// Fail the single operation with index `index` with `kind` — a
    /// transient fault: the retry at the next index succeeds.
    pub fn fail_op(&self, index: u64, kind: io::ErrorKind) {
        lock_or_recover(&self.inner).faults.push(Fault { start: index, end: index + 1, kind });
    }

    /// Fail every operation with index in `start..start + len` — a
    /// transient burst.
    pub fn fail_window(&self, start: u64, len: u64, kind: io::ErrorKind) {
        lock_or_recover(&self.inner).faults.push(Fault {
            start,
            end: start.saturating_add(len),
            kind,
        });
    }

    /// Fail every operation from `start` on — a permanent fault (a
    /// dead device), which is also how the crash harness freezes the
    /// disk at an enumerated operation boundary.
    pub fn fail_from(&self, start: u64, kind: io::ErrorKind) {
        lock_or_recover(&self.inner).faults.push(Fault { start, end: u64::MAX, kind });
    }

    /// Drop every scripted fault.
    pub fn clear_faults(&self) {
        lock_or_recover(&self.inner).faults.clear();
    }

    /// Pull the power, then reboot: the live view is replaced by a
    /// survivor view derived from the durable image and the configured
    /// [`CrashProfile`]; scripted faults are cleared and the operation
    /// counter restarts. Everything that survived is durable afterwards
    /// (it is "on the platter").
    pub fn crash(&self) {
        let mut st = lock_or_recover(&self.inner);
        let profile = st.profile;
        let names: Vec<PathBuf> = st
            .files
            .keys()
            .chain(st.ghosts.keys())
            .cloned()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut survivors: BTreeMap<PathBuf, FileNode> = BTreeMap::new();
        for name in names {
            let ghost = st.ghosts.get(&name).cloned();
            let node = st.files.get(&name).cloned();
            let content = match node {
                Some(node) if node.entry_durable => {
                    Some(resolve_content(&node, profile, &mut st.rng))
                }
                Some(node) => {
                    let keep_pending = match profile {
                        CrashProfile::DropUnsynced => false,
                        CrashProfile::KeepAll => true,
                        CrashProfile::TornTail | CrashProfile::ScramblePages => coin(&mut st.rng),
                    };
                    if keep_pending {
                        Some(resolve_content(&node, profile, &mut st.rng))
                    } else {
                        // The pending entry is lost; a durable entry the
                        // name used to have may still be on the platter.
                        ghost.clone()
                    }
                }
                None => {
                    // Ghost only: a durable entry removed/renamed away
                    // without a committing directory sync.
                    let resurrect = match profile {
                        CrashProfile::DropUnsynced => true,
                        CrashProfile::KeepAll => false,
                        CrashProfile::TornTail | CrashProfile::ScramblePages => coin(&mut st.rng),
                    };
                    if resurrect {
                        ghost.clone()
                    } else {
                        None
                    }
                }
            };
            if let Some(data) = content {
                survivors.insert(
                    name,
                    FileNode { durable_data: data.clone(), data, entry_durable: true },
                );
            }
        }
        st.files = survivors;
        st.ghosts.clear();
        st.faults.clear();
        st.ops = 0;
    }

    /// The live content of `path`, for test assertions.
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        lock_or_recover(&self.inner).files.get(path).map(|n| n.data.clone())
    }

    /// One gated operation: consume an op index, fail if a scripted
    /// fault covers it, otherwise run `f` on the state.
    fn op<T>(&self, f: impl FnOnce(&mut SimState) -> io::Result<T>) -> io::Result<T> {
        let mut st = lock_or_recover(&self.inner);
        let idx = st.ops;
        st.ops += 1;
        if let Some(fault) = st.faults.iter().find(|x| x.start <= idx && idx < x.end) {
            return Err(io::Error::new(fault.kind, format!("simdisk fault at op {idx}")));
        }
        f(&mut st)
    }
}

/// Seeded coin flip (splitmix64 step).
fn coin(rng: &mut u64) -> bool {
    next_u64(rng) & 1 == 1
}

/// splitmix64: tiny, seedable, good enough to pick crash outcomes.
fn next_u64(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded choice in `0..=n`.
fn next_below(rng: &mut u64, n: u64) -> u64 {
    if n == u64::MAX {
        return next_u64(rng);
    }
    next_u64(rng) % (n + 1)
}

/// What a crashed file's content resolves to under `profile`.
fn resolve_content(node: &FileNode, profile: CrashProfile, rng: &mut u64) -> Vec<u8> {
    let base = &node.durable_data;
    if node.data == *base {
        return base.clone();
    }
    if !node.data.starts_with(base) {
        // Rewritten (create-truncate) without a sync: all or nothing.
        return match profile {
            CrashProfile::DropUnsynced => base.clone(),
            CrashProfile::KeepAll => node.data.clone(),
            _ if coin(rng) => node.data.clone(),
            _ => base.clone(),
        };
    }
    let suffix = node.data.get(base.len()..).unwrap_or(&[]);
    match profile {
        CrashProfile::DropUnsynced => base.clone(),
        CrashProfile::KeepAll => node.data.clone(),
        CrashProfile::TornTail => {
            let cut = next_below(rng, suffix.len() as u64) as usize;
            let mut out = base.clone();
            out.extend_from_slice(suffix.get(..cut).unwrap_or(&[]));
            if cut < suffix.len() && coin(rng) {
                // The torn page: the sector at the cut was half-written;
                // the remainder of it reads back as garbage.
                let page_end = ((cut / SIM_PAGE) + 1) * SIM_PAGE;
                let garbage = page_end.min(suffix.len()).saturating_sub(cut);
                out.extend(std::iter::repeat_n(0xC7, garbage));
            }
            out
        }
        CrashProfile::ScramblePages => {
            let pages = suffix.len().div_ceil(SIM_PAGE);
            let kept_len = next_below(rng, suffix.len() as u64) as usize;
            let mut out = base.clone();
            for p in 0..pages {
                let lo = p * SIM_PAGE;
                let hi = ((p + 1) * SIM_PAGE).min(suffix.len());
                if lo >= kept_len {
                    break;
                }
                if coin(rng) {
                    out.extend_from_slice(suffix.get(lo..hi.min(kept_len)).unwrap_or(&[]));
                } else {
                    // This page was still in the device queue: zeros.
                    out.extend(std::iter::repeat_n(0u8, hi.min(kept_len) - lo));
                }
            }
            out
        }
    }
}

/// A `SimDisk` file handle: append/sync/truncate against the shared
/// state, each call one gated operation.
struct SimFile {
    disk: SimDisk,
    path: PathBuf,
}

impl SimFile {
    fn with_node<T>(
        disk: &SimDisk,
        path: &Path,
        f: impl FnOnce(&mut FileNode) -> T,
    ) -> io::Result<T> {
        disk.op(|st| match st.files.get_mut(path) {
            Some(node) => Ok(f(node)),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("simdisk: {} vanished under an open handle", path.display()),
            )),
        })
    }
}

impl StorageFile for SimFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        SimFile::with_node(&self.disk, &self.path, |node| node.data.extend_from_slice(buf))
    }
    fn sync_data(&mut self) -> io::Result<()> {
        SimFile::with_node(&self.disk, &self.path, |node| {
            node.durable_data = node.data.clone();
        })
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.sync_data()
    }
    fn truncate(&mut self, len: u64) -> io::Result<()> {
        SimFile::with_node(&self.disk, &self.path, |node| {
            node.data.truncate(len as usize);
            node.durable_data.truncate(len as usize);
        })
    }
}

impl Storage for SimDisk {
    fn name(&self) -> &'static str {
        "simdisk"
    }

    fn create_new(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let disk = self.clone();
        self.op(|st| {
            if st.files.contains_key(path) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("simdisk: {} exists", path.display()),
                ));
            }
            st.files.insert(path.to_path_buf(), FileNode::default());
            Ok(())
        })?;
        Ok(Box::new(SimFile { disk, path: path.to_path_buf() }))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let disk = self.clone();
        self.op(|st| {
            let node = st.files.entry(path.to_path_buf()).or_default();
            node.data.clear();
            // Truncating an existing durable file does not make the
            // truncation durable: until a sync, a crash falls back to
            // the old durable content.
            Ok(())
        })?;
        Ok(Box::new(SimFile { disk, path: path.to_path_buf() }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.op(|st| {
            st.files.get(path).map(|n| n.data.clone()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("simdisk: {} not found", path.display()),
                )
            })
        })
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.op(|st| {
            let node = st.files.entry(path.to_path_buf()).or_default();
            node.data = bytes.to_vec();
            Ok(())
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.op(|st| {
            let mut node = st.files.remove(from).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("simdisk: {} not found", from.display()),
                )
            })?;
            if node.entry_durable {
                st.ghosts.insert(from.to_path_buf(), node.durable_data.clone());
            }
            // The new name is an unsynced entry until its directory is
            // synced; an overwritten durable target may resurrect.
            node.entry_durable = false;
            if let Some(old) = st.files.insert(to.to_path_buf(), node) {
                if old.entry_durable {
                    st.ghosts.insert(to.to_path_buf(), old.durable_data);
                }
            }
            Ok(())
        })
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.op(|st| {
            let node = st.files.remove(path).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("simdisk: {} not found", path.display()),
                )
            })?;
            if node.entry_durable {
                st.ghosts.insert(path.to_path_buf(), node.durable_data);
            }
            Ok(())
        })
    }

    fn read_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.op(|st| {
            if !st.dirs.contains(dir) {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("simdisk: dir {} not found", dir.display()),
                ));
            }
            Ok(st.files.keys().filter(|p| p.parent() == Some(dir)).cloned().collect())
        })
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.op(|st| {
            let mut d = dir.to_path_buf();
            loop {
                st.dirs.insert(d.clone());
                match d.parent() {
                    Some(p) if !p.as_os_str().is_empty() => d = p.to_path_buf(),
                    _ => break,
                }
            }
            Ok(())
        })
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.op(|st| {
            if !st.dirs.contains(dir) {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("simdisk: dir {} not found", dir.display()),
                ));
            }
            let children: Vec<PathBuf> =
                st.files.keys().filter(|p| p.parent() == Some(dir)).cloned().collect();
            for child in children {
                if let Some(node) = st.files.get_mut(&child) {
                    node.entry_durable = true;
                }
            }
            let ghost_children: Vec<PathBuf> =
                st.ghosts.keys().filter(|p| p.parent() == Some(dir)).cloned().collect();
            for g in ghost_children {
                st.ghosts.remove(&g);
            }
            Ok(())
        })
    }

    fn exists(&self, path: &Path) -> bool {
        let st = lock_or_recover(&self.inner);
        st.files.contains_key(path) || st.dirs.contains(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn disk(profile: CrashProfile) -> SimDisk {
        let d = SimDisk::new(42, profile);
        d.create_dir_all(&p("/wal")).unwrap();
        d
    }

    #[test]
    fn buffered_bytes_are_readable_but_not_durable() {
        let d = disk(CrashProfile::DropUnsynced);
        let mut f = d.create_new(&p("/wal/a")).unwrap();
        f.append(b"hello").unwrap();
        assert_eq!(d.read(&p("/wal/a")).unwrap(), b"hello");
        d.sync_dir(&p("/wal")).unwrap(); // entry durable, content not
        d.crash();
        assert_eq!(d.read(&p("/wal/a")).unwrap(), b"", "unsynced bytes must drop");
    }

    #[test]
    fn synced_bytes_survive_and_later_bytes_drop() {
        let d = disk(CrashProfile::DropUnsynced);
        let mut f = d.create_new(&p("/wal/a")).unwrap();
        f.append(b"durable|").unwrap();
        f.sync_data().unwrap();
        d.sync_dir(&p("/wal")).unwrap();
        f.append(b"buffered").unwrap();
        d.crash();
        assert_eq!(d.read(&p("/wal/a")).unwrap(), b"durable|");
    }

    #[test]
    fn unsynced_creation_vanishes_and_unsynced_removal_resurrects() {
        let d = disk(CrashProfile::DropUnsynced);
        let mut f = d.create_new(&p("/wal/old")).unwrap();
        f.append(b"keep me").unwrap();
        f.sync_data().unwrap();
        d.sync_dir(&p("/wal")).unwrap();
        // Remove it, create a sibling, sync neither.
        d.remove_file(&p("/wal/old")).unwrap();
        let mut g = d.create_new(&p("/wal/new")).unwrap();
        g.append(b"gone").unwrap();
        g.sync_data().unwrap(); // content synced, entry not
        d.crash();
        assert_eq!(d.read(&p("/wal/old")).unwrap(), b"keep me", "removal must un-happen");
        assert!(d.read(&p("/wal/new")).is_err(), "unsynced entry must vanish");
    }

    #[test]
    fn rename_without_dir_sync_reverts_and_with_it_commits() {
        let d = disk(CrashProfile::DropUnsynced);
        let mut f = d.create_new(&p("/wal/m.tmp")).unwrap();
        f.append(b"manifest").unwrap();
        f.sync_all().unwrap();
        d.sync_dir(&p("/wal")).unwrap();
        d.rename(&p("/wal/m.tmp"), &p("/wal/m")).unwrap();

        // Crash before the dir sync: the tmp name comes back.
        let d2 = disk(CrashProfile::DropUnsynced);
        let mut f2 = d2.create_new(&p("/wal/m.tmp")).unwrap();
        f2.append(b"manifest").unwrap();
        f2.sync_all().unwrap();
        d2.sync_dir(&p("/wal")).unwrap();
        d2.rename(&p("/wal/m.tmp"), &p("/wal/m")).unwrap();
        d2.crash();
        assert_eq!(d2.read(&p("/wal/m.tmp")).unwrap(), b"manifest");
        assert!(d2.read(&p("/wal/m")).is_err());

        // Dir sync commits the rename.
        d.sync_dir(&p("/wal")).unwrap();
        d.crash();
        assert_eq!(d.read(&p("/wal/m")).unwrap(), b"manifest");
        assert!(d.read(&p("/wal/m.tmp")).is_err());
    }

    #[test]
    fn keep_all_preserves_buffered_state() {
        let d = disk(CrashProfile::KeepAll);
        let mut f = d.create_new(&p("/wal/a")).unwrap();
        f.append(b"never synced").unwrap();
        d.crash();
        assert_eq!(d.read(&p("/wal/a")).unwrap(), b"never synced");
    }

    #[test]
    fn torn_tail_keeps_durable_prefix_and_some_suffix() {
        for seed in 0..32 {
            let d = SimDisk::new(seed, CrashProfile::TornTail);
            d.create_dir_all(&p("/wal")).unwrap();
            let mut f = d.create_new(&p("/wal/a")).unwrap();
            f.append(b"durable|").unwrap();
            f.sync_data().unwrap();
            d.sync_dir(&p("/wal")).unwrap();
            f.append(&[0x11u8; 4 * SIM_PAGE]).unwrap();
            d.crash();
            let got = d.read(&p("/wal/a")).unwrap();
            assert!(got.starts_with(b"durable|"), "durable prefix lost (seed {seed})");
            assert!(got.len() <= 8 + 4 * SIM_PAGE);
        }
    }

    #[test]
    fn crash_outcomes_are_deterministic_per_seed() {
        let run = |seed| {
            let d = SimDisk::new(seed, CrashProfile::ScramblePages);
            d.create_dir_all(&p("/wal")).unwrap();
            let mut f = d.create_new(&p("/wal/a")).unwrap();
            f.append(&[7u8; 3 * SIM_PAGE + 100]).unwrap();
            f.sync_data().unwrap();
            d.sync_dir(&p("/wal")).unwrap();
            f.append(&[9u8; 5 * SIM_PAGE + 17]).unwrap();
            d.crash();
            d.read(&p("/wal/a")).unwrap()
        };
        assert_eq!(run(7), run(7));
        assert_eq!(run(8), run(8));
    }

    #[test]
    fn scripted_faults_fire_at_their_op_index() {
        let d = disk(CrashProfile::DropUnsynced);
        let base = d.op_count();
        d.fail_op(base + 1, io::ErrorKind::Interrupted);
        let mut f = d.create_new(&p("/wal/a")).unwrap(); // op base
        let err = f.append(b"x").unwrap_err(); // op base+1: transient
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        f.append(b"x").unwrap(); // op base+2: recovered
        d.fail_from(d.op_count(), io::ErrorKind::Other);
        assert!(f.append(b"y").is_err(), "permanent fault");
        assert!(f.sync_data().is_err(), "still dead");
    }

    #[test]
    fn truncate_undoes_a_partial_append() {
        let d = disk(CrashProfile::DropUnsynced);
        let mut f = d.create_new(&p("/wal/a")).unwrap();
        f.append(b"good").unwrap();
        f.sync_data().unwrap();
        f.append(b"partial").unwrap();
        f.truncate(4).unwrap();
        f.append(b"+more").unwrap();
        assert_eq!(d.read(&p("/wal/a")).unwrap(), b"good+more");
    }

    #[test]
    fn read_dir_lists_direct_children_sorted() {
        let d = disk(CrashProfile::DropUnsynced);
        d.create_dir_all(&p("/wal/sub")).unwrap();
        d.write(&p("/wal/b"), b"1").unwrap();
        d.write(&p("/wal/a"), b"2").unwrap();
        d.write(&p("/wal/sub/c"), b"3").unwrap();
        let names = d.read_dir(&p("/wal")).unwrap();
        assert_eq!(names, vec![p("/wal/a"), p("/wal/b")]);
    }

    #[test]
    fn os_storage_round_trips_through_the_trait() {
        let dir = std::env::temp_dir().join(format!("pir-storage-test-{}", std::process::id()));
        let storage = StorageHandle::os();
        storage.create_dir_all(&dir).unwrap();
        let file = dir.join("t.bin");
        if storage.exists(&file) {
            storage.remove_file(&file).unwrap();
        }
        let mut f = storage.create_new(&file).unwrap();
        f.append(b"abc").unwrap();
        f.sync_data().unwrap();
        drop(f);
        assert_eq!(storage.read(&file).unwrap(), b"abc");
        let renamed = dir.join("t2.bin");
        storage.rename(&file, &renamed).unwrap();
        storage.sync_dir(&dir).unwrap();
        assert!(storage.read_dir(&dir).unwrap().contains(&renamed));
        storage.remove_file(&renamed).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }
}
