//! Panic-free mutex acquisition for the serving path.

use std::sync::{Mutex, MutexGuard};

/// Lock `m`, recovering from poisoning instead of propagating the
/// panic.
///
/// Every mutex on the serving path guards state that stays internally
/// consistent across any single statement (counter maps, connection
/// registries, accumulated statistics), so a panic elsewhere while the
/// lock was held cannot leave the data half-updated in a way that is
/// worse than losing the panicking thread's one update. Recovering
/// keeps the remaining shard workers and connection threads serving;
/// propagating would cascade one dead thread into a poisoned-lock panic
/// on every other thread that touches the same state.
pub(crate) fn lock_or_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recovers_after_a_panic_while_held() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "lock must actually be poisoned");
        assert_eq!(*lock_or_recover(&m), 7);
    }
}
