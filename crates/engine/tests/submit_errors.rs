//! Direct unit tests for the [`SubmitHandle`] error paths: the
//! permanent-vs-transient distinction (`CommandTooLarge` vs
//! `Backpressure`) and the `Closed`-outranks-everything rule after a
//! close race.
//!
//! Backpressure here is *deterministic*, not a timing lottery: a
//! [`SetSpec::Custom`] factory blocks the single shard worker on a
//! channel until the test releases it, so the queue is provably full
//! when the assertion runs.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use pir_engine::{
    Command, EngineError, EngineHandle, IngressConfig, MechanismSpec, Reply, SetSpec,
};
use pir_erm::DataPoint;
use pir_geometry::{ConvexSet, L2Ball};

fn params() -> pir_dp::PrivacyParams {
    pir_dp::PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn observe(sid: u64) -> Command {
    Command::Observe { session_id: sid, point: DataPoint::new(vec![0.1, 0.2], 0.3) }
}

fn batch(sid: u64, n: usize) -> Command {
    Command::ObserveBatch {
        session_id: sid,
        points: (0..n).map(|_| DataPoint::new(vec![0.1, 0.2], 0.3)).collect(),
    }
}

/// A `Trivial` spec whose set factory blocks on `rx` until the test
/// sends a release token: submitting `Open` with this spec parks the
/// shard worker mid-execution, holding its queue slot.
fn gated_spec(rx: mpsc::Receiver<()>) -> MechanismSpec {
    let gate = Arc::new(Mutex::new(rx));
    MechanismSpec::Trivial {
        set: SetSpec::Custom(Arc::new(move || {
            gate.lock().unwrap().recv().unwrap();
            Box::new(L2Ball::unit(2)) as Box<dyn ConvexSet>
        })),
    }
}

#[test]
fn oversized_commands_are_permanent_command_too_large() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 7, queue_depth: 4 }).unwrap();
    let submit = handle.submit_handle();

    // Cost = points.len() = 5 > capacity 4: permanent, retry-hopeless.
    let (returned, err) = submit.try_submit(batch(1, 5)).unwrap_err();
    match err {
        EngineError::CommandTooLarge { shard, cost, capacity } => {
            assert_eq!((shard, cost, capacity), (0, 5, 4));
            assert!(!err.is_retryable(), "CommandTooLarge must be permanent");
        }
        other => panic!("expected CommandTooLarge, got {other:?}"),
    }
    // The command comes back intact for the caller to split or drop.
    match returned {
        Command::ObserveBatch { session_id: 1, points } => assert_eq!(points.len(), 5),
        other => panic!("expected the rejected command back, got {other:?}"),
    }

    // submit_blocking must fail immediately too — permanent errors never
    // park the caller waiting for space that can never exist.
    let err = submit.submit_blocking(batch(1, 5)).unwrap_err();
    assert!(matches!(err, EngineError::CommandTooLarge { .. }));
    handle.close();
}

#[test]
fn full_queue_is_transient_backpressure_with_exact_accounting() {
    let (gate_tx, gate_rx) = mpsc::channel();
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 7, queue_depth: 4 }).unwrap();
    let submit = handle.submit_handle();

    // Park the worker inside the Open (depth is decremented only after
    // execution, so the blocked Open pins one unit of queue space).
    let open =
        Command::Open { session_id: 1, spec: gated_spec(gate_rx), t_max: 8, params: params() };
    let blocked = submit.try_submit(open).unwrap();

    // Fill the remaining capacity exactly: 1 (blocked Open) + 3 = 4.
    let queued: Vec<_> = (0..3).map(|_| submit.try_submit(observe(1)).unwrap()).collect();

    // The 5th unit must bounce with precise accounting, and be retryable.
    let (_, err) = submit.try_submit(observe(1)).unwrap_err();
    match err {
        EngineError::Backpressure { shard, depth, capacity, cost } => {
            assert_eq!((shard, depth, capacity, cost), (0, 4, 4, 1));
            assert!(err.is_retryable(), "Backpressure must be transient");
        }
        other => panic!("expected Backpressure, got {other:?}"),
    }

    // Release the gate: the same command now succeeds — transient means
    // transient.
    gate_tx.send(()).unwrap();
    assert!(matches!(blocked.wait(), Reply::Opened { session_id: 1 }));
    for t in queued {
        assert!(matches!(t.wait(), Reply::Releases { .. }));
    }
    let t = submit.try_submit(observe(1)).expect("queue drained; retry must succeed");
    assert!(matches!(t.wait(), Reply::Releases { .. }));
    handle.close();
}

#[test]
fn closed_outranks_command_too_large_after_a_close_race() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 2, seed: 7, queue_depth: 4 }).unwrap();
    let submit = handle.submit_handle();
    handle.close();

    // A surviving clone submitting after close sees Closed — even for a
    // command that would also be oversized. Closed is checked first so a
    // racing producer cannot misread shutdown as a sizing bug.
    let (_, err) = submit.try_submit(batch(1, 100)).unwrap_err();
    assert!(matches!(err, EngineError::Closed), "Closed must outrank CommandTooLarge: {err:?}");

    let (_, err) = submit.try_submit(observe(1)).unwrap_err();
    assert!(matches!(err, EngineError::Closed));
    assert!(!err.is_retryable(), "Closed is permanent");

    // submit_blocking must return Closed immediately rather than spin
    // waiting for capacity on a queue nobody will ever drain.
    let err = submit.submit_blocking(observe(1)).unwrap_err();
    assert!(matches!(err, EngineError::Closed));
    let err = submit.submit_blocking(batch(1, 100)).unwrap_err();
    assert!(matches!(err, EngineError::Closed));
}
