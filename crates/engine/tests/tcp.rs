//! Loopback tests for the thread-per-connection TCP front: concurrent
//! connections on disjoint sessions release bit-identically to the
//! direct single-threaded engine, one connection's `CLOSE` never waits
//! on another connection's queued compute, and the front's connection
//! cap and shutdown behave. 127.0.0.1 only — no external network.

use pir_dp::PrivacyParams;
use pir_engine::wire::{read_reply, write_command};
use pir_engine::{
    serve_tcp, serve_tcp_with, Command, EngineConfig, EngineHandle, IngressConfig, MechanismSpec,
    Reply, ShardedEngine, TcpOptions,
};
use pir_erm::DataPoint;
use proptest::prelude::*;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.6;
    x[(t + session as usize) % d] += 0.3;
    let y = (0.5 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}

/// One client conversation: open `sid`, stream `steps` points
/// (pipelined: all writes first — small enough for the socket buffers),
/// release, close; then read every reply back in order.
fn run_client(
    addr: SocketAddr,
    sid: u64,
    spec: &MechanismSpec,
    d: usize,
    steps: usize,
) -> Vec<Reply> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut request = Vec::new();
    write_command(
        &mut request,
        &Command::Open { session_id: sid, spec: spec.clone(), t_max: steps, params: params() },
    )
    .unwrap();
    for t in 0..steps {
        write_command(&mut request, &Command::Observe { session_id: sid, point: point(d, t, sid) })
            .unwrap();
    }
    write_command(&mut request, &Command::Release { session_id: sid }).unwrap();
    write_command(&mut request, &Command::Close).unwrap();
    std::io::Write::write_all(&mut stream, &request).unwrap();

    let mut replies = Vec::new();
    while let Some(reply) = read_reply(&mut stream).unwrap() {
        replies.push(reply);
        if matches!(replies.last(), Some(Reply::Closed)) {
            break;
        }
    }
    replies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The acceptance property: N ≥ 4 concurrent loopback connections
    /// driving disjoint sessions yield release sequences bit-identical
    /// to the direct single-threaded `ShardedEngine`, under real thread
    /// and socket interleaving.
    #[test]
    fn concurrent_loopback_connections_match_direct_engine(
        shards in 1usize..4,
        seed in any::<u64>(),
        clients in 4u64..7,
        steps in 1usize..5,
    ) {
        let d = 3;
        let spec = MechanismSpec::reg1_l2(d);
        let handle = EngineHandle::new(IngressConfig {
            num_shards: shards,
            seed,
            queue_depth: 64,
        })
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = serve_tcp(handle.submit_handle(), listener).unwrap();
        let addr = front.local_addr();

        let conversations: Vec<(u64, Vec<Reply>)> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..clients)
                .map(|sid| {
                    let spec = spec.clone();
                    s.spawn(move || (sid, run_client(addr, sid, &spec, d, steps)))
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });

        let stats = front.shutdown();
        prop_assert_eq!(stats.connections, clients);
        prop_assert_eq!(stats.protocol_errors, 0);
        prop_assert_eq!(stats.commands, clients * (steps as u64 + 3));
        prop_assert_eq!(stats.replies, stats.commands);
        handle.close();

        // The reference: the same streams through a direct,
        // single-threaded engine with the same seed.
        let mut direct =
            ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
        direct.spawn_sessions(0..clients, &spec, steps, &params()).unwrap();
        for (sid, replies) in conversations {
            prop_assert_eq!(replies.len(), steps + 3);
            prop_assert_eq!(&replies[0], &Reply::Opened { session_id: sid });
            for t in 0..steps {
                let expected = direct.observe(sid, &point(d, t, sid)).unwrap();
                prop_assert_eq!(
                    &replies[1 + t],
                    &Reply::Releases { session_id: sid, thetas: vec![expected] },
                    "session {} step {}", sid, t
                );
            }
            match &replies[1 + steps] {
                Reply::SessionReleased { session_id, points, .. } => {
                    prop_assert_eq!(*session_id, sid);
                    prop_assert_eq!(*points, steps as u64);
                }
                other => panic!("expected SessionReleased, got {other:?}"),
            }
            prop_assert_eq!(&replies[2 + steps], &Reply::Closed);
        }
    }

    /// The Close-stall property: while one connection's heavy batch is
    /// computing, another connection's goodbye completes without waiting
    /// for it. (The old fleet-wide-flush Close blocks here until the
    /// batch finishes.)
    #[test]
    fn close_on_one_connection_never_waits_on_anothers_queued_batch(
        shards in 1usize..3,
        seed in any::<u64>(),
    ) {
        let d = 32;
        let n_heavy = 800usize;
        let spec = MechanismSpec::reg1_l2(d);
        let handle = EngineHandle::new(IngressConfig {
            num_shards: shards,
            seed,
            queue_depth: 2048,
        })
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let front = serve_tcp(handle.submit_handle(), listener).unwrap();
        let addr = front.local_addr();

        // Connection A: open + a heavy batch (hundreds of ms of
        // compute). Reading the Opened reply proves the open finished,
        // so the batch is now the piece in flight.
        let mut conn_a = TcpStream::connect(addr).unwrap();
        let mut request = Vec::new();
        write_command(
            &mut request,
            &Command::Open { session_id: 1, spec: spec.clone(), t_max: n_heavy, params: params() },
        )
        .unwrap();
        write_command(
            &mut request,
            &Command::ObserveBatch {
                session_id: 1,
                points: (0..n_heavy).map(|t| point(d, t, 1)).collect(),
            },
        )
        .unwrap();
        std::io::Write::write_all(&mut conn_a, &request).unwrap();
        match read_reply(&mut conn_a).unwrap().unwrap() {
            Reply::Opened { session_id: 1 } => {}
            other => panic!("expected Opened, got {other:?}"),
        }

        // Connection B: just a goodbye. It must come back while A's
        // batch is still computing.
        let mut conn_b = TcpStream::connect(addr).unwrap();
        let mut bye = Vec::new();
        write_command(&mut bye, &Command::Close).unwrap();
        std::io::Write::write_all(&mut conn_b, &bye).unwrap();
        prop_assert_eq!(read_reply(&mut conn_b).unwrap().unwrap(), Reply::Closed);

        // The proof B did not ride a fleet barrier: microseconds after
        // B's Closed, A's batch reply must still be outstanding. (A
        // fleet-wide flush would have delayed B's Closed until the batch
        // reply was already written to A's socket.)
        conn_a.set_read_timeout(Some(Duration::from_millis(2))).unwrap();
        let mut probe = [0u8; 1];
        match conn_a.read(&mut probe) {
            Err(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) => {}
            other => panic!("A's reply was already flowing when B's Close completed: {other:?}"),
        }

        // And the batch itself still completes correctly afterwards.
        conn_a.set_read_timeout(None).unwrap();
        match read_reply(&mut conn_a).unwrap().unwrap() {
            Reply::Releases { session_id: 1, thetas } => prop_assert_eq!(thetas.len(), n_heavy),
            other => panic!("expected the batch releases, got {other:?}"),
        }
        drop(conn_a);
        drop(conn_b);
        front.shutdown();
        handle.close();
    }
}

#[test]
fn connection_cap_refuses_excess_connections_at_the_door() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 5, queue_depth: 16 }).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let front = serve_tcp_with(
        handle.submit_handle(),
        listener,
        TcpOptions { max_connections: 1, ..TcpOptions::default() },
    )
    .unwrap();
    let addr = front.local_addr();

    // First connection occupies the only slot (held open by not sending
    // Close yet).
    let mut first = TcpStream::connect(addr).unwrap();
    let mut open = Vec::new();
    write_command(
        &mut open,
        &Command::Open {
            session_id: 1,
            spec: MechanismSpec::reg1_l2(2),
            t_max: 4,
            params: params(),
        },
    )
    .unwrap();
    std::io::Write::write_all(&mut first, &open).unwrap();
    match read_reply(&mut first).unwrap().unwrap() {
        Reply::Opened { session_id: 1 } => {}
        other => panic!("expected Opened, got {other:?}"),
    }

    // The second connection is severed without a single reply frame.
    let mut second = TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    let n = second.read_to_end(&mut buf).unwrap();
    assert_eq!(n, 0, "refused connection should see immediate EOF");

    // Finish the first conversation cleanly.
    let mut bye = Vec::new();
    write_command(&mut bye, &Command::Close).unwrap();
    std::io::Write::write_all(&mut first, &bye).unwrap();
    assert_eq!(read_reply(&mut first).unwrap().unwrap(), Reply::Closed);
    drop(first);

    // The refused connection is tallied (poll briefly: the accept loop
    // counts it on its own thread).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while front.stats().refused == 0 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    let stats = front.shutdown();
    assert_eq!(stats.refused, 1);
    assert!(stats.connections >= 1);
    handle.close();
}

#[test]
fn sessions_survive_reconnects_across_connections() {
    // A session opened on one connection is served to a later connection
    // where it left off — sessions are engine-scoped, not
    // connection-scoped.
    let seed = 77;
    let d = 2;
    let spec = MechanismSpec::reg1_l2(d);
    let handle = EngineHandle::new(IngressConfig { num_shards: 2, seed, queue_depth: 32 }).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let front = serve_tcp(handle.submit_handle(), listener).unwrap();
    let addr = front.local_addr();

    let send = |cmds: &[Command]| -> Vec<Reply> {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut request = Vec::new();
        for cmd in cmds {
            write_command(&mut request, cmd).unwrap();
        }
        write_command(&mut request, &Command::Close).unwrap();
        std::io::Write::write_all(&mut stream, &request).unwrap();
        let mut replies = Vec::new();
        while let Some(reply) = read_reply(&mut stream).unwrap() {
            if matches!(reply, Reply::Closed) {
                break;
            }
            replies.push(reply);
        }
        replies
    };

    let first = send(&[
        Command::Open { session_id: 9, spec: spec.clone(), t_max: 4, params: params() },
        Command::Observe { session_id: 9, point: point(d, 0, 9) },
    ]);
    let second = send(&[Command::Observe { session_id: 9, point: point(d, 1, 9) }]);

    let mut direct =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
    direct.spawn_sessions([9u64], &spec, 4, &params()).unwrap();
    assert_eq!(first[0], Reply::Opened { session_id: 9 });
    assert_eq!(
        first[1],
        Reply::Releases {
            session_id: 9,
            thetas: vec![direct.observe(9, &point(d, 0, 9)).unwrap()]
        }
    );
    assert_eq!(
        second[0],
        Reply::Releases {
            session_id: 9,
            thetas: vec![direct.observe(9, &point(d, 1, 9)).unwrap()]
        }
    );

    front.shutdown();
    handle.close();
}

#[test]
fn idle_connections_are_reaped_without_disturbing_active_ones() {
    let d = 2;
    let spec = MechanismSpec::reg1_l2(d);
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 1, seed: 5, queue_depth: 32 }).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let front = serve_tcp_with(
        handle.submit_handle(),
        listener,
        TcpOptions { max_connections: 8, idle_timeout: Some(Duration::from_millis(100)) },
    )
    .unwrap();
    let addr = front.local_addr();

    // The idler: connects, says nothing, and waits to be reaped. The
    // front must end it as a clean goodbye (EOF on our read), not an
    // abort.
    let idler = TcpStream::connect(addr).unwrap();

    // The active connection: works straight through several idle
    // windows, pausing well under the timeout between commands.
    let mut active = TcpStream::connect(addr).unwrap();
    let mut request = Vec::new();
    write_command(
        &mut request,
        &Command::Open { session_id: 1, spec: spec.clone(), t_max: 16, params: params() },
    )
    .unwrap();
    std::io::Write::write_all(&mut active, &request).unwrap();
    assert_eq!(read_reply(&mut active).unwrap().unwrap(), Reply::Opened { session_id: 1 });
    for t in 0..4 {
        std::thread::sleep(Duration::from_millis(60));
        write_command(&mut active, &Command::Observe { session_id: 1, point: point(d, t, 1) })
            .unwrap();
        match read_reply(&mut active).unwrap().unwrap() {
            Reply::Releases { session_id: 1, .. } => {}
            other => panic!("expected Releases, got {other:?}"),
        }
    }

    // By now (~240 ms of traffic) the idler has sat silent for more than
    // twice its 100 ms budget: its socket must reach EOF without us
    // sending a byte.
    let mut idler = idler;
    idler.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut buf = [0u8; 1];
    assert_eq!(idler.read(&mut buf).unwrap(), 0, "idler should see EOF once reaped");

    // The active connection is still served after the reap.
    let mut bye = Vec::new();
    write_command(&mut bye, &Command::Close).unwrap();
    std::io::Write::write_all(&mut active, &bye).unwrap();
    assert_eq!(read_reply(&mut active).unwrap().unwrap(), Reply::Closed);
    drop(active);

    // Wait for both connection threads to finish their bookkeeping, then
    // check the tallies: two connections, exactly one reaped, no
    // protocol errors (idle-between-frames is a clean goodbye).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = front.stats();
        if stats.connections >= 2 || std::time::Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = front.shutdown();
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.idle_reaped, 1);
    assert_eq!(stats.protocol_errors, 0);
    handle.close();
}
