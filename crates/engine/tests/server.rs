//! `serve_connection` under deep pipelining: a client keeps far more
//! points in flight than the engine's `queue_depth`, over an in-memory
//! duplex (pre-rendered request bytes in, reply bytes out). The server
//! must flow-control — never emit a spurious transient-backpressure
//! reply — and answer strictly in command order, matching what a caller
//! holding the `SubmitHandle` directly would get for the same commands.

use pir_dp::PrivacyParams;
use pir_engine::wire::{read_reply, write_command};
use pir_engine::{
    serve_connection, Command, EngineError, EngineHandle, IngressConfig, MechanismSpec, Reply,
};
use pir_erm::DataPoint;
use proptest::prelude::*;

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.6;
    x[(t + session as usize) % d] += 0.3;
    let y = (0.5 * x[0]).clamp(-1.0, 1.0);
    DataPoint::new(x, y)
}

/// The reply the direct (unpiped) submit path produces for `cmd`:
/// submitted one at a time with an immediate wait, so the only possible
/// rejections are the permanent ones — exactly what a flow-controlling
/// server must reduce deep pipelining to.
fn direct_reply(handle: &EngineHandle, cmd: Command) -> Reply {
    match handle.submit(cmd) {
        Ok(ticket) => ticket.wait(),
        Err(e) => Reply::Err(e),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Deep pipelining: `3 × queue_depth` points in flight on one
    /// connection, with a never-fits batch and an unknown-session probe
    /// mixed in. Every reply arrives in command order and equals the
    /// direct `SubmitHandle` result; transient backpressure is absorbed
    /// by flow control, never surfaced to the client.
    #[test]
    fn deep_pipelining_replies_in_order_and_match_direct_submits(
        shards in 1usize..4,
        seed in any::<u64>(),
        sessions in 1u64..4,
        queue_depth in 4usize..12,
    ) {
        let d = 3;
        let spec = MechanismSpec::reg1_l2(d);
        let per_session = (queue_depth * 3).div_ceil(sessions as usize);

        // The conversation: opens, a deep round-robin point stream, one
        // batch that can never fit, one unknown session, releases, close.
        let mut commands: Vec<Command> = Vec::new();
        for sid in 0..sessions {
            commands.push(Command::Open {
                session_id: sid,
                spec: spec.clone(),
                t_max: per_session + 1,
                params: params(),
            });
        }
        for t in 0..per_session {
            for sid in 0..sessions {
                commands.push(Command::Observe { session_id: sid, point: point(d, t, sid) });
            }
        }
        commands.push(Command::ObserveBatch {
            session_id: 0,
            points: (0..queue_depth + 1).map(|t| point(d, t, 0)).collect(),
        });
        commands.push(Command::Observe { session_id: 999, point: point(d, 0, 999) });
        for sid in 0..sessions {
            commands.push(Command::Release { session_id: sid });
        }
        commands.push(Command::Close);

        let mut request = Vec::new();
        for cmd in &commands {
            write_command(&mut request, cmd).unwrap();
        }

        let handle = EngineHandle::new(IngressConfig {
            num_shards: shards,
            seed,
            queue_depth,
        })
        .unwrap();
        let mut reader: &[u8] = &request;
        let mut response = Vec::new();
        let stats = serve_connection(&handle, &mut reader, &mut response).unwrap();
        prop_assert_eq!(stats.commands, commands.len());
        prop_assert_eq!(stats.replies, commands.len());
        handle.close();

        let mut replies = Vec::new();
        let mut r: &[u8] = &response;
        while let Some(reply) = read_reply(&mut r).unwrap() {
            replies.push(reply);
        }
        prop_assert_eq!(replies.len(), commands.len());
        for reply in &replies {
            prop_assert!(
                !matches!(reply, Reply::Err(EngineError::Backpressure { .. })),
                "flow control must absorb transient backpressure, got {:?}",
                reply
            );
        }

        // The reference: the same commands through a fresh engine (same
        // seed, same queue depth) submitted directly, one at a time.
        let direct = EngineHandle::new(IngressConfig {
            num_shards: shards,
            seed,
            queue_depth,
        })
        .unwrap();
        for (i, cmd) in commands.into_iter().enumerate() {
            let expected = direct_reply(&direct, cmd);
            prop_assert_eq!(&replies[i], &expected, "reply {} diverged", i);
        }
        direct.close();
    }
}

/// A connection that outlives its engine: every session command comes
/// back as an in-band `Err(Closed)` reply, in order, the client's own
/// `Close` is still acknowledged, and the serve loop itself ends
/// cleanly. Shutdown is an application-level answer, never a torn
/// connection.
#[test]
fn closed_engine_surfaces_in_band_closed_replies() {
    let handle =
        EngineHandle::new(IngressConfig { num_shards: 2, seed: 7, queue_depth: 8 }).unwrap();
    let submit = handle.submit_handle();
    handle.close();

    let commands = vec![
        Command::Open {
            session_id: 1,
            spec: MechanismSpec::reg1_l2(3),
            t_max: 8,
            params: params(),
        },
        Command::Observe { session_id: 1, point: point(3, 0, 1) },
        Command::Release { session_id: 1 },
        Command::Close,
    ];
    let mut request = Vec::new();
    for cmd in &commands {
        write_command(&mut request, cmd).unwrap();
    }

    let mut reader: &[u8] = &request;
    let mut response = Vec::new();
    let stats = serve_connection(&submit, &mut reader, &mut response)
        .expect("a closed engine is not a protocol violation");
    assert_eq!((stats.commands, stats.replies), (commands.len(), commands.len()));

    let mut r: &[u8] = &response;
    let mut replies = Vec::new();
    while let Some(reply) = read_reply(&mut r).unwrap() {
        replies.push(reply);
    }
    assert_eq!(replies.len(), commands.len());
    for (i, reply) in replies[..commands.len() - 1].iter().enumerate() {
        assert_eq!(reply, &Reply::Err(EngineError::Closed), "reply {i} must be in-band Closed");
    }
    // `Close` itself never reserves queue space, so even a closed engine
    // acknowledges it: the goodbye handshake still completes.
    assert_eq!(replies.last(), Some(&Reply::Closed));
}

/// `SetSpec::Custom` closures cannot cross the wire: the streaming
/// writer rejects them with `Unencodable` and leaves the byte stream
/// untouched — no partial frame precedes the error.
#[test]
fn custom_set_specs_are_rejected_before_any_bytes_hit_the_stream() {
    use pir_engine::wire::WireError;
    use pir_engine::SetSpec;
    use std::sync::Arc;

    let spec = MechanismSpec::Trivial {
        set: SetSpec::Custom(Arc::new(|| {
            Box::new(pir_geometry::L2Ball::unit(2)) as Box<dyn pir_geometry::ConvexSet>
        })),
    };
    let cmd = Command::Open { session_id: 1, spec, t_max: 8, params: params() };
    let mut out = Vec::new();
    assert!(matches!(write_command(&mut out, &cmd), Err(WireError::Unencodable(_))));
    assert!(out.is_empty(), "a rejected command must not leave a partial frame behind");
}
