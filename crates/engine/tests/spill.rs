//! The session spill tier, end to end: an LRU cap small enough to force
//! constant spill/restore churn must leave the release streams
//! bit-identical to an unbounded engine — spilling is a *placement*
//! decision, never a semantic one — while the counters account for every
//! resident and spilled session.

use pir_core::TauRule;
use pir_dp::PrivacyParams;
use pir_engine::{
    EngineConfig, EngineError, EngineHandle, IngressConfig, MechanismSpec, Reply, ShardedEngine,
    SpillOptions, WalOptions,
};
use pir_erm::DataPoint;
use std::path::{Path, PathBuf};

/// A self-cleaning scratch directory under the system temp dir.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> Self {
        let p = std::env::temp_dir().join(format!("pir-spill-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn params() -> PrivacyParams {
    PrivacyParams::approx(1.0, 1e-6).unwrap()
}

fn point(d: usize, t: usize, session: u64) -> DataPoint {
    let mut x = vec![0.0f64; d];
    x[t % d] = 0.7;
    x[(t + session as usize) % d] += 0.2;
    DataPoint::new(x, 0.25)
}

fn releases_of(reply: Reply) -> Vec<Vec<f64>> {
    match reply {
        Reply::Releases { thetas, .. } => thetas,
        other => panic!("expected releases, got {other:?}"),
    }
}

fn bits(theta: &[f64]) -> Vec<u64> {
    theta.iter().map(|v| v.to_bits()).collect()
}

/// Eight sessions through a cap-2 shard: every command lands on a
/// session the LRU has already pushed out, so the whole stream runs
/// through spill + in-band restore — and must still match an engine
/// that never spilled anything.
#[test]
fn spill_churn_is_bit_identical_to_an_unbounded_engine() {
    let tmp = TempDir::new("churn");
    let seed = 616;
    let spec = MechanismSpec::reg1_l2(3);
    let sids: Vec<u64> = (0..8).collect();

    let handle = EngineHandle::with_spill(
        IngressConfig { num_shards: 1, seed, queue_depth: 256 },
        &SpillOptions { resident_cap: 2, ..SpillOptions::new(tmp.path()) },
    )
    .unwrap();
    for &sid in &sids {
        handle.open(sid, &spec, 32, &params()).unwrap().wait();
    }

    let mut live: Vec<Vec<f64>> = Vec::new();
    // Round-robin observes: by the time a session's next point arrives,
    // six other sessions have touched the cap-2 LRU.
    for t in 0..4 {
        for &sid in &sids {
            let reply = handle.observe(sid, point(3, t, sid)).unwrap().wait();
            live.extend(releases_of(reply));
        }
    }
    // The batch path (ingest) must restore spilled sessions just the same.
    let batch: Vec<(u64, DataPoint)> =
        sids.iter().flat_map(|&sid| (4..6).map(move |t| (sid, point(3, t, sid)))).collect();
    for released in handle.ingest(batch) {
        live.push(released.unwrap());
    }

    let stats = handle.spill_stats();
    assert!(stats.spills > 0, "a cap-2 shard with 8 sessions must spill: {stats:?}");
    assert!(stats.restores > 0, "round-robin traffic must restore: {stats:?}");
    assert_eq!(stats.spill_failures, 0, "{stats:?}");
    assert_eq!(stats.resident + stats.spilled, sids.len(), "every session is somewhere");
    assert!(stats.resident <= 2, "idle shard must respect the cap: {stats:?}");
    let close_stats = handle.close();
    assert_eq!(close_stats.sessions, sids.len(), "spilled sessions count at shutdown");
    assert_eq!(close_stats.points, sids.len() * 6);

    // The unbounded reference.
    let mut reference =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
    for &sid in &sids {
        reference.spawn_session(sid, &spec, 32, &params()).unwrap();
    }
    let mut at = 0;
    for t in 0..4 {
        for &sid in &sids {
            let want = reference.observe(sid, &point(3, t, sid)).unwrap();
            assert_eq!(bits(&live[at]), bits(&want), "t = {t}, session {sid}");
            at += 1;
        }
    }
    for &sid in &sids {
        for t in 4..6 {
            let want = reference.observe(sid, &point(3, t, sid)).unwrap();
            assert_eq!(bits(&live[at]), bits(&want), "ingest point t = {t}, session {sid}");
            at += 1;
        }
    }
    assert_eq!(at, live.len());
}

/// WAL + spill composed: a capped engine is durable *and* bounded, and a
/// restart recovers every session — including the ones that were on disk
/// in the spill tier (whose files do not survive the restart; the log is
/// the durability layer).
#[test]
fn wal_and_spill_compose_across_a_restart() {
    let wal_dir = TempDir::new("wal");
    let spill_dir = TempDir::new("walspill");
    let seed = 4242;
    let config = IngressConfig { num_shards: 1, seed, queue_depth: 256 };
    let options = WalOptions::new(wal_dir.path());
    let spill = SpillOptions { resident_cap: 2, ..SpillOptions::new(spill_dir.path()) };
    let spec = MechanismSpec::reg1_l2(3);
    let sids: Vec<u64> = (0..6).collect();
    let mut live: Vec<Vec<f64>> = Vec::new();

    let (handle, _) = EngineHandle::with_wal_and_spill(config, &options, &spill).unwrap();
    for &sid in &sids {
        handle.open(sid, &spec, 32, &params()).unwrap().wait();
    }
    for t in 0..3 {
        for &sid in &sids {
            let reply = handle.observe(sid, point(3, t, sid)).unwrap().wait();
            live.extend(releases_of(reply));
        }
    }
    assert!(handle.spill_stats().spills > 0);
    handle.close();

    // Restart: recovery replays the log; the previous process's spill
    // files are stale and swept, then churn resumes under the cap.
    let (handle, report) = EngineHandle::with_wal_and_spill(config, &options, &spill).unwrap();
    // 6 opens + 18 observes, all from the log (no checkpoint was taken).
    assert_eq!(report.commands, (sids.len() * 4) as u64);
    assert_eq!(report.snapshot_sessions, 0);
    for t in 3..6 {
        for &sid in &sids {
            let reply = handle.observe(sid, point(3, t, sid)).unwrap().wait();
            live.extend(releases_of(reply));
        }
    }
    handle.close();

    let mut reference =
        ShardedEngine::new(EngineConfig { num_shards: 1, seed, parallel: false }).unwrap();
    for &sid in &sids {
        reference.spawn_session(sid, &spec, 32, &params()).unwrap();
    }
    let mut at = 0;
    for t in 0..6 {
        for &sid in &sids {
            let want = reference.observe(sid, &point(3, t, sid)).unwrap();
            assert_eq!(bits(&live[at]), bits(&want), "t = {t}, session {sid}");
            at += 1;
        }
    }
}

/// Spill files are process-scoped scratch, not durable state: leftovers
/// from a dead process are deleted at startup, and files that are not
/// spill files are left alone.
#[test]
fn stale_spill_files_are_swept_at_startup() {
    let tmp = TempDir::new("stale");
    let stale = tmp.path().join("session-00000000deadbeef.pirs");
    let unrelated = tmp.path().join("notes.txt");
    std::fs::write(&stale, b"left over from a previous incarnation").unwrap();
    std::fs::write(&unrelated, b"not a spill file").unwrap();

    let handle = EngineHandle::with_spill(
        IngressConfig { num_shards: 1, seed: 9, queue_depth: 16 },
        &SpillOptions::new(tmp.path()),
    )
    .unwrap();
    assert!(!stale.exists(), "stale spill files must be swept");
    assert!(unrelated.exists(), "only spill files may be touched");
    assert_eq!(handle.spill_stats().spilled, 0);
    handle.close();
}

/// Eviction is best-effort: sessions whose mechanism cannot snapshot
/// (`PRIVINCERM`) are skipped, the shard transiently exceeds its cap,
/// and service continues — nothing fails, nothing is lost.
#[test]
fn unsnapshottable_sessions_stay_resident_over_the_cap() {
    let tmp = TempDir::new("erm");
    let spec = MechanismSpec::erm_squared(2, TauRule::Fixed(4));
    let handle = EngineHandle::with_spill(
        IngressConfig { num_shards: 1, seed: 77, queue_depth: 64 },
        &SpillOptions { resident_cap: 1, ..SpillOptions::new(tmp.path()) },
    )
    .unwrap();
    for sid in 0..3u64 {
        handle.open(sid, &spec, 16, &params()).unwrap().wait();
    }
    for t in 0..2 {
        for sid in 0..3u64 {
            releases_of(handle.observe(sid, point(2, t, sid)).unwrap().wait());
        }
    }
    let stats = handle.spill_stats();
    assert_eq!(stats.spills, 0, "{stats:?}");
    assert_eq!(stats.spilled, 0, "{stats:?}");
    assert_eq!(stats.resident, 3, "unsupported sessions must stay resident: {stats:?}");
    handle.close();
}

/// A zero resident cap could never serve a command; it is rejected as
/// configuration, not discovered as a hang.
#[test]
fn zero_resident_cap_is_invalid_config() {
    let tmp = TempDir::new("zero");
    let err = EngineHandle::with_spill(
        IngressConfig { num_shards: 1, seed: 1, queue_depth: 8 },
        &SpillOptions { resident_cap: 0, ..SpillOptions::new(tmp.path()) },
    )
    .unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig { .. }), "got {err:?}");
}
